//! Facade crate for the spg-CNN workspace.
//!
//! Re-exports the public API of every member crate under one root so
//! examples and downstream users can depend on a single crate. See the
//! workspace `README.md` for an architecture overview, `DESIGN.md` for the
//! paper-to-module map, and `EXPERIMENTS.md` for reproduction results.
//!
//! # Quickstart
//!
//! ```
//! use spg_cnn::convnet::ConvSpec;
//! use spg_cnn::core::region::{classify, Region};
//!
//! // Layer 1 of CIFAR-10 (Table 2): 64 features, 5x5 kernel, unit stride.
//! let spec = ConvSpec::square(8, 64, 64, 5, 1);
//! let region = classify(&spec, 0.85);
//! assert_ne!(region, Region::R0); // small conv + sparse: not the easy region
//! ```

#![warn(missing_docs)]

pub mod bench_hybrid;
pub mod bench_kernels;

pub use spg_check as check;
pub use spg_cluster as cluster;
pub use spg_codegen as codegen;
pub use spg_convnet as convnet;
pub use spg_core as core;
pub use spg_error as error;
pub use spg_gemm as gemm;
pub use spg_race as race;
pub use spg_serve as serve;
pub use spg_simcpu as simcpu;
pub use spg_sync as sync;
pub use spg_telemetry as telemetry;
pub use spg_tensor as tensor;
pub use spg_workloads as workloads;
