//! Generic-vs-specialized stencil kernel benchmark over the Table 2
//! suite — the `spgcnn bench-kernels` subcommand and the data source for
//! the committed `BENCH_kernels.json` perf baseline that CI's
//! `tools/bench_gate.sh` diffs against.
//!
//! Per layer, the benchmark times the generic runtime-parameterized
//! stencil loops ([`StencilExecutor::generic`]) against the verified
//! `spg-codegen` registry instance for the shape (when one resolves on
//! this host), single-core, median-of-`reps` with a **pinned, flop-derived
//! iteration count** so reruns measure identical work. The headline
//! number per layer is the dimensionless `speedup` ratio
//! (specialized/generic throughput), which is what the CI gate compares —
//! absolute GFLOP/s vary across machines, the ratio is stable.

use std::time::Instant;

use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;
use spg_core::specialized::select_kernel;
use spg_core::stencil::StencilExecutor;
use spg_workloads::table2::{all_layers, Benchmark};

/// Layers at or above this many arithmetic ops per sample are "hot": the
/// Table 2 layers where forward time concentrates and where the CI gate
/// enforces the regression threshold.
pub const HOT_LAYER_OPS: u64 = 100_000_000;

/// Default timing repetitions (median taken).
pub const DEFAULT_REPS: usize = 5;

/// Flop budget per timed repetition; the pinned per-layer iteration
/// count is derived from it (`ceil(budget / layer_flops)`, clamped).
/// Sized so even the largest Table 2 layer gets a multi-hundred-ms
/// timing window per repetition — short windows made the speedup ratio
/// too noisy to gate on.
const REP_FLOP_BUDGET: u64 = 4_000_000_000;

/// Upper clamp on the per-layer iteration count so cold layers do not
/// dominate wall time.
const MAX_ITERS: usize = 64;

/// One layer's generic-vs-specialized measurement.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Table 2 benchmark label (e.g. `ImageNet-22K`).
    pub benchmark: &'static str,
    /// Zero-based conv layer index within the benchmark.
    pub layer: usize,
    /// The layer geometry.
    pub spec: ConvSpec,
    /// Whether the layer meets the [`HOT_LAYER_OPS`] threshold.
    pub hot: bool,
    /// Arithmetic ops per sample.
    pub flops: u64,
    /// Pinned forward calls per timed repetition.
    pub iters: usize,
    /// Median generic-loop throughput.
    pub generic_gflops: f64,
    /// Median specialized-instance throughput, when an instance resolved.
    pub specialized_gflops: Option<f64>,
    /// Median of the per-repetition specialized/generic throughput
    /// ratios (the repetitions are interleaved pairs, so machine-load
    /// drift cancels). Present when an instance resolved.
    pub speedup: Option<f64>,
    /// `"specialized"` when a registry instance resolved for this layer
    /// on this host, `"generic"` otherwise.
    pub kernel: &'static str,
    /// ISA of the resolved instance (`"avx2"` / `"avx512"`).
    pub isa: Option<&'static str>,
}

/// The full suite's results plus the run parameters that pin the work.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Timing repetitions per measurement (median taken).
    pub reps: usize,
    /// SIMD level detected on the measuring host.
    pub simd_level: &'static str,
    /// Per-layer results in Table 2 order.
    pub layers: Vec<LayerResult>,
}

/// The pinned iteration count for a layer: enough forward calls to fill
/// `REP_FLOP_BUDGET`, clamped to `1..=MAX_ITERS`. Deterministic in
/// the spec, so baseline and PR runs execute identical work.
pub fn pinned_iters(flops: u64) -> usize {
    let per_budget = REP_FLOP_BUDGET.div_ceil(flops.max(1));
    usize::try_from(per_budget).unwrap_or(MAX_ITERS).clamp(1, MAX_ITERS)
}

/// Times one repetition — `iters` forward calls through `exec` — and
/// returns its GFLOP/s.
fn time_rep(
    spec: &ConvSpec,
    exec: &dyn ConvExecutor,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
    scratch: &mut ConvScratch,
    iters: usize,
) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        exec.forward(spec, input, weights, output, scratch);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-12);
    #[allow(clippy::cast_precision_loss)]
    let work = (spec.arithmetic_ops() * iters as u64) as f64;
    work / secs / 1e9
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Runs the generic-vs-specialized benchmark over every Table 2 conv
/// layer, single-core.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn run(reps: usize) -> BenchReport {
    assert!(reps > 0, "repetition count must be positive");
    let mut layers = Vec::new();
    for (bench, layer, spec) in all_layers() {
        layers.push(run_layer(bench, layer, &spec, reps));
    }
    BenchReport {
        reps,
        simd_level: match spg_gemm::detect_simd_level() {
            spg_gemm::SimdLevel::Avx512Fma => "avx512",
            spg_gemm::SimdLevel::Avx2Fma => "avx2",
            spg_gemm::SimdLevel::Scalar => "scalar",
        },
        layers,
    }
}

fn run_layer(bench: Benchmark, layer: usize, spec: &ConvSpec, reps: usize) -> LayerResult {
    let flops = spec.arithmetic_ops();
    let iters = pinned_iters(flops);
    let input: Vec<f32> =
        (0..spec.input_shape().len()).map(|i| (((i * 31 + 7) % 17) as f32 - 8.0) / 6.0).collect();
    let weights: Vec<f32> =
        (0..spec.weight_shape().len()).map(|i| (((i * 13 + 3) % 11) as f32 - 5.0) / 4.0).collect();
    let mut output = vec![0.0f32; spec.output_shape().len()];
    let mut scratch = ConvScratch::new();

    let generic_exec = StencilExecutor::generic();
    // StencilExecutor::new() dispatches through the verified registry
    // instance for this shape when select_kernel resolves one.
    let auto_exec = StencilExecutor::new();
    let inst = select_kernel(spec);

    // Warm-up pays one-time buffer growth and code-path warming.
    generic_exec.forward(spec, &input, &weights, &mut output, &mut scratch);
    if inst.is_some() {
        auto_exec.forward(spec, &input, &weights, &mut output, &mut scratch);
    }
    // Interleave generic/specialized repetitions so machine-load drift
    // over the run hits both kernels alike: the per-layer speedup ratio
    // (what the CI gate compares) stays stable even when absolute
    // throughput wobbles.
    let mut generic_samples = Vec::with_capacity(reps);
    let mut special_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        generic_samples.push(time_rep(
            spec,
            &generic_exec,
            &input,
            &weights,
            &mut output,
            &mut scratch,
            iters,
        ));
        if inst.is_some() {
            special_samples.push(time_rep(
                spec,
                &auto_exec,
                &input,
                &weights,
                &mut output,
                &mut scratch,
                iters,
            ));
        }
    }
    let generic_gflops = median(generic_samples.clone());
    let (specialized_gflops, speedup) = if inst.is_some() {
        let s = median(special_samples.clone());
        // Median of per-pair ratios, not ratio of medians: each
        // interleaved pair ran back to back, so slow phases of the
        // machine cancel out of the ratio.
        let ratios: Vec<f64> =
            generic_samples.iter().zip(&special_samples).map(|(g, s)| s / g.max(1e-12)).collect();
        (Some(s), Some(median(ratios)))
    } else {
        (None, None)
    };
    LayerResult {
        benchmark: bench.label(),
        layer,
        spec: *spec,
        hot: flops >= HOT_LAYER_OPS,
        flops,
        iters,
        generic_gflops,
        specialized_gflops,
        speedup,
        kernel: if inst.is_some() { "specialized" } else { "generic" },
        isa: inst.map(|k| k.isa().name()),
    }
}

impl BenchReport {
    /// Serializes the report as the `spgcnn-bench-kernels` JSON document
    /// `tools/bench_gate.sh` consumes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"spgcnn-bench-kernels\",\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"simd_level\": \"{}\",\n", self.simd_level));
        out.push_str("  \"layers\": [");
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<f64>| match v {
                Some(v) if v.is_finite() => format!("{v:.4}"),
                _ => "null".to_string(),
            };
            let isa = match l.isa {
                Some(isa) => format!("\"{isa}\""),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n    {{\"benchmark\": \"{}\", \"layer\": {}, \"spec\": \"{}\", \
                 \"hot\": {}, \"flops\": {}, \"iters\": {}, \"generic_gflops\": {:.4}, \
                 \"specialized_gflops\": {}, \"speedup\": {}, \"kernel\": \"{}\", \"isa\": {}}}",
                l.benchmark,
                l.layer,
                l.spec,
                l.hot,
                l.flops,
                l.iters,
                l.generic_gflops,
                opt(l.specialized_gflops),
                opt(l.speedup),
                l.kernel,
                isa,
            ));
        }
        if !self.layers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable table for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "generic vs specialized stencil forward, single core \
             (median of {}, simd {})\n{:<14} {:>5} {:>22} {:>4} {:>6} {:>12} {:>12} {:>8}  {}\n",
            self.reps,
            self.simd_level,
            "benchmark",
            "layer",
            "spec",
            "hot",
            "iters",
            "generic",
            "special",
            "speedup",
            "kernel"
        );
        for l in &self.layers {
            let special = l.specialized_gflops.map_or("-".to_string(), |v| format!("{v:.2}"));
            let speedup = l.speedup.map_or("-".to_string(), |v| format!("{v:.3}x"));
            out.push_str(&format!(
                "{:<14} {:>5} {:>22} {:>4} {:>6} {:>12.2} {:>12} {:>8}  {}{}\n",
                l.benchmark,
                l.layer,
                l.spec.to_string(),
                if l.hot { "hot" } else { "-" },
                l.iters,
                l.generic_gflops,
                special,
                speedup,
                l.kernel,
                l.isa.map_or(String::new(), |i| format!(" ({i})")),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_iters_are_deterministic_and_clamped() {
        assert_eq!(pinned_iters(REP_FLOP_BUDGET), 1);
        assert_eq!(pinned_iters(REP_FLOP_BUDGET * 10), 1);
        assert_eq!(pinned_iters(REP_FLOP_BUDGET / 4), 4);
        assert_eq!(pinned_iters(1), MAX_ITERS);
        assert_eq!(pinned_iters(0), MAX_ITERS);
    }

    #[test]
    fn report_covers_every_table2_layer_and_validates() {
        let report = run(1);
        assert_eq!(report.layers.len(), all_layers().len());
        // 9 of the 12 Table 2 layers clear the hot threshold.
        assert_eq!(report.layers.iter().filter(|l| l.hot).count(), 9);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"spgcnn-bench-kernels\""));
        for l in &report.layers {
            assert!(l.generic_gflops > 0.0, "{} L{}", l.benchmark, l.layer);
            assert_eq!(l.kernel == "specialized", l.speedup.is_some());
        }
        assert!(report.render_table().contains("speedup"));
    }
}
