//! `spgcnn` — command-line front end for the spg-CNN framework.
//!
//! ```text
//! spgcnn characterize <Nc> <N> <Nf> <K> <S>   # Sec. 3 characterization of one convolution
//! spgcnn plan <net.cfg> [--cores N] [--sparsity S]
//! spgcnn render <net.cfg> [--cores N] [--sparsity S]
//! spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
//! spgcnn serve <net.cfg>|--smoke [--workers N] [--requests N]
//! ```
//!
//! Network files use the protobuf-text-like format of
//! `spg_core::config` (see `examples/` and the README quickstart).
//! Training, evaluation, and serving are all routed through the unified
//! [`Engine`] facade rather than hand-built workspace plumbing.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spg_cnn::cluster::{
    run_rank, serve_connection, train_in_proc, AllReduce, Cluster, ClusterError, Comm,
    ConnectionEnd, InProcTrainOptions, KillDrill, RankOptions, RankState, TrainFault, Transport,
};
use spg_cnn::convnet::data::Dataset;
use spg_cnn::convnet::{io, ConvSpec, Engine, Trainer, TrainerConfig};
use spg_cnn::core::autotune::{Framework, TuningMode};
use spg_cnn::core::compiled::CompiledConv;
use spg_cnn::core::config::NetworkDescription;
use spg_cnn::core::region::classify;
use spg_cnn::core::schedule::recommended_plan;
use spg_cnn::serve::{FaultPlan, ServeConfig, ServeError, Server};
use spg_cnn::simcpu::{
    cifar10_layers, cluster_scaling, serving_throughput, EndToEndConfig, Interconnect, Machine,
};
use spg_cnn::tensor::{Shape3, Tensor};

const USAGE: &str = "\
usage:
  spgcnn characterize <Nc> <N> <Nf> <K> <S>
      Sec. 3 characterization of one square convolution
      (channels, input size, features, kernel, stride).
  spgcnn plan <net.cfg> [--cores N] [--sparsity S]
      Parse a network description and print the per-layer technique plan.
  spgcnn render <net.cfg> [--cores N] [--sparsity S]
      Print the generated kernel listings for every conv layer.
  spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
               [--batch N] [--save weights.spgw] [--metrics-json FILE]
               [--inject-fault SPEC]
      Train the network on a seeded synthetic dataset and report per-epoch
      loss, accuracy, and gradient sparsity; optionally save the weights
      and/or write goodput telemetry as spgcnn-metrics JSON. When --batch
      is smaller than --threads the SGD pool clamps itself to the
      available work and counts the idled workers in train.starved_workers.
  spgcnn eval <net.cfg> <weights.spgw> [--samples N]
      Load trained weights and report accuracy on a fresh synthetic set.
  spgcnn tune <net.cfg> [--cores N] [--sparsity S] [--reps N] [--json]
      Measure every technique on every conv layer of this machine and
      report the timings and winners (the paper's measure-and-pick step).
      With --json, emit the decisions as spgcnn-metrics JSON on stdout.
  spgcnn check <net.cfg>|--smoke [--cores N]
      Statically verify every candidate execution plan for every conv
      layer: prove all kernel access ranges in-bounds, parallel worker
      regions disjoint, and scratch capacities sufficient — without
      running anything. Exits non-zero if any plan is rejected.
  spgcnn algos <net.cfg>|--smoke [--cores N] [--backend cpu|sim]
      Enumerate every backend algorithm for every conv layer with its
      closed-form workspace bound — the cuDNN-style get_algos /
      workspace_size queries surfaced as a command. The default cpu
      backend prints the full candidate space, marking verifier-rejected
      pairs with the refusal reason; --backend sim ranks the runnable
      algorithms by the analytical model's predicted GFlops/core.
  spgcnn serve <net.cfg>|--smoke [--workers N] [--requests N] [--max-batch N]
               [--max-delay-ms MS] [--metrics-json FILE] [--inject-fault SPEC]
      Run the batched serving engine over a synthetic request stream,
      check every response is bit-identical to the single-sample forward
      pass, and report throughput plus request-latency percentiles.
      With --smoke a tiny built-in network is served and the collected
      telemetry is emitted as spgcnn-metrics JSON. --inject-fault panics
      one worker on purpose (SPEC is `worker:batch` or `any:batch`,
      1-based batch) and checks the pool supervisor isolates the fault;
      it needs a build with the `fault-injection` cargo feature.
  spgcnn bench-serve [--requests N] [--max-batch N] [--max-delay-ms MS]
      Measure serving throughput at 1/2/4 workers on this machine, then
      print the analytical multicore model's serving-scaling table
      (forward-only Sec. 4.1: one single-threaded kernel per worker).
  spgcnn bench-kernels [--json FILE] [--reps N]
      Race the generic stencil forward loops against the specialized
      codegen registry instance on every Table 2 layer, single-core,
      median-of-N with pinned iteration counts. With --json, write the
      spgcnn-bench-kernels document CI's bench gate diffs against the
      committed BENCH_kernels.json baseline.
  spgcnn bench-hybrid [--json FILE] [--reps N] [--smoke]
      Strong-scaling sweep at batch = 1 (the regime where sample
      parallelism starves): time the sequential kernel against the
      y-band / x-band / out-channel hybrid decompositions at 1/2/4/8
      workers on the small-batch/large-image Table 2 layers, proving
      every banded output bit-identical before trusting its timing.
      With --json, write the spgcnn-bench-hybrid document (the committed
      BENCH_hybrid.json baseline); --smoke sweeps one tiny layer instead.
  spgcnn serve-cluster <net.cfg>|--smoke [--shards N] [--workers N] [--requests N]
               [--transport uds|tcp|inproc] [--base-port P]
               [--inject-fault SHARD:AFTER_N] [--metrics-json FILE]
      Serve through the consistent-hash shard router over N model
      replicas. The uds/tcp transports spawn one shard process per
      replica and exercise the framed wire protocol end to end; every
      response is checked bit-identical to the single-sample forward
      path. --inject-fault kills shard SHARD after it served AFTER_N
      requests and checks exactly one in-flight request fails with a
      typed ShardFault while the router evicts and respawns the shard.
  spgcnn train-cluster <net.cfg>|--smoke [--world N] [--epochs N] [--samples N]
               [--batch N] [--in-proc] [--algo ring|tree]
               [--inject-fault RANK:EPOCH:BATCH] [--metrics-json FILE]
      Synchronous data-parallel SGD over N rank processes connected in
      a Unix-socket ring (or in-process ranks with --in-proc), running
      the from-scratch chunked gradient all-reduce; asserts every
      rank's epoch losses are bit-identical to the single-process SGD
      pool on the same seed. --inject-fault (in-proc ring only) drops a
      rank mid-all-reduce and checks the replay still matches the pool.
  spgcnn bench-cluster [--json FILE] [--gradient-mb MB] [--step-ms MS]
      Print the analytical multi-node scaling curves (1..64 nodes) of
      the ring and binomial-tree all-reduce on loopback and 10 GbE
      fabrics; with --json, write the spgcnn-bench-cluster document
      (the committed BENCH_cluster.json scaling baseline).
  spgcnn race [--smoke]
      Run the spg-race deterministic-interleaving model checker over the
      concurrency proof scenarios (bounded queue, lock order, serve
      supervisor, SGD merge, shard router, all-reduce ring), exploring
      every schedule up to the preemption bound and printing one line
      per scenario. --smoke runs the small configs only; without it the
      larger full-proof configs run too. Exits non-zero on any finding
      (deadlock, lost wakeup, invariant violation, data race).
  spgcnn smoke [--metrics-json FILE]
      Train a tiny built-in network for two epochs with telemetry enabled
      and emit spgcnn-metrics JSON (to stdout, or FILE if given). Exits
      non-zero if the collected metrics fail schema validation.
  spgcnn validate-metrics <metrics.json>
      Check that a JSON file conforms to the spgcnn-metrics schema.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("characterize") => characterize(&args[1..]),
        Some("plan") => plan(&args[1..], false),
        Some("render") => plan(&args[1..], true),
        Some("train") => train(&args[1..]),
        Some("eval") => eval(&args[1..]),
        Some("tune") => tune(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("algos") => algos(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("bench-serve") => bench_serve(&args[1..]),
        Some("bench-kernels") => bench_kernels(&args[1..]),
        Some("bench-hybrid") => bench_hybrid(&args[1..]),
        Some("serve-cluster") => serve_cluster(&args[1..]),
        Some("train-cluster") => train_cluster(&args[1..]),
        Some("bench-cluster") => bench_cluster(&args[1..]),
        // Internal child entry points re-exec'd by serve-cluster /
        // train-cluster; not part of the documented surface.
        Some("cluster-shard") => cluster_shard(&args[1..]),
        Some("cluster-rank") => cluster_rank(&args[1..]),
        Some("race") => race(&args[1..]),
        Some("smoke") => smoke(&args[1..]),
        Some("validate-metrics") => validate_metrics(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` flags after the positional arguments.
fn flag<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("missing value after {key}"))?
            .parse()
            .map_err(|_| format!("invalid value for {key}")),
    }
}

/// Parses an optional `--key value` flag, distinguishing absent from given.
fn opt_flag(args: &[String], key: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(None),
        Some(i) => {
            args.get(i + 1).cloned().map(Some).ok_or_else(|| format!("missing value after {key}"))
        }
    }
}

/// Parses `--inject-fault SPEC` into a [`FaultPlan`], rejecting the flag
/// outright when the binary was built without the `fault-injection`
/// feature (an inert drill would silently prove nothing).
fn fault_flag(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let Some(spec) = opt_flag(args, "--inject-fault")? else { return Ok(None) };
    if !FaultPlan::armed() {
        return Err("--inject-fault requires a build with the `fault-injection` cargo feature \
             (cargo build --features fault-injection)"
            .into());
    }
    FaultPlan::parse(&spec).map(Some)
}

/// Serializes the collected telemetry as spgcnn-metrics JSON, validates it
/// against the schema, and writes it to `path` (or stdout when `None`).
fn emit_metrics(path: Option<&str>, meta: &[(&str, String)]) -> Result<(), String> {
    let text = spg_cnn::telemetry::snapshot().to_json(meta);
    spg_cnn::telemetry::json::validate_metrics(&text)
        .map_err(|e| format!("internal error: emitted metrics violate the schema: {e}"))?;
    match path {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("metrics written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn characterize(args: &[String]) -> Result<(), String> {
    if args.len() < 5 {
        return Err("characterize needs <Nc> <N> <Nf> <K> <S>".into());
    }
    let nums: Vec<usize> = args[..5]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("`{a}` is not a number")))
        .collect::<Result<_, _>>()?;
    let spec =
        ConvSpec::new(nums[0], nums[1], nums[1], nums[2], nums[3], nums[3], nums[4], nums[4])
            .map_err(|e| e.to_string())?;
    println!("convolution      : {spec}");
    println!("arithmetic ops   : {}", spec.arithmetic_ops());
    println!("intrinsic AIT    : {:.1}", spec.intrinsic_ait());
    println!("Unfold+GEMM AIT  : {:.1}", spec.unfold_ait());
    println!("unfold blow-up   : {:.1}x", spec.unfold_blowup());
    for sparsity in [0.0, 0.85] {
        println!(
            "at sparsity {sparsity:.2} : {} -> {}",
            classify(&spec, sparsity),
            recommended_plan(&spec, sparsity, 16)
        );
    }
    Ok(())
}

fn load(args: &[String]) -> Result<NetworkDescription, String> {
    let path = args.first().ok_or("missing network file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    NetworkDescription::parse(&text).map_err(|e| e.to_string())
}

fn plan(args: &[String], render: bool) -> Result<(), String> {
    let desc = load(args)?;
    let cores = flag(args, "--cores", 16usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    println!("network `{}`: {net:?}", desc.name);
    let framework = Framework::new(cores, TuningMode::Heuristic, 2);
    for (i, layer_plan) in framework.plan_network(&mut net, sparsity) {
        let spec = *net.layers()[i].conv_spec().expect("planned layers are conv");
        println!("\nlayer {i}: {spec}");
        println!("  {} | {layer_plan}", classify(&spec, sparsity));
        if render {
            let weights = vec![0.0f32; spec.weight_shape().len()];
            let compiled = CompiledConv::compile(spec, layer_plan, &weights, cores)
                .map_err(|e| e.to_string())?;
            for line in compiled.render().lines() {
                println!("  {line}");
            }
        }
    }
    Ok(())
}

fn train(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let epochs = flag(args, "--epochs", 5usize)?;
    let classes = flag(args, "--classes", 0usize)?;
    let samples = flag(args, "--samples", 64usize)?;
    let threads = flag(args, "--threads", 1usize)?.max(1);
    let batch = flag(args, "--batch", TrainerConfig::default().batch_size)?.max(1);
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let fault_plan = fault_flag(args)?;
    if metrics_path.is_some() {
        spg_cnn::telemetry::reset();
        spg_cnn::telemetry::set_enabled(true);
    }

    let net = desc.build(42).map_err(|e| e.to_string())?;
    let classes = if classes == 0 { net.output_len() } else { classes };
    if classes > net.output_len() {
        return Err(format!(
            "{classes} classes but the network only has {} outputs",
            net.output_len()
        ));
    }
    let planner = Arc::new(Framework::new(threads, TuningMode::Heuristic, 2));
    let mut engine = Engine::builder()
        .network(net)
        .planner(planner)
        .workers(threads)
        .trainer(TrainerConfig {
            epochs,
            batch_size: batch,
            sample_threads: threads,
            fault_plan,
            ..TrainerConfig::default()
        })
        .build()
        .map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, classes, samples, 0.15, 7);
    println!("training `{}` on {} synthetic samples, {} classes", desc.name, samples, classes);
    println!("epoch  loss     accuracy  grad-sparsity  images/s");
    let stats = engine.try_train(&mut data).map_err(|e| e.to_string())?;
    if fault_plan.is_some() {
        println!("fault drill passed: the training pool survived the injected panic");
    }
    for s in &stats {
        let sparsity = s.conv_grad_sparsity.first().copied().unwrap_or(0.0);
        println!(
            "{:>5}  {:<7.4}  {:<8.3}  {:<13.3}  {:.0}",
            s.epoch, s.mean_loss, s.accuracy, sparsity, s.images_per_sec
        );
    }
    if let Some(i) = args.iter().position(|a| a == "--save") {
        let path = args.get(i + 1).ok_or("missing value after --save")?;
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        io::save_weights(engine.network(), std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        println!("weights saved to {path}");
    }
    if let Some(path) = metrics_path {
        spg_cnn::telemetry::set_enabled(false);
        let meta = [
            ("command", "train".to_string()),
            ("network", desc.name.clone()),
            ("epochs", epochs.to_string()),
            ("samples", samples.to_string()),
            ("classes", classes.to_string()),
            ("threads", threads.to_string()),
        ];
        emit_metrics(Some(&path), &meta)?;
    }
    Ok(())
}

fn tune(args: &[String]) -> Result<(), String> {
    use spg_cnn::convnet::scope_label;
    use spg_cnn::core::autotune::{measure_technique, tune_layer, Phase};
    use spg_cnn::core::schedule::Technique;

    let desc = load(args)?;
    let cores = flag(args, "--cores", 1usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let reps = flag(args, "--reps", 3usize)?;
    let json = args.iter().any(|a| a == "--json");
    let net = desc.build(42).map_err(|e| e.to_string())?;
    if json {
        // Machine-readable mode: run the real measure-and-pick primitive
        // under per-layer Tune scopes so every decision is captured with
        // the candidate timings that justified it, then emit the
        // spgcnn-metrics document on stdout.
        spg_cnn::telemetry::reset();
        spg_cnn::telemetry::set_enabled(true);
        for (i, layer) in net.layers().iter().enumerate() {
            let label = scope_label(i, layer.name());
            let Some(spec) = layer.conv_spec() else { continue };
            let _tune = spg_cnn::telemetry::scope(&label, spg_cnn::telemetry::Phase::Tune);
            tune_layer(spec, sparsity, cores, reps);
        }
        spg_cnn::telemetry::set_enabled(false);
        let meta = [
            ("command", "tune".to_string()),
            ("network", desc.name.clone()),
            ("cores", cores.to_string()),
            ("sparsity", sparsity.to_string()),
            ("reps", reps.to_string()),
        ];
        return emit_metrics(None, &meta);
    }
    println!(
        "measuring `{}` on this machine ({cores} core(s), sparsity {sparsity:.2}, {reps} reps)",
        desc.name
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let Some(spec) = layer.conv_spec() else { continue };
        println!(
            "
layer {i}: {spec}"
        );
        for (phase, label, candidates) in [
            (Phase::Forward, "FP", Technique::forward_candidates()),
            (Phase::Backward, "BP", Technique::backward_candidates()),
        ] {
            let mut timings: Vec<(Technique, std::time::Duration)> = candidates
                .iter()
                .map(|&t| (t, measure_technique(spec, t, phase, sparsity, cores, reps)))
                .collect();
            timings.sort_by_key(|&(_, d)| d);
            for (rank, (t, d)) in timings.iter().enumerate() {
                let marker = if rank == 0 { "  <- fastest" } else { "" };
                println!(
                    "  {label} {:<24} {:>10.3} ms{marker}",
                    t.to_string(),
                    d.as_secs_f64() * 1e3
                );
            }
        }
    }
    Ok(())
}

/// Audits a whole network config with the plan-time verifier: every
/// candidate technique for every conv layer, both phases, plus the
/// recommended plan — proving all access ranges safe without running any
/// kernel. The serving/training paths run the same verification inside
/// `CompiledConv::compile` and the autotuner; this command surfaces it.
fn check(args: &[String]) -> Result<(), String> {
    use spg_cnn::core::autotune::Phase;
    use spg_cnn::core::schedule::Technique;
    use spg_cnn::core::verify::verify_technique;

    let desc = if args.iter().any(|a| a == "--smoke") {
        NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?
    } else {
        load(args)?
    };
    let cores = flag(args, "--cores", 16usize)?.max(1);
    let net = desc.build(42).map_err(|e| e.to_string())?;
    println!(
        "checking `{}` ({cores} core(s)): plan-time verification of every candidate",
        desc.name
    );
    let mut rejections = 0usize;
    let mut proved = 0usize;
    let mut regions = 0usize;
    for (i, layer) in net.layers().iter().enumerate() {
        let Some(spec) = layer.conv_spec() else { continue };
        println!("\nlayer {i}: {spec}");
        for (phase, label, candidates) in [
            (Phase::Forward, "FP", Technique::forward_candidates()),
            (Phase::Backward, "BP", Technique::backward_candidates()),
        ] {
            for &t in candidates {
                match verify_technique(spec, t, phase, cores) {
                    Ok(report) => {
                        proved += report.accesses_proved;
                        regions += report.worker_regions;
                        println!(
                            "  {label} {:<24} ok: {} access range(s), {} worker region(s)",
                            t.to_string(),
                            report.accesses_proved,
                            report.worker_regions
                        );
                    }
                    Err(e) => {
                        rejections += 1;
                        println!("  {label} {:<24} REJECTED: {e}", t.to_string());
                    }
                }
            }
        }
    }
    println!(
        "\n{proved} access range(s) proved in-bounds, {regions} worker region(s) proved disjoint"
    );
    if rejections > 0 {
        return Err(format!("{rejections} candidate plan(s) rejected by the static verifier"));
    }
    println!("all candidate plans verified safe");
    Ok(())
}

/// Enumerates every backend algorithm for every conv layer — the
/// cuDNN-style `get_algos` / `workspace_size` queries surfaced as a
/// command. The cpu backend prints the full candidate space, marking
/// verifier-rejected pairs with the refusal reason; the sim backend ranks
/// the runnable algorithms by the analytical model's predicted rates.
fn algos(args: &[String]) -> Result<(), String> {
    use spg_cnn::core::autotune::Phase;
    use spg_cnn::core::backend::{Backend, ConvDescriptor, CpuBackend};
    use spg_cnn::core::schedule::Technique;
    use spg_cnn::core::verify::verify_technique;
    use spg_cnn::simcpu::SimBackend;

    let desc = if args.iter().any(|a| a == "--smoke") {
        NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?
    } else {
        load(args)?
    };
    let cores = flag(args, "--cores", 16usize)?.max(1);
    let backend_name = flag(args, "--backend", "cpu".to_string())?;
    let net = desc.build(42).map_err(|e| e.to_string())?;
    match backend_name.as_str() {
        "cpu" => {
            let backend = CpuBackend::new();
            println!("`{}` ({cores} core(s)): cpu backend algorithm enumeration", desc.name);
            let mut enumerated = 0usize;
            let mut rejected = 0usize;
            for (i, layer) in net.layers().iter().enumerate() {
                let Some(spec) = layer.conv_spec() else { continue };
                let d = ConvDescriptor::new(*spec, cores);
                let algos: Vec<_> = backend.get_algos(&d).collect();
                println!("\nlayer {i}: {spec}");
                for fwd in Technique::forward_candidates() {
                    for bwd in Technique::backward_candidates() {
                        let matching: Vec<_> = algos
                            .iter()
                            .filter(|a| a.forward == *fwd && a.backward == *bwd)
                            .collect();
                        if matching.is_empty() {
                            rejected += 1;
                            let reason = verify_technique(spec, *fwd, Phase::Forward, cores)
                                .err()
                                .or_else(|| {
                                    verify_technique(spec, *bwd, Phase::Backward, cores).err()
                                })
                                .map_or_else(|| "not enumerated".to_string(), |e| e.to_string());
                            let pair = format!("{}+{}", fwd.id(), bwd.id());
                            println!("  {pair:<36} REJECTED: {reason}");
                        }
                        for algo in matching {
                            enumerated += 1;
                            println!(
                                "  {:<36} ok  workspace {:>12} B",
                                algo.id(),
                                backend.workspace_size(&d, *algo)
                            );
                        }
                    }
                }
            }
            println!("\n{enumerated} algorithm(s) enumerated, {rejected} pair(s) rejected");
        }
        "sim" => {
            let machine = Machine::xeon_e5_2650();
            let backend = SimBackend::new(machine);
            println!(
                "`{}` ({cores} core(s)): analytical backend ranking on the {}-core Xeon E5-2650",
                desc.name,
                backend.machine().cores
            );
            for (i, layer) in net.layers().iter().enumerate() {
                let Some(spec) = layer.conv_spec() else { continue };
                let d = ConvDescriptor::new(*spec, cores);
                let weights = vec![0.0f32; spec.weight_shape().len()];
                println!("\nlayer {i}: {spec}");
                for (rank, algo) in backend.get_algos(&d).enumerate() {
                    let p = backend.compile(&d, algo, &weights).map_err(|e| e.to_string())?;
                    println!(
                        "  {:>2}. {:<36} fwd {:>6.1}  bwd {:>6.1} GFlops/core  \
                         workspace {:>12} B",
                        rank + 1,
                        algo.id(),
                        p.fwd_gflops_per_core,
                        p.bwd_gflops_per_core,
                        p.workspace_bytes
                    );
                }
            }
        }
        other => return Err(format!("unknown backend `{other}` (expected `cpu` or `sim`)")),
    }
    Ok(())
}

/// The built-in smoke-test network: small enough to train in well under a
/// second on one core, yet it exercises every instrumented code path
/// (conv forward/backward through the executor seam, ReLU, pooling, FC).
const SMOKE_NETWORK: &str = r#"
name: "smoke"
input { channels: 1 height: 8 width: 8 }
conv { features: 4 kernel: 3 stride: 1 }
relu { }
pool { window: 2 }
fc { outputs: 3 }
"#;

fn serve(args: &[String]) -> Result<(), String> {
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let desc = if smoke_mode {
        NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?
    } else {
        load(args)?
    };
    let workers = flag(args, "--workers", 2usize)?.max(1);
    let requests = flag(args, "--requests", 32usize)?.max(1);
    let max_batch = flag(args, "--max-batch", 8usize)?.max(1);
    let max_delay_ms = flag(args, "--max-delay-ms", 2u64)?;
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let fault_plan = fault_flag(args)?;

    spg_cnn::telemetry::reset();
    spg_cnn::telemetry::set_enabled(true);

    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    // Forward-only planning at cores = 1: every serving worker runs a
    // single-threaded kernel, GEMM-in-Parallel across the pool (Sec. 4.1
    // applied to inference).
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let engine =
        Engine::builder().network(net).workers(workers).build().map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, engine.network().output_len(), requests, 0.15, 11);
    let inputs: Vec<Vec<f32>> =
        (0..data.len()).map(|i| data.image(i).as_slice().to_vec()).collect();
    // Reference logits from the unbatched Engine forward path; the server
    // must reproduce them bit for bit.
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| engine.forward(x).map(|t| t.as_slice().to_vec()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;

    let config = ServeConfig {
        workers,
        max_batch,
        max_delay: Duration::from_millis(max_delay_ms),
        queue_capacity: requests.max(8),
        fault_plan,
        ..ServeConfig::default()
    };
    let server = Server::start(engine.into_shared(), &plans, config).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| server.submit_timeout(x.clone(), Duration::from_secs(30)))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let mut divergent = 0usize;
    let mut batch_total = 0usize;
    let mut answered = 0usize;
    let mut faulted = 0usize;
    for (i, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(r) => {
                answered += 1;
                batch_total += r.batch_size;
                if r.logits != expected[i] {
                    divergent += 1;
                }
            }
            // A WorkerFault fails only the in-flight micro-batch; the
            // supervisor respawns the worker and the stream continues.
            Err(ServeError::WorkerFault { .. }) if fault_plan.is_some() => faulted += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    let elapsed = started.elapsed();
    if fault_plan.is_some() && faulted > 0 {
        // The supervisor bumps the restart counter just after failing the
        // batch, so the replies can race a step ahead of it: block on the
        // respawn event itself rather than sleep-polling the counter.
        let _ = server.wait_restarts(1, Duration::from_secs(5));
    }
    let restarts = server.restarts();
    let faulted_batches = server.faulted_batches();
    server.shutdown();
    spg_cnn::telemetry::set_enabled(false);

    println!(
        "served {requests} request(s) on {workers} worker(s): {:.0} requests/s, mean batch {:.2}",
        requests as f64 / elapsed.as_secs_f64(),
        batch_total as f64 / answered.max(1) as f64
    );
    if fault_plan.is_some() || restarts > 0 {
        println!(
            "supervision: {faulted} request(s) failed as WorkerFault across \
             {faulted_batches} faulted micro-batch(es), {restarts} worker restart(s)"
        );
    }
    let snap = spg_cnn::telemetry::snapshot();
    if let Some(lat) = snap.latency("serve.request") {
        println!(
            "request latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
            lat.quantile_ns(0.50).unwrap_or(0) as f64 / 1e6,
            lat.quantile_ns(0.95).unwrap_or(0) as f64 / 1e6,
            lat.quantile_ns(0.99).unwrap_or(0) as f64 / 1e6
        );
    }
    if divergent > 0 {
        return Err(format!(
            "{divergent}/{requests} responses diverged from the single-sample forward path"
        ));
    }
    println!("all completed responses bit-identical to the single-sample forward path");
    if fault_plan.is_some() {
        // The drill only proves isolation if the fault actually fired and
        // the supervisor actually recovered the worker.
        if faulted == 0 || restarts == 0 {
            return Err(format!(
                "fault injection requested but the pool reported {faulted} faulted \
                 request(s) and {restarts} restart(s); the drill did not exercise recovery"
            ));
        }
        println!("fault drill passed: the pool survived the injected panic");
    }
    if smoke_mode || metrics_path.is_some() {
        let meta = [
            ("command", "serve".to_string()),
            ("network", desc.name.clone()),
            ("workers", workers.to_string()),
            ("requests", requests.to_string()),
            ("max_batch", max_batch.to_string()),
        ];
        emit_metrics(metrics_path.as_deref(), &meta)?;
    }
    Ok(())
}

fn bench_serve(args: &[String]) -> Result<(), String> {
    let requests = flag(args, "--requests", 64usize)?.max(1);
    let max_batch = flag(args, "--max-batch", 8usize)?.max(1);
    let max_delay_ms = flag(args, "--max-delay-ms", 1u64)?;

    let desc = NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let engine = Engine::builder().network(net).build().map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, engine.network().output_len(), requests, 0.15, 13);
    let inputs: Vec<Vec<f32>> =
        (0..data.len()).map(|i| data.image(i).as_slice().to_vec()).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| engine.forward(x).map(|t| t.as_slice().to_vec()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let net = engine.into_shared();

    println!(
        "measured serving throughput on this machine ({requests} requests, max batch {max_batch}):"
    );
    println!("workers  requests/s  mean batch  bit-identical");
    for workers in [1usize, 2, 4] {
        let config = ServeConfig {
            workers,
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
            queue_capacity: requests.max(8),
            ..ServeConfig::default()
        };
        let server = Server::start(Arc::clone(&net), &plans, config).map_err(|e| e.to_string())?;
        let started = Instant::now();
        let pending: Vec<_> = inputs
            .iter()
            .map(|x| server.submit_timeout(x.clone(), Duration::from_secs(60)))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        let mut batch_total = 0usize;
        let mut identical = true;
        for (i, p) in pending.into_iter().enumerate() {
            let r = p.wait().map_err(|e| e.to_string())?;
            batch_total += r.batch_size;
            identical &= r.logits == expected[i];
        }
        let elapsed = started.elapsed().as_secs_f64();
        server.shutdown();
        if !identical {
            return Err(format!(
                "worker count {workers}: responses diverged from the single-sample forward path"
            ));
        }
        println!(
            "{workers:>7}  {:>10.0}  {:>10.2}  yes",
            requests as f64 / elapsed,
            batch_total as f64 / requests as f64
        );
    }

    // Wall-clock scaling above is bounded by this container's physical
    // core count; the paper-scale claim comes from the analytical model
    // of the 16-core evaluation machine.
    let machine = Machine::xeon_e5_2650();
    let layers = cifar10_layers();
    println!(
        "\nmodeled CIFAR-10 serving throughput (images/s) on the {}-core Xeon E5-2650:",
        machine.cores
    );
    println!("workers  Parallel-GEMM  GEMM-in-Parallel  Stencil-FP");
    for workers in [1usize, 2, 4, 8, 16] {
        let pg = serving_throughput(&machine, &layers, EndToEndConfig::ParallelGemmAdam, workers);
        let gip = serving_throughput(&machine, &layers, EndToEndConfig::GemmInParallel, workers);
        let st = serving_throughput(&machine, &layers, EndToEndConfig::StencilFpSparseBp, workers);
        println!("{workers:>7}  {pg:>13.1}  {gip:>16.1}  {st:>10.1}");
    }
    let one = serving_throughput(&machine, &layers, EndToEndConfig::StencilFpSparseBp, 1);
    let four = serving_throughput(&machine, &layers, EndToEndConfig::StencilFpSparseBp, 4);
    let scaling = four / one;
    println!(
        "\nper-core-kernel serving scaling at 4 workers: {scaling:.2}x vs 1 worker (target >= 3.0x)"
    );
    if scaling < 3.0 {
        return Err(format!(
            "modeled serving scaling at 4 workers is {scaling:.2}x, below the 3x target"
        ));
    }
    Ok(())
}

fn bench_kernels(args: &[String]) -> Result<(), String> {
    let reps = flag(args, "--reps", spg_cnn::bench_kernels::DEFAULT_REPS)?.max(1);
    let json_path = opt_flag(args, "--json")?;
    let report = spg_cnn::bench_kernels::run(reps);
    print!("{}", report.render_table());
    let specialized: Vec<_> = report.layers.iter().filter(|l| l.kernel == "specialized").collect();
    if specialized.is_empty() {
        println!("\nno specialized instances runnable on this host (simd {})", report.simd_level);
    } else {
        let hot_wins =
            specialized.iter().filter(|l| l.hot && l.speedup.is_some_and(|s| s >= 1.15)).count();
        println!("\nhot layers at >= 1.15x specialized speedup: {hot_wins}");
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}

fn bench_hybrid(args: &[String]) -> Result<(), String> {
    let reps = flag(args, "--reps", spg_cnn::bench_hybrid::DEFAULT_REPS)?.max(1);
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = opt_flag(args, "--json")?;
    let report = spg_cnn::bench_hybrid::run(reps, smoke);
    print!("{}", report.render_table());
    if report.layers.iter().any(|l| !l.bit_identical) {
        return Err("a banded output diverged from the sequential kernel".into());
    }
    println!(
        "\nhybrid beats starved sample parallelism at {} workers on {}/{} layer(s)",
        spg_cnn::bench_hybrid::WORKER_SWEEP[spg_cnn::bench_hybrid::WORKER_SWEEP.len() - 1],
        report.hybrid_wins_at_top(),
        report.layers.len()
    );
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}

fn race(args: &[String]) -> Result<(), String> {
    let smoke_only = args.iter().any(|a| a == "--smoke");
    for a in args {
        if a != "--smoke" {
            return Err(format!("race: unknown argument `{a}`"));
        }
    }
    let start = Instant::now();
    let reports = if smoke_only {
        spg_cnn::race::scenarios::run_smoke()
    } else {
        spg_cnn::race::scenarios::run_full()
    }
    .map_err(|e| e.to_string())?;
    for r in &reports {
        println!("{r}");
    }
    eprintln!("race: {} scenarios clean in {:.1}s", reports.len(), start.elapsed().as_secs_f64());
    Ok(())
}

fn smoke(args: &[String]) -> Result<(), String> {
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let desc = NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?;
    let net = desc.build(42).map_err(|e| e.to_string())?;

    spg_cnn::telemetry::reset();
    spg_cnn::telemetry::set_enabled(true);
    let planner = Arc::new(Framework::new(1, TuningMode::Heuristic, 1));
    let mut engine = Engine::builder()
        .network(net)
        .planner(planner)
        .trainer(TrainerConfig { epochs: 2, ..TrainerConfig::default() })
        .build()
        .map_err(|e| e.to_string())?;
    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, 3, 16, 0.15, 7);
    let stats = engine.train(&mut data);
    spg_cnn::telemetry::set_enabled(false);

    let last = stats.last().ok_or("training produced no epochs")?;
    eprintln!(
        "smoke: trained `{}` for {} epochs (final loss {:.4}, accuracy {:.3})",
        desc.name,
        stats.len(),
        last.mean_loss,
        last.accuracy
    );
    let meta = [
        ("command", "smoke".to_string()),
        ("network", desc.name.clone()),
        ("epochs", stats.len().to_string()),
        ("samples", "16".to_string()),
    ];
    emit_metrics(metrics_path.as_deref(), &meta)
}

fn validate_metrics(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing metrics file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    spg_cnn::telemetry::json::validate_metrics(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid {} v{} document",
        spg_cnn::telemetry::SCHEMA_NAME,
        spg_cnn::telemetry::SCHEMA_VERSION
    );
    Ok(())
}

fn eval(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let weights_path = args.get(1).ok_or("missing weights file")?;
    let samples = flag(args, "--samples", 64usize)?;
    let net = desc.build(42).map_err(|e| e.to_string())?;
    let bytes = std::fs::read(weights_path).map_err(|e| format!("{weights_path}: {e}"))?;
    let engine =
        Engine::builder().network(net).weights_bytes(bytes).build().map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, engine.network().output_len(), samples, 0.15, 7);
    let images: Vec<Tensor> = (0..data.len()).map(|i| data.image(i).clone()).collect();
    let classes = engine.infer(&images);
    let correct = classes.iter().enumerate().filter(|&(i, &c)| c == data.label(i)).count();
    println!(
        "`{}` with weights {}: accuracy {:.3} ({correct}/{samples})",
        desc.name,
        weights_path,
        correct as f64 / samples as f64
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Cluster commands: sharded serving, ring-SGD training, and the analytical
// multi-node scaling curves. The multi-process modes re-exec this binary as
// `cluster-shard` / `cluster-rank` children.
// ---------------------------------------------------------------------------

/// Network description for a cluster child process: `--net <file>` or the
/// built-in smoke network.
fn child_desc(args: &[String]) -> Result<NetworkDescription, String> {
    match opt_flag(args, "--net")? {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            NetworkDescription::parse(&text).map_err(|e| e.to_string())
        }
        None => NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string()),
    }
}

/// Retries a Unix-socket connect until the peer's listener is up.
fn connect_uds_retry(path: &std::path::Path) -> Result<std::os::unix::net::UnixStream, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("{}: {e}", path.display()));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// A supervised shard child process: spawned from our own binary
/// (`cluster-shard`), polled for exit, and respawned when it dies — the
/// process-level analogue of the worker supervision inside the serving
/// pool. A `--die-after` kill drill rides only on the first incarnation,
/// so a killed shard always comes back healthy.
struct ShardProc {
    shutdown: Arc<AtomicBool>,
    child: Arc<Mutex<Option<std::process::Child>>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl ShardProc {
    fn spawn(child_args: Vec<String>, die_after: Option<u64>) -> ShardProc {
        let shutdown = Arc::new(AtomicBool::new(false));
        let child = Arc::new(Mutex::new(None));
        let supervisor = {
            let shutdown = Arc::clone(&shutdown);
            let slot = Arc::clone(&child);
            std::thread::spawn(move || {
                let mut first = true;
                while !shutdown.load(Ordering::Acquire) {
                    let Ok(exe) = std::env::current_exe() else { return };
                    let mut cmd = Command::new(exe);
                    cmd.args(&child_args).stdout(Stdio::null());
                    if first {
                        if let Some(n) = die_after {
                            cmd.args(["--die-after", &n.to_string()]);
                        }
                    }
                    first = false;
                    let spawned = match cmd.spawn() {
                        Ok(c) => c,
                        Err(_) => {
                            std::thread::sleep(Duration::from_millis(100));
                            continue;
                        }
                    };
                    *spg_sync::lock(&slot) = Some(spawned);
                    loop {
                        if shutdown.load(Ordering::Acquire) {
                            return; // stop() kills and reaps what's left
                        }
                        let exited = match spg_sync::lock(&slot).as_mut() {
                            Some(c) => !matches!(c.try_wait(), Ok(None)),
                            None => true,
                        };
                        if exited {
                            spg_sync::lock(&slot).take();
                            std::thread::sleep(Duration::from_millis(50));
                            break; // respawn without the drill
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
        };
        ShardProc { shutdown, child, supervisor: Some(supervisor) }
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        if let Some(mut c) = spg_sync::lock(&self.child).take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// What the sequential request drive observed.
struct DriveOutcome {
    answered: usize,
    divergent: usize,
    faulted: usize,
    shards_seen: HashSet<usize>,
    elapsed: Duration,
}

/// Submits every input through the router (sequentially, so at most one
/// request is in flight when a kill drill fires) and checks each reply
/// against the single-sample forward path.
fn drive_requests(
    router: &spg_cnn::cluster::Router,
    inputs: &[Vec<f32>],
    expected: &[Vec<f32>],
    drill_armed: bool,
) -> Result<DriveOutcome, String> {
    let started = Instant::now();
    let mut out = DriveOutcome {
        answered: 0,
        divergent: 0,
        faulted: 0,
        shards_seen: HashSet::new(),
        elapsed: Duration::ZERO,
    };
    for (i, x) in inputs.iter().enumerate() {
        let key = format!("request-{i}");
        let pending = router
            .submit_timeout(key.as_bytes(), x.clone(), Duration::from_secs(30))
            .map_err(|e| e.to_string())?;
        match pending.wait() {
            Ok(r) => {
                out.answered += 1;
                out.shards_seen.insert(r.shard);
                if r.logits != expected[i] {
                    out.divergent += 1;
                }
            }
            // The kill drill fails exactly the request in flight on the
            // dying shard; the router evicts, reroutes, and respawns.
            Err(ClusterError::ShardFault { .. }) if drill_armed => out.faulted += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    out.elapsed = started.elapsed();
    Ok(out)
}

fn serve_cluster(args: &[String]) -> Result<(), String> {
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let net_path = if smoke_mode {
        None
    } else {
        Some(args.first().ok_or("missing network file (or --smoke)")?.clone())
    };
    let desc = if smoke_mode {
        NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?
    } else {
        load(args)?
    };
    let shards = flag(args, "--shards", 2usize)?.max(1);
    let workers = flag(args, "--workers", 1usize)?.max(1);
    let requests = flag(args, "--requests", 32usize)?.max(1);
    let transport_name = opt_flag(args, "--transport")?.unwrap_or_else(|| "uds".to_string());
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let drill: Option<(usize, u64)> = match opt_flag(args, "--inject-fault")? {
        None => None,
        Some(spec) => {
            let parsed = spec
                .split_once(':')
                .and_then(|(s, n)| Some((s.parse::<usize>().ok()?, n.parse::<u64>().ok()?)));
            let (shard, after) = parsed.ok_or("--inject-fault wants SHARD:AFTER_N")?;
            if shard >= shards {
                return Err(format!("--inject-fault shard {shard} out of range (0..{shards})"));
            }
            Some((shard, after))
        }
    };

    spg_cnn::telemetry::reset();
    spg_cnn::telemetry::set_enabled(true);

    // Reference replica: planned exactly like the single-process serve
    // path (heuristic cores = 1 forward plans), which every shard replica
    // mirrors — responses must be bit-identical to this engine's forward.
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let _plans = framework.plan_network_forward(&mut net);
    let engine = Engine::builder().network(net).build().map_err(|e| e.to_string())?;
    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, engine.network().output_len(), requests, 0.15, 11);
    let inputs: Vec<Vec<f32>> =
        (0..data.len()).map(|i| data.image(i).as_slice().to_vec()).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| engine.forward(x).map(|t| t.as_slice().to_vec()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let net = engine.into_shared();

    let mut shard_procs: Vec<ShardProc> = Vec::new();
    let mut tmp_dir: Option<PathBuf> = None;
    let transport = match transport_name.as_str() {
        "inproc" => {
            if drill.is_some() {
                return Err(
                    "--inject-fault kills a shard process; use --transport uds or tcp".into()
                );
            }
            Transport::InProc
        }
        "uds" => {
            let dir = std::env::temp_dir().join(format!("spgcnn-cluster-{}", std::process::id()));
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            for shard in 0..shards {
                let socket = dir.join(format!("shard_{shard}.sock"));
                let mut child_args = vec![
                    "cluster-shard".to_string(),
                    "--socket".to_string(),
                    socket.display().to_string(),
                    "--workers".to_string(),
                    workers.to_string(),
                ];
                if let Some(p) = &net_path {
                    child_args.push("--net".to_string());
                    child_args.push(p.clone());
                }
                let die = drill.and_then(|(s, n)| (s == shard).then_some(n));
                shard_procs.push(ShardProc::spawn(child_args, die));
            }
            tmp_dir = Some(dir.clone());
            Transport::Uds { dir }
        }
        "tcp" => {
            let base_port = flag(args, "--base-port", 17870u16)?;
            for shard in 0..shards {
                let port = u16::try_from(shard)
                    .ok()
                    .and_then(|s| base_port.checked_add(s))
                    .ok_or("--base-port too high for the shard count")?;
                let mut child_args = vec![
                    "cluster-shard".to_string(),
                    "--tcp-port".to_string(),
                    port.to_string(),
                    "--workers".to_string(),
                    workers.to_string(),
                ];
                if let Some(p) = &net_path {
                    child_args.push("--net".to_string());
                    child_args.push(p.clone());
                }
                let die = drill.and_then(|(s, n)| (s == shard).then_some(n));
                shard_procs.push(ShardProc::spawn(child_args, die));
            }
            Transport::Tcp { host: "127.0.0.1".to_string(), base_port }
        }
        other => return Err(format!("unknown transport `{other}` (expected uds, tcp, or inproc)")),
    };

    let cluster = Cluster::builder()
        .shards(shards)
        .workers_per_shard(workers)
        .queue_capacity(requests.max(8))
        .transport(transport)
        .network(Arc::clone(&net))
        .build()
        .map_err(|e| e.to_string())?;
    let router = cluster.serve().map_err(|e| e.to_string())?;

    let outcome = drive_requests(&router, &inputs, &expected, drill.is_some());
    if drill.is_some() && matches!(&outcome, Ok(o) if o.faulted > 0) {
        // The forwarder evicts before it fails the request, but the
        // respawn (child restart + reconnect) completes asynchronously:
        // block on the respawn event instead of sleep-polling.
        let _ = router.wait_respawns(1, Duration::from_secs(10));
    }
    let evictions = router.evictions();
    let respawns = router.respawns();
    router.shutdown();
    for p in shard_procs {
        p.stop();
    }
    if let Some(dir) = tmp_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    spg_cnn::telemetry::set_enabled(false);
    let outcome = outcome?;

    println!(
        "routed {requests} request(s) across {shards} shard(s) over {transport_name}: \
         {:.0} requests/s, {} shard(s) answered",
        outcome.answered as f64 / outcome.elapsed.as_secs_f64().max(1e-9),
        outcome.shards_seen.len()
    );
    if outcome.divergent > 0 {
        return Err(format!(
            "{}/{requests} responses diverged from the single-sample forward path",
            outcome.divergent
        ));
    }
    println!("all completed responses bit-identical to the single-sample forward path");
    if shards >= 2 && outcome.answered >= 8 && outcome.shards_seen.len() < 2 {
        return Err("consistent hashing sent every key to one shard".into());
    }
    if drill.is_some() {
        if outcome.faulted != 1 || evictions == 0 || respawns == 0 {
            return Err(format!(
                "shard-kill drill expected exactly one typed ShardFault plus an eviction \
                 and a respawn; saw {} fault(s), {evictions} eviction(s), {respawns} \
                 respawn(s)",
                outcome.faulted
            ));
        }
        println!(
            "shard-kill drill passed: one in-flight request failed typed, the shard was \
             evicted and respawned, every other key was unaffected"
        );
    }
    if smoke_mode || metrics_path.is_some() {
        let meta = [
            ("command", "serve-cluster".to_string()),
            ("network", desc.name.clone()),
            ("shards", shards.to_string()),
            ("workers_per_shard", workers.to_string()),
            ("requests", requests.to_string()),
            ("transport", transport_name.clone()),
        ];
        emit_metrics(metrics_path.as_deref(), &meta)?;
    }
    Ok(())
}

/// Child entry point: one shard process serving framed inference requests
/// on a Unix or TCP socket until killed (or until its `--die-after` drill
/// fires and it aborts mid-request).
fn cluster_shard(args: &[String]) -> Result<(), String> {
    let workers = flag(args, "--workers", 1usize)?.max(1);
    let die_after = match opt_flag(args, "--die-after")? {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| "invalid --die-after".to_string())?),
    };
    let desc = child_desc(args)?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    // Same deterministic seed and forward planning as the parent's
    // reference engine, so this replica's replies are bit-identical to it.
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let server = Server::start(
        Arc::new(net),
        &plans,
        ServeConfig { workers, queue_capacity: 64, ..ServeConfig::default() },
    )
    .map_err(|e| e.to_string())?;
    let drill = die_after.map(|after| KillDrill { after });

    if let Some(path) = opt_flag(args, "--socket")? {
        let path = PathBuf::from(path);
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        loop {
            let (mut stream, _) = listener.accept().map_err(|e| e.to_string())?;
            match serve_connection(&server, &mut stream, drill) {
                Ok(ConnectionEnd::Killed) => std::process::abort(),
                Ok(ConnectionEnd::Closed) | Err(_) => {}
            }
        }
    } else if let Some(port) = opt_flag(args, "--tcp-port")? {
        let port: u16 = port.parse().map_err(|_| "invalid --tcp-port".to_string())?;
        let listener =
            std::net::TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
        loop {
            let (mut stream, _) = listener.accept().map_err(|e| e.to_string())?;
            stream.set_nodelay(true).ok();
            match serve_connection(&server, &mut stream, drill) {
                Ok(ConnectionEnd::Killed) => std::process::abort(),
                Ok(ConnectionEnd::Closed) | Err(_) => {}
            }
        }
    } else {
        Err("cluster-shard needs --socket PATH or --tcp-port PORT".into())
    }
}

/// Extracts the `loss_bits:` line a `cluster-rank` child prints.
fn parse_loss_bits(stdout: &str) -> Option<Vec<u64>> {
    let line = stdout.lines().find(|l| l.starts_with("loss_bits:"))?;
    line["loss_bits:".len()..].split_whitespace().map(|t| t.parse().ok()).collect()
}

fn train_cluster(args: &[String]) -> Result<(), String> {
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let net_path = if smoke_mode {
        None
    } else {
        Some(args.first().ok_or("missing network file (or --smoke)")?.clone())
    };
    let desc = if smoke_mode {
        NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?
    } else {
        load(args)?
    };
    let world = flag(args, "--world", 2usize)?.max(1);
    let epochs = flag(args, "--epochs", 2usize)?.max(1);
    let samples = flag(args, "--samples", 24usize)?.max(world);
    let batch = flag(args, "--batch", 8usize)?.max(1);
    let in_proc = args.iter().any(|a| a == "--in-proc");
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let algo = match opt_flag(args, "--algo")?.as_deref() {
        None | Some("ring") => AllReduce::Ring,
        Some("tree") => AllReduce::Tree,
        Some(other) => return Err(format!("unknown all-reduce `{other}` (expected ring or tree)")),
    };
    let fault = match opt_flag(args, "--inject-fault")? {
        None => None,
        Some(spec) => {
            Some(TrainFault::parse(&spec).ok_or("--inject-fault wants RANK:EPOCH:BATCH")?)
        }
    };
    if fault.is_some() && !in_proc {
        return Err("--inject-fault drills the in-proc ring; add --in-proc".into());
    }
    if fault.is_some() && matches!(algo, AllReduce::Tree) {
        return Err("--inject-fault asserts pool bit-identity; use the default ring".into());
    }
    if matches!(algo, AllReduce::Tree) && !in_proc {
        return Err("the multi-process smoke runs the ring; use --algo tree with --in-proc".into());
    }

    spg_cnn::telemetry::reset();
    spg_cnn::telemetry::set_enabled(true);

    let trainer =
        TrainerConfig { epochs, batch_size: batch, momentum: 0.9, ..TrainerConfig::default() };
    // The bit-identity oracle: the unmodified single-process SGD pool on
    // the same seed, data, and schedule.
    let mut ref_net = desc.build(42).map_err(|e| e.to_string())?;
    let classes = ref_net.output_len();
    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut ref_data = Dataset::synthetic(shape, classes, samples, 0.15, 77);
    let reference = Trainer::new(trainer.clone()).train(&mut ref_net, &mut ref_data);
    let ref_bits: Vec<u64> = reference.iter().map(|s| s.mean_loss.to_bits()).collect();

    println!("single-process pool reference ({samples} samples, batch {batch}):");
    println!("epoch  loss     accuracy");
    for s in &reference {
        println!("{:>5}  {:<7.4}  {:.3}", s.epoch, s.mean_loss, s.accuracy);
    }

    if in_proc {
        let text = match &net_path {
            None => SMOKE_NETWORK.to_string(),
            Some(p) => std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?,
        };
        let factory = move || {
            let bad = |m: String| spg_error::Error::new(spg_error::ErrorKind::InvalidNetwork, m);
            let d = NetworkDescription::parse(&text).map_err(|e| bad(e.to_string()))?;
            d.build(42).map_err(|e| bad(e.to_string()))
        };
        let data = Dataset::synthetic(shape, classes, samples, 0.15, 77);
        let (stats, again_bits) = if fault.is_some() {
            let opts = InProcTrainOptions {
                world,
                algo,
                chunk_floats: 1024,
                restart_budget: 2,
                restart_backoff: Duration::from_millis(5),
                fault,
            };
            (train_in_proc(&factory, &data, &trainer, &opts).map_err(|e| e.to_string())?, None)
        } else {
            let cluster = Cluster::builder()
                .shards(world)
                .allreduce(algo)
                .chunk_floats(1024)
                .factory(factory)
                .build()
                .map_err(|e| e.to_string())?;
            let stats = cluster.train(&data, &trainer).map_err(|e| e.to_string())?;
            let again = if matches!(algo, AllReduce::Tree) {
                let rerun = cluster.train(&data, &trainer).map_err(|e| e.to_string())?;
                Some(rerun.iter().map(|s| s.mean_loss.to_bits()).collect::<Vec<u64>>())
            } else {
                None
            };
            (stats, again)
        };
        let bits: Vec<u64> = stats.iter().map(|s| s.mean_loss.to_bits()).collect();
        match algo {
            AllReduce::Ring => {
                if bits != ref_bits {
                    return Err("cluster epoch losses diverged from the single-process pool".into());
                }
                println!(
                    "in-proc ring over {world} rank(s): epoch losses bit-identical to the \
                     single-process pool"
                );
            }
            AllReduce::Tree => {
                if again_bits.as_deref() != Some(&bits[..]) {
                    return Err("tree all-reduce was not deterministic across runs".into());
                }
                println!(
                    "in-proc tree over {world} rank(s): deterministic across runs \
                     (re-associated, so not pool-identical by design)"
                );
            }
        }
        if fault.is_some() {
            let snap = spg_cnn::telemetry::snapshot();
            if snap.counter("cluster.train.faults") == 0 {
                return Err("fault injection requested but no ring fault was recorded".into());
            }
            println!(
                "ring fault drill passed: the cluster replayed from committed rank state \
                 and still matches the pool bit for bit"
            );
        }
    } else {
        let dir = std::env::temp_dir().join(format!("spgcnn-ring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        let mut children = Vec::new();
        for rank in 0..world {
            let mut cmd = Command::new(&exe);
            cmd.arg("cluster-rank")
                .args(["--rank", &rank.to_string()])
                .args(["--world", &world.to_string()])
                .args(["--epochs", &epochs.to_string()])
                .args(["--samples", &samples.to_string()])
                .args(["--batch", &batch.to_string()])
                .arg("--dir")
                .arg(&dir)
                .stdout(Stdio::piped());
            if let Some(p) = &net_path {
                cmd.args(["--net", p]);
            }
            children.push(cmd.spawn().map_err(|e| e.to_string())?);
        }
        let mut failure = None;
        for (rank, child) in children.into_iter().enumerate() {
            let out = child.wait_with_output().map_err(|e| e.to_string())?;
            if failure.is_some() {
                continue; // keep reaping the remaining children
            }
            if !out.status.success() {
                failure = Some(format!("rank {rank} exited with {}", out.status));
                continue;
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            match parse_loss_bits(&stdout) {
                None => failure = Some(format!("rank {rank} printed no loss_bits line")),
                Some(bits) if bits != ref_bits => {
                    failure = Some(format!(
                        "rank {rank} epoch losses diverged from the single-process pool"
                    ));
                }
                Some(_) => {}
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        if let Some(e) = failure {
            return Err(e);
        }
        println!(
            "ring all-reduce over {world} rank process(es) (Unix sockets): every rank's \
             epoch losses bit-identical to the single-process pool"
        );
    }
    spg_cnn::telemetry::set_enabled(false);
    if smoke_mode || metrics_path.is_some() {
        let meta = [
            ("command", "train-cluster".to_string()),
            ("network", desc.name.clone()),
            ("world", world.to_string()),
            ("epochs", epochs.to_string()),
            ("samples", samples.to_string()),
            ("mode", if in_proc { "in-proc".to_string() } else { "uds-ring".to_string() }),
        ];
        emit_metrics(metrics_path.as_deref(), &meta)?;
    }
    Ok(())
}

/// Child entry point: one training rank in the multi-process Unix-socket
/// ring. Binds its own listener, dials the next rank, accepts the previous
/// one, runs the synchronized epochs, and prints its epoch-loss bits for
/// the parent to compare against the single-process pool.
fn cluster_rank(args: &[String]) -> Result<(), String> {
    let rank = flag(args, "--rank", 0usize)?;
    let world = flag(args, "--world", 1usize)?.max(1);
    let dir = PathBuf::from(opt_flag(args, "--dir")?.ok_or("cluster-rank needs --dir")?);
    let epochs = flag(args, "--epochs", 2usize)?.max(1);
    let samples = flag(args, "--samples", 24usize)?.max(1);
    let batch = flag(args, "--batch", 8usize)?.max(1);
    let desc = child_desc(args)?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, net.output_len(), samples, 0.15, 77);
    let trainer =
        TrainerConfig { epochs, batch_size: batch, momentum: 0.9, ..TrainerConfig::default() };

    let mut comm = if world == 1 {
        Comm::Solo
    } else {
        // Ring rendezvous: every rank binds before dialing, so the dial
        // to the next rank only needs to wait for its bind (the listen
        // backlog holds the connection until it accepts).
        let my_sock = dir.join(format!("rank_{rank}.sock"));
        let _ = std::fs::remove_file(&my_sock);
        let listener = std::os::unix::net::UnixListener::bind(&my_sock)
            .map_err(|e| format!("{}: {e}", my_sock.display()))?;
        let next = dir.join(format!("rank_{}.sock", (rank + 1) % world));
        let tx = connect_uds_retry(&next)?;
        let (rx, _) = listener.accept().map_err(|e| e.to_string())?;
        Comm::Ring { rx_prev: Box::new(rx), tx_next: Box::new(tx) }
    };
    let opts = RankOptions { rank, world, algo: AllReduce::Ring, chunk_floats: 1024, fault: None };
    let mut state = RankState::fresh(&net);
    let stats = run_rank(&mut net, &mut data, &trainer, &opts, &mut comm, &mut state)
        .map_err(|e| e.to_string())?;
    let bits: Vec<String> = stats.iter().map(|s| s.mean_loss.to_bits().to_string()).collect();
    println!("loss_bits: {}", bits.join(" "));
    Ok(())
}

fn bench_cluster(args: &[String]) -> Result<(), String> {
    let json_path = opt_flag(args, "--json")?;
    let gradient_mb = flag(args, "--gradient-mb", 16usize)?.max(1);
    let step_ms = flag(args, "--step-ms", 500u64)?.max(1);
    let gradient_bytes = gradient_mb << 20;
    let step_seconds = step_ms as f64 / 1e3;
    let nodes = [1usize, 2, 4, 8, 16, 64];
    let fabrics = [("loopback", Interconnect::loopback()), ("10gbe", Interconnect::ten_gbe())];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"spgcnn-bench-cluster\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"gradient_bytes\": {gradient_bytes},\n"));
    out.push_str(&format!("  \"single_node_step_seconds\": {step_seconds:.6},\n"));
    out.push_str("  \"fabrics\": [\n");
    for (fi, (name, ic)) in fabrics.iter().enumerate() {
        println!(
            "fabric {name}: {:.2} GB/s links, {:.0} us latency; gradient {gradient_mb} MiB, \
             single-node step {step_ms} ms",
            ic.link_bandwidth_gbs, ic.link_latency_us
        );
        println!("nodes  compute-ms  ring-ms   tree-ms   ring-eff  tree-eff");
        let points = cluster_scaling(ic, step_seconds, gradient_bytes, &nodes);
        for p in &points {
            println!(
                "{:>5}  {:>10.3}  {:>8.3}  {:>8.3}  {:>8.3}  {:>8.3}",
                p.nodes,
                p.compute_seconds * 1e3,
                p.ring_seconds * 1e3,
                p.tree_seconds * 1e3,
                p.ring_efficiency,
                p.tree_efficiency
            );
        }
        println!();
        out.push_str("    {\n");
        out.push_str(&format!("      \"fabric\": \"{name}\",\n"));
        out.push_str(&format!("      \"link_bandwidth_gbs\": {:.3},\n", ic.link_bandwidth_gbs));
        out.push_str(&format!("      \"link_latency_us\": {:.1},\n", ic.link_latency_us));
        out.push_str("      \"points\": [\n");
        for (pi, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"nodes\": {}, \"compute_seconds\": {:.9}, \
                 \"ring_seconds\": {:.9}, \"tree_seconds\": {:.9}, \
                 \"ring_efficiency\": {:.6}, \"tree_efficiency\": {:.6}}}{}\n",
                p.nodes,
                p.compute_seconds,
                p.ring_seconds,
                p.tree_seconds,
                p.ring_efficiency,
                p.tree_efficiency,
                if pi + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if fi + 1 < fabrics.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &out).map_err(|e| format!("{path}: {e}"))?;
            println!("scaling curves written to {path}");
        }
        None => print!("{out}"),
    }
    Ok(())
}
