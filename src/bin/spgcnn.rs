//! `spgcnn` — command-line front end for the spg-CNN framework.
//!
//! ```text
//! spgcnn characterize <Nc> <N> <Nf> <K> <S>   # Sec. 3 characterization of one convolution
//! spgcnn plan <net.cfg> [--cores N] [--sparsity S]
//! spgcnn render <net.cfg> [--cores N] [--sparsity S]
//! spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
//! ```
//!
//! Network files use the protobuf-text-like format of
//! `spg_core::config` (see `examples/` and the README quickstart).

use std::process::ExitCode;

use spg_cnn::convnet::data::Dataset;
use spg_cnn::convnet::{io, ConvSpec, Network, Trainer, TrainerConfig};
use spg_cnn::core::autotune::{Framework, TuningMode};
use spg_cnn::core::compiled::CompiledConv;
use spg_cnn::core::config::NetworkDescription;
use spg_cnn::core::region::classify;
use spg_cnn::core::schedule::recommended_plan;
use spg_cnn::tensor::Shape3;

const USAGE: &str = "\
usage:
  spgcnn characterize <Nc> <N> <Nf> <K> <S>
      Sec. 3 characterization of one square convolution
      (channels, input size, features, kernel, stride).
  spgcnn plan <net.cfg> [--cores N] [--sparsity S]
      Parse a network description and print the per-layer technique plan.
  spgcnn render <net.cfg> [--cores N] [--sparsity S]
      Print the generated kernel listings for every conv layer.
  spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
               [--save weights.spgw] [--metrics-json FILE]
      Train the network on a seeded synthetic dataset and report per-epoch
      loss, accuracy, and gradient sparsity; optionally save the weights
      and/or write goodput telemetry as spgcnn-metrics JSON.
  spgcnn eval <net.cfg> <weights.spgw> [--samples N]
      Load trained weights and report accuracy on a fresh synthetic set.
  spgcnn tune <net.cfg> [--cores N] [--sparsity S] [--reps N] [--json]
      Measure every technique on every conv layer of this machine and
      report the timings and winners (the paper's measure-and-pick step).
      With --json, emit the decisions as spgcnn-metrics JSON on stdout.
  spgcnn smoke [--metrics-json FILE]
      Train a tiny built-in network for two epochs with telemetry enabled
      and emit spgcnn-metrics JSON (to stdout, or FILE if given). Exits
      non-zero if the collected metrics fail schema validation.
  spgcnn validate-metrics <metrics.json>
      Check that a JSON file conforms to the spgcnn-metrics schema.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("characterize") => characterize(&args[1..]),
        Some("plan") => plan(&args[1..], false),
        Some("render") => plan(&args[1..], true),
        Some("train") => train(&args[1..]),
        Some("eval") => eval(&args[1..]),
        Some("tune") => tune(&args[1..]),
        Some("smoke") => smoke(&args[1..]),
        Some("validate-metrics") => validate_metrics(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` flags after the positional arguments.
fn flag<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("missing value after {key}"))?
            .parse()
            .map_err(|_| format!("invalid value for {key}")),
    }
}

/// Parses an optional `--key value` flag, distinguishing absent from given.
fn opt_flag(args: &[String], key: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(None),
        Some(i) => {
            args.get(i + 1).cloned().map(Some).ok_or_else(|| format!("missing value after {key}"))
        }
    }
}

/// Serializes the collected telemetry as spgcnn-metrics JSON, validates it
/// against the schema, and writes it to `path` (or stdout when `None`).
fn emit_metrics(path: Option<&str>, meta: &[(&str, String)]) -> Result<(), String> {
    let text = spg_cnn::telemetry::snapshot().to_json(meta);
    spg_cnn::telemetry::json::validate_metrics(&text)
        .map_err(|e| format!("internal error: emitted metrics violate the schema: {e}"))?;
    match path {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("metrics written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn characterize(args: &[String]) -> Result<(), String> {
    if args.len() < 5 {
        return Err("characterize needs <Nc> <N> <Nf> <K> <S>".into());
    }
    let nums: Vec<usize> = args[..5]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("`{a}` is not a number")))
        .collect::<Result<_, _>>()?;
    let spec =
        ConvSpec::new(nums[0], nums[1], nums[1], nums[2], nums[3], nums[3], nums[4], nums[4])
            .map_err(|e| e.to_string())?;
    println!("convolution      : {spec}");
    println!("arithmetic ops   : {}", spec.arithmetic_ops());
    println!("intrinsic AIT    : {:.1}", spec.intrinsic_ait());
    println!("Unfold+GEMM AIT  : {:.1}", spec.unfold_ait());
    println!("unfold blow-up   : {:.1}x", spec.unfold_blowup());
    for sparsity in [0.0, 0.85] {
        println!(
            "at sparsity {sparsity:.2} : {} -> {}",
            classify(&spec, sparsity),
            recommended_plan(&spec, sparsity, 16)
        );
    }
    Ok(())
}

fn load(args: &[String]) -> Result<NetworkDescription, String> {
    let path = args.first().ok_or("missing network file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    NetworkDescription::parse(&text).map_err(|e| e.to_string())
}

fn plan(args: &[String], render: bool) -> Result<(), String> {
    let desc = load(args)?;
    let cores = flag(args, "--cores", 16usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    println!("network `{}`: {net:?}", desc.name);
    let framework = Framework::new(cores, TuningMode::Heuristic, 2);
    for (i, layer_plan) in framework.plan_network(&mut net, sparsity) {
        let spec = *net.layers()[i].conv_spec().expect("planned layers are conv");
        println!("\nlayer {i}: {spec}");
        println!("  {} | {layer_plan}", classify(&spec, sparsity));
        if render {
            let weights = vec![0.0f32; spec.weight_shape().len()];
            let compiled = CompiledConv::compile(spec, layer_plan, &weights, cores)
                .map_err(|e| e.to_string())?;
            for line in compiled.render().lines() {
                println!("  {line}");
            }
        }
    }
    Ok(())
}

fn train(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let epochs = flag(args, "--epochs", 5usize)?;
    let classes = flag(args, "--classes", 0usize)?;
    let samples = flag(args, "--samples", 64usize)?;
    let threads = flag(args, "--threads", 1usize)?;
    let metrics_path = opt_flag(args, "--metrics-json")?;
    if metrics_path.is_some() {
        spg_cnn::telemetry::reset();
        spg_cnn::telemetry::set_enabled(true);
    }

    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    let classes = if classes == 0 { net.output_len() } else { classes };
    if classes > net.output_len() {
        return Err(format!(
            "{classes} classes but the network only has {} outputs",
            net.output_len()
        ));
    }
    let framework = Framework::new(threads.max(1), TuningMode::Heuristic, 2);
    framework.plan_network(&mut net, 0.0);

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, classes, samples, 0.15, 7);
    let trainer = Trainer::new(TrainerConfig {
        epochs,
        sample_threads: threads.max(1),
        ..TrainerConfig::default()
    });
    println!("training `{}` on {} synthetic samples, {} classes", desc.name, samples, classes);
    println!("epoch  loss     accuracy  grad-sparsity  images/s");
    let stats = trainer.train_with(&mut net, &mut data, |net, s| framework.retune(net, s));
    for s in &stats {
        let sparsity = s.conv_grad_sparsity.first().copied().unwrap_or(0.0);
        println!(
            "{:>5}  {:<7.4}  {:<8.3}  {:<13.3}  {:.0}",
            s.epoch, s.mean_loss, s.accuracy, sparsity, s.images_per_sec
        );
    }
    if let Some(i) = args.iter().position(|a| a == "--save") {
        let path = args.get(i + 1).ok_or("missing value after --save")?;
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        io::save_weights(&net, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
        println!("weights saved to {path}");
    }
    if let Some(path) = metrics_path {
        spg_cnn::telemetry::set_enabled(false);
        let meta = [
            ("command", "train".to_string()),
            ("network", desc.name.clone()),
            ("epochs", epochs.to_string()),
            ("samples", samples.to_string()),
            ("classes", classes.to_string()),
            ("threads", threads.to_string()),
        ];
        emit_metrics(Some(&path), &meta)?;
    }
    Ok(())
}

fn tune(args: &[String]) -> Result<(), String> {
    use spg_cnn::convnet::scope_label;
    use spg_cnn::core::autotune::{measure_technique, tune_layer, Phase};
    use spg_cnn::core::schedule::Technique;

    let desc = load(args)?;
    let cores = flag(args, "--cores", 1usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let reps = flag(args, "--reps", 3usize)?;
    let json = args.iter().any(|a| a == "--json");
    let net = desc.build(42).map_err(|e| e.to_string())?;
    if json {
        // Machine-readable mode: run the real measure-and-pick primitive
        // under per-layer Tune scopes so every decision is captured with
        // the candidate timings that justified it, then emit the
        // spgcnn-metrics document on stdout.
        spg_cnn::telemetry::reset();
        spg_cnn::telemetry::set_enabled(true);
        for (i, layer) in net.layers().iter().enumerate() {
            let label = scope_label(i, layer.name());
            let Some(spec) = layer.conv_spec() else { continue };
            let _tune = spg_cnn::telemetry::scope(&label, spg_cnn::telemetry::Phase::Tune);
            tune_layer(spec, sparsity, cores, reps);
        }
        spg_cnn::telemetry::set_enabled(false);
        let meta = [
            ("command", "tune".to_string()),
            ("network", desc.name.clone()),
            ("cores", cores.to_string()),
            ("sparsity", sparsity.to_string()),
            ("reps", reps.to_string()),
        ];
        return emit_metrics(None, &meta);
    }
    println!(
        "measuring `{}` on this machine ({cores} core(s), sparsity {sparsity:.2}, {reps} reps)",
        desc.name
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let Some(spec) = layer.conv_spec() else { continue };
        println!(
            "
layer {i}: {spec}"
        );
        for (phase, label, candidates) in [
            (Phase::Forward, "FP", Technique::forward_candidates()),
            (Phase::Backward, "BP", Technique::backward_candidates()),
        ] {
            let mut timings: Vec<(Technique, std::time::Duration)> = candidates
                .iter()
                .map(|&t| (t, measure_technique(spec, t, phase, sparsity, cores, reps)))
                .collect();
            timings.sort_by_key(|&(_, d)| d);
            for (rank, (t, d)) in timings.iter().enumerate() {
                let marker = if rank == 0 { "  <- fastest" } else { "" };
                println!(
                    "  {label} {:<24} {:>10.3} ms{marker}",
                    t.to_string(),
                    d.as_secs_f64() * 1e3
                );
            }
        }
    }
    Ok(())
}

/// The built-in smoke-test network: small enough to train in well under a
/// second on one core, yet it exercises every instrumented code path
/// (conv forward/backward through the executor seam, ReLU, pooling, FC).
const SMOKE_NETWORK: &str = r#"
name: "smoke"
input { channels: 1 height: 8 width: 8 }
conv { features: 4 kernel: 3 stride: 1 }
relu { }
pool { window: 2 }
fc { outputs: 3 }
"#;

fn smoke(args: &[String]) -> Result<(), String> {
    let metrics_path = opt_flag(args, "--metrics-json")?;
    let desc = NetworkDescription::parse(SMOKE_NETWORK).map_err(|e| e.to_string())?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;

    spg_cnn::telemetry::reset();
    spg_cnn::telemetry::set_enabled(true);
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    framework.plan_network(&mut net, 0.0);
    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, 3, 16, 0.15, 7);
    let trainer = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::default() });
    let stats = trainer.train_with(&mut net, &mut data, |net, s| framework.retune(net, s));
    spg_cnn::telemetry::set_enabled(false);

    let last = stats.last().ok_or("training produced no epochs")?;
    eprintln!(
        "smoke: trained `{}` for {} epochs (final loss {:.4}, accuracy {:.3})",
        desc.name,
        stats.len(),
        last.mean_loss,
        last.accuracy
    );
    let meta = [
        ("command", "smoke".to_string()),
        ("network", desc.name.clone()),
        ("epochs", stats.len().to_string()),
        ("samples", "16".to_string()),
    ];
    emit_metrics(metrics_path.as_deref(), &meta)
}

fn validate_metrics(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing metrics file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    spg_cnn::telemetry::json::validate_metrics(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid {} v{} document",
        spg_cnn::telemetry::SCHEMA_NAME,
        spg_cnn::telemetry::SCHEMA_VERSION
    );
    Ok(())
}

fn eval(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let weights_path = args.get(1).ok_or("missing weights file")?;
    let samples = flag(args, "--samples", 64usize)?;
    let mut net: Network = desc.build(42).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(weights_path).map_err(|e| format!("{weights_path}: {e}"))?;
    io::load_weights(&mut net, std::io::BufReader::new(file)).map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, net.output_len(), samples, 0.15, 7);
    let correct = data.iter().filter(|(img, label)| net.predict(img) == *label).count();
    println!(
        "`{}` with weights {}: accuracy {:.3} ({correct}/{samples})",
        desc.name,
        weights_path,
        correct as f64 / samples as f64
    );
    Ok(())
}
