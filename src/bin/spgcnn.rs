//! `spgcnn` — command-line front end for the spg-CNN framework.
//!
//! ```text
//! spgcnn characterize <Nc> <N> <Nf> <K> <S>   # Sec. 3 characterization of one convolution
//! spgcnn plan <net.cfg> [--cores N] [--sparsity S]
//! spgcnn render <net.cfg> [--cores N] [--sparsity S]
//! spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
//! ```
//!
//! Network files use the protobuf-text-like format of
//! `spg_core::config` (see `examples/` and the README quickstart).

use std::process::ExitCode;

use spg_cnn::convnet::data::Dataset;
use spg_cnn::convnet::{io, ConvSpec, Network, Trainer, TrainerConfig};
use spg_cnn::core::autotune::{Framework, TuningMode};
use spg_cnn::core::compiled::CompiledConv;
use spg_cnn::core::config::NetworkDescription;
use spg_cnn::core::region::classify;
use spg_cnn::core::schedule::recommended_plan;
use spg_cnn::tensor::Shape3;

const USAGE: &str = "\
usage:
  spgcnn characterize <Nc> <N> <Nf> <K> <S>
      Sec. 3 characterization of one square convolution
      (channels, input size, features, kernel, stride).
  spgcnn plan <net.cfg> [--cores N] [--sparsity S]
      Parse a network description and print the per-layer technique plan.
  spgcnn render <net.cfg> [--cores N] [--sparsity S]
      Print the generated kernel listings for every conv layer.
  spgcnn train <net.cfg> [--epochs N] [--classes N] [--samples N] [--threads N]
               [--save weights.spgw]
      Train the network on a seeded synthetic dataset and report per-epoch
      loss, accuracy, and gradient sparsity; optionally save the weights.
  spgcnn eval <net.cfg> <weights.spgw> [--samples N]
      Load trained weights and report accuracy on a fresh synthetic set.
  spgcnn tune <net.cfg> [--cores N] [--sparsity S] [--reps N]
      Measure every technique on every conv layer of this machine and
      report the timings and winners (the paper's measure-and-pick step).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("characterize") => characterize(&args[1..]),
        Some("plan") => plan(&args[1..], false),
        Some("render") => plan(&args[1..], true),
        Some("train") => train(&args[1..]),
        Some("eval") => eval(&args[1..]),
        Some("tune") => tune(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` flags after the positional arguments.
fn flag<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("missing value after {key}"))?
            .parse()
            .map_err(|_| format!("invalid value for {key}")),
    }
}

fn characterize(args: &[String]) -> Result<(), String> {
    if args.len() < 5 {
        return Err("characterize needs <Nc> <N> <Nf> <K> <S>".into());
    }
    let nums: Vec<usize> = args[..5]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("`{a}` is not a number")))
        .collect::<Result<_, _>>()?;
    let spec = ConvSpec::new(nums[0], nums[1], nums[1], nums[2], nums[3], nums[3], nums[4], nums[4])
        .map_err(|e| e.to_string())?;
    println!("convolution      : {spec}");
    println!("arithmetic ops   : {}", spec.arithmetic_ops());
    println!("intrinsic AIT    : {:.1}", spec.intrinsic_ait());
    println!("Unfold+GEMM AIT  : {:.1}", spec.unfold_ait());
    println!("unfold blow-up   : {:.1}x", spec.unfold_blowup());
    for sparsity in [0.0, 0.85] {
        println!(
            "at sparsity {sparsity:.2} : {} -> {}",
            classify(&spec, sparsity),
            recommended_plan(&spec, sparsity, 16)
        );
    }
    Ok(())
}

fn load(args: &[String]) -> Result<NetworkDescription, String> {
    let path = args.first().ok_or("missing network file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    NetworkDescription::parse(&text).map_err(|e| e.to_string())
}

fn plan(args: &[String], render: bool) -> Result<(), String> {
    let desc = load(args)?;
    let cores = flag(args, "--cores", 16usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    println!("network `{}`: {net:?}", desc.name);
    let framework = Framework::new(cores, TuningMode::Heuristic, 2);
    for (i, layer_plan) in framework.plan_network(&mut net, sparsity) {
        let spec = *net.layers()[i].conv_spec().expect("planned layers are conv");
        println!("\nlayer {i}: {spec}");
        println!("  {} | {layer_plan}", classify(&spec, sparsity));
        if render {
            let weights = vec![0.0f32; spec.weight_shape().len()];
            let compiled = CompiledConv::compile(spec, layer_plan, &weights, cores)
                .map_err(|e| e.to_string())?;
            for line in compiled.render().lines() {
                println!("  {line}");
            }
        }
    }
    Ok(())
}

fn train(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let epochs = flag(args, "--epochs", 5usize)?;
    let classes = flag(args, "--classes", 0usize)?;
    let samples = flag(args, "--samples", 64usize)?;
    let threads = flag(args, "--threads", 1usize)?;

    let mut net = desc.build(42).map_err(|e| e.to_string())?;
    let classes = if classes == 0 { net.output_len() } else { classes };
    if classes > net.output_len() {
        return Err(format!(
            "{classes} classes but the network only has {} outputs",
            net.output_len()
        ));
    }
    let framework = Framework::new(threads.max(1), TuningMode::Heuristic, 2);
    framework.plan_network(&mut net, 0.0);

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let mut data = Dataset::synthetic(shape, classes, samples, 0.15, 7);
    let trainer = Trainer::new(TrainerConfig {
        epochs,
        sample_threads: threads.max(1),
        ..TrainerConfig::default()
    });
    println!("training `{}` on {} synthetic samples, {} classes", desc.name, samples, classes);
    println!("epoch  loss     accuracy  grad-sparsity  images/s");
    let stats = trainer.train_with(&mut net, &mut data, |net, s| framework.retune(net, s));
    for s in &stats {
        let sparsity = s.conv_grad_sparsity.first().copied().unwrap_or(0.0);
        println!(
            "{:>5}  {:<7.4}  {:<8.3}  {:<13.3}  {:.0}",
            s.epoch, s.mean_loss, s.accuracy, sparsity, s.images_per_sec
        );
    }
    if let Some(i) = args.iter().position(|a| a == "--save") {
        let path = args.get(i + 1).ok_or("missing value after --save")?;
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        io::save_weights(&net, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
        println!("weights saved to {path}");
    }
    Ok(())
}

fn tune(args: &[String]) -> Result<(), String> {
    use spg_cnn::core::autotune::{measure_technique, Phase};
    use spg_cnn::core::schedule::Technique;

    let desc = load(args)?;
    let cores = flag(args, "--cores", 1usize)?;
    let sparsity = flag(args, "--sparsity", 0.85f64)?;
    let reps = flag(args, "--reps", 3usize)?;
    let net = desc.build(42).map_err(|e| e.to_string())?;
    println!(
        "measuring `{}` on this machine ({cores} core(s), sparsity {sparsity:.2}, {reps} reps)",
        desc.name
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let Some(spec) = layer.conv_spec() else { continue };
        println!("
layer {i}: {spec}");
        for (phase, label, candidates) in [
            (Phase::Forward, "FP", Technique::forward_candidates()),
            (Phase::Backward, "BP", Technique::backward_candidates()),
        ] {
            let mut timings: Vec<(Technique, std::time::Duration)> = candidates
                .iter()
                .map(|&t| (t, measure_technique(spec, t, phase, sparsity, cores, reps)))
                .collect();
            timings.sort_by_key(|&(_, d)| d);
            for (rank, (t, d)) in timings.iter().enumerate() {
                let marker = if rank == 0 { "  <- fastest" } else { "" };
                println!(
                    "  {label} {:<24} {:>10.3} ms{marker}",
                    t.to_string(),
                    d.as_secs_f64() * 1e3
                );
            }
        }
    }
    Ok(())
}

fn eval(args: &[String]) -> Result<(), String> {
    let desc = load(args)?;
    let weights_path = args.get(1).ok_or("missing weights file")?;
    let samples = flag(args, "--samples", 64usize)?;
    let mut net: Network = desc.build(42).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(weights_path).map_err(|e| format!("{weights_path}: {e}"))?;
    io::load_weights(&mut net, std::io::BufReader::new(file)).map_err(|e| e.to_string())?;

    let shape = Shape3::new(desc.input.c, desc.input.h, desc.input.w);
    let data = Dataset::synthetic(shape, net.output_len(), samples, 0.15, 7);
    let correct = data.iter().filter(|(img, label)| net.predict(img) == *label).count();
    println!(
        "`{}` with weights {}: accuracy {:.3} ({correct}/{samples})",
        desc.name,
        weights_path,
        correct as f64 / samples as f64
    );
    Ok(())
}
