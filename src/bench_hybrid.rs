//! Hybrid-vs-sample strong-scaling benchmark — the `spgcnn bench-hybrid`
//! subcommand and the data source for the committed `BENCH_hybrid.json`
//! baseline.
//!
//! The sweep fixes **batch = 1** — the serving / strong-scaling regime the
//! paper's GEMM-in-Parallel cannot use extra cores in, because sample
//! parallelism distributes whole samples and one sample occupies one
//! worker. At each worker count the benchmark times that starved
//! sample-parallel path (the sequential kernel: its wall time does not
//! change with workers, only its efficiency `1/W` does) against the three
//! intra-sample hybrid decompositions (`y-band`, `x-band`, `out-channel`),
//! checking every banded output bit-identical to the sequential kernel
//! before trusting its timing. The headline per (layer, workers) point is
//! the strong-scaling efficiency `t1 / (W * tW)`.

use std::time::Instant;

use spg_check::BandDim;
use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;
use spg_core::hybrid::{band_ranges, HybridExecutor};
use spg_core::stencil::kernel;
use spg_workloads::table2::Benchmark;

/// Default timing repetitions (median taken).
pub const DEFAULT_REPS: usize = 3;

/// The worker counts of the strong-scaling sweep. Batch = 1 throughout,
/// so every count past 1 starves the sample-parallel path.
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Flop budget per timed repetition, from which the pinned per-layer
/// iteration count derives (`ceil(budget / layer_flops)`, clamped) so
/// reruns measure identical work.
const REP_FLOP_BUDGET: u64 = 500_000_000;

/// Upper clamp on the per-layer iteration count.
const MAX_ITERS: usize = 16;

/// One (layer, worker-count) measurement of the sweep.
#[derive(Debug, Clone)]
pub struct WorkerPoint {
    /// Worker count of this point.
    pub workers: usize,
    /// Sample-parallel wall time per forward at batch = 1: the sequential
    /// kernel, since one sample can occupy only one worker. Constant
    /// across the sweep by construction.
    pub sample_ms: f64,
    /// Median y-band wall time, when the layer splits at this count.
    pub yband_ms: Option<f64>,
    /// Median x-band wall time, when the layer splits at this count.
    pub xband_ms: Option<f64>,
    /// Median out-channel wall time, when the layer splits at this count.
    pub ochannel_ms: Option<f64>,
    /// Partition id of the fastest decomposition at this point
    /// (`"sample"` when no hybrid splits or none beats sample).
    pub best: &'static str,
    /// Wall time of the winning decomposition.
    pub best_ms: f64,
    /// Sample-parallel strong-scaling efficiency `t1 / (W * tW)` — at
    /// batch = 1 this is `1/W`, the starvation the hybrids exist to fix.
    pub sample_efficiency: f64,
    /// Strong-scaling efficiency of the winning decomposition.
    pub best_efficiency: f64,
}

/// One layer's full strong-scaling curve.
#[derive(Debug, Clone)]
pub struct LayerCurve {
    /// Table 2 benchmark label (or `Smoke` for the test layer).
    pub benchmark: String,
    /// Zero-based conv layer index within the benchmark.
    pub layer: usize,
    /// The layer geometry.
    pub spec: ConvSpec,
    /// Arithmetic ops per sample.
    pub flops: u64,
    /// Pinned forward calls per timed repetition.
    pub iters: usize,
    /// Whether every banded output matched the sequential kernel bit for
    /// bit (a `false` here invalidates the whole curve).
    pub bit_identical: bool,
    /// One point per [`WORKER_SWEEP`] entry.
    pub points: Vec<WorkerPoint>,
}

/// The full sweep's results plus the run parameters that pin the work.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// Timing repetitions per measurement (median taken).
    pub reps: usize,
    /// Fixed batch size of the sweep.
    pub batch: usize,
    /// Per-layer curves.
    pub layers: Vec<LayerCurve>,
}

/// The layers the sweep measures: the small-batch/large-image Table 2
/// layers where sample parallelism starves hardest (the two marquee first
/// layers) plus their successors for a mid-size contrast — or one tiny
/// synthetic layer in smoke mode, cheap enough for debug-build CLI tests.
fn layer_set(smoke: bool) -> Vec<(String, usize, ConvSpec)> {
    if smoke {
        return vec![("Smoke".to_string(), 0, ConvSpec::square(36, 16, 3, 5, 1))];
    }
    let mut layers = Vec::new();
    for bench in [Benchmark::ImageNet22K, Benchmark::ImageNet1K] {
        for (i, spec) in bench.conv_layers().into_iter().take(2).enumerate() {
            layers.push((bench.label().to_string(), i, spec));
        }
    }
    layers
}

fn pinned_iters(flops: u64) -> usize {
    let per_budget = REP_FLOP_BUDGET.div_ceil(flops.max(1));
    usize::try_from(per_budget).unwrap_or(MAX_ITERS).clamp(1, MAX_ITERS)
}

fn pseudo(n: usize, salt: usize) -> Vec<f32> {
    (0..n).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times `reps` repetitions of `iters` forward calls and returns the
/// median wall time per call in milliseconds.
fn time_ms(mut forward: impl FnMut(), iters: usize, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            forward();
        }
        #[allow(clippy::cast_precision_loss)]
        samples.push(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    median(samples)
}

/// Runs the batch = 1 strong-scaling sweep.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn run(reps: usize, smoke: bool) -> HybridReport {
    assert!(reps > 0, "repetition count must be positive");
    let layers = layer_set(smoke).into_iter().map(|(b, i, s)| run_layer(b, i, &s, reps)).collect();
    HybridReport { reps, batch: 1, layers }
}

fn run_layer(benchmark: String, layer: usize, spec: &ConvSpec, reps: usize) -> LayerCurve {
    let flops = spec.arithmetic_ops();
    let iters = pinned_iters(flops);
    let input = pseudo(spec.input_shape().len(), 1);
    let weights = pseudo(spec.weight_shape().len(), 2);
    let mut oracle = vec![0f32; spec.output_shape().len()];
    let mut scratch = ConvScratch::new();
    // Warm-up pays one-time buffer growth, then the starved baseline.
    kernel::forward_scratch(spec, &input, &weights, &mut oracle, &mut scratch);
    let sample_ms = time_ms(
        || kernel::forward_scratch(spec, &input, &weights, &mut oracle, &mut scratch),
        iters,
        reps,
    );

    let mut bit_identical = true;
    let mut points = Vec::new();
    for workers in WORKER_SWEEP {
        let mut dims = [None, None, None];
        for (slot, dim) in
            [BandDim::YRows, BandDim::XCols, BandDim::OutChannels].into_iter().enumerate()
        {
            if band_ranges(spec, dim, workers).len() <= 1 {
                continue;
            }
            let exec = HybridExecutor::new(dim, workers);
            let mut banded = vec![0f32; spec.output_shape().len()];
            let mut hybrid_scratch = ConvScratch::new();
            exec.forward(spec, &input, &weights, &mut banded, &mut hybrid_scratch);
            bit_identical &= banded == oracle;
            dims[slot] = Some(time_ms(
                || exec.forward(spec, &input, &weights, &mut banded, &mut hybrid_scratch),
                iters,
                reps,
            ));
        }
        let [yband_ms, xband_ms, ochannel_ms] = dims;
        let (best, best_ms) =
            [("y-band", yband_ms), ("x-band", xband_ms), ("out-channel", ochannel_ms)]
                .into_iter()
                .filter_map(|(id, ms)| ms.map(|ms| (id, ms)))
                .fold(("sample", sample_ms), |acc, cand| if cand.1 < acc.1 { cand } else { acc });
        #[allow(clippy::cast_precision_loss)]
        let w = workers as f64;
        points.push(WorkerPoint {
            workers,
            sample_ms,
            yband_ms,
            xband_ms,
            ochannel_ms,
            best,
            best_ms,
            sample_efficiency: 1.0 / w,
            best_efficiency: sample_ms / (w * best_ms),
        });
    }
    LayerCurve { benchmark, layer, spec: *spec, flops, iters, bit_identical, points }
}

impl HybridReport {
    /// Layers on which some hybrid beats the starved sample-parallel path
    /// at the sweep's top worker count.
    pub fn hybrid_wins_at_top(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| {
                l.points.last().is_some_and(|p| p.best != "sample" && p.best_ms < p.sample_ms)
            })
            .count()
    }

    /// Serializes the report as the `spgcnn-bench-hybrid` JSON document
    /// (the committed `BENCH_hybrid.json` strong-scaling baseline).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v:.4}"),
            _ => "null".to_string(),
        };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"spgcnn-bench-hybrid\",\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"batch\": {},\n", self.batch));
        out.push_str("  \"layers\": [");
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"benchmark\": \"{}\", \"layer\": {}, \"spec\": \"{}\", \
                 \"flops\": {}, \"iters\": {}, \"bit_identical\": {}, \"points\": [",
                l.benchmark, l.layer, l.spec, l.flops, l.iters, l.bit_identical,
            ));
            for (j, p) in l.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"workers\": {}, \"sample_ms\": {:.4}, \"yband_ms\": {}, \
                     \"xband_ms\": {}, \"ochannel_ms\": {}, \"best\": \"{}\", \
                     \"best_ms\": {:.4}, \"sample_efficiency\": {:.4}, \
                     \"best_efficiency\": {:.4}}}",
                    p.workers,
                    p.sample_ms,
                    opt(p.yband_ms),
                    opt(p.xband_ms),
                    opt(p.ochannel_ms),
                    p.best,
                    p.best_ms,
                    p.sample_efficiency,
                    p.best_efficiency,
                ));
            }
            out.push_str("\n    ]}");
        }
        if !self.layers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable table for terminal output.
    pub fn render_table(&self) -> String {
        let mut out =
            format!("hybrid vs starved sample parallelism, batch = 1 (median of {})\n", self.reps);
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.2}"));
        for l in &self.layers {
            out.push_str(&format!(
                "\n{} layer {} ({}){}\n{:>7} {:>10} {:>9} {:>9} {:>9}  {:<11} {:>9} {:>8}\n",
                l.benchmark,
                l.layer,
                l.spec,
                if l.bit_identical { ", banded outputs bit-identical" } else { ", DIVERGED" },
                "workers",
                "sample ms",
                "y-band",
                "x-band",
                "o-chan",
                "best",
                "best eff",
                "sample"
            ));
            for p in &l.points {
                out.push_str(&format!(
                    "{:>7} {:>10.2} {:>9} {:>9} {:>9}  {:<11} {:>8.2}% {:>7.2}%\n",
                    p.workers,
                    p.sample_ms,
                    fmt(p.yband_ms),
                    fmt(p.xband_ms),
                    fmt(p.ochannel_ms),
                    p.best,
                    p.best_efficiency * 100.0,
                    p.sample_efficiency * 100.0,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_every_worker_count_and_validates() {
        let report = run(1, true);
        assert_eq!(report.layers.len(), 1);
        let layer = &report.layers[0];
        assert!(layer.bit_identical, "banded smoke outputs diverged");
        assert_eq!(layer.points.len(), WORKER_SWEEP.len());
        // Workers = 1: no decomposition, the baseline is the whole story.
        let first = &layer.points[0];
        assert_eq!((first.best, first.yband_ms), ("sample", None));
        // Workers > 1: the 32x32-output smoke layer splits on every dim.
        let last = layer.points.last().expect("sweep is non-empty");
        assert!(last.yband_ms.is_some() && last.xband_ms.is_some() && last.ochannel_ms.is_some());
        assert!((last.sample_efficiency - 0.125).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"spgcnn-bench-hybrid\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(report.render_table().contains("bit-identical"));
    }

    #[test]
    fn real_layer_set_is_the_small_batch_marquee_layers() {
        let layers = layer_set(false);
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].2, ConvSpec::square(262, 120, 3, 7, 2));
        assert_eq!(layers[2].2, ConvSpec::square(224, 96, 3, 11, 4));
    }
}
