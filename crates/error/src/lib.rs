//! Unified error type for the spg-CNN workspace.
//!
//! Every crate in the workspace keeps its own precise error enum
//! (`spg_convnet::ConvError`, `spg_core::SpgError`, `spg_gemm::GemmError`,
//! `spg_serve::ServeError`), because kernels and parsers want exact,
//! matchable variants. Public entry points — the `spg_convnet::Engine`
//! facade and the serving front end — surface this single [`Error`]
//! instead, so callers handle one type with a stable [`ErrorKind`]
//! classification and walk the original error through
//! [`std::error::Error::source`].
//!
//! The crate is dependency-free; the member crates depend on it and
//! provide their own `From<TheirError> for spg_error::Error` impls, which
//! keeps the dependency graph acyclic.
//!
//! # Example
//!
//! ```
//! use spg_error::{Error, ErrorKind};
//!
//! let e = Error::new(ErrorKind::InvalidNetwork, "layer 2 expects 64 inputs");
//! assert_eq!(e.kind(), ErrorKind::InvalidNetwork);
//! assert!(e.to_string().contains("layer 2"));
//! ```

#![warn(missing_docs)]

use std::error::Error as StdError;
use std::fmt;

/// Broad classification of an [`Error`].
///
/// Non-exhaustive: new kinds may be added as the workspace grows, so
/// downstream matches must carry a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A convolution spec or layer geometry is invalid.
    InvalidSpec,
    /// A network failed structural validation (layer chaining, weight
    /// lengths, missing sections).
    InvalidNetwork,
    /// A textual description failed to parse.
    Parse,
    /// A GEMM shape or schedule was rejected.
    Gemm,
    /// Autotuning could not produce a plan.
    Tuning,
    /// The serving engine rejected or failed a request.
    Serving,
    /// A training run failed (e.g. a worker crashed past its restart
    /// budget).
    Training,
    /// A cluster operation failed (shard routing, the gradient
    /// all-reduce, or the cluster wire protocol).
    Cluster,
    /// An I/O operation failed (weight files, metrics documents).
    Io,
    /// Anything not covered by a more specific kind.
    Other,
}

impl ErrorKind {
    /// Stable lower-kebab name, usable in logs and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::InvalidSpec => "invalid-spec",
            ErrorKind::InvalidNetwork => "invalid-network",
            ErrorKind::Parse => "parse",
            ErrorKind::Gemm => "gemm",
            ErrorKind::Tuning => "tuning",
            ErrorKind::Serving => "serving",
            ErrorKind::Training => "training",
            ErrorKind::Cluster => "cluster",
            ErrorKind::Io => "io",
            ErrorKind::Other => "other",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The unified workspace error: a kind, a human-readable message, and an
/// optional boxed source preserving the originating crate's precise enum.
#[derive(Debug)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    source: Option<Box<dyn StdError + Send + Sync + 'static>>,
}

impl Error {
    /// Creates an error with no source.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error { kind, message: message.into(), source: None }
    }

    /// Creates an error wrapping `source`; the source stays reachable
    /// through [`std::error::Error::source`] for callers that need the
    /// precise originating variant.
    pub fn with_source(
        kind: ErrorKind,
        message: impl Into<String>,
        source: impl StdError + Send + Sync + 'static,
    ) -> Self {
        Error { kind, message: message.into(), source: Some(Box::new(source)) }
    }

    /// The broad classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message (without the kind prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        self.source.as_deref().map(|s| s as &(dyn StdError + 'static))
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::with_source(ErrorKind::Io, e.to_string(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Inner;
    impl fmt::Display for Inner {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("inner detail")
        }
    }
    impl StdError for Inner {}

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::new(ErrorKind::Parse, "bad token");
        assert_eq!(e.to_string(), "parse: bad token");
    }

    #[test]
    fn source_chain_is_walkable() {
        let e = Error::with_source(ErrorKind::Serving, "request failed", Inner);
        let src = e.source().expect("source present");
        assert_eq!(src.to_string(), "inner detail");
        assert!(Error::new(ErrorKind::Other, "x").source().is_none());
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
