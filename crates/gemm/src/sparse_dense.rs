use spg_tensor::sparse::{Csr, CtCsr};
use spg_tensor::Matrix;

use crate::{check_dims, GemmError};

/// Sparse × dense multiply: `C = A * B` with `A` in CSR format.
///
/// Only the non-zero entries of `A` generate work, so throughput in
/// *useful* flops (goodput) does not degrade with sparsity the way a dense
/// multiply does. This is the classic sparse-GEMM baseline the paper's
/// related work discusses; the paper's own backward kernel goes further by
/// never materializing the unfolded matrix at all.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use spg_tensor::{Matrix, sparse::Csr};
///
/// let a = Csr::from_dense(&Matrix::from_vec(2, 2, vec![0.0, 2.0, 0.0, 0.0])?);
/// let b = Matrix::from_vec(2, 2, vec![1.0, 1.0, 3.0, 4.0])?;
/// let c = spg_gemm::spmm_csr_dense(&a, &b)?;
/// assert_eq!(c.as_slice(), &[6.0, 8.0, 0.0, 0.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn spmm_csr_dense(a: &Csr, b: &Matrix) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    let n = b.cols();
    let mut c = Matrix::zeros(a.rows(), n);
    // Only the stored entries generate work: useful = 2 * nnz * n against
    // the dense total — this gap *is* the goodput headroom (Sec. 3.3).
    spg_telemetry::record_flops(
        2 * a.nnz() as u64 * n as u64,
        crate::gemm_flops(a.rows(), n, a.cols()),
    );
    let bv = b.as_slice();
    let cv = c.as_mut_slice();
    for r in 0..a.rows() {
        let crow = &mut cv[r * n..(r + 1) * n];
        for (col, v) in a.row_entries(r) {
            let brow = &bv[col * n..(col + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += v * bj;
            }
        }
    }
    Ok(c)
}

/// Sparse × dense multiply with the left operand in column-tiled CSR.
///
/// Functionally identical to [`spmm_csr_dense`]; traversal proceeds tile by
/// tile so the touched rows of `B` stay within one column tile's reach —
/// the locality argument for CT-CSR in Sec. 4.2 of the paper. The ablation
/// bench compares the two directly.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn spmm_ctcsr_dense(a: &CtCsr, b: &Matrix) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    let mut c = Matrix::zeros(a.rows(), b.cols());
    spmm_ctcsr_dense_into(a, b.as_slice(), b.cols(), c.as_mut_slice());
    Ok(c)
}

/// [`spmm_ctcsr_dense`] accumulating into caller-owned storage.
///
/// `b` is a contiguous row-major `a.cols() x n` slice and the product
/// accumulates into the `a.rows() x n` slice `c` (callers zero it first
/// when overwrite semantics are wanted). Allocation-free; telemetry (flops
/// and tile occupancy) is recorded exactly as in the allocating variant.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn spmm_ctcsr_dense_into(a: &CtCsr, b: &[f32], n: usize, c: &mut [f32]) {
    assert_eq!(b.len(), a.cols() * n, "spmm_ctcsr_dense_into: b length mismatch");
    assert_eq!(c.len(), a.rows() * n, "spmm_ctcsr_dense_into: c length mismatch");
    spg_telemetry::record_flops(
        2 * a.nnz() as u64 * n as u64,
        crate::gemm_flops(a.rows(), n, a.cols()),
    );
    spg_telemetry::record_tile_occupancy(a.nnz() as u64, (a.rows() * a.cols()) as u64);
    for (col0, tile) in a.iter() {
        for r in 0..a.rows() {
            let crow = &mut c[r * n..(r + 1) * n];
            for (local_col, v) in tile.row_entries(r) {
                let col = col0 + local_col;
                let brow = &b[col * n..(col + 1) * n];
                for (cj, bj) in crow.iter_mut().zip(brow) {
                    *cj += v * bj;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_naive;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn csr_matches_dense_oracle() {
        let mut rng = SmallRng::seed_from_u64(31);
        let dense_a = Matrix::random_sparse(11, 13, 0.8, 1.0, &mut rng);
        let b = Matrix::random_uniform(13, 9, 1.0, &mut rng);
        let oracle = gemm_naive(&dense_a, &b).unwrap();
        let c = spmm_csr_dense(&Csr::from_dense(&dense_a), &b).unwrap();
        assert!(c.max_abs_diff(&oracle).unwrap() < 1e-4);
    }

    #[test]
    fn ctcsr_matches_csr() {
        let mut rng = SmallRng::seed_from_u64(32);
        let dense_a = Matrix::random_sparse(10, 16, 0.9, 1.0, &mut rng);
        let b = Matrix::random_uniform(16, 12, 1.0, &mut rng);
        let via_csr = spmm_csr_dense(&Csr::from_dense(&dense_a), &b).unwrap();
        for tw in [1, 3, 8, 16, 32] {
            let tiled = CtCsr::from_dense(&dense_a, tw).unwrap();
            let via_tiled = spmm_ctcsr_dense(&tiled, &b).unwrap();
            assert!(via_tiled.max_abs_diff(&via_csr).unwrap() < 1e-5, "tile width {tw}");
        }
    }

    #[test]
    fn fully_sparse_input_gives_zero_output() {
        let a = Csr::from_dense(&Matrix::zeros(4, 4));
        let b = Matrix::from_vec(4, 4, vec![2.0; 16]).unwrap();
        let c = spmm_csr_dense(&a, &b).unwrap();
        assert_eq!(c, Matrix::zeros(4, 4));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Csr::from_dense(&Matrix::zeros(2, 3));
        let b = Matrix::zeros(2, 3);
        assert!(spmm_csr_dense(&a, &b).is_err());
        let at = CtCsr::from_dense(&Matrix::zeros(2, 3), 2).unwrap();
        assert!(spmm_ctcsr_dense(&at, &b).is_err());
    }
}
