use spg_tensor::Matrix;

use crate::{check_dims, GemmError};

/// Reference triple-loop matrix multiply: `C = A * B`.
///
/// Unblocked and unvectorized; exists as the correctness oracle for every
/// optimized kernel in the workspace and as the "no blocking" end of the
/// blocking ablation.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use spg_tensor::Matrix;
///
/// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0])?;
/// let b = Matrix::from_vec(2, 1, vec![3.0, 4.0])?;
/// let c = spg_gemm::gemm_naive(&a, &b)?;
/// assert_eq!(c.get(0, 0), 11.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_naive_into(a, b, &mut c)?;
    Ok(c)
}

/// Reference multiply accumulating into an existing matrix: `C += A * B`.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if the operand inner dimensions
/// differ, or [`GemmError::OutputShapeMismatch`] if `c` is not
/// `a.rows() x b.cols()`.
pub fn gemm_naive_into(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    if c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(GemmError::OutputShapeMismatch {
            expected_rows: a.rows(),
            expected_cols: b.cols(),
            actual_rows: c.rows(),
            actual_cols: c.cols(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    spg_telemetry::record_flops(crate::gemm_flops(m, n, k), crate::gemm_flops(m, n, k));
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    for i in 0..m {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_naive(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(gemm_naive(&a, &b).unwrap(), b);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(gemm_naive(&a, &b), Err(GemmError::DimensionMismatch { .. })));
    }

    #[test]
    fn into_accumulates() {
        let a = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let b = Matrix::from_vec(1, 1, vec![3.0]).unwrap();
        let mut c = Matrix::from_vec(1, 1, vec![10.0]).unwrap();
        gemm_naive_into(&a, &b, &mut c).unwrap();
        assert_eq!(c.get(0, 0), 16.0);
    }

    #[test]
    fn into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(matches!(
            gemm_naive_into(&a, &b, &mut c),
            Err(GemmError::OutputShapeMismatch { .. })
        ));
    }
}
