use std::sync::atomic::{AtomicUsize, Ordering};

use spg_tensor::Matrix;

use crate::{check_dims, gemm_slice, GemmError};

/// One independent multiply in a [`gemm_in_parallel`] batch.
///
/// In CNN training the batch items are the per-input unfolded activation
/// matrices of a mini-batch; each job is small enough for one core.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'a> {
    /// Left operand.
    pub a: &'a Matrix,
    /// Right operand.
    pub b: &'a Matrix,
}

impl<'a> BatchJob<'a> {
    /// Creates a job multiplying `a` by `b`.
    pub fn new(a: &'a Matrix, b: &'a Matrix) -> Self {
        BatchJob { a, b }
    }
}

/// **GEMM-in-Parallel**: runs every job as an independent *single-threaded*
/// multiply, distributing whole jobs across `threads` workers (Sec. 4.1).
///
/// Because no individual multiply is partitioned, the per-core working set
/// and arithmetic intensity are identical to the single-core case — the
/// paper measures a per-core performance drop of under 15 % out to 16
/// cores, versus over 50 % for [`parallel_gemm`](crate::parallel_gemm).
///
/// Jobs are claimed from a shared atomic counter so stragglers balance
/// dynamically. Results are returned in job order.
///
/// # Errors
///
/// Returns [`GemmError::ZeroThreads`] if `threads == 0`, or
/// [`GemmError::DimensionMismatch`] if any job's inner dimensions differ
/// (checked up front; no work is performed in that case).
///
/// # Example
///
/// ```
/// use spg_tensor::Matrix;
/// use spg_gemm::{gemm_in_parallel, BatchJob};
///
/// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0])?;
/// let b = Matrix::from_vec(2, 1, vec![3.0, 4.0])?;
/// let jobs = [BatchJob::new(&a, &b), BatchJob::new(&b, &a)];
/// let out = gemm_in_parallel(&jobs, 4)?;
/// assert_eq!(out[0].get(0, 0), 11.0);
/// assert_eq!(out[1].rows(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gemm_in_parallel(jobs: &[BatchJob<'_>], threads: usize) -> Result<Vec<Matrix>, GemmError> {
    let mut results: Vec<Matrix> = jobs.iter().map(|_| Matrix::default()).collect();
    gemm_in_parallel_into(jobs, &mut results, threads)?;
    Ok(results)
}

/// [`gemm_in_parallel`] writing into caller-owned result matrices.
///
/// Each result is reshaped in place with [`Matrix::resize`], so with
/// steady-state job shapes the whole batch runs without heap allocation —
/// the property the per-worker training workspaces rely on.
///
/// # Errors
///
/// Returns [`GemmError::ZeroThreads`] if `threads == 0`, or
/// [`GemmError::DimensionMismatch`] if any job's inner dimensions differ or
/// `results.len() != jobs.len()` (checked up front; no work is performed in
/// either case).
pub fn gemm_in_parallel_into(
    jobs: &[BatchJob<'_>],
    results: &mut [Matrix],
    threads: usize,
) -> Result<(), GemmError> {
    if threads == 0 {
        return Err(GemmError::ZeroThreads);
    }
    if results.len() != jobs.len() {
        return Err(GemmError::DimensionMismatch {
            a_rows: jobs.len(),
            a_cols: 0,
            b_rows: results.len(),
            b_cols: 0,
        });
    }
    for job in jobs {
        check_dims(job.a.rows(), job.a.cols(), job.b.rows(), job.b.cols())?;
    }
    let batch_flops: u64 =
        jobs.iter().map(|j| crate::gemm_flops(j.a.rows(), j.b.cols(), j.a.cols())).sum();
    spg_telemetry::record_flops(batch_flops, batch_flops);
    for (job, out) in jobs.iter().zip(results.iter_mut()) {
        out.resize(job.a.rows(), job.b.cols());
    }

    let workers = threads.min(jobs.len().max(1));
    if workers <= 1 {
        for (job, out) in jobs.iter().zip(results.iter_mut()) {
            run_job(job, out);
        }
        return Ok(());
    }

    let next = AtomicUsize::new(0);
    // Hand each result slot to exactly one claimer through a Vec of options
    // guarded by the same index the atomic distributes.
    let slots: Vec<_> = results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let mut out = spg_sync::lock(&slots[i]);
                run_job(&jobs[i], &mut out);
            });
        }
    });
    Ok(())
}

fn run_job(job: &BatchJob<'_>, out: &mut Matrix) {
    let (m, k, n) = (job.a.rows(), job.a.cols(), job.b.cols());
    gemm_slice(m, n, k, job.a.as_slice(), k, job.b.as_slice(), n, out.as_mut_slice(), n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_naive;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mats: Vec<(Matrix, Matrix)> = (0..9)
            .map(|i| {
                let m = 3 + i;
                (
                    Matrix::random_uniform(m, 7, 1.0, &mut rng),
                    Matrix::random_uniform(7, 5, 1.0, &mut rng),
                )
            })
            .collect();
        let jobs: Vec<BatchJob> = mats.iter().map(|(a, b)| BatchJob::new(a, b)).collect();
        for threads in [1, 2, 4, 16] {
            let out = gemm_in_parallel(&jobs, threads).unwrap();
            for ((a, b), c) in mats.iter().zip(&out) {
                let oracle = gemm_naive(a, b).unwrap();
                assert!(c.max_abs_diff(&oracle).unwrap() < 1e-3, "threads={threads}");
            }
        }
    }

    #[test]
    fn into_variant_recycles_results() {
        let mut rng = SmallRng::seed_from_u64(22);
        let a = Matrix::random_uniform(4, 6, 1.0, &mut rng);
        let b = Matrix::random_uniform(6, 5, 1.0, &mut rng);
        let jobs = [BatchJob::new(&a, &b), BatchJob::new(&a, &b)];
        let mut results = vec![Matrix::default(), Matrix::default()];
        gemm_in_parallel_into(&jobs, &mut results, 2).unwrap();
        let oracle = gemm_naive(&a, &b).unwrap();
        // Run again on the warm buffers: results must be overwritten, not
        // accumulated, and match the oracle both times.
        gemm_in_parallel_into(&jobs, &mut results, 2).unwrap();
        for c in &results {
            assert!(c.max_abs_diff(&oracle).unwrap() < 1e-3);
        }
        let mut short = vec![Matrix::default()];
        assert!(gemm_in_parallel_into(&jobs, &mut short, 2).is_err());
    }

    #[test]
    fn empty_batch() {
        assert!(gemm_in_parallel(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(matches!(gemm_in_parallel(&[], 0), Err(GemmError::ZeroThreads)));
    }

    #[test]
    fn bad_job_rejected_before_work() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let jobs = [BatchJob::new(&a, &b)];
        assert!(matches!(gemm_in_parallel(&jobs, 2), Err(GemmError::DimensionMismatch { .. })));
    }
}
