//! Register-tiled GEMM micro-kernels and panel packing.
//!
//! The blocked driver packs operand panels into contiguous buffers and then
//! calls a `MR x NR` micro-kernel over them. On x86-64 with AVX2+FMA
//! (detected at runtime) the kernel holds a 6x16 accumulator tile in twelve
//! YMM registers and issues two fused multiply-adds per packed `k` step; on
//! other targets a portable scalar kernel with identical semantics runs.

/// Rows of the register tile.
pub(crate) const MR: usize = 6;
/// Columns of the register tile (two 8-lane AVX vectors).
pub(crate) const NR: usize = 16;

/// Instruction-set tiers the runtime kernels dispatch across, in
/// increasing f32 vector width.
///
/// Detection lives here so every kernel crate (the GEMM micro-kernel and
/// the `spg-codegen` specialized stencil registry) agrees on what the
/// host offers; the ordering lets callers write `level >= Avx2Fma`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdLevel {
    /// No usable SIMD: portable scalar kernels run.
    Scalar,
    /// AVX2 + FMA: 8-lane f32 vectors.
    Avx2Fma,
    /// AVX-512F + FMA: 16-lane f32 vectors (on every shipping part this
    /// implies AVX2+FMA, and detection requires both).
    Avx512Fma,
}

/// Detects the widest [`SimdLevel`] the running CPU supports.
///
/// # Example
///
/// ```
/// use spg_gemm::SimdLevel;
/// let level = spg_gemm::detect_simd_level();
/// assert!(level >= SimdLevel::Scalar);
/// ```
pub fn detect_simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx512Fma;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2Fma;
        }
    }
    SimdLevel::Scalar
}

/// Name of the micro-kernel backend selected at runtime.
///
/// Useful in benchmark output to record whether results were produced by
/// the vectorized or portable kernel. The GEMM micro-kernel itself tops
/// out at AVX2+FMA (its 6x16 tile already saturates the port budget);
/// AVX-512 dispatch is used by the specialized stencil kernels.
///
/// # Example
///
/// ```
/// let name = spg_gemm::simd_backend_name();
/// assert!(name == "avx2+fma" || name == "scalar");
/// ```
pub fn simd_backend_name() -> &'static str {
    if detect_simd_level() >= SimdLevel::Avx2Fma {
        "avx2+fma"
    } else {
        "scalar"
    }
}

/// Computes `acc[mr][nr] = sum_k ap[k*MR + mr] * bp[k*NR + nr]` over packed
/// panels, dispatching to the fastest available backend.
#[inline]
pub(crate) fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: feature presence checked above; slice lengths checked
            // by the debug_assert and guaranteed by the packing routines.
            unsafe { avx::kernel_6x16(kc, ap.as_ptr(), bp.as_ptr(), acc) };
            return;
        }
    }
    microkernel_scalar(kc, ap, bp, acc);
}

/// Portable scalar micro-kernel with the same contract as [`microkernel`].
pub(crate) fn microkernel_scalar(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    acc.fill(0.0);
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for (mr, &aval) in a.iter().enumerate() {
            let row = &mut acc[mr * NR..mr * NR + NR];
            for (cj, bj) in row.iter_mut().zip(b) {
                *cj += aval * bj;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX2+FMA 6x16 micro-kernel over packed panels.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA, that `ap` points to
    /// at least `kc * MR` floats, and `bp` to at least `kc * NR` floats.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn kernel_6x16(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        acc: &mut [f32; MR * NR],
    ) {
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        let mut c40 = _mm256_setzero_ps();
        let mut c41 = _mm256_setzero_ps();
        let mut c50 = _mm256_setzero_ps();
        let mut c51 = _mm256_setzero_ps();

        let mut a = ap;
        let mut b = bp;
        for _ in 0..kc {
            // SAFETY: at step p the cursors sit at a = ap + p*MR and
            // b = bp + p*NR with p < kc, so every load below reads within
            // the kc*MR / kc*NR panels the caller guarantees (the packing
            // routines build exactly these panel lengths — the invariant
            // spg-check's GEMM operand proof covers at plan time).
            unsafe {
                let b0 = _mm256_loadu_ps(b);
                let b1 = _mm256_loadu_ps(b.add(8));

                let a0 = _mm256_broadcast_ss(&*a);
                c00 = _mm256_fmadd_ps(a0, b0, c00);
                c01 = _mm256_fmadd_ps(a0, b1, c01);
                let a1 = _mm256_broadcast_ss(&*a.add(1));
                c10 = _mm256_fmadd_ps(a1, b0, c10);
                c11 = _mm256_fmadd_ps(a1, b1, c11);
                let a2 = _mm256_broadcast_ss(&*a.add(2));
                c20 = _mm256_fmadd_ps(a2, b0, c20);
                c21 = _mm256_fmadd_ps(a2, b1, c21);
                let a3 = _mm256_broadcast_ss(&*a.add(3));
                c30 = _mm256_fmadd_ps(a3, b0, c30);
                c31 = _mm256_fmadd_ps(a3, b1, c31);
                let a4 = _mm256_broadcast_ss(&*a.add(4));
                c40 = _mm256_fmadd_ps(a4, b0, c40);
                c41 = _mm256_fmadd_ps(a4, b1, c41);
                let a5 = _mm256_broadcast_ss(&*a.add(5));
                c50 = _mm256_fmadd_ps(a5, b0, c50);
                c51 = _mm256_fmadd_ps(a5, b1, c51);

                a = a.add(MR);
                b = b.add(NR);
            }
        }

        let out = acc.as_mut_ptr();
        // SAFETY: `acc` is exactly MR*NR = 96 floats, so the twelve 8-lane
        // stores at offsets 0..=88 cover it without escaping it.
        unsafe {
            _mm256_storeu_ps(out, c00);
            _mm256_storeu_ps(out.add(8), c01);
            _mm256_storeu_ps(out.add(16), c10);
            _mm256_storeu_ps(out.add(24), c11);
            _mm256_storeu_ps(out.add(32), c20);
            _mm256_storeu_ps(out.add(40), c21);
            _mm256_storeu_ps(out.add(48), c30);
            _mm256_storeu_ps(out.add(56), c31);
            _mm256_storeu_ps(out.add(64), c40);
            _mm256_storeu_ps(out.add(72), c41);
            _mm256_storeu_ps(out.add(80), c50);
            _mm256_storeu_ps(out.add(88), c51);
        }
    }
}

/// Packs an `mc x kc` block of `a` (row-major, leading dimension `lda`)
/// into MR-row panels: panel-major, then `k`, then `mr`. Rows beyond `mc`
/// are zero-padded.
pub(crate) fn pack_a(
    a: &[f32],
    lda: usize,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for panel in 0..panels {
        let base = panel * kc * MR;
        let rows = (mc - panel * MR).min(MR);
        for mr in 0..rows {
            let r = row0 + panel * MR + mr;
            let src = &a[r * lda + col0..r * lda + col0 + kc];
            for (p, &v) in src.iter().enumerate() {
                out[base + p * MR + mr] = v;
            }
        }
    }
}

/// Packs a `kc x nc` block of `b` (row-major, leading dimension `ldb`)
/// into NR-column panels: panel-major, then `k`, then `nr`. Columns beyond
/// `nc` are zero-padded.
pub(crate) fn pack_b(
    b: &[f32],
    ldb: usize,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    out: &mut Vec<f32>,
) {
    let panels = nc.div_ceil(NR);
    out.clear();
    out.resize(panels * kc * NR, 0.0);
    for panel in 0..panels {
        let base = panel * kc * NR;
        let cols = (nc - panel * NR).min(NR);
        for p in 0..kc {
            let src_row = (row0 + p) * ldb + col0 + panel * NR;
            let dst = base + p * NR;
            out[dst..dst + cols].copy_from_slice(&b[src_row..src_row + cols]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_tile(kc: usize, ap: &[f32], bp: &[f32]) -> [f32; MR * NR] {
        let mut acc = [0.0f32; MR * NR];
        for p in 0..kc {
            for mr in 0..MR {
                for nr in 0..NR {
                    acc[mr * NR + nr] += ap[p * MR + mr] * bp[p * NR + nr];
                }
            }
        }
        acc
    }

    #[test]
    fn microkernel_matches_reference() {
        let kc = 37;
        let ap: Vec<f32> = (0..kc * MR).map(|i| (i as f32 * 0.37).sin()).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut fast = [0.0f32; MR * NR];
        microkernel(kc, &ap, &bp, &mut fast);
        let slow = reference_tile(kc, &ap, &bp);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-4, "{f} vs {s}");
        }
    }

    #[test]
    fn scalar_kernel_matches_reference_exactly() {
        let kc = 5;
        let ap: Vec<f32> = (0..kc * MR).map(|i| i as f32).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|i| (i % 7) as f32).collect();
        let mut acc = [0.0f32; MR * NR];
        microkernel_scalar(kc, &ap, &bp, &mut acc);
        assert_eq!(acc, reference_tile(kc, &ap, &bp));
    }

    #[test]
    fn zero_kc_yields_zero_tile() {
        let mut acc = [1.0f32; MR * NR];
        microkernel(0, &[], &[], &mut acc);
        assert_eq!(acc, [0.0; MR * NR]);
    }

    #[test]
    fn pack_a_layout_and_padding() {
        // 2x3 matrix packed as one MR panel with kc=3.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        pack_a(&a, 3, 0, 0, 2, 3, &mut out);
        assert_eq!(out.len(), 3 * MR);
        // k=0 column: rows [1,4,0,0,0,0]
        assert_eq!(&out[..MR], &[1.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
        // k=2 column: rows [3,6,...]
        assert_eq!(&out[2 * MR..2 * MR + 2], &[3.0, 6.0]);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2x3 matrix packed as one NR panel with kc=2, nc=3.
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        pack_b(&b, 3, 0, 0, 2, 3, &mut out);
        assert_eq!(out.len(), 2 * NR);
        assert_eq!(&out[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(out[3], 0.0); // padding
        assert_eq!(&out[NR..NR + 3], &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn pack_respects_offsets() {
        // 4x4 iota matrix; pack the 2x2 block at (1,2).
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut out = Vec::new();
        pack_a(&a, 4, 1, 2, 2, 2, &mut out);
        // rows 1..3, cols 2..4 -> [[6,7],[10,11]]
        assert_eq!(out[0], 6.0);
        assert_eq!(out[1], 10.0);
        assert_eq!(out[MR], 7.0);
        assert_eq!(out[MR + 1], 11.0);
    }

    #[test]
    fn backend_name_is_known() {
        assert!(["avx2+fma", "scalar"].contains(&simd_backend_name()));
    }
}
