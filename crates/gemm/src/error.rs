use std::error::Error;
use std::fmt;

/// Error type for GEMM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GemmError {
    /// Inner dimensions of the two operands do not agree.
    DimensionMismatch {
        /// Rows of the left operand.
        a_rows: usize,
        /// Columns of the left operand.
        a_cols: usize,
        /// Rows of the right operand.
        b_rows: usize,
        /// Columns of the right operand.
        b_cols: usize,
    },
    /// The output matrix has the wrong shape for the requested product.
    OutputShapeMismatch {
        /// Expected output rows.
        expected_rows: usize,
        /// Expected output columns.
        expected_cols: usize,
        /// Provided output rows.
        actual_rows: usize,
        /// Provided output columns.
        actual_cols: usize,
    },
    /// A parallel schedule was asked to run on zero threads.
    ZeroThreads,
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::DimensionMismatch { a_rows, a_cols, b_rows, b_cols } => write!(
                f,
                "cannot multiply {a_rows}x{a_cols} by {b_rows}x{b_cols}: inner dimensions differ"
            ),
            GemmError::OutputShapeMismatch {
                expected_rows,
                expected_cols,
                actual_rows,
                actual_cols,
            } => write!(
                f,
                "output must be {expected_rows}x{expected_cols}, got {actual_rows}x{actual_cols}"
            ),
            GemmError::ZeroThreads => write!(f, "thread count must be positive"),
        }
    }
}

impl Error for GemmError {}

impl From<GemmError> for spg_error::Error {
    fn from(e: GemmError) -> Self {
        spg_error::Error::with_source(spg_error::ErrorKind::Gemm, e.to_string(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_shapes() {
        let e = GemmError::DimensionMismatch { a_rows: 2, a_cols: 3, b_rows: 4, b_cols: 5 };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GemmError>();
    }
}
