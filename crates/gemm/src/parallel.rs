use spg_tensor::Matrix;

use crate::{check_dims, gemm_slice, GemmError};

/// **Parallel-GEMM**: one matrix multiply partitioned across `threads`
/// cores by rows of the output (`C = A * B`).
///
/// This is the conventional schedule used by Caffe / TensorFlow / Torch via
/// multi-threaded BLAS. Each worker computes a contiguous row band of `C`
/// from the matching row band of `A` and the *entire* `B` — which is
/// exactly why the paper shows it scales poorly: the arithmetic per core
/// shrinks by `1/threads` while the `B` traffic per core does not, so
/// per-core arithmetic intensity falls as cores are added (Sec. 3.2).
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`, or
/// [`GemmError::ZeroThreads`] if `threads == 0`.
///
/// # Example
///
/// ```
/// use spg_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0])?;
/// let c = spg_gemm::parallel_gemm(&a, &b, 2)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parallel_gemm(a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    if threads == 0 {
        return Err(GemmError::ZeroThreads);
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(c);
    }
    // Recorded on the calling thread so the flops land in the caller's
    // scope; worker threads have no scope stack of their own.
    spg_telemetry::record_flops(crate::gemm_flops(m, n, k), crate::gemm_flops(m, n, k));
    parallel_gemm_slice(m, n, k, a.as_slice(), b.as_slice(), c.as_mut_slice(), threads);
    Ok(c)
}

/// Raw-slice Parallel-GEMM: accumulates `C += A * B` into caller-owned
/// storage, row-partitioned across `threads` workers.
///
/// Operands are contiguous row-major slices (`a` is `m x k`, `b` is
/// `k x n`, `c` is `m x n`). Like [`gemm_slice`] this **accumulates** and
/// records no telemetry — the workspace-threaded executors own both the
/// zeroing and the flop accounting. Allocation-free.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions or
/// `threads == 0`.
pub fn parallel_gemm_slice(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    assert!(threads > 0, "parallel_gemm_slice: zero threads");
    assert_eq!(a.len(), m * k, "parallel_gemm_slice: a length mismatch");
    assert_eq!(b.len(), k * n, "parallel_gemm_slice: b length mismatch");
    assert_eq!(c.len(), m * n, "parallel_gemm_slice: c length mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let workers = threads.min(m);
    if workers <= 1 {
        gemm_slice(m, n, k, a, k, b, n, c, n);
        return;
    }
    // Partition C (and A) into row bands, one per worker.
    let band = m.div_ceil(workers);
    let mut bands: Vec<&mut [f32]> = c.chunks_mut(band * n).collect();
    std::thread::scope(|scope| {
        for (w, cband) in bands.iter_mut().enumerate() {
            let row0 = w * band;
            let rows = (m - row0).min(band);
            let aband = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || {
                gemm_slice(rows, n, k, aband, k, b, n, cband, n);
            });
        }
    });
}

/// **Parallel-GEMM, column partitioning**: one multiply split across
/// `threads` cores by *columns* of the output.
///
/// Each worker computes a column band of `C` from the matching column
/// band of `B` and the **entire** `A` — the mirror image of
/// [`parallel_gemm`]'s row partitioning, with the same pathology: the
/// replicated operand's traffic does not shrink with the core count
/// (Sec. 3.2 notes the partitioning choice only swaps which operand is
/// replicated). The ablation bench compares the two on asymmetric shapes.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`, or
/// [`GemmError::ZeroThreads`] if `threads == 0`.
pub fn parallel_gemm_cols(a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    if threads == 0 {
        return Err(GemmError::ZeroThreads);
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(c);
    }
    spg_telemetry::record_flops(crate::gemm_flops(m, n, k), crate::gemm_flops(m, n, k));

    let workers = threads.min(n);
    if workers <= 1 {
        gemm_slice(m, n, k, a.as_slice(), k, b.as_slice(), n, c.as_mut_slice(), n);
        return Ok(c);
    }

    // Column bands share rows of C, so workers write disjoint column
    // ranges of every row; hand each worker a raw sub-view via split
    // boundaries computed up front.
    let band = n.div_ceil(workers);
    let av = a.as_slice();
    let bv = b.as_slice();
    // Compute each band into a private buffer, then stitch: avoids
    // aliasing &mut access to interleaved columns.
    let bands: Vec<(usize, usize)> = (0..workers)
        .map(|w| ((w * band).min(n), ((w + 1) * band).min(n)))
        .filter(|(c0, c1)| c0 < c1)
        .collect();
    let partials: Vec<(usize, usize, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bands
            .iter()
            .map(|&(c0, c1)| {
                scope.spawn(move || {
                    let cols = c1 - c0;
                    let mut part = vec![0.0f32; m * cols];
                    // B column band: rows of b offset by c0, width cols.
                    gemm_slice(m, cols, k, av, k, &bv[c0..], n, &mut part, cols);
                    (c0, c1, part)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Re-raise the worker's own panic payload on the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // The stitch runs strictly after the scope joins, so the result slice
    // needs no lock: write each band straight into `c`.
    let cv = c.as_mut_slice();
    for (c0, c1, part) in partials {
        let cols = c1 - c0;
        for r in 0..m {
            cv[r * n + c0..r * n + c1].copy_from_slice(&part[r * cols..(r + 1) * cols]);
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_naive;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_naive_across_thread_counts() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = Matrix::random_uniform(23, 17, 1.0, &mut rng);
        let b = Matrix::random_uniform(17, 31, 1.0, &mut rng);
        let slow = gemm_naive(&a, &b).unwrap();
        for threads in [1, 2, 3, 4, 8, 16, 64] {
            let fast = parallel_gemm(&a, &b, threads).unwrap();
            let diff = fast.max_abs_diff(&slow).unwrap();
            assert!(diff < 1e-3, "threads={threads} diff={diff}");
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 4, 1.0, &mut rng);
        let fast = parallel_gemm(&a, &b, 16).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn slice_variant_accumulates() {
        let mut rng = SmallRng::seed_from_u64(12);
        let a = Matrix::random_uniform(9, 6, 1.0, &mut rng);
        let b = Matrix::random_uniform(6, 11, 1.0, &mut rng);
        let oracle = gemm_naive(&a, &b).unwrap();
        let mut c = vec![1.0f32; 9 * 11];
        parallel_gemm_slice(9, 11, 6, a.as_slice(), b.as_slice(), &mut c, 3);
        for (got, want) in c.iter().zip(oracle.as_slice()) {
            assert!((got - (want + 1.0)).abs() < 1e-3);
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(parallel_gemm(&a, &b, 0), Err(GemmError::ZeroThreads)));
        assert!(matches!(parallel_gemm_cols(&a, &b, 0), Err(GemmError::ZeroThreads)));
    }

    #[test]
    fn column_partition_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = Matrix::random_uniform(13, 21, 1.0, &mut rng);
        let b = Matrix::random_uniform(21, 29, 1.0, &mut rng);
        let slow = gemm_naive(&a, &b).unwrap();
        for threads in [1, 2, 3, 7, 32] {
            let fast = parallel_gemm_cols(&a, &b, threads).unwrap();
            let diff = fast.max_abs_diff(&slow).unwrap();
            assert!(diff < 1e-3, "threads={threads} diff={diff}");
        }
    }

    #[test]
    fn row_and_column_partitions_agree() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = Matrix::random_uniform(17, 9, 1.0, &mut rng);
        let b = Matrix::random_uniform(9, 23, 1.0, &mut rng);
        let rows = parallel_gemm(&a, &b, 4).unwrap();
        let cols = parallel_gemm_cols(&a, &b, 4).unwrap();
        assert!(rows.max_abs_diff(&cols).unwrap() < 1e-4);
    }

    #[test]
    fn empty_product() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = parallel_gemm(&a, &b, 4).unwrap();
        assert_eq!((c.rows(), c.cols()), (0, 3));
    }
}
