use spg_tensor::Matrix;

use crate::kernels::{microkernel, pack_a, pack_b, MR, NR};
use crate::{check_dims, GemmError};

/// Cache block of the `k` dimension (packed A/B panel depth).
const KC: usize = 256;
/// Cache block of the `m` dimension (rows of packed A per block).
const MC: usize = 72;
/// Cache block of the `n` dimension (columns of packed B per block).
const NC: usize = 1024;

/// High-water element counts of the operand pack buffers a blocked
/// multiply of the given geometry fills: `(a_pack, b_pack)` lengths in
/// `f32` elements for an `m x k` by `k x n` multiply (either `gemm_slice`
/// or the transposed `gemm_at_b_slice`, which share the block sizes).
///
/// Callers that own the pack buffers — the workspace-sizing query in
/// `spg-core`'s backend layer — use this to bound scratch growth without
/// this crate exposing its cache-block constants.
///
/// # Example
///
/// ```
/// let (a, b) = spg_gemm::pack_high_water(6, 256, 16);
/// assert_eq!((a, b), (6 * 256, 16 * 256));
/// ```
pub fn pack_high_water(m: usize, k: usize, n: usize) -> (usize, usize) {
    let kc = k.min(KC);
    let a = m.min(MC).div_ceil(MR) * MR * kc;
    let b = n.min(NC).div_ceil(NR) * NR * kc;
    (a, b)
}

/// Blocked, packed, register-tiled matrix multiply: `C = A * B`.
///
/// This is the workspace's stand-in for an optimized BLAS `sgemm`: a
/// three-level cache blocking (`KC`/`MC`/`NC`) around a 6x16 AVX2+FMA
/// micro-kernel (scalar fallback elsewhere), with both operands packed into
/// contiguous panels — the structure described by Goto & van de Geijn and
/// referenced by the paper's locality discussion (Sec. 4.2).
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use spg_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0])?;
/// let c = spg_gemm::gemm(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut c)?;
    Ok(c)
}

/// Blocked multiply accumulating into an existing matrix: `C += A * B`.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if the operand inner dimensions
/// differ, or [`GemmError::OutputShapeMismatch`] if `c` is not
/// `a.rows() x b.cols()`.
pub fn gemm_into(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), GemmError> {
    check_dims(a.rows(), a.cols(), b.rows(), b.cols())?;
    if c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(GemmError::OutputShapeMismatch {
            expected_rows: a.rows(),
            expected_cols: b.cols(),
            actual_rows: c.rows(),
            actual_cols: c.cols(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // A dense multiply performs every flop it is charged for, so useful
    // and total coincide (telemetry is a no-op unless enabled).
    spg_telemetry::record_flops(crate::gemm_flops(m, n, k), crate::gemm_flops(m, n, k));
    gemm_slice(m, n, k, a.as_slice(), k, b.as_slice(), n, c.as_mut_slice(), n);
    Ok(())
}

/// Blocked multiply over raw row-major slices: `C += A * B`, where `A` is
/// `m x k` with leading dimension `lda`, `B` is `k x n` with leading
/// dimension `ldb`, and `C` is `m x n` with leading dimension `ldc`.
///
/// This is the primitive the parallel schedules build on: Parallel-GEMM
/// hands each worker a contiguous row band of `A` and `C` through this
/// entry point without copying.
///
/// # Panics
///
/// Panics if any slice is too short for its stated geometry.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slice(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(lda >= k && ldb >= n && ldc >= n, "leading dimensions too small");
    assert!(m == 0 || a.len() >= (m - 1) * lda + k, "a slice too short");
    assert!(k == 0 || b.len() >= (k - 1) * ldb + n, "b slice too short");
    assert!(m == 0 || c.len() >= (m - 1) * ldc + n, "c slice too short");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let mut a_pack = Vec::new();
    let mut b_pack = Vec::new();
    let mut acc = [0.0f32; MR * NR];

    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(b, ldb, pc, jc, kc, nc, &mut b_pack);
            for ic in (0..m).step_by(MC) {
                let mc = (m - ic).min(MC);
                pack_a(a, lda, ic, pc, mc, kc, &mut a_pack);
                let m_panels = mc.div_ceil(MR);
                let n_panels = nc.div_ceil(NR);
                for jp in 0..n_panels {
                    let bp = &b_pack[jp * kc * NR..(jp + 1) * kc * NR];
                    let cols = (nc - jp * NR).min(NR);
                    for ip in 0..m_panels {
                        let ap = &a_pack[ip * kc * MR..(ip + 1) * kc * MR];
                        microkernel(kc, ap, bp, &mut acc);
                        let rows = (mc - ip * MR).min(MR);
                        for mr in 0..rows {
                            let crow = ic + ip * MR + mr;
                            let cbase = crow * ldc + jc + jp * NR;
                            let dst = &mut c[cbase..cbase + cols];
                            let src = &acc[mr * NR..mr * NR + cols];
                            for (d, s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_naive;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        let diff = a.max_abs_diff(b).unwrap();
        assert!(diff < tol, "max diff {diff}");
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = SmallRng::seed_from_u64(42);
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (6, 16, 6), (7, 17, 19), (64, 64, 64), (100, 37, 113)]
        {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let fast = gemm(&a, &b).unwrap();
            let slow = gemm_naive(&a, &b).unwrap();
            assert_close(&fast, &slow, 1e-3);
        }
    }

    #[test]
    fn sizes_crossing_cache_blocks() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Exceed KC and MC to exercise multi-block accumulation.
        let (m, k, n) = (MC + 5, KC + 9, 40);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
        assert_close(&gemm(&a, &b).unwrap(), &gemm_naive(&a, &b).unwrap(), 1e-2);
    }

    #[test]
    fn gemm_into_accumulates() {
        let a = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let b = Matrix::from_vec(1, 1, vec![3.0]).unwrap();
        let mut c = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        gemm_into(&a, &b, &mut c).unwrap();
        assert_eq!(c.get(0, 0), 7.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&a, &b).is_err());
        let b2 = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(gemm_into(&a, &b2, &mut c).is_err());
    }

    #[test]
    fn gemm_slice_with_row_band() {
        // Compute only rows 1..3 of a 4x4 product via offset slices.
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let full = gemm_naive(&a, &b).unwrap();
        let mut c = Matrix::zeros(4, 4);
        gemm_slice(2, 4, 4, &a.as_slice()[4..], 4, b.as_slice(), 4, &mut c.as_mut_slice()[4..], 4);
        for j in 0..4 {
            assert_eq!(c.get(0, j), 0.0);
            assert!((c.get(1, j) - full.get(1, j)).abs() < 1e-4);
            assert!((c.get(2, j) - full.get(2, j)).abs() < 1e-4);
            assert_eq!(c.get(3, j), 0.0);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = [1.0f32; 4];
        gemm_slice(0, 2, 2, &[], 2, &[1.0, 2.0, 3.0, 4.0], 2, &mut c, 2);
        assert_eq!(c, [1.0; 4]);
    }
}
