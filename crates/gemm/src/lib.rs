//! From-scratch f32 GEMM substrate with the two parallel schedules the
//! paper compares.
//!
//! The paper's characterization (Sec. 3) and all of its baselines are built
//! on general matrix multiply. This crate supplies:
//!
//! * [`gemm`] — a cache-blocked, panel-packed, register-tiled
//!   single-threaded GEMM with an AVX2+FMA micro-kernel (runtime-detected,
//!   with a portable scalar fallback). This plays the role OpenBLAS / MKL
//!   play in the paper.
//! * [`gemm_naive`] — the unblocked triple loop, used as the correctness
//!   oracle for every other kernel in the workspace.
//! * [`parallel_gemm`] — **Parallel-GEMM**: one multiply, row-partitioned
//!   across cores. This is the conventional schedule whose per-core
//!   arithmetic intensity shrinks as cores are added (Sec. 3.2).
//! * [`gemm_in_parallel`] — **GEMM-in-Parallel**: many independent
//!   single-threaded multiplies, one per core (Sec. 4.1). Inputs are never
//!   divided, so per-core arithmetic intensity — and hence per-core
//!   performance — stays flat as cores are added.
//! * [`spmm_csr_dense`] / [`spmm_ctcsr_dense`] — sparse × dense multiplies
//!   over the formats of [`spg_tensor::sparse`], the related-work baseline
//!   for the paper's sparse kernels.
//!
//! # Example
//!
//! ```
//! use spg_tensor::Matrix;
//! use spg_gemm::{gemm, gemm_naive};
//!
//! let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])?;
//! let fast = gemm(&a, &b)?;
//! let slow = gemm_naive(&a, &b)?;
//! assert_eq!(fast.as_slice(), slow.as_slice());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod batch;
mod blocked;
mod error;
mod kernels;
mod naive;
mod parallel;
mod sparse_dense;
mod transposed;

pub use batch::{gemm_in_parallel, gemm_in_parallel_into, BatchJob};
pub use blocked::{gemm, gemm_into, gemm_slice, pack_high_water};
pub use error::GemmError;
pub use kernels::{detect_simd_level, simd_backend_name, SimdLevel};
pub use naive::{gemm_naive, gemm_naive_into};
pub use parallel::{parallel_gemm, parallel_gemm_cols, parallel_gemm_slice};
pub use sparse_dense::{spmm_csr_dense, spmm_ctcsr_dense, spmm_ctcsr_dense_into};
pub use transposed::{gemm_at_b, gemm_at_b_slice};

/// Number of floating-point operations in an `m x k` by `k x n` multiply
/// (one multiply + one add per inner-product step).
///
/// # Example
///
/// ```
/// assert_eq!(spg_gemm::gemm_flops(2, 3, 4), 48);
/// ```
pub const fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

fn check_dims(a_rows: usize, a_cols: usize, b_rows: usize, b_cols: usize) -> Result<(), GemmError> {
    if a_cols != b_rows {
        return Err(GemmError::DimensionMismatch { a_rows, a_cols, b_rows, b_cols });
    }
    Ok(())
}
