//! Transposed-left-operand multiply: `C = A^T * B` without materializing
//! `A^T`.
//!
//! The backward error propagation of Unfold+GEMM computes
//! `E_U = E_O^T * W` (Sec. 2.3); with only a plain `gemm`, the gradient
//! matrix must first be transposed into a scratch buffer — pure traffic.
//! Packing already reorders operands into panels, so the transpose can be
//! folded into the A-panel packing for free.

use spg_tensor::Matrix;

use crate::kernels::{microkernel, pack_b, MR, NR};
use crate::{check_dims, GemmError};

const KC: usize = 256;
const MC: usize = 72;
const NC: usize = 1024;

/// Packs an `mc x kc` block of `A^T` into MR-row panels by reading `a`
/// (the untransposed `k x m` matrix, leading dimension `lda`)
/// column-wise: element `(r, c)` of `A^T` is `a[c * lda + r]`.
fn pack_at(
    a: &[f32],
    lda: usize,
    row0: usize, // row offset into A^T == column offset into A
    col0: usize, // column offset into A^T == row offset into A
    mc: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for panel in 0..panels {
        let base = panel * kc * MR;
        let rows = (mc - panel * MR).min(MR);
        for p in 0..kc {
            let src_row = (col0 + p) * lda + row0 + panel * MR;
            for mr in 0..rows {
                out[base + p * MR + mr] = a[src_row + mr];
            }
        }
    }
}

/// Computes `C = A^T * B` where `a` is `k x m` and `b` is `k x n`, both
/// row-major. Equivalent to `gemm(&a.transposed(), b)` without the
/// intermediate transpose.
///
/// # Errors
///
/// Returns [`GemmError::DimensionMismatch`] if `a.rows() != b.rows()`.
///
/// # Example
///
/// ```
/// use spg_tensor::Matrix;
/// use spg_gemm::{gemm, gemm_at_b};
///
/// let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// let b = Matrix::from_vec(2, 2, vec![7.0, 8.0, 9.0, 10.0])?;
/// let fused = gemm_at_b(&a, &b)?;
/// let via_transpose = gemm(&a.transposed(), &b)?;
/// assert_eq!(fused.as_slice(), via_transpose.as_slice());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gemm_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    // A^T is m x k with m = a.cols(), k = a.rows(); inner dim must match
    // b.rows().
    check_dims(a.cols(), a.rows(), b.rows(), b.cols())?;
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(c);
    }
    spg_telemetry::record_flops(crate::gemm_flops(m, n, k), crate::gemm_flops(m, n, k));
    let mut a_pack = Vec::new();
    let mut b_pack = Vec::new();
    gemm_at_b_slice(
        k,
        m,
        n,
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
        &mut a_pack,
        &mut b_pack,
    );
    Ok(c)
}

/// Raw-slice `C += A^T * B` with caller-owned packing buffers.
///
/// `a` is the untransposed `k x m` left operand and `b` is `k x n`, both
/// contiguous row-major; the product accumulates into the `m x n` slice
/// `c`. `a_pack` / `b_pack` are panel-packing scratch vectors that grow on
/// first use and are reused afterwards, so steady-state calls with stable
/// shapes perform no heap allocation. Records no telemetry — callers own
/// the flop accounting (mirroring [`gemm_slice`](crate::gemm_slice)).
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_slice(
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    a_pack: &mut Vec<f32>,
    b_pack: &mut Vec<f32>,
) {
    assert_eq!(a.len(), k * m, "gemm_at_b_slice: a length mismatch");
    assert_eq!(b.len(), k * n, "gemm_at_b_slice: b length mismatch");
    assert_eq!(c.len(), m * n, "gemm_at_b_slice: c length mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (av, bv, cv) = (a, b, c);
    let lda = m;

    let mut acc = [0.0f32; MR * NR];
    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(bv, n, pc, jc, kc, nc, b_pack);
            for ic in (0..m).step_by(MC) {
                let mc = (m - ic).min(MC);
                pack_at(av, lda, ic, pc, mc, kc, a_pack);
                let m_panels = mc.div_ceil(MR);
                let n_panels = nc.div_ceil(NR);
                for jp in 0..n_panels {
                    let bp = &b_pack[jp * kc * NR..(jp + 1) * kc * NR];
                    let cols = (nc - jp * NR).min(NR);
                    for ip in 0..m_panels {
                        let ap = &a_pack[ip * kc * MR..(ip + 1) * kc * MR];
                        microkernel(kc, ap, bp, &mut acc);
                        let rows = (mc - ip * MR).min(MR);
                        for mr in 0..rows {
                            let crow = ic + ip * MR + mr;
                            let cbase = crow * n + jc + jp * NR;
                            let dst = &mut cv[cbase..cbase + cols];
                            let src = &acc[mr * NR..mr * NR + cols];
                            for (d, s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, gemm_naive};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_explicit_transpose() {
        let mut rng = SmallRng::seed_from_u64(77);
        for &(k, m, n) in &[(1usize, 1usize, 1usize), (7, 5, 9), (17, 23, 13), (64, 100, 37)] {
            let a = Matrix::random_uniform(k, m, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let fused = gemm_at_b(&a, &b).unwrap();
            let oracle = gemm_naive(&a.transposed(), &b).unwrap();
            let diff = fused.max_abs_diff(&oracle).unwrap();
            assert!(diff < 1e-3, "{k}x{m}x{n}: {diff}");
        }
    }

    #[test]
    fn crosses_cache_blocks() {
        let mut rng = SmallRng::seed_from_u64(78);
        let a = Matrix::random_uniform(KC + 9, MC + 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(KC + 9, 40, 1.0, &mut rng);
        let fused = gemm_at_b(&a, &b).unwrap();
        let oracle = gemm(&a.transposed(), &b).unwrap();
        assert!(fused.max_abs_diff(&oracle).unwrap() < 1e-2);
    }

    #[test]
    fn slice_variant_accumulates_and_reuses_packs() {
        let mut rng = SmallRng::seed_from_u64(79);
        let a = Matrix::random_uniform(12, 9, 1.0, &mut rng);
        let b = Matrix::random_uniform(12, 7, 1.0, &mut rng);
        let oracle = gemm_naive(&a.transposed(), &b).unwrap();
        let mut c = vec![0.0f32; 9 * 7];
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        gemm_at_b_slice(12, 9, 7, a.as_slice(), b.as_slice(), &mut c, &mut pa, &mut pb);
        let caps = (pa.capacity(), pb.capacity());
        // Second call accumulates and must not regrow the pack buffers.
        gemm_at_b_slice(12, 9, 7, a.as_slice(), b.as_slice(), &mut c, &mut pa, &mut pb);
        assert_eq!(caps, (pa.capacity(), pb.capacity()));
        for (got, want) in c.iter().zip(oracle.as_slice()) {
            assert!((got - 2.0 * want).abs() < 1e-3);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 2); // inner dims 3 vs 4
        assert!(matches!(gemm_at_b(&a, &b), Err(GemmError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(0, 2);
        let c = gemm_at_b(&a, &b).unwrap();
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert!(c.as_slice().iter().all(|v| *v == 0.0));
    }
}
