//! Property-based tests: every optimized GEMM path must agree with the
//! naive triple-loop oracle on arbitrary shapes, thread counts, and
//! sparsity levels.

use proptest::prelude::*;

use spg_gemm::{
    gemm, gemm_in_parallel, gemm_naive, parallel_gemm, parallel_gemm_cols, spmm_csr_dense,
    spmm_ctcsr_dense, BatchJob,
};
use spg_tensor::sparse::{Csr, CtCsr};
use spg_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("length matches"))
}

fn mm_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..24, 1usize..24, 1usize..24).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

fn close(a: &Matrix, b: &Matrix) -> bool {
    // f32 accumulation order differs between kernels; scale tolerance by k.
    a.max_abs_diff(b).map(|d| d < 1e-2).unwrap_or(false)
}

proptest! {
    #[test]
    fn blocked_matches_naive((a, b) in mm_pair()) {
        let fast = gemm(&a, &b).expect("dims agree");
        let slow = gemm_naive(&a, &b).expect("dims agree");
        prop_assert!(close(&fast, &slow));
    }

    #[test]
    fn parallel_matches_naive((a, b) in mm_pair(), threads in 1usize..9) {
        let fast = parallel_gemm(&a, &b, threads).expect("dims agree");
        let slow = gemm_naive(&a, &b).expect("dims agree");
        prop_assert!(close(&fast, &slow));
    }

    #[test]
    fn column_partition_matches_naive((a, b) in mm_pair(), threads in 1usize..9) {
        let fast = parallel_gemm_cols(&a, &b, threads).expect("dims agree");
        let slow = gemm_naive(&a, &b).expect("dims agree");
        prop_assert!(close(&fast, &slow));
    }

    #[test]
    fn batch_matches_naive((a, b) in mm_pair(), threads in 1usize..5, copies in 1usize..4) {
        let jobs: Vec<BatchJob> = (0..copies).map(|_| BatchJob::new(&a, &b)).collect();
        let out = gemm_in_parallel(&jobs, threads).expect("dims agree");
        let slow = gemm_naive(&a, &b).expect("dims agree");
        for c in &out {
            prop_assert!(close(c, &slow));
        }
    }

    #[test]
    fn spmm_matches_naive((a, b) in mm_pair(), tile_width in 1usize..10) {
        // Sparsify A deterministically: zero every third element.
        let mut av = a.as_slice().to_vec();
        for (i, v) in av.iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let a_sparse = Matrix::from_vec(a.rows(), a.cols(), av).expect("length matches");
        let oracle = gemm_naive(&a_sparse, &b).expect("dims agree");
        let via_csr = spmm_csr_dense(&Csr::from_dense(&a_sparse), &b).expect("dims agree");
        prop_assert!(close(&via_csr, &oracle));
        let tiled = CtCsr::from_dense(&a_sparse, tile_width).expect("positive width");
        let via_tiled = spmm_ctcsr_dense(&tiled, &b).expect("dims agree");
        prop_assert!(close(&via_tiled, &oracle));
    }

    #[test]
    fn gemm_is_linear_in_a((a, b) in mm_pair()) {
        // (2A)B == 2(AB) — catches accumulation/packing bugs cheaply.
        let doubled = Matrix::from_vec(
            a.rows(),
            a.cols(),
            a.as_slice().iter().map(|v| v * 2.0).collect(),
        ).expect("length matches");
        let c1 = gemm(&doubled, &b).expect("dims agree");
        let c2 = gemm(&a, &b).expect("dims agree");
        let c2x = Matrix::from_vec(
            c2.rows(),
            c2.cols(),
            c2.as_slice().iter().map(|v| v * 2.0).collect(),
        ).expect("length matches");
        prop_assert!(close(&c1, &c2x));
    }
}
