//! Property tests for the cluster wire protocol.
//!
//! Pins the contract documented on `decode_frame`: any encoded message
//! round-trips bit-exactly, and any malformed input — truncated, bit-flipped,
//! wrong version, or outright garbage — returns a typed [`WireError`]
//! instead of panicking.

use proptest::prelude::*;
use spg_cluster::wire::{
    crc32, decode_frame, encode_frame, read_frame, write_frame, Message, WireError, HEADER_LEN,
    MAGIC, MAX_PAYLOAD, TRAILER_LEN, VERSION,
};

fn byte() -> impl Strategy<Value = u8> {
    (0u32..256).prop_map(|v| u8::try_from(v).expect("in byte range"))
}

fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(byte(), 0..max_len)
}

fn small_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..26, 0..24).prop_map(|v| {
        v.into_iter().map(|b| char::from(b'a' + u8::try_from(b).expect("below 26"))).collect()
    })
}

fn floats() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, 0..48)
}

fn any_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0u64..1 << 48, bytes(32), floats()).prop_map(|(id, key, input)| Message::InferRequest {
            id,
            key,
            input
        }),
        (0u64..1 << 48, 0u32..1000, floats())
            .prop_map(|(id, class, logits)| Message::InferResponse { id, class, logits }),
        (0u64..1 << 48, small_string())
            .prop_map(|(id, message)| Message::InferError { id, message }),
        (0u32..64, 0u32..4096, 0u32..256, floats()).prop_map(|(epoch, batch, chunk, data)| {
            Message::ReduceChunk { epoch, batch, chunk, data }
        }),
        (0u32..64, 0u32..4096, 0u32..256, floats()).prop_map(|(epoch, batch, chunk, data)| {
            Message::BroadcastChunk { epoch, batch, chunk, data }
        }),
        (
            0u32..64,
            0u32..4096,
            0u64..u64::MAX,
            0u64..1 << 32,
            proptest::collection::vec(0u64..u64::MAX, 0..8)
        )
            .prop_map(|(epoch, batch, loss_sum_bits, correct, sparsity_bits)| {
                Message::AccMeta { epoch, batch, loss_sum_bits, correct, sparsity_bits }
            }),
        (0u32..64, 1u32..64).prop_map(|(rank, world)| Message::Hello { rank, world }),
        Just(Message::Shutdown),
    ]
}

/// A version byte that is never [`VERSION`].
fn wrong_version() -> impl Strategy<Value = u8> {
    (0u32..255).prop_map(|v| {
        let v = u8::try_from(v).expect("below 255");
        if v >= VERSION {
            v + 1
        } else {
            v
        }
    })
}

/// Maps a fraction in `[0, 1)` onto an index into `len` bytes.
fn index_for(frac: f64, len: usize) -> usize {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((len as f64) * frac) as usize;
    idx.min(len.saturating_sub(1))
}

proptest! {
    /// Every message decodes back to itself and consumes exactly the
    /// bytes `encode_frame` produced — even with trailing garbage after
    /// the frame.
    #[test]
    fn round_trip_is_exact(msg in any_message(), trailing in bytes(16)) {
        let frame = encode_frame(&msg);
        prop_assert!(frame.len() >= HEADER_LEN + TRAILER_LEN);
        prop_assert_eq!(&frame[0..2], &MAGIC[..]);
        prop_assert_eq!(frame[2], VERSION);

        let (decoded, consumed) = decode_frame(&frame).expect("well-formed frame decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());

        // Trailing bytes past the frame must not confuse the decoder.
        let mut padded = frame.clone();
        padded.extend_from_slice(&trailing);
        let (decoded, consumed) = decode_frame(&padded).expect("frame with trailing bytes decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    /// Every strict prefix of a valid frame is a typed `Truncated` error,
    /// never a panic and never a bogus success.
    #[test]
    fn truncation_is_typed(msg in any_message(), frac in 0.0f64..1.0) {
        let frame = encode_frame(&msg);
        let cut = index_for(frac, frame.len());
        match decode_frame(&frame[..cut]) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > got);
            }
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
        }
    }

    /// Flipping any single byte of a frame yields a typed error: the CRC
    /// covers version, type, length, and payload; the magic and trailer
    /// bytes are checked directly against it.
    #[test]
    fn single_byte_corruption_is_typed(msg in any_message(), frac in 0.0f64..1.0, flip in 1u32..256) {
        let mut frame = encode_frame(&msg);
        let pos = index_for(frac, frame.len());
        frame[pos] ^= u8::try_from(flip).expect("in byte range");
        match decode_frame(&frame) {
            Err(
                WireError::BadMagic { .. }
                | WireError::BadVersion { .. }
                | WireError::BadChecksum { .. }
                | WireError::TooLarge { .. }
                | WireError::Truncated { .. },
            ) => {}
            other => prop_assert!(false, "flip {:#x} at byte {} gave {:?}", flip, pos, other),
        }
    }

    /// A wrong version byte on an otherwise clean frame (checksum
    /// recomputed) reports `BadVersion`, not a checksum failure.
    #[test]
    fn future_version_is_typed(msg in any_message(), version in wrong_version()) {
        let mut frame = encode_frame(&msg);
        frame[2] = version;
        let body_end = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[2..body_end]);
        frame.truncate(body_end);
        frame.extend_from_slice(&crc.to_le_bytes());
        match decode_frame(&frame) {
            Err(WireError::BadVersion { found }) => prop_assert_eq!(found, version),
            other => prop_assert!(false, "version {} gave {:?}", version, other),
        }
    }

    /// Arbitrary garbage never panics the decoder: it either fails typed
    /// or (when it happens to start with a valid header) decodes within
    /// bounds.
    #[test]
    fn garbage_never_panics(garbage in bytes(256)) {
        if let Ok((_, consumed)) = decode_frame(&garbage) {
            prop_assert!(consumed <= garbage.len());
        }
    }

    /// Garbage behind a valid header prefix exercises the deeper decode
    /// paths (length, checksum, payload decoders) without panicking.
    #[test]
    fn framed_garbage_never_panics(tag in byte(), len in 0u32..128, body in bytes(160)) {
        let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(tag);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&body);
        let _ = decode_frame(&frame);

        // Same bytes with a correct checksum drive the payload decoders
        // themselves on arbitrary input.
        let take = (len as usize).min(body.len());
        let mut honest = Vec::new();
        honest.extend_from_slice(&MAGIC);
        honest.push(VERSION);
        honest.push(tag);
        let take_len = u32::try_from(take).expect("take fits in u32");
        honest.extend_from_slice(&take_len.to_le_bytes());
        honest.extend_from_slice(&body[..take]);
        let crc = crc32(&honest[2..]);
        honest.extend_from_slice(&crc.to_le_bytes());
        let _ = decode_frame(&honest);
    }

    /// `write_frame`/`read_frame` round-trip a whole conversation over a
    /// byte stream, then report a clean close at the frame boundary.
    #[test]
    fn stream_round_trip(msgs in proptest::collection::vec(any_message(), 0..6)) {
        let mut buf: Vec<u8> = Vec::new();
        for msg in &msgs {
            write_frame(&mut buf, msg).expect("writing to a Vec cannot fail");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &msgs {
            let got = read_frame(&mut cursor).expect("stream frame decodes");
            prop_assert_eq!(&got, msg);
        }
        match read_frame(&mut cursor) {
            Err(WireError::Closed) => {}
            other => prop_assert!(false, "exhausted stream gave {:?}", other),
        }
    }

    /// A hostile length prefix with an under-delivering peer is a typed
    /// `Truncated` carrying the actually-received count. The claim may be
    /// the full 64 MiB cap while only a handful of bytes ever arrive:
    /// `read_frame` sizes its buffer by receipt, so the claim never
    /// drives an up-front allocation (the old decoder allocated
    /// `claim + 4` bytes here before reading anything).
    #[test]
    fn hostile_length_under_delivery_is_typed(
        claim in 1u32..=MAX_PAYLOAD,
        deliver in 0usize..512,
    ) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION);
        stream.push(0x01);
        stream.extend_from_slice(&claim.to_le_bytes());
        // Strictly under-deliver the claimed payload + trailer.
        let deliver = deliver.min(claim as usize + TRAILER_LEN - 1);
        stream.resize(stream.len() + deliver, 0);
        let mut cursor = std::io::Cursor::new(stream);
        match read_frame(&mut cursor) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(needed, HEADER_LEN + claim as usize + TRAILER_LEN);
                prop_assert_eq!(got, deliver);
            }
            other => prop_assert!(false, "claim {} deliver {} gave {:?}", claim, deliver, other),
        }
    }

    /// A stream cut mid-frame reports `Truncated`, not `Closed`.
    #[test]
    fn stream_cut_mid_frame_is_truncated(msg in any_message(), frac in 0.0f64..1.0) {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &msg).expect("writing to a Vec cannot fail");
        let cut = index_for(frac, buf.len()).max(1);
        buf.truncate(cut);
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor) {
            Err(WireError::Truncated { .. }) => {}
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }
}

/// Special float values (negative zero, infinities, NaN payloads)
/// round-trip bit-exactly because the codec moves raw `to_bits`.
#[test]
fn special_floats_round_trip_bit_exact() {
    let specials =
        vec![0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::NAN, f32::MIN_POSITIVE, f32::MAX];
    let msg = Message::ReduceChunk { epoch: 1, batch: 2, chunk: 3, data: specials.clone() };
    let (decoded, _) = decode_frame(&encode_frame(&msg)).expect("specials decode");
    match decoded {
        Message::ReduceChunk { data, .. } => {
            assert_eq!(data.len(), specials.len());
            for (a, b) in data.iter().zip(specials.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

/// A length prefix above `MAX_PAYLOAD` is rejected before any allocation.
#[test]
fn oversized_length_is_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x01);
    frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    match decode_frame(&frame) {
        Err(WireError::TooLarge { len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("oversized length gave {other:?}"),
    }
}

/// `read_frame` rejects an over-cap length prefix from the header alone:
/// the typed error surfaces before a single payload byte is consumed
/// from the stream (so nothing is allocated for the hostile claim).
#[test]
fn oversized_stream_length_rejected_at_the_header() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&MAGIC);
    stream.push(VERSION);
    stream.push(0x01);
    stream.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    // Payload bytes that must never be read.
    stream.resize(stream.len() + 64, 0xAB);
    let mut cursor = std::io::Cursor::new(stream);
    match read_frame(&mut cursor) {
        Err(WireError::TooLarge { len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("oversized stream length gave {other:?}"),
    }
    assert_eq!(cursor.position(), HEADER_LEN as u64, "no payload byte consumed");
}
