//! From-scratch gradient all-reduce: an **ordered chain-in-ring**
//! algorithm whose f32 accumulation order is *identical* to the
//! single-process SGD pool's in-order merge, plus a binomial-tree
//! variant for comparison.
//!
//! # Why not the classic reduce-scatter ring
//!
//! f32 addition is not associative, and the workspace's determinism
//! contract (see `spg_convnet::sgd`) is that batch gradients merge in
//! exact sample order `j = 0..B-1`, making losses bit-identical for any
//! worker count. A reduce-scatter/allgather ring sums per-rank partial
//! blocks in ring order — a *different* association — so it cannot hit
//! the pool's bits. The ordered ring keeps the pool's association:
//!
//! * samples are owned in **contiguous blocks** by rank: rank `w` owns
//!   batch positions `[w·B/W .. (w+1)·B/W)` (same order the pool merges);
//! * rank 0 folds its samples, one at a time and in order, into a zeroed
//!   accumulator and streams it to rank 1 in chunks;
//! * each rank `r > 0` holds its per-sample gradients, folds them — in
//!   its local sample order — **on top of** the incoming accumulator
//!   chunk, and forwards; per element, the addition order is exactly the
//!   global sample order;
//! * rank `W-1` ends up with the finished accumulator and a broadcast
//!   leg circulates it `W-1 → 0 → 1 → … → W-2`.
//!
//! Per link the traffic is ≤ 2·G (one reduce pass + one broadcast pass,
//! pipelined in [`chunk_floats`](crate::ClusterConfig::chunk_floats)-
//! sized frames), the same asymptotic bandwidth as the classic ring —
//! what is given up is overlap *within* the fold (the chain is serial
//! across ranks), which the interconnect model in `spg-simcpu` charges
//! for honestly. Scalars (the f64 loss sum, the correct count, the conv
//! sparsity sums) ride an [`Message::AccMeta`] frame and fold in the
//! same order, so epoch statistics are bit-identical too.
//!
//! The binomial [`tree_allreduce`] halves latency at large `N` but sums
//! subtree partials (a different, still deterministic association); the
//! trainer exposes it for comparison and the tests pin its determinism
//! and its exact agreement with the ring on integer-valued gradients.

use std::io::{Read, Write};

use crate::wire::{read_frame, write_frame, Message, WireError};
use crate::ClusterError;

/// Which all-reduce algorithm the distributed trainer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduce {
    /// Ordered chain-in-ring: bit-identical to the single-process pool.
    Ring,
    /// Binomial tree: lower latency, deterministic but re-associated
    /// (not bit-identical to the pool). In-process transport only.
    Tree,
}

/// One sample's contribution to the batch accumulator, captured by the
/// owning rank before the all-reduce starts.
#[derive(Debug, Clone)]
pub struct SampleGrad {
    /// Flattened parameter gradients (all layers concatenated in layer
    /// order).
    pub grads: Vec<f32>,
    /// Cross-entropy loss of the sample.
    pub loss: f32,
    /// Whether the prediction was correct.
    pub correct: bool,
    /// Backward gradient sparsity per conv layer.
    pub sparsity: Vec<f64>,
}

/// The fully reduced batch accumulator — the distributed equivalent of
/// the SGD pool's per-batch accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAcc {
    /// Flattened summed gradients.
    pub grads: Vec<f32>,
    /// Summed losses (f64, folded in global sample order).
    pub loss_sum: f64,
    /// Correct-prediction count.
    pub correct: u64,
    /// Summed per-conv-layer sparsities.
    pub sparsity_sums: Vec<f64>,
}

impl BatchAcc {
    /// A zeroed accumulator for `grad_len` parameters and `conv_count`
    /// conv layers.
    pub fn zeroed(grad_len: usize, conv_count: usize) -> Self {
        BatchAcc {
            grads: vec![0.0; grad_len],
            loss_sum: 0.0,
            correct: 0,
            sparsity_sums: vec![0.0; conv_count],
        }
    }

    /// Folds one sample's scalars in, in order — the same statements the
    /// pool's `BatchAcc::absorb` executes.
    fn fold_scalars(&mut self, s: &SampleGrad) {
        self.loss_sum += f64::from(s.loss);
        self.correct += u64::from(s.correct);
        for (dst, &src) in self.sparsity_sums.iter_mut().zip(&s.sparsity) {
            *dst += src;
        }
    }

    /// Folds one sample's full gradient vector in.
    fn fold_grads(&mut self, s: &SampleGrad) {
        for (a, &g) in self.grads.iter_mut().zip(&s.grads) {
            *a += g;
        }
    }
}

/// The two directed stream halves a rank holds in the ring topology.
pub struct RingLink<'a> {
    /// This rank's position.
    pub rank: usize,
    /// Total rank count.
    pub world: usize,
    /// Stream from the previous rank `(rank + world - 1) % world`.
    pub rx_prev: &'a mut dyn Read,
    /// Stream to the next rank `(rank + 1) % world`.
    pub tx_next: &'a mut dyn Write,
}

/// Maps a transport error on the ring to a typed cluster error.
fn ring_err(rank: usize, epoch: u32, batch: u32, e: WireError) -> ClusterError {
    ClusterError::RingFault {
        rank,
        epoch: epoch as usize,
        batch: batch as usize,
        message: e.to_string(),
    }
}

/// Sequence-checks a received frame against the current (epoch, batch).
fn check_seq(
    rank: usize,
    epoch: u32,
    batch: u32,
    got_epoch: u32,
    got_batch: u32,
) -> Result<(), ClusterError> {
    if got_epoch != epoch || got_batch != batch {
        return Err(ClusterError::Protocol {
            rank,
            detail: format!(
                "sequence mismatch: expected epoch {epoch} batch {batch}, \
                 peer sent epoch {got_epoch} batch {got_batch}"
            ),
        });
    }
    Ok(())
}

/// Number of chunks a `grad_len`-float vector splits into.
fn chunk_count(grad_len: usize, chunk_floats: usize) -> usize {
    grad_len.div_ceil(chunk_floats.max(1))
}

/// Sends the accumulator as one `AccMeta` plus chunked frames of
/// `kind` (0x10 reduce / 0x11 broadcast).
fn send_acc(
    tx: &mut dyn Write,
    broadcast: bool,
    epoch: u32,
    batch: u32,
    acc: &BatchAcc,
    chunk_floats: usize,
) -> Result<(), WireError> {
    write_frame(
        tx,
        &Message::AccMeta {
            epoch,
            batch,
            loss_sum_bits: acc.loss_sum.to_bits(),
            correct: acc.correct,
            sparsity_bits: acc.sparsity_sums.iter().map(|s| s.to_bits()).collect(),
        },
    )?;
    for (i, piece) in acc.grads.chunks(chunk_floats.max(1)).enumerate() {
        let chunk = u32::try_from(i).expect("chunk index fits u32");
        let data = piece.to_vec();
        let msg = if broadcast {
            Message::BroadcastChunk { epoch, batch, chunk, data }
        } else {
            Message::ReduceChunk { epoch, batch, chunk, data }
        };
        write_frame(tx, &msg)?;
        spg_telemetry::record_counter(
            if broadcast { "cluster.ring.broadcast_chunks" } else { "cluster.ring.reduce_chunks" },
            1,
        );
    }
    Ok(())
}

/// Receives an `AccMeta` frame, sequence-checked.
fn recv_meta(
    rx: &mut dyn Read,
    rank: usize,
    epoch: u32,
    batch: u32,
) -> Result<(f64, u64, Vec<f64>), ClusterError> {
    match read_frame(rx).map_err(|e| ring_err(rank, epoch, batch, e))? {
        Message::AccMeta { epoch: ge, batch: gb, loss_sum_bits, correct, sparsity_bits } => {
            check_seq(rank, epoch, batch, ge, gb)?;
            Ok((
                f64::from_bits(loss_sum_bits),
                correct,
                sparsity_bits.into_iter().map(f64::from_bits).collect(),
            ))
        }
        other => Err(ClusterError::Protocol {
            rank,
            detail: format!("expected AccMeta, got frame type {:#04x}", other.tag()),
        }),
    }
}

/// Receives one sequence-checked gradient chunk of the expected kind
/// and index, returning its data.
fn recv_chunk(
    rx: &mut dyn Read,
    rank: usize,
    broadcast: bool,
    epoch: u32,
    batch: u32,
    expect_chunk: usize,
) -> Result<Vec<f32>, ClusterError> {
    let msg = read_frame(rx).map_err(|e| ring_err(rank, epoch, batch, e))?;
    let (ge, gb, gc, data, got_broadcast) = match msg {
        Message::ReduceChunk { epoch, batch, chunk, data } => (epoch, batch, chunk, data, false),
        Message::BroadcastChunk { epoch, batch, chunk, data } => (epoch, batch, chunk, data, true),
        other => {
            return Err(ClusterError::Protocol {
                rank,
                detail: format!("expected gradient chunk, got frame type {:#04x}", other.tag()),
            })
        }
    };
    check_seq(rank, epoch, batch, ge, gb)?;
    if got_broadcast != broadcast || gc as usize != expect_chunk {
        return Err(ClusterError::Protocol {
            rank,
            detail: format!(
                "chunk sequence violation: expected {} chunk {expect_chunk}, got {} chunk {gc}",
                if broadcast { "broadcast" } else { "reduce" },
                if got_broadcast { "broadcast" } else { "reduce" },
            ),
        });
    }
    Ok(data)
}

/// Runs the ordered chain-in-ring all-reduce for one batch.
///
/// `samples` are this rank's contributions in its local sample order;
/// `grad_len` is the flattened gradient length (identical on every
/// rank); `conv_count` the number of conv layers. Returns the finished
/// accumulator, identical — bit for bit — on every rank, and equal to
/// what the single-process pool computes for the same batch.
///
/// # Errors
///
/// [`ClusterError::RingFault`] when a neighbor drops mid-reduce (the
/// typed mid-all-reduce failure the recovery drill exercises) and
/// [`ClusterError::Protocol`] on sequence violations.
pub fn ring_allreduce(
    link: &mut RingLink<'_>,
    epoch: u32,
    batch: u32,
    samples: &[SampleGrad],
    grad_len: usize,
    conv_count: usize,
    chunk_floats: usize,
) -> Result<BatchAcc, ClusterError> {
    let (rank, world) = (link.rank, link.world);
    let mut acc = BatchAcc::zeroed(grad_len, conv_count);
    let chunks = chunk_count(grad_len, chunk_floats);

    if world == 1 {
        for s in samples {
            acc.fold_scalars(s);
            acc.fold_grads(s);
        }
        return Ok(acc);
    }

    // ---- Reduce leg: 0 → 1 → … → W-1, folding in rank order. ----
    if rank == 0 {
        for s in samples {
            acc.fold_scalars(s);
            acc.fold_grads(s);
        }
        send_acc(link.tx_next, false, epoch, batch, &acc, chunk_floats)
            .map_err(|e| ring_err(rank, epoch, batch, e))?;
    } else {
        let (loss_sum, correct, sparsity) = recv_meta(link.rx_prev, rank, epoch, batch)?;
        acc.loss_sum = loss_sum;
        acc.correct = correct;
        acc.sparsity_sums = sparsity;
        for s in samples {
            acc.fold_scalars(s);
        }
        let last = rank == world - 1;
        if !last {
            write_frame(
                link.tx_next,
                &Message::AccMeta {
                    epoch,
                    batch,
                    loss_sum_bits: acc.loss_sum.to_bits(),
                    correct: acc.correct,
                    sparsity_bits: acc.sparsity_sums.iter().map(|s| s.to_bits()).collect(),
                },
            )
            .map_err(|e| ring_err(rank, epoch, batch, e))?;
        }
        for c in 0..chunks {
            let mut data = recv_chunk(link.rx_prev, rank, false, epoch, batch, c)?;
            let off = c * chunk_floats.max(1);
            // Fold this rank's samples onto the incoming accumulator
            // slice, sample by sample: per element the addition order is
            // the global sample order, exactly the pool's association.
            let len = data.len();
            for s in samples {
                for (a, &g) in data.iter_mut().zip(&s.grads[off..off + len]) {
                    *a += g;
                }
            }
            if !last {
                write_frame(
                    link.tx_next,
                    &Message::ReduceChunk {
                        epoch,
                        batch,
                        chunk: u32::try_from(c).expect("chunk index fits u32"),
                        data: data.clone(),
                    },
                )
                .map_err(|e| ring_err(rank, epoch, batch, e))?;
                spg_telemetry::record_counter("cluster.ring.reduce_chunks", 1);
            }
            acc.grads[off..off + data.len()].copy_from_slice(&data);
        }
    }

    // ---- Broadcast leg: W-1 → 0 → 1 → … → W-2. ----
    if rank == world - 1 {
        send_acc(link.tx_next, true, epoch, batch, &acc, chunk_floats)
            .map_err(|e| ring_err(rank, epoch, batch, e))?;
    } else {
        let forward = (rank + 1) % world != world - 1;
        let (loss_sum, correct, sparsity) = recv_meta(link.rx_prev, rank, epoch, batch)?;
        acc.loss_sum = loss_sum;
        acc.correct = correct;
        acc.sparsity_sums = sparsity;
        if forward {
            write_frame(
                link.tx_next,
                &Message::AccMeta {
                    epoch,
                    batch,
                    loss_sum_bits: acc.loss_sum.to_bits(),
                    correct: acc.correct,
                    sparsity_bits: acc.sparsity_sums.iter().map(|s| s.to_bits()).collect(),
                },
            )
            .map_err(|e| ring_err(rank, epoch, batch, e))?;
        }
        for c in 0..chunks {
            let data = recv_chunk(link.rx_prev, rank, true, epoch, batch, c)?;
            let off = c * chunk_floats.max(1);
            acc.grads[off..off + data.len()].copy_from_slice(&data);
            if forward {
                write_frame(
                    link.tx_next,
                    &Message::BroadcastChunk {
                        epoch,
                        batch,
                        chunk: u32::try_from(c).expect("chunk index fits u32"),
                        data,
                    },
                )
                .map_err(|e| ring_err(rank, epoch, batch, e))?;
                spg_telemetry::record_counter("cluster.ring.broadcast_chunks", 1);
            }
        }
    }
    spg_telemetry::record_counter("cluster.ring.batches", 1);
    Ok(acc)
}

/// A full-duplex frame link to one peer (tree topology).
pub trait PeerLink {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure.
    fn send(&mut self, msg: &Message) -> Result<(), WireError>;

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the codec or transport reports.
    fn recv(&mut self) -> Result<Message, WireError>;
}

impl<S: Read + Write> PeerLink for S {
    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        write_frame(self, msg)
    }
    fn recv(&mut self) -> Result<Message, WireError> {
        read_frame(self)
    }
}

/// Receives a full accumulator (meta + chunks) from one tree peer.
#[allow(clippy::too_many_arguments)]
fn tree_recv_acc(
    link: &mut dyn PeerLink,
    rank: usize,
    epoch: u32,
    batch: u32,
    grad_len: usize,
    conv_count: usize,
    chunk_floats: usize,
    broadcast: bool,
) -> Result<BatchAcc, ClusterError> {
    let mut acc = BatchAcc::zeroed(grad_len, conv_count);
    match link.recv().map_err(|e| ring_err(rank, epoch, batch, e))? {
        Message::AccMeta { epoch: ge, batch: gb, loss_sum_bits, correct, sparsity_bits } => {
            check_seq(rank, epoch, batch, ge, gb)?;
            acc.loss_sum = f64::from_bits(loss_sum_bits);
            acc.correct = correct;
            acc.sparsity_sums = sparsity_bits.into_iter().map(f64::from_bits).collect();
        }
        other => {
            return Err(ClusterError::Protocol {
                rank,
                detail: format!("expected AccMeta, got frame type {:#04x}", other.tag()),
            })
        }
    }
    for c in 0..chunk_count(grad_len, chunk_floats) {
        let msg = link.recv().map_err(|e| ring_err(rank, epoch, batch, e))?;
        let (ge, gb, gc, data, got_b) = match msg {
            Message::ReduceChunk { epoch, batch, chunk, data } => {
                (epoch, batch, chunk, data, false)
            }
            Message::BroadcastChunk { epoch, batch, chunk, data } => {
                (epoch, batch, chunk, data, true)
            }
            other => {
                return Err(ClusterError::Protocol {
                    rank,
                    detail: format!("expected chunk, got frame type {:#04x}", other.tag()),
                })
            }
        };
        check_seq(rank, epoch, batch, ge, gb)?;
        if got_b != broadcast || gc as usize != c {
            return Err(ClusterError::Protocol {
                rank,
                detail: format!("tree chunk sequence violation at chunk {c}"),
            });
        }
        let off = c * chunk_floats.max(1);
        acc.grads[off..off + data.len()].copy_from_slice(&data);
    }
    Ok(acc)
}

/// Sends a full accumulator to one tree peer.
fn tree_send_acc(
    link: &mut dyn PeerLink,
    rank: usize,
    epoch: u32,
    batch: u32,
    acc: &BatchAcc,
    chunk_floats: usize,
    broadcast: bool,
) -> Result<(), ClusterError> {
    link.send(&Message::AccMeta {
        epoch,
        batch,
        loss_sum_bits: acc.loss_sum.to_bits(),
        correct: acc.correct,
        sparsity_bits: acc.sparsity_sums.iter().map(|s| s.to_bits()).collect(),
    })
    .map_err(|e| ring_err(rank, epoch, batch, e))?;
    for (i, piece) in acc.grads.chunks(chunk_floats.max(1)).enumerate() {
        let chunk = u32::try_from(i).expect("chunk index fits u32");
        let data = piece.to_vec();
        let msg = if broadcast {
            Message::BroadcastChunk { epoch, batch, chunk, data }
        } else {
            Message::ReduceChunk { epoch, batch, chunk, data }
        };
        link.send(&msg).map_err(|e| ring_err(rank, epoch, batch, e))?;
    }
    Ok(())
}

/// Binomial-tree all-reduce: reduce to rank 0 along a binomial tree,
/// then broadcast back down it. `links[p]` must hold a live link to
/// peer `p` for every peer this rank exchanges with (ranks at distance
/// a power of two).
///
/// Deterministic for a fixed world size, but the fold sums subtree
/// *partials* — a different f32 association than the pool's in-order
/// merge, so results are **not** bit-identical to [`ring_allreduce`]
/// except on exactly-representable data (pinned by tests). Offered for
/// latency comparison, matching the `spg-simcpu` interconnect model.
///
/// # Errors
///
/// [`ClusterError::RingFault`] when a peer drops mid-reduce;
/// [`ClusterError::Protocol`] on sequence violations;
/// [`ClusterError::Config`] when a needed peer link is missing.
#[allow(clippy::too_many_arguments)]
pub fn tree_allreduce(
    rank: usize,
    world: usize,
    links: &mut [Option<Box<dyn PeerLink + Send>>],
    epoch: u32,
    batch: u32,
    samples: &[SampleGrad],
    grad_len: usize,
    conv_count: usize,
    chunk_floats: usize,
) -> Result<BatchAcc, ClusterError> {
    let mut acc = BatchAcc::zeroed(grad_len, conv_count);
    for s in samples {
        acc.fold_scalars(s);
        acc.fold_grads(s);
    }
    let need_link = |links: &mut [Option<Box<dyn PeerLink + Send>>], peer: usize| {
        if peer >= links.len() || links[peer].is_none() {
            return Err(ClusterError::Config {
                detail: format!("tree all-reduce: rank {rank} has no link to peer {peer}"),
            });
        }
        Ok(())
    };

    // Reduce toward rank 0: at level `mask`, ranks divisible by `mask`
    // participate; the one with the `mask` bit set sends its partial up
    // and goes passive.
    let mut mask = 1usize;
    while mask < world {
        if rank & (mask - 1) == 0 {
            if rank & mask != 0 {
                let peer = rank - mask;
                need_link(links, peer)?;
                let link = links[peer].as_mut().expect("checked above");
                tree_send_acc(link.as_mut(), rank, epoch, batch, &acc, chunk_floats, false)?;
                break;
            } else if rank + mask < world {
                let peer = rank + mask;
                need_link(links, peer)?;
                let link = links[peer].as_mut().expect("checked above");
                let other = tree_recv_acc(
                    link.as_mut(),
                    rank,
                    epoch,
                    batch,
                    grad_len,
                    conv_count,
                    chunk_floats,
                    false,
                )?;
                // Pairwise partial fold: subtree order, not sample order.
                acc.loss_sum += other.loss_sum;
                acc.correct += other.correct;
                for (a, b) in acc.sparsity_sums.iter_mut().zip(&other.sparsity_sums) {
                    *a += b;
                }
                for (a, b) in acc.grads.iter_mut().zip(&other.grads) {
                    *a += b;
                }
            }
        }
        mask <<= 1;
    }

    // Broadcast from rank 0 back down the same tree.
    let mut mask = 1usize;
    while mask < world {
        mask <<= 1;
    }
    mask >>= 1;
    while mask >= 1 {
        if rank & (mask - 1) == 0 {
            if rank & mask == 0 {
                if rank + mask < world {
                    let peer = rank + mask;
                    need_link(links, peer)?;
                    let link = links[peer].as_mut().expect("checked above");
                    tree_send_acc(link.as_mut(), rank, epoch, batch, &acc, chunk_floats, true)?;
                }
            } else {
                let peer = rank - mask;
                need_link(links, peer)?;
                let link = links[peer].as_mut().expect("checked above");
                acc = tree_recv_acc(
                    link.as_mut(),
                    rank,
                    epoch,
                    batch,
                    grad_len,
                    conv_count,
                    chunk_floats,
                    true,
                )?;
            }
        }
        mask >>= 1;
    }
    spg_telemetry::record_counter("cluster.tree.batches", 1);
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    /// Synthetic per-rank sample blocks: `world` ranks, `per_rank`
    /// samples each, `grad_len` parameters.
    fn blocks(
        world: usize,
        per_rank: usize,
        grad_len: usize,
        integral: bool,
    ) -> Vec<Vec<SampleGrad>> {
        (0..world)
            .map(|w| {
                (0..per_rank)
                    .map(|j| {
                        let g = (w * per_rank + j) as f32;
                        let grads: Vec<f32> = (0..grad_len)
                            .map(|e| {
                                if integral {
                                    (e as f32) + g
                                } else {
                                    (e as f32).sin() * 0.25 + g * 0.001
                                }
                            })
                            .collect();
                        SampleGrad {
                            grads,
                            loss: 0.5 + g * 0.01,
                            correct: j % 2 == 0,
                            sparsity: vec![0.25 + g as f64 * 0.001],
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The oracle: the single-process pool's fold (global sample order).
    fn sequential_fold(blocks: &[Vec<SampleGrad>], grad_len: usize) -> BatchAcc {
        let mut acc = BatchAcc::zeroed(grad_len, 1);
        for block in blocks {
            for s in block {
                acc.fold_scalars(s);
                acc.fold_grads(s);
            }
        }
        acc
    }

    /// Runs the ring all-reduce across `world` threads over socketpairs.
    fn run_ring(blocks: Vec<Vec<SampleGrad>>, grad_len: usize, chunk: usize) -> Vec<BatchAcc> {
        let world = blocks.len();
        // Edge r -> (r+1) % world: pair.0 is r's tx, pair.1 is next's rx.
        let mut txs: Vec<Option<UnixStream>> = Vec::new();
        let mut rxs: Vec<Option<UnixStream>> = (0..world).map(|_| None).collect();
        for r in 0..world {
            let (a, b) = UnixStream::pair().expect("socketpair");
            txs.push(Some(a));
            rxs[(r + 1) % world] = Some(b);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .enumerate()
                .zip(txs.iter_mut().zip(rxs.iter_mut()))
                .map(|((rank, samples), (tx, rx))| {
                    let mut tx = tx.take().unwrap();
                    let mut rx = rx.take().unwrap();
                    scope.spawn(move || {
                        let mut link = RingLink { rank, world, rx_prev: &mut rx, tx_next: &mut tx };
                        ring_allreduce(&mut link, 1, 0, &samples, grad_len, 1, chunk).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn ring_matches_sequential_fold_bit_for_bit() {
        for world in [1usize, 2, 3, 5] {
            for chunk in [3usize, 16, 1024] {
                let grad_len = 37;
                let blocks = blocks(world, 4, grad_len, false);
                let expect = sequential_fold(&blocks, grad_len);
                let got = run_ring(blocks, grad_len, chunk);
                for (rank, acc) in got.iter().enumerate() {
                    assert_eq!(
                        acc.loss_sum.to_bits(),
                        expect.loss_sum.to_bits(),
                        "world {world} chunk {chunk} rank {rank} loss"
                    );
                    assert_eq!(acc.correct, expect.correct);
                    for (a, b) in acc.grads.iter().zip(&expect.grads) {
                        assert_eq!(a.to_bits(), b.to_bits(), "world {world} chunk {chunk}");
                    }
                    for (a, b) in acc.sparsity_sums.iter().zip(&expect.sparsity_sums) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }

    /// Full-duplex socketpair mesh for `world` ranks.
    fn mesh(world: usize) -> Vec<Vec<Option<Box<dyn PeerLink + Send>>>> {
        let mut links: Vec<Vec<Option<Box<dyn PeerLink + Send>>>> =
            (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
        let pairs = (0..world).flat_map(|a| (a + 1..world).map(move |b| (a, b)));
        for (a, b) in pairs {
            let (sa, sb) = UnixStream::pair().expect("socketpair");
            links[a][b] = Some(Box::new(sa));
            links[b][a] = Some(Box::new(sb));
        }
        links
    }

    fn run_tree(blocks: Vec<Vec<SampleGrad>>, grad_len: usize, chunk: usize) -> Vec<BatchAcc> {
        let world = blocks.len();
        let meshes = mesh(world);
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .zip(meshes)
                .enumerate()
                .map(|(rank, (samples, mut links))| {
                    scope.spawn(move || {
                        tree_allreduce(rank, world, &mut links, 1, 0, &samples, grad_len, 1, chunk)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn tree_is_deterministic_and_exact_on_integral_data() {
        // On integer-valued f32 data (exactly representable sums) the
        // association difference vanishes: tree == ring == sequential.
        for world in [1usize, 2, 4, 5] {
            let grad_len = 19;
            let data = blocks(world, 2, grad_len, true);
            let expect = sequential_fold(&data, grad_len);
            let got = run_tree(data.clone(), grad_len, 7);
            let again = run_tree(data, grad_len, 7);
            for (acc, rerun) in got.iter().zip(&again) {
                assert_eq!(acc, rerun, "tree run not deterministic");
                assert_eq!(acc.loss_sum.to_bits(), expect.loss_sum.to_bits());
                assert_eq!(acc.correct, expect.correct);
                for (a, b) in acc.grads.iter().zip(&expect.grads) {
                    assert_eq!(a.to_bits(), b.to_bits(), "world {world}");
                }
            }
        }
    }

    #[test]
    fn sequence_mismatch_is_a_typed_protocol_error() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        // Rank 1 of 2 expects epoch 1 / batch 0; its "previous rank"
        // sends epoch 9 instead.
        let sender = std::thread::spawn(move || {
            let acc = BatchAcc::zeroed(4, 1);
            send_acc(&mut a, false, 9, 0, &acc, 4).unwrap();
        });
        let err = {
            let (mut dead_tx, _keep) = UnixStream::pair().unwrap();
            let mut link = RingLink { rank: 1, world: 2, rx_prev: &mut b, tx_next: &mut dead_tx };
            ring_allreduce(&mut link, 1, 0, &[], 4, 1, 4).unwrap_err()
        };
        sender.join().unwrap();
        assert!(
            matches!(err, ClusterError::Protocol { rank: 1, .. }),
            "expected Protocol error, got {err:?}"
        );
    }

    #[test]
    fn dropped_peer_is_a_typed_ring_fault() {
        let (a, mut b) = UnixStream::pair().unwrap();
        drop(a); // Peer dies before sending anything.
        let (mut dead_tx, _keep) = UnixStream::pair().unwrap();
        let mut link = RingLink { rank: 1, world: 2, rx_prev: &mut b, tx_next: &mut dead_tx };
        let err = ring_allreduce(&mut link, 3, 7, &[], 4, 1, 4).unwrap_err();
        match err {
            ClusterError::RingFault { rank, epoch, batch, .. } => {
                assert_eq!((rank, epoch, batch), (1, 3, 7));
            }
            other => panic!("expected RingFault, got {other:?}"),
        }
    }
}
