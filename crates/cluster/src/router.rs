//! The shard router: consistent hashing in front of N engine replicas.
//!
//! Each shard gets a bounded request queue (reusing `spg_serve`'s
//! [`BoundedQueue`] backpressure semantics — full queue rejects, closed
//! queue means shutdown) drained by one forwarder thread that owns the
//! shard's backend: either an in-process [`spg_serve::Server`] replica
//! or a framed stream to a shard process ([`RemoteShard`]).
//!
//! # Health-based eviction and respawn
//!
//! A fatal backend error (stream died, server torn down) fails the one
//! in-flight request with a typed [`ClusterError::ShardFault`], evicts
//! the shard from the hash ring — consistent hashing re-routes *only*
//! that shard's keys — and respawns the backend through the
//! [`ShardSpawner`] under the router's restart budget with exponential
//! backoff, the same supervision shape as the training pool's worker
//! respawn. Requests already queued on the shard are not failed: they
//! wait for the respawned backend, so a kill drill produces exactly one
//! `ShardFault`-class error and every other key's result is unchanged.

use std::io::{Read, Write};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use spg_serve::{BoundedQueue, PushError, ServeError};

use crate::hash::HashRing;
use crate::wire::{read_frame, write_frame, Message, WireError};
use crate::ClusterError;

/// A completed routed classification.
#[derive(Debug, Clone)]
pub struct RouteReply {
    /// Raw network outputs.
    pub logits: Vec<f32>,
    /// Argmax of the logits.
    pub class: usize,
    /// Shard that served the request.
    pub shard: usize,
}

/// How a backend failure affects the shard.
#[derive(Debug)]
pub enum ShardError {
    /// Only this request failed; the shard stays live.
    Request(ClusterError),
    /// The shard is gone: evict it and respawn.
    Fatal(ClusterError),
}

/// One shard's serving backend, driven sequentially by its forwarder.
pub trait ShardBackend: Send {
    /// Serves one request.
    ///
    /// # Errors
    ///
    /// [`ShardError::Request`] fails only this request;
    /// [`ShardError::Fatal`] additionally evicts the shard.
    fn infer(
        &mut self,
        shard: usize,
        key: &[u8],
        input: Vec<f32>,
    ) -> Result<RouteReply, ShardError>;
}

/// Creates (and re-creates, after eviction) a shard's backend.
pub trait ShardSpawner: Send + Sync {
    /// Builds the backend for `shard`.
    ///
    /// # Errors
    ///
    /// Any [`ClusterError`]; the router retries under its restart
    /// budget.
    fn spawn(&self, shard: usize) -> Result<Box<dyn ShardBackend>, ClusterError>;
}

impl<F> ShardSpawner for F
where
    F: Fn(usize) -> Result<Box<dyn ShardBackend>, ClusterError> + Send + Sync,
{
    fn spawn(&self, shard: usize) -> Result<Box<dyn ShardBackend>, ClusterError> {
        self(shard)
    }
}

/// Classifies a serve-side error: shutdown/teardown kills the shard,
/// everything else fails only the request.
fn classify(shard: usize, e: ServeError) -> ShardError {
    match e {
        ServeError::ShuttingDown | ServeError::Disconnected => {
            ShardError::Fatal(ClusterError::ShardFault { shard, message: e.to_string() })
        }
        other => ShardError::Request(ClusterError::from_serve(shard, other)),
    }
}

/// An in-process shard: a full [`spg_serve::Server`] replica.
pub struct InProcShard {
    server: spg_serve::Server,
}

impl InProcShard {
    /// Wraps a started server as a shard backend.
    pub fn new(server: spg_serve::Server) -> Self {
        InProcShard { server }
    }
}

impl ShardBackend for InProcShard {
    fn infer(
        &mut self,
        shard: usize,
        _key: &[u8],
        input: Vec<f32>,
    ) -> Result<RouteReply, ShardError> {
        let pending = self.server.try_submit(input).map_err(|e| classify(shard, e))?;
        let resp = pending.wait().map_err(|e| classify(shard, e))?;
        Ok(RouteReply { logits: resp.logits, class: resp.class, shard })
    }
}

/// A shard process reached over a framed stream (UDS or TCP): requests
/// and replies travel as checksummed wire frames, one in flight per
/// connection.
pub struct RemoteShard<S: Read + Write + Send> {
    stream: S,
    next_id: u64,
}

impl<S: Read + Write + Send> RemoteShard<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> Self {
        RemoteShard { stream, next_id: 0 }
    }
}

impl<S: Read + Write + Send> ShardBackend for RemoteShard<S> {
    fn infer(
        &mut self,
        shard: usize,
        key: &[u8],
        input: Vec<f32>,
    ) -> Result<RouteReply, ShardError> {
        let id = self.next_id;
        self.next_id += 1;
        let dead = |e: WireError| {
            ShardError::Fatal(ClusterError::ShardFault {
                shard,
                message: format!("shard connection failed: {e}"),
            })
        };
        write_frame(&mut self.stream, &Message::InferRequest { id, key: key.to_vec(), input })
            .map_err(dead)?;
        match read_frame(&mut self.stream).map_err(dead)? {
            Message::InferResponse { id: rid, class, logits } if rid == id => {
                Ok(RouteReply { logits, class: class as usize, shard })
            }
            Message::InferError { id: rid, message } if rid == id => {
                Err(ShardError::Request(ClusterError::ShardFault { shard, message }))
            }
            other => Err(ShardError::Fatal(ClusterError::ShardFault {
                shard,
                message: format!("unexpected reply frame tag {:#04x}", other.tag()),
            })),
        }
    }
}

/// Configuration for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard count.
    pub shards: usize,
    /// Per-shard bounded queue capacity.
    pub queue_capacity: usize,
    /// Seed for the consistent-hash ring.
    pub hash_seed: u64,
    /// Virtual points per shard on the ring.
    pub vnodes: usize,
    /// Respawns allowed per shard before its queue closes for good.
    pub restart_budget: usize,
    /// Base respawn backoff (doubles per consecutive restart).
    pub restart_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            queue_capacity: 64,
            hash_seed: 0x5b9c,
            vnodes: HashRing::DEFAULT_VNODES,
            restart_budget: 3,
            restart_backoff: Duration::from_millis(5),
        }
    }
}

/// One queued routed request.
struct RouterRequest {
    key: Vec<u8>,
    input: Vec<f32>,
    reply: mpsc::SyncSender<Result<RouteReply, ClusterError>>,
}

/// Handle to a routed request; redeem with [`wait`](Self::wait).
#[derive(Debug)]
pub struct PendingRoute {
    rx: mpsc::Receiver<Result<RouteReply, ClusterError>>,
}

impl PendingRoute {
    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// The typed [`ClusterError`] the forwarder recorded — e.g.
    /// [`ClusterError::ShardFault`] when the owning shard died with this
    /// request in flight.
    pub fn wait(self) -> Result<RouteReply, ClusterError> {
        self.rx.recv().map_err(|_| ClusterError::Disconnected)?
    }
}

struct ShardSlot {
    queue: Arc<BoundedQueue<RouterRequest>>,
    forwarder: Option<std::thread::JoinHandle<()>>,
}

/// The shard router: routes keys over a consistent-hash ring to
/// per-shard bounded queues, each drained by a forwarder owning that
/// shard's backend.
///
/// Dropping the router performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown).
pub struct Router {
    ring: Arc<Mutex<HashRing>>,
    slots: Vec<ShardSlot>,
    evictions: Arc<spg_sync::ProgressCounter>,
    respawns: Arc<spg_sync::ProgressCounter>,
}

impl Router {
    /// Starts the router: spawns every shard backend (failing fast if
    /// one cannot start) and one forwarder thread per shard.
    ///
    /// # Errors
    ///
    /// The first shard's spawn error.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `config.queue_capacity == 0`.
    pub fn start(
        spawner: Arc<dyn ShardSpawner>,
        config: &RouterConfig,
    ) -> Result<Router, ClusterError> {
        assert!(config.shards > 0, "router needs at least one shard");
        let ring =
            Arc::new(Mutex::new(HashRing::new(config.shards, config.vnodes, config.hash_seed)));
        let evictions = Arc::new(spg_sync::ProgressCounter::new());
        let respawns = Arc::new(spg_sync::ProgressCounter::new());
        let mut slots = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let backend = spawner.spawn(shard)?;
            let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
            let forwarder = {
                let queue = Arc::clone(&queue);
                let ring = Arc::clone(&ring);
                let spawner = Arc::clone(&spawner);
                let evictions = Arc::clone(&evictions);
                let respawns = Arc::clone(&respawns);
                let config = config.clone();
                std::thread::spawn(move || {
                    forward_loop(
                        shard, backend, &queue, &ring, &*spawner, &config, &evictions, &respawns,
                    );
                })
            };
            slots.push(ShardSlot { queue, forwarder: Some(forwarder) });
        }
        Ok(Router { ring, slots, evictions, respawns })
    }

    /// Routes `key` on the ring.
    fn route(&self, key: &[u8]) -> Result<usize, ClusterError> {
        spg_sync::lock(&self.ring).route(key).ok_or(ClusterError::NoShards)
    }

    /// Non-blocking submission: the owning shard's full queue rejects
    /// immediately (backpressure, same semantics as
    /// [`spg_serve::Server::try_submit`]).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoShards`] with every shard evicted,
    /// [`ClusterError::Rejected`] on backpressure,
    /// [`ClusterError::ShuttingDown`] after shutdown began.
    pub fn try_submit(&self, key: &[u8], input: Vec<f32>) -> Result<PendingRoute, ClusterError> {
        let shard = self.route(key)?;
        spg_telemetry::record_counter("cluster.router.requests", 1);
        let (tx, rx) = mpsc::sync_channel(1);
        let queue = &self.slots[shard].queue;
        queue.try_push(RouterRequest { key: key.to_vec(), input, reply: tx }).map_err(
            |e| match e {
                PushError::Full => {
                    spg_telemetry::record_counter("cluster.router.rejected", 1);
                    ClusterError::Rejected { capacity: queue.capacity() }
                }
                PushError::Closed | PushError::TimedOut => ClusterError::ShuttingDown,
            },
        )?;
        Ok(PendingRoute { rx })
    }

    /// Blocking submission with a deadline, mirroring
    /// [`spg_serve::Server::submit_timeout`].
    ///
    /// # Errors
    ///
    /// As [`try_submit`](Self::try_submit), with
    /// [`ClusterError::Timeout`] when the queue stayed full past the
    /// deadline.
    pub fn submit_timeout(
        &self,
        key: &[u8],
        input: Vec<f32>,
        timeout: Duration,
    ) -> Result<PendingRoute, ClusterError> {
        let shard = self.route(key)?;
        spg_telemetry::record_counter("cluster.router.requests", 1);
        let (tx, rx) = mpsc::sync_channel(1);
        let queue = &self.slots[shard].queue;
        queue
            .push_deadline(
                RouterRequest { key: key.to_vec(), input, reply: tx },
                Instant::now() + timeout,
            )
            .map_err(|e| match e {
                PushError::Full | PushError::TimedOut => {
                    spg_telemetry::record_counter("cluster.router.rejected", 1);
                    ClusterError::Timeout { waited: timeout }
                }
                PushError::Closed => ClusterError::ShuttingDown,
            })?;
        Ok(PendingRoute { rx })
    }

    /// Number of currently live (non-evicted) shards.
    pub fn live_shards(&self) -> usize {
        spg_sync::lock(&self.ring).live_count()
    }

    /// Total health-based shard evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Block until at least `n` evictions have been observed, or
    /// `timeout` expires; `true` when the count was reached. Kill
    /// drills wait on this instead of sleep-polling [`evictions`].
    ///
    /// [`evictions`]: Self::evictions
    pub fn wait_evictions(&self, n: u64, timeout: Duration) -> bool {
        self.evictions.wait_until_timeout(n, timeout)
    }

    /// Block until at least `n` successful respawns have been observed,
    /// or `timeout` expires; `true` when the count was reached.
    pub fn wait_respawns(&self, n: u64, timeout: Duration) -> bool {
        self.respawns.wait_until_timeout(n, timeout)
    }

    /// Total successful shard respawns so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.get()
    }

    /// Graceful shutdown: closes every shard queue, drains queued
    /// requests, and joins the forwarders.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for slot in &self.slots {
            slot.queue.close();
        }
        for slot in &mut self.slots {
            if let Some(handle) = slot.forwarder.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Drains one shard's queue forever: serve, and on a fatal backend
/// error evict + respawn under the restart budget.
#[allow(clippy::too_many_arguments)]
fn forward_loop(
    shard: usize,
    mut backend: Box<dyn ShardBackend>,
    queue: &BoundedQueue<RouterRequest>,
    ring: &Mutex<HashRing>,
    spawner: &dyn ShardSpawner,
    config: &RouterConfig,
    evictions: &spg_sync::ProgressCounter,
    respawns: &spg_sync::ProgressCounter,
) {
    let mut restarts = 0usize;
    while let Some(req) = queue.pop() {
        match backend.infer(shard, &req.key, req.input) {
            Ok(reply) => {
                let _ = req.reply.send(Ok(reply));
            }
            Err(ShardError::Request(e)) => {
                let _ = req.reply.send(Err(e));
            }
            Err(ShardError::Fatal(e)) => {
                // Evict first (so new submissions re-route), then fail
                // exactly the in-flight request; queued requests wait
                // for the respawned backend.
                spg_sync::lock(ring).evict(shard);
                evictions.bump();
                spg_telemetry::record_counter("cluster.router.evictions", 1);
                let _ = req.reply.send(Err(e));
                loop {
                    restarts += 1;
                    if restarts > config.restart_budget {
                        // Budget spent: this shard stays evicted and its
                        // remaining queue drains with typed errors.
                        queue.close();
                        while let Some(stale) = queue.try_pop() {
                            let _ = stale.reply.send(Err(ClusterError::ShardFault {
                                shard,
                                message: "shard retired: restart budget exhausted".to_string(),
                            }));
                        }
                        return;
                    }
                    std::thread::sleep(spg_sync::backoff_delay(config.restart_backoff, restarts));
                    if let Ok(fresh) = spawner.spawn(shard) {
                        backend = fresh;
                        spg_sync::lock(ring).insert(shard);
                        respawns.bump();
                        spg_telemetry::record_counter("cluster.router.respawns", 1);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scripted backend: answers with its shard id as the class, dies
    /// on request `die_on` (once per incarnation).
    struct Scripted {
        shard: usize,
        served: u64,
        die_on: Option<u64>,
    }

    impl ShardBackend for Scripted {
        fn infer(
            &mut self,
            shard: usize,
            key: &[u8],
            input: Vec<f32>,
        ) -> Result<RouteReply, ShardError> {
            self.served += 1;
            if self.die_on == Some(self.served) {
                return Err(ShardError::Fatal(ClusterError::ShardFault {
                    shard,
                    message: "scripted death".to_string(),
                }));
            }
            if input.is_empty() {
                return Err(ShardError::Request(ClusterError::BadInput { expected: 1, actual: 0 }));
            }
            let _ = key;
            Ok(RouteReply { logits: vec![input[0]], class: self.shard, shard })
        }
    }

    fn scripted_spawner(die_on: Option<u64>) -> Arc<dyn ShardSpawner> {
        let spawned = Arc::new(AtomicUsize::new(0));
        Arc::new(move |shard: usize| {
            // Only the very first incarnation of any shard carries the
            // scripted death: respawns are healthy.
            let first = spawned.fetch_add(1, Ordering::Relaxed) == 0;
            Ok(Box::new(Scripted { shard, served: 0, die_on: die_on.filter(|_| first) })
                as Box<dyn ShardBackend>)
        })
    }

    #[test]
    fn routes_by_key_and_answers_from_the_owning_shard() {
        let config = RouterConfig { shards: 3, ..Default::default() };
        let router = Router::start(scripted_spawner(None), &config).unwrap();
        let ring = HashRing::new(3, config.vnodes, config.hash_seed);
        for i in 0..60 {
            let key = format!("key-{i}");
            let reply = router.try_submit(key.as_bytes(), vec![1.0]).unwrap().wait().unwrap();
            assert_eq!(reply.shard, ring.route(key.as_bytes()).unwrap());
            assert_eq!(reply.class, reply.shard);
        }
        router.shutdown();
    }

    #[test]
    fn request_errors_do_not_evict() {
        let config = RouterConfig { shards: 2, ..Default::default() };
        let router = Router::start(scripted_spawner(None), &config).unwrap();
        let err = router.try_submit(b"k", Vec::new()).unwrap().wait().unwrap_err();
        assert!(matches!(err, ClusterError::BadInput { .. }), "got {err:?}");
        assert_eq!(router.live_shards(), 2);
        assert_eq!(router.evictions(), 0);
    }

    #[test]
    fn fatal_error_fails_one_request_and_respawns_the_shard() {
        let config = RouterConfig {
            shards: 2,
            restart_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        // The first backend incarnation dies on its second request.
        let router = Router::start(scripted_spawner(Some(2)), &config).unwrap();
        // Find keys owned by shard 0 (the first spawned incarnation).
        let ring = HashRing::new(2, config.vnodes, config.hash_seed);
        let keys: Vec<String> = (0..200)
            .map(|i| format!("key-{i}"))
            .filter(|k| ring.route(k.as_bytes()) == Some(0))
            .take(4)
            .collect();
        assert!(keys.len() >= 4, "need enough shard-0 keys");

        let mut faults = 0;
        for key in &keys {
            match router.try_submit(key.as_bytes(), vec![2.0]).unwrap().wait() {
                Ok(reply) => assert_eq!(reply.shard, 0),
                Err(ClusterError::ShardFault { shard, .. }) => {
                    assert_eq!(shard, 0);
                    faults += 1;
                    // Let the respawn land before submitting the next
                    // key, so it routes back to the revived shard 0.
                    assert!(
                        router.wait_respawns(1, Duration::from_secs(5)),
                        "respawn after eviction"
                    );
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(faults, 1, "exactly the in-flight request fails");
        assert_eq!(router.evictions(), 1);
        assert_eq!(router.respawns(), 1);
        assert_eq!(router.live_shards(), 2, "shard respawned and re-inserted");
        router.shutdown();
    }

    #[test]
    fn exhausted_budget_retires_the_shard_but_keeps_the_rest_serving() {
        // Every incarnation of shard 0 dies on its first request; shard
        // 1 stays healthy throughout.
        let zero_dies = Arc::new(|shard: usize| {
            let die_on = if shard == 0 { Some(1) } else { None };
            Ok(Box::new(Scripted { shard, served: 0, die_on }) as Box<dyn ShardBackend>)
        });
        let config = RouterConfig {
            shards: 2,
            restart_budget: 1,
            restart_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let router = Router::start(zero_dies, &config).unwrap();
        let ring = HashRing::new(2, config.vnodes, config.hash_seed);
        let key0: String = (0..200)
            .map(|i| format!("key-{i}"))
            .find(|k| ring.route(k.as_bytes()) == Some(0))
            .unwrap();
        // First request dies, evicting shard 0; one respawn remains.
        let _ = router.try_submit(key0.as_bytes(), vec![1.0]).unwrap().wait();
        assert!(router.wait_respawns(1, Duration::from_secs(5)));
        assert_eq!(router.live_shards(), 2);
        // The respawned backend dies again, spending the budget: shard 0
        // retires for good.
        let _ = router.try_submit(key0.as_bytes(), vec![1.0]).unwrap().wait();
        assert!(router.wait_evictions(2, Duration::from_secs(5)));
        assert_eq!(router.live_shards(), 1);
        // Shard 0's keys re-route to the survivor; other shards serve on.
        let reply = router.try_submit(key0.as_bytes(), vec![1.0]).unwrap().wait().unwrap();
        assert_eq!(reply.shard, 1, "evicted shard's keys moved to the survivor");
    }
}
