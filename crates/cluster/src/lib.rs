//! Sharded serving and synchronous data-parallel SGD for the spg-CNN
//! workspace, behind a [`Cluster`] facade mirroring
//! [`spg_convnet::Engine`].
//!
//! Two distributed paths share one wire protocol ([`wire`]):
//!
//! - **Serving** ([`router`], [`shard`], [`hash`]): a consistent-hash
//!   shard router in front of N engine replicas — in-process
//!   [`spg_serve::Server`]s or shard processes over UDS/TCP — with
//!   per-shard bounded queues (`spg_serve` backpressure semantics),
//!   health-based eviction, and budgeted respawn.
//! - **Training** ([`allreduce`], [`train`]): synchronous data-parallel
//!   SGD whose gradient all-reduce is a from-scratch chunked ring (with
//!   a binomial-tree variant for comparison). The ring folds sample
//!   gradients in global sample order, so epoch losses are
//!   **bit-identical** to the single-process `Trainer` pool for any
//!   worker count, and mid-all-reduce faults replay deterministically
//!   from committed rank state.
//!
//! # Example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use spg_cluster::Cluster;
//! use spg_convnet::layer::FcLayer;
//! use spg_convnet::Network;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let net = Network::new(vec![Box::new(FcLayer::new(4, 2, &mut rng))])?;
//! let cluster = Cluster::builder().shards(2).network(net).build()?;
//! let router = cluster.serve()?;
//! let reply = router.try_submit(b"user-42", vec![0.0; 4])?.wait()?;
//! assert!(reply.class < 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Relation to `Engine`
//!
//! The single-process `Engine` paths are untouched; `Cluster` composes
//! them. [`IntoShard`] embeds an existing engine as a replica, and
//! cluster failures unify into [`spg_error::Error`] under
//! [`spg_error::ErrorKind::Cluster`] (the workspace error crate stays
//! upstream of every member crate, so the unification runs through a
//! `From` impl here rather than a variant there).

#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use spg_convnet::data::Dataset;
use spg_convnet::{Engine, EpochStats, Network, TrainerConfig};
use spg_serve::{ServeConfig, ServeError};

pub mod allreduce;
pub mod hash;
pub mod router;
pub mod shard;
pub mod train;
pub mod wire;

pub use allreduce::{ring_allreduce, tree_allreduce, AllReduce, BatchAcc, RingLink, SampleGrad};
pub use hash::HashRing;
pub use router::{
    InProcShard, PendingRoute, RemoteShard, RouteReply, Router, RouterConfig, ShardBackend,
    ShardError, ShardSpawner,
};
pub use shard::{serve_connection, ConnectionEnd, KillDrill};
pub use train::{
    block_bounds, run_rank, train_in_proc, Comm, InProcTrainOptions, RankOptions, RankState,
    TrainFault,
};
pub use wire::{Message, WireError};

/// Typed failure modes of the cluster: routing, shard supervision, the
/// gradient all-reduce, and the wire protocol.
///
/// The serving-side variants mirror [`spg_serve::ServeError`] one for
/// one (see [`from_serve`](Self::from_serve)), so backpressure and
/// fault semantics survive the redesign unchanged.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Every shard is evicted; no key can route.
    NoShards,
    /// The owning shard's bounded queue was full: backpressure.
    Rejected {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The submission deadline passed while the queue stayed full.
    Timeout {
        /// How long the submitter waited.
        waited: Duration,
    },
    /// The router (or shard) is shutting down.
    ShuttingDown,
    /// The request input has the wrong length for the model.
    BadInput {
        /// Expected input activation count.
        expected: usize,
        /// Provided input activation count.
        actual: usize,
    },
    /// The router was torn down with the request in flight.
    Disconnected,
    /// A shard replica failed (worker fault inside the replica, or the
    /// shard process/connection died). `WorkerFault`-class: only
    /// requests in flight on that shard are affected.
    ShardFault {
        /// The shard that failed.
        shard: usize,
        /// Best-effort description.
        message: String,
    },
    /// A training rank's ring link failed mid-all-reduce (peer dropped,
    /// stream died, or an injected drill fired).
    RingFault {
        /// The rank reporting the fault.
        rank: usize,
        /// Epoch (1-based) of the faulted batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Best-effort description.
        message: String,
    },
    /// A peer violated the all-reduce sequence (wrong epoch/batch/chunk
    /// ordering) — a bug or version skew, not a transport fault.
    Protocol {
        /// The rank reporting the violation.
        rank: usize,
        /// What was out of sequence.
        detail: String,
    },
    /// A frame failed to encode, decode, or travel.
    Wire(WireError),
    /// The cluster configuration or topology is unusable.
    Config {
        /// What was wrong.
        detail: String,
    },
}

impl ClusterError {
    /// Maps a serve-side error observed on `shard` to its cluster
    /// counterpart, preserving `ServeError` semantics: backpressure
    /// stays backpressure, worker faults become
    /// [`ShardFault`](Self::ShardFault).
    pub fn from_serve(shard: usize, e: ServeError) -> ClusterError {
        match e {
            ServeError::Rejected { capacity } => ClusterError::Rejected { capacity },
            ServeError::Timeout { waited } => ClusterError::Timeout { waited },
            ServeError::ShuttingDown => ClusterError::ShuttingDown,
            ServeError::BadInput { expected, actual } => {
                ClusterError::BadInput { expected, actual }
            }
            ServeError::Disconnected => ClusterError::Disconnected,
            other => ClusterError::ShardFault { shard, message: other.to_string() },
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoShards => write!(f, "no live shards to route to"),
            ClusterError::Rejected { capacity } => {
                write!(f, "request rejected: shard queue at capacity {capacity}")
            }
            ClusterError::Timeout { waited } => {
                write!(f, "request timed out after {waited:?} of backpressure")
            }
            ClusterError::ShuttingDown => write!(f, "cluster is shutting down"),
            ClusterError::BadInput { expected, actual } => {
                write!(f, "input has {actual} values, model expects {expected}")
            }
            ClusterError::Disconnected => write!(f, "cluster router disconnected"),
            ClusterError::ShardFault { shard, message } => {
                write!(f, "shard {shard} faulted: {message}")
            }
            ClusterError::RingFault { rank, epoch, batch, message } => {
                write!(f, "rank {rank} ring fault at epoch {epoch} batch {batch}: {message}")
            }
            ClusterError::Protocol { rank, detail } => {
                write!(f, "rank {rank} protocol violation: {detail}")
            }
            ClusterError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ClusterError::Config { detail } => write!(f, "cluster misconfigured: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e)
    }
}

impl From<ClusterError> for spg_error::Error {
    fn from(e: ClusterError) -> Self {
        spg_error::Error::with_source(spg_error::ErrorKind::Cluster, e.to_string(), e)
    }
}

/// How the cluster's shards and ranks are connected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Transport {
    /// Everything in this process: shards are embedded
    /// [`spg_serve::Server`] replicas, training ranks are threads over
    /// socketpairs. The default.
    InProc,
    /// Shard processes listening on Unix domain sockets
    /// `<dir>/shard_<i>.sock`.
    Uds {
        /// Directory holding the shard sockets.
        dir: PathBuf,
    },
    /// Shard processes listening on loopback TCP ports
    /// `base_port + shard`.
    Tcp {
        /// Host to connect to (usually `127.0.0.1`).
        host: String,
        /// Port of shard 0; shard `i` listens on `base_port + i`.
        base_port: u16,
    },
}

/// Configuration for a [`Cluster`], mirroring the `Engine` builder's
/// shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of serving shards (and training ranks).
    pub shards: usize,
    /// Worker threads inside each shard replica.
    pub workers_per_shard: usize,
    /// Seed for the consistent-hash ring.
    pub hash_seed: u64,
    /// Virtual points per shard on the hash ring.
    pub vnodes: usize,
    /// Per-shard bounded queue capacity.
    pub queue_capacity: usize,
    /// Shard respawns (serving) or whole-cluster replays (training)
    /// allowed before a fault surfaces.
    pub restart_budget: usize,
    /// Base backoff before a respawn/replay; doubles per consecutive
    /// restart.
    pub restart_backoff: Duration,
    /// Shard/rank connectivity.
    pub transport: Transport,
    /// Gradient all-reduce algorithm.
    pub allreduce: AllReduce,
    /// Floats per all-reduce wire chunk.
    pub chunk_floats: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            workers_per_shard: 1,
            hash_seed: 0x5b9c,
            vnodes: HashRing::DEFAULT_VNODES,
            queue_capacity: 64,
            restart_budget: 3,
            restart_backoff: Duration::from_millis(5),
            transport: Transport::InProc,
            allreduce: AllReduce::Ring,
            chunk_floats: 4096,
        }
    }
}

/// Embeds an existing model as a cluster shard replica.
///
/// Serving weights are immutable, so every in-process shard shares one
/// `Arc<Network>`; an [`Engine`] hands over its network without a copy.
pub trait IntoShard {
    /// The shared network the shards will serve.
    fn into_shard(self) -> Arc<Network>;
}

impl IntoShard for Engine {
    fn into_shard(self) -> Arc<Network> {
        self.into_shared()
    }
}

impl IntoShard for Network {
    fn into_shard(self) -> Arc<Network> {
        Arc::new(self)
    }
}

impl IntoShard for Arc<Network> {
    fn into_shard(self) -> Arc<Network> {
        self
    }
}

/// Deterministic network constructor used by training ranks; must build
/// the *same* initial network on every call.
pub type NetFactory = dyn Fn() -> Result<Network, spg_error::Error> + Send + Sync;

/// Builder for [`Cluster`], mirroring [`Engine::builder`].
pub struct ClusterBuilder {
    config: ClusterConfig,
    net: Option<Arc<Network>>,
    factory: Option<Arc<NetFactory>>,
}

impl ClusterBuilder {
    fn new() -> Self {
        ClusterBuilder { config: ClusterConfig::default(), net: None, factory: None }
    }

    /// Number of shards (serving) / ranks (training).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Worker threads inside each shard replica.
    #[must_use]
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.config.workers_per_shard = workers;
        self
    }

    /// Seed for the consistent-hash ring.
    #[must_use]
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.config.hash_seed = seed;
        self
    }

    /// Per-shard bounded queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Restart budget for shard respawns / training replays.
    #[must_use]
    pub fn restart_budget(mut self, budget: usize) -> Self {
        self.config.restart_budget = budget;
        self
    }

    /// Base restart backoff.
    #[must_use]
    pub fn restart_backoff(mut self, backoff: Duration) -> Self {
        self.config.restart_backoff = backoff;
        self
    }

    /// Shard/rank connectivity.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.config.transport = transport;
        self
    }

    /// Gradient all-reduce algorithm.
    #[must_use]
    pub fn allreduce(mut self, algo: AllReduce) -> Self {
        self.config.allreduce = algo;
        self
    }

    /// Floats per all-reduce wire chunk.
    #[must_use]
    pub fn chunk_floats(mut self, floats: usize) -> Self {
        self.config.chunk_floats = floats;
        self
    }

    /// The model the shards serve — a [`Network`], an `Arc<Network>`,
    /// or a whole [`Engine`] via [`IntoShard`].
    #[must_use]
    pub fn network(mut self, net: impl IntoShard) -> Self {
        self.net = Some(net.into_shard());
        self
    }

    /// Deterministic network factory for training ranks (each rank
    /// builds its own identical copy; weights never travel).
    #[must_use]
    pub fn factory(
        mut self,
        factory: impl Fn() -> Result<Network, spg_error::Error> + Send + Sync + 'static,
    ) -> Self {
        self.factory = Some(Arc::new(factory));
        self
    }

    /// Validates and builds the [`Cluster`].
    ///
    /// # Errors
    ///
    /// [`spg_error::ErrorKind::Cluster`] when the configuration is
    /// unusable (zero shards/workers/chunk size, or neither a network
    /// nor a factory was provided).
    pub fn build(self) -> Result<Cluster, spg_error::Error> {
        let bad = |detail: &str| {
            spg_error::Error::from(ClusterError::Config { detail: detail.to_string() })
        };
        if self.config.shards == 0 {
            return Err(bad("shard count must be positive"));
        }
        if self.config.workers_per_shard == 0 {
            return Err(bad("workers per shard must be positive"));
        }
        if self.config.queue_capacity == 0 {
            return Err(bad("queue capacity must be positive"));
        }
        if self.config.chunk_floats == 0 {
            return Err(bad("chunk size must be positive"));
        }
        if self.net.is_none() && self.factory.is_none() {
            return Err(bad("provide a network (serving) or a factory (training)"));
        }
        Ok(Cluster { config: self.config, net: self.net, factory: self.factory })
    }
}

/// The cluster facade: shard-routed serving and synchronous
/// data-parallel training over one configuration, mirroring the
/// single-process [`Engine`]'s serve/train surface.
pub struct Cluster {
    config: ClusterConfig,
    net: Option<Arc<Network>>,
    factory: Option<Arc<NetFactory>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("config", &self.config)
            .field("net", &self.net.is_some())
            .field("factory", &self.factory.is_some())
            .finish()
    }
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared network, materializing it from the factory if only a
    /// factory was provided.
    fn shared_net(&self) -> Result<Arc<Network>, spg_error::Error> {
        if let Some(net) = &self.net {
            return Ok(Arc::clone(net));
        }
        let factory = self.factory.as_ref().expect("build() enforced net or factory");
        Ok(Arc::new(factory()?))
    }

    /// Starts the shard router serving `shards` replicas of the model
    /// over the configured transport. Remote transports expect the
    /// shard processes to already be listening (the `spgcnn
    /// serve-cluster` command orchestrates them); replicas use the
    /// heuristic per-layer plans.
    ///
    /// # Errors
    ///
    /// Shard spawn/connect failures, surfaced under
    /// [`spg_error::ErrorKind::Cluster`].
    pub fn serve(&self) -> Result<Router, spg_error::Error> {
        let router_config = RouterConfig {
            shards: self.config.shards,
            queue_capacity: self.config.queue_capacity,
            hash_seed: self.config.hash_seed,
            vnodes: self.config.vnodes,
            restart_budget: self.config.restart_budget,
            restart_backoff: self.config.restart_backoff,
        };
        let spawner: Arc<dyn ShardSpawner> = match &self.config.transport {
            Transport::InProc => {
                let net = self.shared_net()?;
                // Replicas compile the same heuristic cores = 1 forward
                // plans the single-process `spgcnn serve` path uses, so
                // replies stay bit-identical to a planned Engine's
                // forward pass.
                let framework = spg_core::autotune::Framework::new(
                    1,
                    spg_core::autotune::TuningMode::Heuristic,
                    1,
                );
                let plans: Vec<(usize, spg_core::schedule::LayerPlan)> = net
                    .layers()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, layer)| {
                        layer.conv_spec().map(|spec| {
                            (
                                i,
                                spg_core::schedule::LayerPlan {
                                    forward: framework.plan_layer_forward(spec),
                                    backward: spg_core::schedule::recommended_plan(spec, 0.0, 1)
                                        .backward,
                                },
                            )
                        })
                    })
                    .collect();
                let serve_config = ServeConfig {
                    workers: self.config.workers_per_shard,
                    queue_capacity: self.config.queue_capacity,
                    restart_budget: self.config.restart_budget,
                    restart_backoff: self.config.restart_backoff,
                    ..ServeConfig::default()
                };
                Arc::new(move |_shard: usize| {
                    let server =
                        spg_serve::Server::start(Arc::clone(&net), &plans, serve_config.clone())
                            .map_err(|e| ClusterError::Config { detail: e.to_string() })?;
                    Ok(Box::new(InProcShard::new(server)) as Box<dyn ShardBackend>)
                })
            }
            Transport::Uds { dir } => {
                let dir = dir.clone();
                Arc::new(move |shard: usize| {
                    let path = dir.join(format!("shard_{shard}.sock"));
                    let stream =
                        connect_with_retry(|| std::os::unix::net::UnixStream::connect(&path))
                            .map_err(|e| ClusterError::ShardFault {
                                shard,
                                message: format!("connecting {}: {e}", path.display()),
                            })?;
                    Ok(Box::new(RemoteShard::new(stream)) as Box<dyn ShardBackend>)
                })
            }
            Transport::Tcp { host, base_port } => {
                let host = host.clone();
                let base_port = *base_port;
                Arc::new(move |shard: usize| {
                    let port = base_port + u16::try_from(shard).unwrap_or(u16::MAX - base_port);
                    let stream =
                        connect_with_retry(|| std::net::TcpStream::connect((host.as_str(), port)))
                            .map_err(|e| ClusterError::ShardFault {
                                shard,
                                message: format!("connecting {host}:{port}: {e}"),
                            })?;
                    stream.set_nodelay(true).ok();
                    Ok(Box::new(RemoteShard::new(stream)) as Box<dyn ShardBackend>)
                })
            }
        };
        Router::start(spawner, &router_config).map_err(spg_error::Error::from)
    }

    /// Runs synchronous data-parallel SGD over `shards` ranks with the
    /// configured all-reduce; epoch losses are bit-identical to
    /// [`spg_convnet::Trainer`] on the same seed (pinned by tests).
    ///
    /// Requires a [`factory`](ClusterBuilder::factory) and the
    /// [`Transport::InProc`] transport — multi-process training rings
    /// are orchestrated by the `spgcnn train-cluster` command over the
    /// same [`train`] building blocks.
    ///
    /// # Errors
    ///
    /// Typed cluster faults once the replay budget is spent, under
    /// [`spg_error::ErrorKind::Cluster`].
    pub fn train(
        &self,
        data: &Dataset,
        trainer: &TrainerConfig,
    ) -> Result<Vec<EpochStats>, spg_error::Error> {
        let Some(factory) = &self.factory else {
            return Err(ClusterError::Config {
                detail: "training needs a deterministic network factory".to_string(),
            }
            .into());
        };
        if !matches!(self.config.transport, Transport::InProc) {
            return Err(ClusterError::Config {
                detail: "Cluster::train is in-process; use `spgcnn train-cluster` for \
                         multi-process rings"
                    .to_string(),
            }
            .into());
        }
        let opts = InProcTrainOptions {
            world: self.config.shards,
            algo: self.config.allreduce,
            chunk_floats: self.config.chunk_floats,
            restart_budget: self.config.restart_budget,
            restart_backoff: self.config.restart_backoff,
            fault: None,
        };
        train_in_proc(&**factory, data, trainer, &opts).map_err(spg_error::Error::from)
    }
}

/// Retries a connect for a few seconds (shard processes take a moment
/// to bind their listeners).
fn connect_with_retry<S>(mut connect: impl FnMut() -> std::io::Result<S>) -> std::io::Result<S> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match connect() {
            Ok(s) => return Ok(s),
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spg_convnet::layer::FcLayer;

    fn tiny_net() -> Network {
        let mut rng = SmallRng::seed_from_u64(7);
        Network::new(vec![Box::new(FcLayer::new(4, 3, &mut rng))]).unwrap()
    }

    #[test]
    fn builder_validates_the_configuration() {
        let err = Cluster::builder().shards(0).network(tiny_net()).build().unwrap_err();
        assert_eq!(err.kind(), spg_error::ErrorKind::Cluster);
        let err = Cluster::builder().build().unwrap_err();
        assert_eq!(err.kind(), spg_error::ErrorKind::Cluster);
    }

    #[test]
    fn engine_embeds_as_a_shard() {
        let engine = Engine::builder().network(tiny_net()).build().unwrap();
        let cluster = Cluster::builder().shards(2).network(engine).build().unwrap();
        let router = cluster.serve().unwrap();
        let reply = router.try_submit(b"k", vec![0.5; 4]).unwrap().wait().unwrap();
        assert_eq!(reply.logits.len(), 3);
        router.shutdown();
    }

    #[test]
    fn in_proc_cluster_serves_across_shards() {
        let cluster =
            Cluster::builder().shards(3).hash_seed(9).network(tiny_net()).build().unwrap();
        let router = cluster.serve().unwrap();
        let mut shards_seen = std::collections::HashSet::new();
        for i in 0..60 {
            let key = format!("key-{i}");
            let reply = router.try_submit(key.as_bytes(), vec![0.1; 4]).unwrap();
            shards_seen.insert(reply.wait().unwrap().shard);
        }
        assert!(shards_seen.len() > 1, "keys spread over shards: {shards_seen:?}");
        router.shutdown();
    }

    #[test]
    fn serve_errors_keep_their_semantics_through_the_facade() {
        let cluster = Cluster::builder().shards(1).network(tiny_net()).build().unwrap();
        let router = cluster.serve().unwrap();
        let err = router.try_submit(b"k", vec![1.0]).unwrap().wait().unwrap_err();
        assert!(matches!(err, ClusterError::BadInput { expected: 4, actual: 1 }), "got {err:?}");
        router.shutdown();
    }

    #[test]
    fn cluster_error_unifies_under_the_cluster_kind() {
        let e = spg_error::Error::from(ClusterError::NoShards);
        assert_eq!(e.kind(), spg_error::ErrorKind::Cluster);
        assert_eq!(e.kind().as_str(), "cluster");
        let source = std::error::Error::source(&e).expect("source preserved");
        assert!(source.downcast_ref::<ClusterError>().is_some());
    }
}
