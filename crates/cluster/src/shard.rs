//! The shard-process side of the serving protocol: a framed
//! request/reply loop in front of one [`spg_serve::Server`] replica.
//!
//! A shard process binds a Unix or TCP listener, accepts the router's
//! connection, and runs [`serve_connection`]: read an `InferRequest`
//! frame, classify through the embedded server, write back an
//! `InferResponse` (or `InferError` carrying the typed serve error's
//! rendering). Serve-side failures never tear the connection — the
//! router decides per-request; only transport errors are fatal.
//!
//! For the CI kill drill the loop takes a [`KillDrill`]: after serving
//! its quota of requests the shard reports [`ConnectionEnd::Killed`]
//! and the hosting process aborts, which the router observes as a dead
//! stream mid-request — the same signature as a real crash.

use std::io::{Read, Write};

use spg_serve::Server;

use crate::wire::{read_frame, write_frame, Message, WireError};

/// Deterministic die-after-N-requests drill for a shard process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillDrill {
    /// Requests to serve successfully before dying.
    pub after: u64,
}

/// Why [`serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionEnd {
    /// The peer closed cleanly (EOF at a frame boundary or a
    /// `Shutdown` frame).
    Closed,
    /// The kill drill fired: the caller should abort the process
    /// without replying, simulating a crash mid-request.
    Killed,
}

/// Serves framed inference requests from `stream` against `server`
/// until the peer disconnects (or the kill drill fires).
///
/// # Errors
///
/// Only transport-level [`WireError`]s (broken stream, corrupt frame);
/// serve-side errors are replied as `InferError` frames instead.
pub fn serve_connection<S: Read + Write>(
    server: &Server,
    stream: &mut S,
    drill: Option<KillDrill>,
) -> Result<ConnectionEnd, WireError> {
    let mut served = 0u64;
    loop {
        let msg = match read_frame(stream) {
            Ok(msg) => msg,
            Err(WireError::Closed) => return Ok(ConnectionEnd::Closed),
            Err(e) => return Err(e),
        };
        match msg {
            Message::InferRequest { id, key: _, input } => {
                if let Some(KillDrill { after }) = drill {
                    if served >= after {
                        // Die with the request in flight: no reply, the
                        // caller aborts, the router sees a dead stream.
                        return Ok(ConnectionEnd::Killed);
                    }
                }
                let reply = match server.try_submit(input).and_then(|p| p.wait()) {
                    Ok(resp) => Message::InferResponse {
                        id,
                        class: u32::try_from(resp.class).expect("class index fits u32"),
                        logits: resp.logits,
                    },
                    Err(e) => Message::InferError { id, message: e.to_string() },
                };
                write_frame(stream, &reply)?;
                served += 1;
                spg_telemetry::record_counter("cluster.shard.requests", 1);
            }
            Message::Shutdown => return Ok(ConnectionEnd::Closed),
            other => {
                return Err(WireError::BadPayload {
                    what: match other {
                        Message::InferResponse { .. } => "InferResponse sent to a shard",
                        Message::InferError { .. } => "InferError sent to a shard",
                        _ => "non-serving frame sent to a shard",
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{RemoteShard, ShardBackend, ShardError};
    use crate::ClusterError;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spg_convnet::layer::FcLayer;
    use spg_convnet::Network;
    use spg_serve::ServeConfig;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    fn tiny_server() -> Server {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = Network::new(vec![Box::new(FcLayer::new(4, 3, &mut rng))]).unwrap();
        Server::start(Arc::new(net), &[], ServeConfig::default()).unwrap()
    }

    #[test]
    fn round_trips_requests_over_a_socketpair() {
        let server = tiny_server();
        let (mut shard_side, client_side) = UnixStream::pair().unwrap();
        let handle =
            std::thread::spawn(move || serve_connection(&server, &mut shard_side, None).unwrap());
        let mut client = RemoteShard::new(client_side);
        for i in 0..5 {
            let reply =
                client.infer(0, format!("k{i}").as_bytes(), vec![0.1, 0.2, 0.3, 0.4]).unwrap();
            assert_eq!(reply.logits.len(), 3);
            assert_eq!(reply.shard, 0);
        }
        // Bad input length: replied as a typed per-request error, the
        // connection survives.
        let err = client.infer(0, b"bad", vec![1.0]).unwrap_err();
        match err {
            ShardError::Request(ClusterError::ShardFault { shard: 0, message }) => {
                assert!(message.contains("expects"), "message: {message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let reply = client.infer(0, b"again", vec![0.0; 4]).unwrap();
        assert_eq!(reply.logits.len(), 3);
        drop(client);
        assert_eq!(handle.join().unwrap(), ConnectionEnd::Closed);
    }

    #[test]
    fn kill_drill_fires_after_the_quota() {
        let server = tiny_server();
        let (mut shard_side, client_side) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            serve_connection(&server, &mut shard_side, Some(KillDrill { after: 2 })).unwrap()
        });
        let mut client = RemoteShard::new(client_side);
        client.infer(0, b"a", vec![0.0; 4]).unwrap();
        client.infer(0, b"b", vec![0.0; 4]).unwrap();
        // Third request: the shard dies mid-request (stream drops
        // without a reply) and the client sees a fatal shard error.
        let err = client.infer(0, b"c", vec![0.0; 4]).unwrap_err();
        assert!(
            matches!(err, ShardError::Fatal(ClusterError::ShardFault { shard: 0, .. })),
            "got {err:?}"
        );
        assert_eq!(handle.join().unwrap(), ConnectionEnd::Killed);
    }
}
