//! The cluster wire protocol: length-prefixed, versioned, checksummed
//! frames carrying inference and all-reduce traffic between shards and
//! ranks.
//!
//! Every frame has the layout
//!
//! ```text
//! +----+----+---------+------+-------------+---------+
//! | 'S'| 'G'| version | type | len (u32 le)| payload | crc32 (u32 le)
//! +----+----+---------+------+-------------+---------+
//! ```
//!
//! The CRC-32 (IEEE polynomial, implemented from scratch below — no
//! external dependency) covers the `version`, `type`, `len`, and
//! `payload` bytes, so a flipped bit anywhere after the magic is caught
//! before the payload is interpreted. Decoding NEVER panics: every
//! malformed input maps to a typed [`WireError`] variant, which the
//! round-trip and corruption proptests in `tests/wire.rs` pin down.
//!
//! Integers are little-endian; floating-point values travel as raw IEEE
//! bit patterns (`f32::to_bits` / `f64::to_bits`), which is what makes
//! the distributed trainer's bit-identical-loss guarantee possible: no
//! value is ever reformatted in transit.

use std::io::{Read, Write};

/// Frame preamble: every frame starts with these two bytes.
pub const MAGIC: [u8; 2] = *b"SG";

/// Current protocol version; bumped on any incompatible frame change.
pub const VERSION: u8 = 1;

/// Upper bound on the payload length field: 64 MiB. A corrupted or
/// hostile length prefix must not drive a huge allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Fixed bytes before the payload: magic(2) + version(1) + type(1) +
/// len(4).
pub const HEADER_LEN: usize = 8;

/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, computed at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Typed decode/transport failures. Decoding malformed bytes always
/// lands in one of these variants — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The two bytes found instead.
        found: [u8; 2],
    },
    /// The frame's version byte is not [`VERSION`].
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The input ended before the frame did.
    Truncated {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The checksum trailer does not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        carried: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    TooLarge {
        /// The offending length.
        len: u32,
    },
    /// The type byte names no known message.
    UnknownType {
        /// The type byte found.
        tag: u8,
    },
    /// The payload's internal structure is inconsistent with its type.
    BadPayload {
        /// What was wrong, for diagnostics.
        what: &'static str,
    },
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An I/O error on the underlying transport.
    Io {
        /// The OS error message.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected \"SG\")")
            }
            WireError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found} (expected {VERSION})")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::BadChecksum { computed, carried } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {computed:#010x}, carried {carried:#010x}"
                )
            }
            WireError::TooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::UnknownType { tag } => write!(f, "unknown frame type {tag:#04x}"),
            WireError::BadPayload { what } => write!(f, "malformed payload: {what}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Io { message } => write!(f, "transport i/o error: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io { message: e.to_string() }
    }
}

/// Every message the cluster protocol carries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Router -> shard: classify one input.
    InferRequest {
        /// Request id, echoed in the response.
        id: u64,
        /// Routing key (opaque bytes; may be empty).
        key: Vec<u8>,
        /// Input activations.
        input: Vec<f32>,
    },
    /// Shard -> router: a completed classification.
    InferResponse {
        /// Echoed request id.
        id: u64,
        /// Argmax class.
        class: u32,
        /// Raw logits.
        logits: Vec<f32>,
    },
    /// Shard -> router: the request failed inside the shard.
    InferError {
        /// Echoed request id.
        id: u64,
        /// Typed-error rendering, best effort.
        message: String,
    },
    /// Ring reduce leg: one chunk of the running gradient accumulator.
    ReduceChunk {
        /// Epoch the chunk belongs to (1-based, sequence-checked).
        epoch: u32,
        /// Batch within the epoch (0-based, sequence-checked).
        batch: u32,
        /// Chunk index within the flattened gradient vector.
        chunk: u32,
        /// Accumulator values for this chunk.
        data: Vec<f32>,
    },
    /// Ring broadcast leg: one chunk of the final accumulator.
    BroadcastChunk {
        /// Epoch the chunk belongs to.
        epoch: u32,
        /// Batch within the epoch.
        batch: u32,
        /// Chunk index within the flattened gradient vector.
        chunk: u32,
        /// Final accumulator values for this chunk.
        data: Vec<f32>,
    },
    /// Scalar side of the batch accumulator (travels once per leg,
    /// before the chunks). Floats are raw bit patterns so the fold
    /// stays bit-exact.
    AccMeta {
        /// Epoch the accumulator belongs to.
        epoch: u32,
        /// Batch within the epoch.
        batch: u32,
        /// `f64::to_bits` of the running loss sum.
        loss_sum_bits: u64,
        /// Running correct-prediction count.
        correct: u64,
        /// `f64::to_bits` of each conv layer's running sparsity sum.
        sparsity_bits: Vec<u64>,
    },
    /// Connection handshake: who is dialing.
    Hello {
        /// The dialer's rank (or shard id).
        rank: u32,
        /// World size the dialer was configured with.
        world: u32,
    },
    /// Graceful end-of-stream marker.
    Shutdown,
}

impl Message {
    /// The frame type byte for this message.
    pub fn tag(&self) -> u8 {
        match self {
            Message::InferRequest { .. } => 0x01,
            Message::InferResponse { .. } => 0x02,
            Message::InferError { .. } => 0x03,
            Message::ReduceChunk { .. } => 0x10,
            Message::BroadcastChunk { .. } => 0x11,
            Message::AccMeta { .. } => 0x12,
            Message::Hello { .. } => 0x20,
            Message::Shutdown => 0x21,
        }
    }
}

/// Little-endian payload writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len_prefix(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("sequence length fits the wire format's u32"));
    }
    fn bytes(&mut self, b: &[u8]) {
        self.len_prefix(b.len());
        self.buf.extend_from_slice(b);
    }
    fn f32s(&mut self, v: &[f32]) {
        self.len_prefix(v.len());
        for x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    fn u64s(&mut self, v: &[u64]) {
        self.len_prefix(v.len());
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Little-endian payload reader over a borrowed slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end =
            self.pos.checked_add(n).ok_or(WireError::BadPayload { what: "length overflow" })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated { needed: end, got: self.buf.len() });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        let raw = self
            .take(n.checked_mul(4).ok_or(WireError::BadPayload { what: "f32 count overflow" })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        let raw = self
            .take(n.checked_mul(8).ok_or(WireError::BadPayload { what: "u64 count overflow" })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::BadPayload { what: "trailing bytes after payload" });
        }
        Ok(())
    }
}

/// Serializes one message's payload (everything between the length
/// prefix and the checksum).
fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut e = Enc::default();
    match msg {
        Message::InferRequest { id, key, input } => {
            e.u64(*id);
            e.bytes(key);
            e.f32s(input);
        }
        Message::InferResponse { id, class, logits } => {
            e.u64(*id);
            e.u32(*class);
            e.f32s(logits);
        }
        Message::InferError { id, message } => {
            e.u64(*id);
            e.bytes(message.as_bytes());
        }
        Message::ReduceChunk { epoch, batch, chunk, data }
        | Message::BroadcastChunk { epoch, batch, chunk, data } => {
            e.u32(*epoch);
            e.u32(*batch);
            e.u32(*chunk);
            e.f32s(data);
        }
        Message::AccMeta { epoch, batch, loss_sum_bits, correct, sparsity_bits } => {
            e.u32(*epoch);
            e.u32(*batch);
            e.u64(*loss_sum_bits);
            e.u64(*correct);
            e.u64s(sparsity_bits);
        }
        Message::Hello { rank, world } => {
            e.u32(*rank);
            e.u32(*world);
        }
        Message::Shutdown => {}
    }
    e.buf
}

/// Deserializes one message payload for type byte `tag`.
fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut d = Dec::new(payload);
    let msg = match tag {
        0x01 => {
            let id = d.u64()?;
            let key = d.bytes()?;
            let input = d.f32s()?;
            Message::InferRequest { id, key, input }
        }
        0x02 => {
            let id = d.u64()?;
            let class = d.u32()?;
            let logits = d.f32s()?;
            Message::InferResponse { id, class, logits }
        }
        0x03 => {
            let id = d.u64()?;
            let bytes = d.bytes()?;
            let message = String::from_utf8(bytes)
                .map_err(|_| WireError::BadPayload { what: "error message is not utf-8" })?;
            Message::InferError { id, message }
        }
        0x10 | 0x11 => {
            let epoch = d.u32()?;
            let batch = d.u32()?;
            let chunk = d.u32()?;
            let data = d.f32s()?;
            if tag == 0x10 {
                Message::ReduceChunk { epoch, batch, chunk, data }
            } else {
                Message::BroadcastChunk { epoch, batch, chunk, data }
            }
        }
        0x12 => {
            let epoch = d.u32()?;
            let batch = d.u32()?;
            let loss_sum_bits = d.u64()?;
            let correct = d.u64()?;
            let sparsity_bits = d.u64s()?;
            Message::AccMeta { epoch, batch, loss_sum_bits, correct, sparsity_bits }
        }
        0x20 => {
            let rank = d.u32()?;
            let world = d.u32()?;
            Message::Hello { rank, world }
        }
        0x21 => Message::Shutdown,
        tag => return Err(WireError::UnknownType { tag }),
    };
    d.finish()?;
    Ok(msg)
}

/// Encodes `msg` as one complete frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize, "oversized frame payload");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(msg.tag());
    let len = u32::try_from(payload.len()).expect("payload length fits the wire format's u32");
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame[2..]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Decodes one frame from the front of `bytes`, returning the message
/// and the number of bytes consumed.
///
/// # Errors
///
/// Any malformed input returns the matching [`WireError`] variant; this
/// function never panics on arbitrary bytes (pinned by proptests).
pub fn decode_frame(bytes: &[u8]) -> Result<(Message, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, got: bytes.len() });
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic { found: [bytes[0], bytes[1]] });
    }
    let version = bytes[2];
    let tag = bytes[3];
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge { len });
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated { needed: total, got: bytes.len() });
    }
    let body = &bytes[2..HEADER_LEN + len as usize];
    let carried = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let computed = crc32(body);
    if computed != carried {
        return Err(WireError::BadChecksum { computed, carried });
    }
    // Version is checked after the checksum so a corrupted version byte
    // reports as corruption, and a clean future-version frame as
    // BadVersion.
    if version != VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let msg = decode_payload(tag, &bytes[HEADER_LEN..HEADER_LEN + len as usize])?;
    Ok((msg, total))
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Upper bound on one allocation/read step while filling a frame body.
/// The body buffer grows chunk by chunk as bytes actually arrive, so a
/// hostile length prefix costs the sender real bandwidth instead of
/// driving one up-front [`MAX_PAYLOAD`]-sized allocation on the receiver
/// before the checksum is ever verified.
const READ_CHUNK: usize = 64 * 1024;

/// Reads exactly one frame from `r`.
///
/// The payload buffer is sized by the bytes received, not by the
/// untrusted length prefix: a claimed-but-never-sent length allocates at
/// most one 64 KiB chunk (`READ_CHUNK`) before the truncation surfaces.
///
/// # Errors
///
/// [`WireError::Closed`] when the peer hung up cleanly between frames;
/// [`WireError::Truncated`] when it hung up mid-frame;
/// [`WireError::TooLarge`] for a length prefix over [`MAX_PAYLOAD`]; the
/// other variants for malformed bytes.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic { found: [header[0], header[1]] });
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge { len });
    }
    let total = len as usize + TRAILER_LEN;
    let mut rest = vec![0u8; total.min(READ_CHUNK)];
    let mut filled = 0;
    while filled < total {
        match r.read(&mut rest[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated { needed: HEADER_LEN + total, got: filled });
            }
            Ok(n) => {
                filled += n;
                if filled == rest.len() && filled < total {
                    // Grow only after the previous chunk actually arrived.
                    rest.resize((rest.len() + READ_CHUNK).min(total), 0);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + rest.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&rest);
    decode_frame(&frame).map(|(msg, _)| msg)
}

/// `read_exact` that distinguishes a clean close at a frame boundary
/// (`at_boundary`) from a mid-frame truncation.
fn read_exact_or<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated { needed: buf.len(), got: filled }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::InferRequest { id: 7, key: b"user-123".to_vec(), input: vec![0.5, -1.25] },
            Message::InferRequest { id: 8, key: Vec::new(), input: Vec::new() },
            Message::InferResponse { id: 7, class: 2, logits: vec![0.1, 0.9, f32::NAN] },
            Message::InferError { id: 9, message: "worker 0 panicked".to_string() },
            Message::ReduceChunk { epoch: 1, batch: 3, chunk: 0, data: vec![1.0; 5] },
            Message::BroadcastChunk { epoch: 2, batch: 0, chunk: 4, data: vec![-0.0, 3.5] },
            Message::AccMeta {
                epoch: 1,
                batch: 2,
                loss_sum_bits: 1.75f64.to_bits(),
                correct: 6,
                sparsity_bits: vec![0.5f64.to_bits(), 0.25f64.to_bits()],
            },
            Message::Hello { rank: 3, world: 8 },
            Message::Shutdown,
        ]
    }

    #[test]
    fn round_trip_every_message() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            let (back, used) = decode_frame(&frame).expect("decode");
            assert_eq!(used, frame.len());
            // NaN-tolerant comparison: compare the re-encoded bytes.
            assert_eq!(encode_frame(&back), frame, "{msg:?}");
        }
    }

    #[test]
    fn stream_round_trip() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            write_frame(&mut buf, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in all_messages() {
            let back = read_frame(&mut cursor).unwrap();
            assert_eq!(encode_frame(&back), encode_frame(&msg));
        }
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    #[test]
    fn truncation_is_typed() {
        let frame = encode_frame(&Message::Hello { rank: 1, world: 2 });
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_typed() {
        let frame = encode_frame(&Message::ReduceChunk {
            epoch: 1,
            batch: 2,
            chunk: 3,
            data: vec![1.0, 2.0],
        });
        // Flip one bit at every position: magic bytes report BadMagic,
        // everything else must be caught by the checksum (or the length
        // cap / truncation guard when the length field grows).
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            match decode_frame(&bad) {
                Ok(_) => panic!("bit flip at {i} went undetected"),
                Err(
                    WireError::BadMagic { .. }
                    | WireError::BadChecksum { .. }
                    | WireError::TooLarge { .. }
                    | WireError::Truncated { .. },
                ) => {}
                Err(other) => panic!("bit flip at {i}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut frame = encode_frame(&Message::Shutdown);
        frame[2] = VERSION + 1;
        // Re-seal the checksum so the version check itself is exercised.
        let body_end = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[2..body_end]).to_le_bytes();
        frame[body_end..].copy_from_slice(&crc);
        assert_eq!(decode_frame(&frame), Err(WireError::BadVersion { found: VERSION + 1 }));
    }

    #[test]
    fn unknown_type_is_typed() {
        let mut frame = encode_frame(&Message::Shutdown);
        frame[3] = 0x7F;
        let body_end = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[2..body_end]).to_le_bytes();
        frame[body_end..].copy_from_slice(&crc);
        assert_eq!(decode_frame(&frame), Err(WireError::UnknownType { tag: 0x7F }));
    }

    #[test]
    fn oversized_length_is_capped() {
        let mut frame = encode_frame(&Message::Shutdown);
        frame[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(WireError::TooLarge { len: MAX_PAYLOAD + 1 }));
    }

    /// A frame whose body is larger than one [`READ_CHUNK`] exercises the
    /// grow-as-bytes-arrive path and still round-trips exactly.
    #[test]
    fn large_frame_crosses_chunked_read_boundary() {
        let data = vec![1.5f32; READ_CHUNK / 4 + 123];
        let msg = Message::ReduceChunk { epoch: 1, batch: 0, chunk: 0, data };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
