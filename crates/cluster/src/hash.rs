//! Seeded consistent hashing for the shard router.
//!
//! Each shard contributes `vnodes` virtual points on a `u64` ring; a
//! request key routes to the owner of the first point at or clockwise
//! from the key's hash. The virtual points make load roughly uniform,
//! and — the property the router's fault handling depends on — evicting
//! a shard moves **only that shard's keys**: every other key's first
//! clockwise point is unchanged, so it keeps routing to the same shard
//! (pinned by a property test below).
//!
//! Hashing is FNV-1a seeded with the router's `hash_seed`, so placements
//! are deterministic per configuration and independent of process
//! layout. The empty key is a legal key: it hashes like any other byte
//! string (to the seed's avalanche), so empty-key requests route
//! deterministically instead of erroring.

/// Seeded FNV-1a over `bytes`.
///
/// The seed is folded in first so distinct `hash_seed` configurations
/// produce unrelated ring layouts from the same key population.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (splitmix64 tail) so short keys still spread over
    // the whole ring.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    /// Sorted `(point, shard)` pairs for every *live* shard.
    points: Vec<(u64, usize)>,
    /// Live flags indexed by shard id.
    live: Vec<bool>,
}

impl HashRing {
    /// Default virtual points per shard.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds a ring with `shards` live shards and `vnodes` virtual
    /// points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `vnodes == 0`.
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one virtual point per shard");
        let mut ring = HashRing { seed, vnodes, points: Vec::new(), live: vec![false; shards] };
        for shard in 0..shards {
            ring.insert(shard);
        }
        ring
    }

    /// The virtual points for one shard, derived only from the seed and
    /// the shard id — stable across evict/insert cycles.
    fn shard_points(&self, shard: usize) -> impl Iterator<Item = (u64, usize)> + '_ {
        (0..self.vnodes).map(move |v| {
            let mut label = [0u8; 16];
            label[..8].copy_from_slice(&(shard as u64).to_le_bytes());
            label[8..].copy_from_slice(&(v as u64).to_le_bytes());
            (fnv1a(self.seed ^ 0x5347_5249_4e47, &label), shard)
        })
    }

    /// (Re-)inserts a shard's virtual points. Idempotent.
    pub fn insert(&mut self, shard: usize) {
        if shard >= self.live.len() {
            self.live.resize(shard + 1, false);
        }
        if self.live[shard] {
            return;
        }
        self.live[shard] = true;
        let pts: Vec<_> = self.shard_points(shard).collect();
        self.points.extend(pts);
        self.points.sort_unstable();
    }

    /// Removes a shard's virtual points (health-based eviction).
    /// Idempotent; the ring may become empty.
    pub fn evict(&mut self, shard: usize) {
        if shard >= self.live.len() || !self.live[shard] {
            return;
        }
        self.live[shard] = false;
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` is currently live.
    pub fn is_live(&self, shard: usize) -> bool {
        self.live.get(shard).copied().unwrap_or(false)
    }

    /// Number of live shards.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Routes a key to a live shard: the owner of the first virtual
    /// point clockwise from the key's hash. Returns `None` when every
    /// shard is evicted. The empty key routes like any other key.
    pub fn route(&self, key: &[u8]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(self.seed, key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("request-key-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(1, HashRing::DEFAULT_VNODES, 42);
        for key in keys(100) {
            assert_eq!(ring.route(&key), Some(0));
        }
        assert_eq!(ring.route(b""), Some(0));
    }

    #[test]
    fn empty_key_is_deterministic_and_legal() {
        let ring = HashRing::new(4, HashRing::DEFAULT_VNODES, 7);
        let first = ring.route(b"").expect("empty key routes");
        for _ in 0..10 {
            assert_eq!(ring.route(b""), Some(first));
        }
        // A different seed may (and here does, chosen so) place it
        // elsewhere — the route is a function of the configuration, not
        // a hardcoded fallback shard.
        let reseeded = HashRing::new(4, HashRing::DEFAULT_VNODES, 8);
        let _ = reseeded.route(b"").expect("still routes");
    }

    #[test]
    fn eviction_moves_only_the_evicted_shards_keys() {
        // The consistent-hashing contract: removing shard `e` must not
        // re-route any key that was NOT on shard `e`. Checked for every
        // shard over a few hundred keys and two seeds.
        for seed in [3u64, 0xDEAD_BEEF] {
            let full = HashRing::new(5, HashRing::DEFAULT_VNODES, seed);
            let keys = keys(400);
            let before: Vec<usize> = keys.iter().map(|k| full.route(k).unwrap()).collect();
            for evicted in 0..5 {
                let mut ring = full.clone();
                ring.evict(evicted);
                for (key, &was) in keys.iter().zip(&before) {
                    let now = ring.route(key).unwrap();
                    if was != evicted {
                        assert_eq!(now, was, "key {key:?} moved off surviving shard {was}");
                    } else {
                        assert_ne!(now, evicted, "key still routed to evicted shard");
                    }
                }
            }
        }
    }

    #[test]
    fn reinsert_restores_the_original_placement() {
        let original = HashRing::new(4, HashRing::DEFAULT_VNODES, 11);
        let mut ring = original.clone();
        ring.evict(2);
        ring.insert(2);
        for key in keys(200) {
            assert_eq!(ring.route(&key), original.route(&key));
        }
    }

    #[test]
    fn load_is_roughly_uniform() {
        let shards = 4;
        let ring = HashRing::new(shards, HashRing::DEFAULT_VNODES, 99);
        let mut counts = vec![0usize; shards];
        for key in keys(4000) {
            counts[ring.route(&key).unwrap()] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance is 1000 per shard; vnode placement noise
            // should stay well inside a factor of two.
            assert!((500..=2000).contains(&count), "shard {shard} got {count} of 4000 keys");
        }
    }

    #[test]
    fn all_evicted_routes_nowhere() {
        let mut ring = HashRing::new(2, 8, 1);
        ring.evict(0);
        ring.evict(1);
        assert_eq!(ring.route(b"abc"), None);
        assert_eq!(ring.live_count(), 0);
    }
}
