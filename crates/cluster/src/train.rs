//! Synchronous data-parallel SGD across ranks: every rank processes its
//! contiguous block of each global batch, the gradients all-reduce over
//! the ring (or tree), and **every rank applies the identical update**
//! — so weights never travel after startup and losses are bit-identical
//! to the single-process `spg_convnet::Trainer` on the same seed.
//!
//! The per-batch arithmetic replicates `Trainer::train_inline` *exactly*
//! (same shuffle per epoch, same per-sample forward/backward, same f32
//! accumulation association via the ordered ring, same momentum update
//! expression), which the `train_cluster_bitident` tests pin for 1, 2,
//! 3, and 4 ranks against the pool.
//!
//! # Fault recovery
//!
//! A rank mutates its [`RankState`] only at batch commit (after the
//! update applies), so a rank dropping mid-all-reduce leaves every
//! surviving rank with a consistent committed state and a typed
//! [`ClusterError::RingFault`]. The in-process driver
//! [`train_in_proc`] then replays: it takes the state with the most
//! committed batches (all survivors agree — updates are synchronous),
//! respawns every rank from it, and resumes at the faulted batch.
//! Because the resumed fold is the same arithmetic from the same state,
//! the recovered run's losses are bit-identical to a fault-free run —
//! the distributed analogue of PR 4's in-order sample replay.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use spg_convnet::data::Dataset;
use spg_convnet::workspace::Workspace;
use spg_convnet::{io, EpochStats, Network, TrainerConfig};
use spg_tensor::Tensor;

use crate::allreduce::{
    ring_allreduce, tree_allreduce, AllReduce, BatchAcc, PeerLink, RingLink, SampleGrad,
};
use crate::ClusterError;

/// A deterministic mid-all-reduce fault drill: the named rank drops its
/// ring links (as a killed process would) right before the all-reduce
/// of the named batch. Always armed when configured — the drill is
/// plain configuration, no cargo feature required, mirroring the
/// `--inject-fault` CLI style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainFault {
    /// Rank that drops.
    pub rank: usize,
    /// Epoch (1-based) of the drop.
    pub epoch: usize,
    /// Batch index within the epoch.
    pub batch: usize,
}

impl TrainFault {
    /// Parses `"RANK:EPOCH:BATCH"` (e.g. `"1:1:2"`).
    pub fn parse(s: &str) -> Option<TrainFault> {
        let mut it = s.split(':');
        let rank = it.next()?.parse().ok()?;
        let epoch = it.next()?.parse().ok()?;
        let batch = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(TrainFault { rank, epoch, batch })
    }
}

/// The communication fabric one rank trains over.
pub enum Comm {
    /// Single rank: no communication at all.
    Solo,
    /// Ring neighbors (UDS or TCP stream halves).
    Ring {
        /// Stream from the previous rank.
        rx_prev: Box<dyn Read + Send>,
        /// Stream to the next rank.
        tx_next: Box<dyn Write + Send>,
    },
    /// Full(-enough) mesh for the binomial tree, indexed by peer rank.
    Mesh(Vec<Option<Box<dyn PeerLink + Send>>>),
}

/// Per-rank training options.
#[derive(Debug, Clone)]
pub struct RankOptions {
    /// This rank.
    pub rank: usize,
    /// Total rank count.
    pub world: usize,
    /// All-reduce algorithm (must match [`Comm`]: ring wants
    /// [`Comm::Ring`], tree wants [`Comm::Mesh`]).
    pub algo: AllReduce,
    /// Floats per wire chunk.
    pub chunk_floats: usize,
    /// Optional deterministic fault drill.
    pub fault: Option<TrainFault>,
}

/// Everything a rank has durably committed: weights, optimizer state,
/// epoch-statistics accumulators, and the resume position. Mutated only
/// after a batch's update has been applied.
#[derive(Debug, Clone)]
pub struct RankState {
    /// Batches fully applied since training started.
    pub committed_batches: u64,
    /// Epoch (1-based) to resume at.
    pub next_epoch: usize,
    /// Batch index within `next_epoch` to resume at.
    pub next_batch: usize,
    /// Weight snapshot (`spg_convnet::io` format) at the last commit.
    pub weights: Vec<u8>,
    /// Momentum velocity at the last commit.
    pub velocity: Vec<Tensor>,
    /// Partial epoch accumulator: loss sum.
    pub epoch_loss_sum: f64,
    /// Partial epoch accumulator: correct predictions.
    pub epoch_correct: usize,
    /// Partial epoch accumulator: per-conv-layer sparsity sums.
    pub epoch_sparsity_sums: Vec<f64>,
    /// Partial epoch accumulator: samples absorbed.
    pub epoch_samples: usize,
    /// Stats of every completed epoch.
    pub stats: Vec<EpochStats>,
}

impl RankState {
    /// Fresh state at the start of training for `net`.
    pub fn fresh(net: &Network) -> Self {
        let mut weights = Vec::new();
        io::save_weights(net, &mut weights).expect("in-memory weight snapshot");
        RankState {
            committed_batches: 0,
            next_epoch: 1,
            next_batch: 0,
            weights,
            velocity: net.layers().iter().map(|l| Tensor::zeros(l.param_count())).collect(),
            epoch_loss_sum: 0.0,
            epoch_correct: 0,
            epoch_sparsity_sums: vec![0.0; conv_layer_indices(net).len()],
            epoch_samples: 0,
            stats: Vec::new(),
        }
    }
}

/// Indices of the conv layers (the sparsity series), as the pool
/// computes them.
fn conv_layer_indices(net: &Network) -> Vec<usize> {
    net.layers().iter().enumerate().filter_map(|(i, l)| l.conv_spec().map(|_| i)).collect()
}

/// Per-layer parameter counts and the flattened total.
fn param_layout(net: &Network) -> (Vec<usize>, usize) {
    let counts: Vec<usize> = net.layers().iter().map(|l| l.param_count()).collect();
    let total = counts.iter().sum();
    (counts, total)
}

/// This rank's contiguous block `[start, end)` of a `batch_len`-sample
/// batch: blocks partition the batch in rank order, sized as evenly as
/// possible (first `batch_len % world` ranks get one extra).
pub fn block_bounds(batch_len: usize, world: usize, rank: usize) -> (usize, usize) {
    let base = batch_len / world;
    let extra = batch_len % world;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    (start, start + len)
}

/// One sample forward + backward — the pool's `process_sample`, via the
/// public `Network` API.
fn process_sample(net: &Network, data: &Dataset, i: usize, ws: &mut Workspace) -> (f32, bool) {
    net.forward_into(data.image(i).as_slice(), ws);
    let label = data.label(i);
    let (loss, loss_grad) = Network::loss_and_gradient(ws.trace.logits(), label);
    let logits = ws.trace.logits();
    let pred = (0..logits.len()).max_by(|&a, &b| logits[a].total_cmp(&logits[b])).unwrap_or(0);
    net.backward_into(loss_grad.as_slice(), ws);
    (loss, pred == label)
}

/// Flattens the workspace's per-layer gradients in layer order.
fn flatten_grads(ws: &Workspace, out: &mut Vec<f32>) {
    out.clear();
    for g in &ws.param_grads {
        out.extend_from_slice(g.as_slice());
    }
}

/// Splits a flattened gradient vector back into per-layer tensors.
fn unflatten(flat: &[f32], counts: &[usize]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(counts.len());
    let mut off = 0;
    for &n in counts {
        let mut t = Tensor::zeros(n);
        t.as_mut_slice().copy_from_slice(&flat[off..off + n]);
        off += n;
        out.push(t);
    }
    out
}

/// Applies one reduced batch — the exact update expressions of the
/// pool's `apply_batch`, so every f32 rounding matches.
fn apply_batch(
    net: &mut Network,
    velocity: &mut [Tensor],
    acc: &BatchAcc,
    batch_len: usize,
    counts: &[usize],
    trainer: &TrainerConfig,
) {
    let grads = unflatten(&acc.grads, counts);
    let scale = batch_len as f32;
    if trainer.momentum > 0.0 {
        for (v, g) in velocity.iter_mut().zip(&grads) {
            for (v, g) in v.iter_mut().zip(g.iter()) {
                *v = trainer.momentum * *v + g / scale;
            }
        }
        net.apply_gradient_slices(velocity, trainer.learning_rate, 1.0);
    } else {
        net.apply_gradient_slices(&grads, trainer.learning_rate, scale);
    }
}

/// Runs one rank of the synchronous data-parallel training loop.
///
/// `state` carries committed progress in and out: on success it holds
/// the final state; on a typed error it holds the last *committed*
/// state, from which the driver replays deterministically. The returned
/// stats (on success) equal `state.stats`.
///
/// # Errors
///
/// [`ClusterError::RingFault`] when a peer drops mid-all-reduce (or
/// this rank's own fault drill fires), [`ClusterError::Protocol`] on
/// wire sequence violations, [`ClusterError::Config`] on a
/// topology/config mismatch.
pub fn run_rank(
    net: &mut Network,
    data: &mut Dataset,
    trainer: &TrainerConfig,
    opts: &RankOptions,
    comm: &mut Comm,
    state: &mut RankState,
) -> Result<Vec<EpochStats>, ClusterError> {
    if opts.world == 0 || opts.rank >= opts.world {
        return Err(ClusterError::Config {
            detail: format!("rank {} out of range for world {}", opts.rank, opts.world),
        });
    }
    if matches!((&*comm, opts.algo), (Comm::Mesh(_), AllReduce::Ring))
        || matches!((&*comm, opts.algo), (Comm::Ring { .. }, AllReduce::Tree))
    {
        return Err(ClusterError::Config {
            detail: "all-reduce algorithm does not match the communication fabric".to_string(),
        });
    }

    io::load_weights(net, state.weights.as_slice())
        .map_err(|e| ClusterError::Config { detail: format!("restoring rank state: {e}") })?;
    let mut velocity = state.velocity.clone();
    let conv_layers = conv_layer_indices(net);
    let (counts, grad_len) = param_layout(net);
    let mut ws = Workspace::for_network(net);
    let mut flat = Vec::with_capacity(grad_len);

    let resume_epoch = state.next_epoch;
    // Epoch shuffles permute the dataset *in place*, composing across
    // epochs; `data` arrives in original order, so a resume must replay
    // the completed epochs' permutations first.
    for e in 1..resume_epoch {
        data.shuffle(trainer.shuffle_seed.wrapping_add(e as u64));
    }
    for epoch in resume_epoch..=trainer.epochs {
        let _telemetry = spg_telemetry::scope("cluster.trainer", spg_telemetry::Phase::Other);
        data.shuffle(trainer.shuffle_seed.wrapping_add(epoch as u64));
        let start = Instant::now();
        let start_batch = if epoch == resume_epoch { state.next_batch } else { 0 };
        // Mid-epoch resume restores the partial epoch accumulator; a
        // fresh epoch starts from zero.
        let (mut loss_sum, mut correct, mut sparsity_sums, mut samples_seen) = if start_batch > 0 {
            (
                state.epoch_loss_sum,
                state.epoch_correct,
                state.epoch_sparsity_sums.clone(),
                state.epoch_samples,
            )
        } else {
            (0.0, 0, vec![0.0; conv_layers.len()], 0)
        };

        let indices: Vec<usize> = (0..data.len()).collect();
        let epoch_u32 = u32::try_from(epoch).expect("epoch fits u32");
        for (batch_no, batch) in indices.chunks(trainer.batch_size).enumerate() {
            if batch_no < start_batch {
                continue;
            }
            if let Some(f) = opts.fault {
                if f.rank == opts.rank && f.epoch == epoch && f.batch == batch_no {
                    // Dropping out here (links close when the caller
                    // drops Comm) is what a killed worker looks like to
                    // its neighbors: their reads fail mid-all-reduce.
                    return Err(ClusterError::RingFault {
                        rank: opts.rank,
                        epoch,
                        batch: batch_no,
                        message: "injected fault: rank dropped before all-reduce".to_string(),
                    });
                }
            }
            let (s0, s1) = block_bounds(batch.len(), opts.world, opts.rank);
            let mut block = Vec::with_capacity(s1 - s0);
            for &i in &batch[s0..s1] {
                let (loss, ok) = process_sample(net, data, i, &mut ws);
                flatten_grads(&ws, &mut flat);
                block.push(SampleGrad {
                    grads: flat.clone(),
                    loss,
                    correct: ok,
                    sparsity: conv_layers.iter().map(|&li| ws.grad_sparsity[li]).collect(),
                });
            }
            let batch_u32 = u32::try_from(batch_no).expect("batch index fits u32");
            let acc = match comm {
                Comm::Solo => {
                    let mut link = RingLink {
                        rank: 0,
                        world: 1,
                        rx_prev: &mut std::io::empty(),
                        tx_next: &mut std::io::sink(),
                    };
                    ring_allreduce(
                        &mut link,
                        epoch_u32,
                        batch_u32,
                        &block,
                        grad_len,
                        conv_layers.len(),
                        opts.chunk_floats,
                    )?
                }
                Comm::Ring { rx_prev, tx_next } => {
                    let mut link = RingLink {
                        rank: opts.rank,
                        world: opts.world,
                        rx_prev: rx_prev.as_mut(),
                        tx_next: tx_next.as_mut(),
                    };
                    ring_allreduce(
                        &mut link,
                        epoch_u32,
                        batch_u32,
                        &block,
                        grad_len,
                        conv_layers.len(),
                        opts.chunk_floats,
                    )?
                }
                Comm::Mesh(links) => tree_allreduce(
                    opts.rank,
                    opts.world,
                    links,
                    epoch_u32,
                    batch_u32,
                    &block,
                    grad_len,
                    conv_layers.len(),
                    opts.chunk_floats,
                )?,
            };

            // Same order as the pool: absorb into the epoch accumulator,
            // then apply the update.
            loss_sum += acc.loss_sum;
            correct += usize::try_from(acc.correct).expect("correct count fits usize");
            for (dst, src) in sparsity_sums.iter_mut().zip(&acc.sparsity_sums) {
                *dst += src;
            }
            samples_seen += batch.len();
            apply_batch(net, &mut velocity, &acc, batch.len(), &counts, trainer);

            // Commit: everything a replay needs to resume from *after*
            // this batch.
            state.committed_batches += 1;
            state.next_epoch = epoch;
            state.next_batch = batch_no + 1;
            state.weights.clear();
            io::save_weights(net, &mut state.weights).expect("in-memory weight snapshot");
            state.velocity.clone_from(&velocity);
            state.epoch_loss_sum = loss_sum;
            state.epoch_correct = correct;
            state.epoch_sparsity_sums.clone_from(&sparsity_sums);
            state.epoch_samples = samples_seen;
        }

        // The pool's `EpochAcc::into_stats` expressions, verbatim.
        let stats = EpochStats {
            epoch,
            mean_loss: loss_sum / data.len() as f64,
            accuracy: correct as f64 / data.len() as f64,
            conv_grad_sparsity: sparsity_sums
                .iter()
                .map(|s| s / samples_seen.max(1) as f64)
                .collect(),
            images_per_sec: data.len() as f64 / start.elapsed().as_secs_f64().max(1e-9),
        };
        state.stats.push(stats);
        state.next_epoch = epoch + 1;
        state.next_batch = 0;
        state.epoch_loss_sum = 0.0;
        state.epoch_correct = 0;
        state.epoch_sparsity_sums.fill(0.0);
        state.epoch_samples = 0;
    }
    Ok(state.stats.clone())
}

/// Options for the in-process multi-rank driver.
#[derive(Debug, Clone)]
pub struct InProcTrainOptions {
    /// Rank count.
    pub world: usize,
    /// All-reduce algorithm.
    pub algo: AllReduce,
    /// Floats per wire chunk.
    pub chunk_floats: usize,
    /// How many whole-cluster replays a mid-all-reduce fault may burn
    /// before the typed error surfaces to the caller.
    pub restart_budget: usize,
    /// Base backoff before a replay (doubles per consecutive restart).
    pub restart_backoff: Duration,
    /// Optional deterministic fault drill (fires on the first attempt
    /// only, like a one-shot `FaultPlan`).
    pub fault: Option<TrainFault>,
}

impl Default for InProcTrainOptions {
    fn default() -> Self {
        InProcTrainOptions {
            world: 2,
            algo: AllReduce::Ring,
            chunk_floats: 1024,
            restart_budget: 2,
            restart_backoff: Duration::from_millis(1),
            fault: None,
        }
    }
}

/// Builds the ring socketpairs for `world` in-process ranks: element
/// `r` is `(rx_prev, tx_next)` for rank `r`.
fn ring_fabric(world: usize) -> std::io::Result<Vec<Comm>> {
    use std::os::unix::net::UnixStream;
    let mut txs: Vec<Option<UnixStream>> = (0..world).map(|_| None).collect();
    let mut rxs: Vec<Option<UnixStream>> = (0..world).map(|_| None).collect();
    for r in 0..world {
        let (a, b) = UnixStream::pair()?;
        txs[r] = Some(a);
        rxs[(r + 1) % world] = Some(b);
    }
    Ok(txs
        .into_iter()
        .zip(rxs)
        .map(|(tx, rx)| Comm::Ring {
            rx_prev: Box::new(rx.expect("fabric complete")),
            tx_next: Box::new(tx.expect("fabric complete")),
        })
        .collect())
}

/// Builds the socketpair mesh for the tree algorithm.
fn mesh_fabric(world: usize) -> std::io::Result<Vec<Comm>> {
    use std::os::unix::net::UnixStream;
    let mut links: Vec<Vec<Option<Box<dyn PeerLink + Send>>>> =
        (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
    let pairs = (0..world).flat_map(|a| (a + 1..world).map(move |b| (a, b)));
    for (a, b) in pairs {
        let (sa, sb) = UnixStream::pair()?;
        links[a][b] = Some(Box::new(sa));
        links[b][a] = Some(Box::new(sb));
    }
    Ok(links.into_iter().map(Comm::Mesh).collect())
}

/// Trains `world` in-process ranks (threads over Unix socketpairs) with
/// synchronous data-parallel SGD, recovering deterministically from
/// mid-all-reduce faults.
///
/// `factory` must deterministically construct the *same* initial
/// network on every call (e.g. seeded construction); every rank also
/// receives its own clone of `data`. On success the returned stats are
/// bit-identical (mean loss, accuracy, sparsity) to
/// `Trainer::train` with the same `TrainerConfig` on one process.
///
/// # Errors
///
/// The typed fault of the first failing rank once the restart budget is
/// spent; [`ClusterError::Config`] for topology/factory errors.
pub fn train_in_proc(
    factory: &(dyn Fn() -> Result<Network, spg_error::Error> + Sync),
    data: &Dataset,
    trainer: &TrainerConfig,
    opts: &InProcTrainOptions,
) -> Result<Vec<EpochStats>, ClusterError> {
    if opts.world == 0 {
        return Err(ClusterError::Config { detail: "world size must be positive".to_string() });
    }
    let seed_net =
        factory().map_err(|e| ClusterError::Config { detail: format!("network factory: {e}") })?;
    let fresh = RankState::fresh(&seed_net);
    drop(seed_net);
    let mut states: Vec<RankState> = vec![fresh; opts.world];

    for attempt in 0..=opts.restart_budget {
        let fault = if attempt == 0 { opts.fault } else { None };
        let fabrics: Vec<Comm> = if opts.world == 1 {
            vec![Comm::Solo]
        } else {
            match opts.algo {
                AllReduce::Ring => ring_fabric(opts.world),
                AllReduce::Tree => mesh_fabric(opts.world),
            }
            .map_err(|e| ClusterError::Config { detail: format!("building fabric: {e}") })?
        };

        let outcomes: Vec<(RankState, Result<Vec<EpochStats>, ClusterError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = fabrics
                    .into_iter()
                    .enumerate()
                    .zip(states.iter())
                    .map(|((rank, mut comm), state)| {
                        let mut state = state.clone();
                        let mut data = data.clone();
                        scope.spawn(move || {
                            let opts = RankOptions {
                                rank,
                                world: opts.world,
                                algo: opts.algo,
                                chunk_floats: opts.chunk_floats,
                                fault,
                            };
                            let result = match factory() {
                                Ok(mut net) => run_rank(
                                    &mut net, &mut data, trainer, &opts, &mut comm, &mut state,
                                ),
                                Err(e) => Err(ClusterError::Config {
                                    detail: format!("network factory: {e}"),
                                }),
                            };
                            (state, result)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
            });

        let mut first_err = None;
        for (_, result) in &outcomes {
            if let Err(e) = result {
                first_err.get_or_insert_with(|| e.clone());
            }
        }
        match first_err {
            None => {
                // All ranks finished; they must agree bit-for-bit.
                let reference: Vec<u64> = outcomes[0]
                    .1
                    .as_ref()
                    .expect("checked ok")
                    .iter()
                    .map(|s| s.mean_loss.to_bits())
                    .collect();
                for (rank, (_, result)) in outcomes.iter().enumerate().skip(1) {
                    let got: Vec<u64> = result
                        .as_ref()
                        .expect("checked ok")
                        .iter()
                        .map(|s| s.mean_loss.to_bits())
                        .collect();
                    if got != reference {
                        return Err(ClusterError::Protocol {
                            rank,
                            detail: "ranks disagree on epoch losses after all-reduce".to_string(),
                        });
                    }
                }
                let (_, result) = outcomes.into_iter().next().expect("world >= 1");
                return result;
            }
            Some(err) => {
                spg_telemetry::record_counter("cluster.train.faults", 1);
                if attempt == opts.restart_budget {
                    return Err(err);
                }
                spg_telemetry::record_counter("cluster.train.restarts", 1);
                // Resume from the most-advanced committed state; with
                // synchronous updates every committed state at the same
                // count is identical, so "most advanced" is unique.
                let best = outcomes
                    .into_iter()
                    .map(|(state, _)| state)
                    .max_by_key(|s| s.committed_batches)
                    .expect("world >= 1");
                states = vec![best; opts.world];
                let backoff = spg_sync::backoff_delay(opts.restart_backoff, attempt + 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    unreachable!("loop returns on success or exhausted budget")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spg_convnet::layer::{ConvLayer, FcLayer, MaxPoolLayer, ReluLayer};
    use spg_convnet::{ConvSpec, Trainer};
    use spg_tensor::Shape3;

    fn make_net() -> Result<Network, spg_error::Error> {
        let mut rng = SmallRng::seed_from_u64(42);
        let spec = ConvSpec::new(1, 8, 8, 4, 3, 3, 1, 1).unwrap();
        let out = spec.output_shape();
        Network::new(vec![
            Box::new(ConvLayer::new(spec, &mut rng)),
            Box::new(ReluLayer::new(out.len())),
            Box::new(MaxPoolLayer::new(Shape3::new(out.c, out.h, out.w), 2).unwrap()),
            Box::new(FcLayer::new(4 * 3 * 3, 3, &mut rng)),
        ])
        .map_err(|e| spg_error::Error::new(spg_error::ErrorKind::InvalidNetwork, e.to_string()))
    }

    fn make_data() -> Dataset {
        Dataset::synthetic(Shape3::new(1, 8, 8), 3, 24, 0.15, 77)
    }

    fn trainer_cfg() -> TrainerConfig {
        TrainerConfig { epochs: 3, momentum: 0.9, batch_size: 8, ..TrainerConfig::default() }
    }

    fn pool_loss_bits() -> Vec<u64> {
        let mut net = make_net().unwrap();
        let mut data = make_data();
        Trainer::new(trainer_cfg())
            .train(&mut net, &mut data)
            .iter()
            .map(|s| s.mean_loss.to_bits())
            .collect()
    }

    #[test]
    fn block_bounds_partition_every_batch() {
        for len in 0..20 {
            for world in 1..6 {
                let mut next = 0;
                for rank in 0..world {
                    let (s, e) = block_bounds(len, world, rank);
                    assert_eq!(s, next, "len {len} world {world} rank {rank}");
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn ring_cluster_is_bit_identical_to_the_pool() {
        let expect = pool_loss_bits();
        for world in [1usize, 2, 3, 4] {
            let opts = InProcTrainOptions { world, ..Default::default() };
            let stats = train_in_proc(&make_net, &make_data(), &trainer_cfg(), &opts).unwrap();
            let got: Vec<u64> = stats.iter().map(|s| s.mean_loss.to_bits()).collect();
            assert_eq!(got, expect, "world {world} diverged from the single-process pool");
        }
    }

    #[test]
    fn small_chunks_do_not_change_the_bits() {
        let expect = pool_loss_bits();
        let opts = InProcTrainOptions { world: 3, chunk_floats: 17, ..Default::default() };
        let stats = train_in_proc(&make_net, &make_data(), &trainer_cfg(), &opts).unwrap();
        let got: Vec<u64> = stats.iter().map(|s| s.mean_loss.to_bits()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn tree_variant_is_deterministic() {
        let run = || {
            let opts = InProcTrainOptions { world: 4, algo: AllReduce::Tree, ..Default::default() };
            train_in_proc(&make_net, &make_data(), &trainer_cfg(), &opts)
                .unwrap()
                .iter()
                .map(|s| s.mean_loss.to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run(), "tree all-reduce must be run-to-run deterministic");
    }

    #[test]
    fn mid_allreduce_fault_recovers_bit_identically() {
        let expect = pool_loss_bits();
        let opts = InProcTrainOptions {
            world: 3,
            fault: Some(TrainFault { rank: 1, epoch: 2, batch: 1 }),
            ..Default::default()
        };
        let stats = train_in_proc(&make_net, &make_data(), &trainer_cfg(), &opts).unwrap();
        let got: Vec<u64> = stats.iter().map(|s| s.mean_loss.to_bits()).collect();
        assert_eq!(got, expect, "recovered run diverged from the fault-free pool run");
    }

    #[test]
    fn exhausted_restart_budget_surfaces_the_typed_fault() {
        // A fault injected on every attempt: impossible here (the drill
        // is one-shot), so instead spend the budget at zero with a
        // first-attempt fault.
        let opts = InProcTrainOptions {
            world: 2,
            restart_budget: 0,
            fault: Some(TrainFault { rank: 0, epoch: 1, batch: 0 }),
            ..Default::default()
        };
        let err = train_in_proc(&make_net, &make_data(), &trainer_cfg(), &opts).unwrap_err();
        assert!(matches!(err, ClusterError::RingFault { .. }), "expected RingFault, got {err:?}");
    }

    #[test]
    fn fault_parse_round_trips() {
        assert_eq!(TrainFault::parse("1:2:3"), Some(TrainFault { rank: 1, epoch: 2, batch: 3 }));
        assert_eq!(TrainFault::parse("1:2"), None);
        assert_eq!(TrainFault::parse("a:2:3"), None);
        assert_eq!(TrainFault::parse("1:2:3:4"), None);
    }
}
