//! Synchronization support for the persistent worker pools: lock helpers
//! that *recover* from poisoning instead of propagating it, and a
//! deterministic fault-injection harness for supervision testing.
//!
//! # Poison recovery
//!
//! `std` poisons a `Mutex`/`RwLock` when a thread panics while holding the
//! guard, and every later `lock()` returns `Err(PoisonError)`. The idiomatic
//! `.expect("poisoned")` response turns one worker's panic into a
//! process-wide cascade: every other worker that touches the same lock
//! aborts too. The pools in spg-serve and spg-convnet instead confine a
//! panic with `catch_unwind` at the worker-batch boundary and repair any
//! invariants themselves, so for them poisoning carries no information —
//! these helpers simply take the guard back with
//! [`PoisonError::into_inner`].
//!
//! Callers that recover a poisoned guard must be able to tolerate the
//! protected data being mid-update; every pool in this workspace only
//! holds locks around operations that are atomic at the data level
//! (queue push/pop, whole-buffer reads), which is what makes recovery
//! sound here.
//!
//! # Fault injection
//!
//! [`FaultPlan`] describes one deterministic fault — "panic on the Nth
//! batch of worker K" — and [`FaultInjector`] carries it into the pools.
//! The panic site only exists when the `fault-injection` cargo feature is
//! enabled; release builds without the feature compile the injector down
//! to a no-op.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Duration;

/// Locks a mutex, recovering the guard if a previous holder panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a read guard, recovering from poisoning.
pub fn read<T>(rwlock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a write guard, recovering from poisoning.
pub fn write<T>(rwlock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on a condvar, recovering the reacquired guard from poisoning.
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Waits on a condvar with a timeout, recovering the reacquired guard
/// from poisoning. Returns the guard and whether the wait timed out.
pub fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, dur) {
        Ok((guard, timeout)) => (guard, timeout.timed_out()),
        Err(poisoned) => {
            let (guard, timeout) = poisoned.into_inner();
            (guard, timeout.timed_out())
        }
    }
}

/// Best-effort extraction of a panic payload's message, for turning a
/// caught worker panic into a typed error.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Supervisor backoff schedule: `base * 2^(n-1)` before the `n`-th
/// restart of the same worker, capped at one second.
///
/// Saturates instead of overflowing at every stage: the exponent is
/// clamped (a restart count in the billions shifts by at most 10), the
/// multiply is saturating, and the cap bounds the result — so extreme
/// `base` or `restart` values degrade to the one-second cap, never to a
/// panic or a wrapped-around near-zero delay.
pub fn backoff_delay(base: Duration, restart: usize) -> Duration {
    let factor = 1u32 << restart.saturating_sub(1).min(10);
    base.saturating_mul(factor).min(Duration::from_secs(1))
}

/// A monotone event counter that threads can park on: the supervision
/// paths `bump()` it when an externally observable event happens (a
/// worker restart, a shard eviction), and tests `wait_until(n)` instead
/// of sleep-polling — turning "sleep 200ms and hope the respawn
/// happened" into "block until the nth respawn is observed", which is
/// both faster and immune to slow-CI flakiness.
///
/// The wait sits in a predicate loop (spurious wakeups re-check), and
/// all lock traffic goes through the poison-recovering helpers: a
/// panicking bumper cannot wedge the waiters.
#[derive(Debug, Default)]
pub struct ProgressCounter {
    count: Mutex<u64>,
    changed: Condvar,
}

impl ProgressCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        ProgressCounter::default()
    }

    /// Increment and wake every waiter. Returns the new value.
    pub fn bump(&self) -> u64 {
        let mut count = lock(&self.count);
        *count += 1;
        let now = *count;
        drop(count);
        self.changed.notify_all();
        now
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        *lock(&self.count)
    }

    /// Block until the counter reaches at least `target`.
    pub fn wait_until(&self, target: u64) -> u64 {
        let mut count = lock(&self.count);
        while *count < target {
            count = wait(&self.changed, count);
        }
        *count
    }

    /// Block until the counter reaches `target` or `dur` elapses.
    /// Returns `true` when the target was reached. The deadline is
    /// computed up front so spurious wakeups cannot extend it.
    pub fn wait_until_timeout(&self, target: u64, dur: Duration) -> bool {
        let Some(deadline) = std::time::Instant::now().checked_add(dur) else {
            // A duration too large to represent as a deadline is an
            // infinite timeout, not an overflow panic.
            self.wait_until(target);
            return true;
        };
        let mut count = lock(&self.count);
        while *count < target {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            let (guard, timed_out) = wait_timeout(&self.changed, count, left);
            count = guard;
            if timed_out && *count < target {
                return false;
            }
        }
        true
    }
}

/// Sentinel for [`FaultPlan::worker`]: the fault fires on whichever worker
/// first reaches the target batch. Useful when the MPMC queue makes the
/// request-to-worker mapping nondeterministic.
pub const ANY_WORKER: usize = usize::MAX;

/// One deterministic injected fault: panic when worker `worker` starts its
/// `batch`-th unit of work (1-based; a "unit" is a micro-batch for serving
/// workers, a sample job for training workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Target worker index, or [`ANY_WORKER`] for the first worker to get
    /// there.
    pub worker: usize,
    /// 1-based index of the work unit that panics.
    pub batch: u64,
    /// Free-form seed echoed in the panic message so a failure in CI can
    /// be tied back to the exact plan that produced it.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that panics on worker `worker`'s `batch`-th work unit.
    pub fn panic_on(worker: usize, batch: u64) -> Self {
        FaultPlan { worker, batch, seed: 0 }
    }

    /// A plan that panics on the `batch`-th work unit of whichever worker
    /// reaches it first.
    pub fn any_worker(batch: u64) -> Self {
        FaultPlan { worker: ANY_WORKER, batch, seed: 0 }
    }

    /// Replaces the seed, keeping worker/batch.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the current build can actually fire injected faults (the
    /// `fault-injection` cargo feature is enabled).
    pub fn armed() -> bool {
        cfg!(feature = "fault-injection")
    }

    /// Parses a CLI-style spec: `K:N` (worker K, batch N), `any:N`, with
    /// an optional `:SEED` suffix, e.g. `0:3`, `any:2`, `1:4:99`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("fault spec '{spec}' is not K:N, any:N, or K:N:SEED"));
        }
        let worker = if parts[0].eq_ignore_ascii_case("any") {
            ANY_WORKER
        } else {
            parts[0]
                .parse::<usize>()
                .map_err(|_| format!("fault spec '{spec}': worker must be an index or 'any'"))?
        };
        let batch = parts[1]
            .parse::<u64>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| format!("fault spec '{spec}': batch must be a positive integer"))?;
        let seed = match parts.get(2) {
            Some(s) => s
                .parse::<u64>()
                .map_err(|_| format!("fault spec '{spec}': seed must be an integer"))?,
            None => 0,
        };
        Ok(FaultPlan { worker, batch, seed })
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.worker == ANY_WORKER {
            write!(f, "any:{}", self.batch)?;
        } else {
            write!(f, "{}:{}", self.worker, self.batch)?;
        }
        if self.seed != 0 {
            write!(f, ":{}", self.seed)?;
        }
        Ok(())
    }
}

/// Carries a [`FaultPlan`] into a worker pool and fires it exactly once.
///
/// Clones share the one-shot flag, so a pool that hands each worker a
/// clone still injects a single fault for the whole run — and a worker
/// respawned by its supervisor does not re-trip the same plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
    fired: Arc<AtomicBool>,
}

impl FaultInjector {
    /// An injector for `plan`; `None` never fires.
    pub fn new(plan: Option<FaultPlan>) -> Self {
        FaultInjector { plan, fired: Arc::new(AtomicBool::new(false)) }
    }

    /// An injector that never fires.
    pub fn disarmed() -> Self {
        FaultInjector::new(None)
    }

    /// Whether the injected fault has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// The plan this injector carries, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Call at the top of each work unit. Panics iff the build has the
    /// `fault-injection` feature, the plan targets this `(worker, batch)`,
    /// and no clone of this injector has fired yet.
    #[allow(unused_variables)]
    pub fn check(&self, worker: usize, batch: u64) {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = self.plan {
            if (plan.worker == ANY_WORKER || plan.worker == worker)
                && batch == plan.batch
                && !self.fired.swap(true, Ordering::SeqCst)
            {
                panic!(
                    "injected fault (plan {plan}): worker {worker} panicking on work unit {batch}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
        *lock(&mutex) = 8;
        assert_eq!(*lock(&mutex), 8);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let rw = Arc::new(RwLock::new(vec![1, 2, 3]));
        let poisoner = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(read(&rw).len(), 3);
        write(&rw).push(4);
        assert_eq!(read(&rw).len(), 4);
    }

    #[test]
    fn wait_timeout_reports_expiry() {
        let mutex = Mutex::new(());
        let condvar = Condvar::new();
        let guard = lock(&mutex);
        let (_guard, timed_out) = wait_timeout(&condvar, guard, Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(5);
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(5));
        assert_eq!(backoff_delay(base, 2), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(20));
        assert_eq!(backoff_delay(Duration::from_millis(400), 9), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::ZERO, 5), Duration::ZERO);
    }

    #[test]
    fn backoff_saturates_at_extremes() {
        // Regression: each of these once risked a shift/mul overflow.
        // The schedule must clamp, never panic or wrap to near-zero.
        let base = Duration::from_millis(5);
        assert_eq!(backoff_delay(base, usize::MAX), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::MAX, 1), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::MAX, usize::MAX), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::from_nanos(1), 64), Duration::from_nanos(1024));
        assert_eq!(backoff_delay(Duration::ZERO, usize::MAX), Duration::ZERO);
    }

    #[test]
    fn progress_counter_bumps_and_waits() {
        let counter = Arc::new(ProgressCounter::new());
        assert_eq!(counter.get(), 0);
        let waiter = {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || counter.wait_until(3))
        };
        for expect in 1..=3 {
            assert_eq!(counter.bump(), expect);
        }
        assert!(waiter.join().unwrap() >= 3);
        assert!(counter.wait_until_timeout(3, Duration::ZERO), "already reached");
        assert!(!counter.wait_until_timeout(4, Duration::from_millis(5)), "4 never happens");
        assert!(counter.wait_until_timeout(1, Duration::MAX), "unrepresentable deadline waits");
    }

    #[test]
    fn progress_counter_survives_a_panicking_bumper() {
        let counter = Arc::new(ProgressCounter::new());
        let bumper = Arc::clone(&counter);
        let _ = std::thread::spawn(move || {
            bumper.bump();
            panic!("die after bumping");
        })
        .join();
        // The panicking thread held the lock only inside bump(); the
        // counter stays usable and the count it published stays visible.
        assert_eq!(counter.get(), 1);
        assert_eq!(counter.bump(), 2);
        assert_eq!(counter.wait_until(2), 2);
    }

    /// Many threads repeatedly panic *while holding* the helpers' locks;
    /// the poison-recovering helpers must keep every surviving thread
    /// making progress and the protected data consistent. This is the
    /// stress-level complement to the single-poisoner unit tests.
    #[test]
    fn helpers_survive_concurrent_panics() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        const THREADS: usize = 8;
        const ROUNDS: usize = 25;
        let mutex = Arc::new(Mutex::new(0u64));
        let rw = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let mutex = Arc::clone(&mutex);
                let rw = Arc::clone(&rw);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        // Half the acquisitions panic under the guard,
                        // poisoning the locks for everyone else.
                        let poison = (t + round) % 2 == 0;
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let mut guard = lock(&mutex);
                            *guard += 1;
                            if poison {
                                panic!("poison the mutex");
                            }
                        }));
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let mut guard = write(&rw);
                            *guard += 1;
                            if poison {
                                panic!("poison the rwlock");
                            }
                        }));
                        // Readers interleave with the poisoners.
                        let _ = *lock(&mutex);
                        let _ = *read(&rw);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker threads themselves never die");
        }
        // Every increment ran under a recovered guard exactly once:
        // the panics happened *after* the +1, so totals are exact.
        assert_eq!(*lock(&mutex), (THREADS * ROUNDS) as u64);
        assert_eq!(*read(&rw), (THREADS * ROUNDS) as u64);
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(payload.as_ref()), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(payload.as_ref()), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(payload.as_ref()), "worker panicked");
    }

    #[test]
    fn fault_plan_parses_cli_specs() {
        assert_eq!(FaultPlan::parse("0:3").unwrap(), FaultPlan::panic_on(0, 3));
        assert_eq!(FaultPlan::parse("any:2").unwrap(), FaultPlan::any_worker(2));
        assert_eq!(FaultPlan::parse("1:4:99").unwrap(), FaultPlan::panic_on(1, 4).with_seed(99));
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("0:0").is_err(), "batch is 1-based");
        assert!(FaultPlan::parse("a:b:c:d").is_err());
    }

    #[test]
    fn fault_plan_display_round_trips() {
        for spec in ["0:3", "any:2", "1:4:99"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_string(), spec);
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn injector_is_inert_without_the_feature() {
        let injector = FaultInjector::new(Some(FaultPlan::any_worker(1)));
        injector.check(0, 1); // would panic if armed
        assert!(!injector.fired());
    }

    #[cfg(feature = "fault-injection")]
    mod armed {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn injector_fires_exactly_once_across_clones() {
            let injector = FaultInjector::new(Some(FaultPlan::panic_on(1, 2)));
            injector.check(0, 2); // wrong worker
            injector.check(1, 1); // wrong batch
            assert!(!injector.fired());
            let clone = injector.clone();
            assert!(catch_unwind(AssertUnwindSafe(|| clone.check(1, 2))).is_err());
            assert!(injector.fired());
            // A respawned worker re-running the same (worker, batch) must
            // not re-trip the one-shot plan.
            injector.check(1, 2);
        }

        #[test]
        fn any_worker_plan_fires_for_first_arrival() {
            let injector = FaultInjector::new(Some(FaultPlan::any_worker(3)));
            injector.check(5, 2);
            assert!(catch_unwind(AssertUnwindSafe(|| injector.check(5, 3))).is_err());
            injector.check(0, 3); // already fired
        }
    }
}
