//! Benchmark workloads for the spg-CNN reproduction: the exact
//! convolutions of the paper's Table 1 and Table 2, synthetic operand
//! generators, and the error-gradient sparsity curves of Fig. 3b.

#![warn(missing_docs)]

pub mod networks;
pub mod sparsity;
pub mod synth;
pub mod table1;
pub mod table2;
