//! Seeded synthetic operand generators for kernel benchmarks.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spg_convnet::ConvSpec;
use spg_tensor::{Matrix, Tensor};

/// All buffers needed to run one convolution layer's FP and BP phases.
#[derive(Debug, Clone)]
pub struct ConvOperands {
    /// Input activations (CHW).
    pub input: Tensor,
    /// Weights (FCKK).
    pub weights: Tensor,
    /// Backward error gradient (CHW over the output shape), sparsified to
    /// the requested level.
    pub grad_out: Tensor,
}

/// Generates deterministic operands for `spec` with the given
/// error-gradient sparsity.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_workloads::synth::conv_operands;
///
/// let spec = ConvSpec::square(16, 8, 4, 3, 1);
/// let ops = conv_operands(&spec, 0.9, 42);
/// assert_eq!(ops.input.len(), spec.input_shape().len());
/// assert!((ops.grad_out.sparsity() - 0.9).abs() < 0.05);
/// ```
pub fn conv_operands(spec: &ConvSpec, grad_sparsity: f64, seed: u64) -> ConvOperands {
    let mut rng = SmallRng::seed_from_u64(seed);
    let input = Tensor::random_uniform(spec.input_shape().len(), 1.0, &mut rng);
    let weights = Tensor::random_uniform(spec.weight_shape().len(), 0.5, &mut rng);
    let olen = spec.output_shape().len();
    let grad_mat = Matrix::random_sparse(1, olen, grad_sparsity, 1.0, &mut rng);
    ConvOperands { input, weights, grad_out: Tensor::from_vec(grad_mat.into_vec()) }
}

/// Generates a deterministic dense matrix pair for a GEMM benchmark.
pub fn gemm_operands(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = SmallRng::seed_from_u64(seed);
    (Matrix::random_uniform(m, k, 1.0, &mut rng), Matrix::random_uniform(k, n, 1.0, &mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_are_seed_deterministic() {
        let spec = ConvSpec::square(8, 4, 2, 3, 1);
        let a = conv_operands(&spec, 0.5, 7);
        let b = conv_operands(&spec, 0.5, 7);
        assert_eq!(a.input, b.input);
        assert_eq!(a.grad_out, b.grad_out);
        let c = conv_operands(&spec, 0.5, 8);
        assert_ne!(a.input, c.input);
    }

    #[test]
    fn sparsity_is_respected() {
        let spec = ConvSpec::square(32, 16, 4, 3, 1);
        for target in [0.0, 0.5, 0.9, 0.99] {
            let ops = conv_operands(&spec, target, 1);
            assert!(
                (ops.grad_out.sparsity() - target).abs() < 0.05,
                "target {target}, got {}",
                ops.grad_out.sparsity()
            );
        }
    }

    #[test]
    fn gemm_operands_have_requested_shapes() {
        let (a, b) = gemm_operands(3, 5, 7, 2);
        assert_eq!((a.rows(), a.cols()), (3, 7));
        assert_eq!((b.rows(), b.cols()), (7, 5));
    }
}
