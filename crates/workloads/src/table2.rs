//! The per-benchmark convolution layer specifications of the paper's
//! Table 2: ImageNet-22K (Adam), ImageNet-1K (AlexNet), CIFAR-10, and
//! MNIST (LeCun), in `Nx(=Ny), Nf, Nc, Fx(=Fy), sx(=sy)` notation.

use spg_convnet::ConvSpec;

/// One of the four real-world image-recognition benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Adam-ImageNet: 22 000 categories, 262x262 inputs after padding.
    ImageNet22K,
    /// AlexNet: 1 000 categories, 224x224 inputs.
    ImageNet1K,
    /// CIFAR-10: 10 categories, 36x36 inputs after padding.
    Cifar10,
    /// MNIST (LeCun): 10 categories, 28x28 grayscale inputs.
    Mnist,
}

impl Benchmark {
    /// All four benchmarks in the paper's column order.
    pub fn all() -> [Benchmark; 4] {
        [Benchmark::ImageNet22K, Benchmark::ImageNet1K, Benchmark::Cifar10, Benchmark::Mnist]
    }

    /// The name used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::ImageNet22K => "ImageNet 22K",
            Benchmark::ImageNet1K => "ImageNet 1K",
            Benchmark::Cifar10 => "CIFAR-10",
            Benchmark::Mnist => "MNIST",
        }
    }

    /// The benchmark's convolution layers, in network order (Table 2).
    pub fn conv_layers(self) -> Vec<ConvSpec> {
        let sq = ConvSpec::square;
        match self {
            Benchmark::ImageNet22K => vec![
                sq(262, 120, 3, 7, 2),
                sq(64, 250, 120, 5, 2),
                sq(15, 400, 250, 3, 1),
                sq(13, 400, 400, 3, 1),
                sq(11, 600, 400, 3, 1),
            ],
            Benchmark::ImageNet1K => vec![
                sq(224, 96, 3, 11, 4),
                sq(55, 256, 96, 5, 1),
                sq(27, 384, 256, 3, 1),
                sq(13, 256, 192, 3, 1),
            ],
            Benchmark::Cifar10 => vec![sq(36, 64, 3, 5, 1), sq(8, 64, 64, 5, 1)],
            Benchmark::Mnist => vec![sq(28, 20, 1, 5, 1)],
        }
    }
}

/// `(benchmark, layer index, spec)` for every convolution layer in
/// Table 2 — the x-axis of Fig. 8.
pub fn all_layers() -> Vec<(Benchmark, usize, ConvSpec)> {
    Benchmark::all()
        .into_iter()
        .flat_map(|b| b.conv_layers().into_iter().enumerate().map(move |(i, s)| (b, i, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table2() {
        assert_eq!(Benchmark::ImageNet22K.conv_layers().len(), 5);
        assert_eq!(Benchmark::ImageNet1K.conv_layers().len(), 4);
        assert_eq!(Benchmark::Cifar10.conv_layers().len(), 2);
        assert_eq!(Benchmark::Mnist.conv_layers().len(), 1);
        assert_eq!(all_layers().len(), 12);
    }

    #[test]
    fn alexnet_l0_is_the_famous_stride4_conv() {
        let l0 = Benchmark::ImageNet1K.conv_layers()[0];
        assert_eq!(l0.features(), 96);
        assert_eq!(l0.kx(), 11);
        assert_eq!(l0.sx(), 4);
        assert_eq!(l0.out_w(), 54);
    }

    /// Adjacent Table 2 layers must be geometrically consistent: each
    /// layer's channel count equals the previous layer's feature count —
    /// or half of it, for AlexNet's two-group convolutions (its layer 3
    /// reads 192 of the 384 features, exactly as Table 2 prints).
    #[test]
    fn channel_chains_are_consistent() {
        for b in Benchmark::all() {
            let layers = b.conv_layers();
            for w in layers.windows(2) {
                let ok = w[1].in_c() == w[0].features() || w[1].in_c() * 2 == w[0].features();
                assert!(ok, "{}: channel chain broken", b.label());
            }
        }
    }

    #[test]
    fn mnist_matches_lecun_geometry() {
        let l0 = Benchmark::Mnist.conv_layers()[0];
        assert_eq!((l0.in_c(), l0.in_h(), l0.features()), (1, 28, 20));
        assert_eq!(l0.out_h(), 24);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Benchmark::all().iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
