//! The six benchmark convolutions of the paper's Table 1.
//!
//! "These benchmarks were chosen to represent convolutions with high,
//! moderate and low AIT, arching over a full spectrum of convolutions
//! spanned by kernel size and number of features."

use spg_convnet::ConvSpec;
use spg_core::region::{region_pair, Region};

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Convolution ID (0–5) as used throughout the paper's figures.
    pub id: usize,
    /// The convolution.
    pub spec: ConvSpec,
    /// "Intrinsic AIT" as printed in the paper.
    pub paper_intrinsic_ait: f64,
    /// "Unfold+GEMM" AIT as printed in the paper.
    pub paper_unfold_ait: f64,
    /// The dense/sparse region pair printed in the "Region (Reg)" column.
    pub paper_regions: (Region, Region),
}

impl Table1Row {
    /// Intrinsic AIT computed from Eq. 5–8.
    pub fn computed_intrinsic_ait(&self) -> f64 {
        self.spec.intrinsic_ait()
    }

    /// Unfold+GEMM AIT computed with the paper's `|U|` accounting.
    pub fn computed_unfold_ait(&self) -> f64 {
        self.spec.unfold_ait()
    }

    /// Region pair computed by the Fig. 1 classifier.
    pub fn computed_regions(&self) -> (Region, Region) {
        region_pair(&self.spec)
    }
}

/// All six rows of Table 1, in ID order.
///
/// # Example
///
/// ```
/// let rows = spg_workloads::table1::rows();
/// assert_eq!(rows.len(), 6);
/// assert_eq!(rows[1].spec.features(), 1024);
/// ```
pub fn rows() -> Vec<Table1Row> {
    let mk = |id, n, nf, nc, k, intrinsic, unfold, dense, sparse| Table1Row {
        id,
        spec: ConvSpec::square(n, nf, nc, k, 1),
        paper_intrinsic_ait: intrinsic,
        paper_unfold_ait: unfold,
        paper_regions: (dense, sparse),
    };
    vec![
        mk(0, 32, 32, 32, 4, 362.0, 25.0, Region::R4, Region::R5),
        mk(1, 64, 1024, 512, 2, 2015.0, 725.0, Region::R0, Region::R1),
        mk(2, 256, 256, 128, 3, 1510.0, 226.0, Region::R2, Region::R3),
        mk(3, 128, 128, 64, 7, 3561.0, 113.0, Region::R2, Region::R3),
        mk(4, 128, 512, 256, 5, 6567.0, 456.0, Region::R2, Region::R3),
        mk(5, 64, 64, 16, 11, 1921.0, 44.0, Region::R4, Region::R5),
    ]
}

/// The benchmark convolution with the given Table 1 ID.
///
/// # Panics
///
/// Panics if `id > 5`.
pub fn by_id(id: usize) -> Table1Row {
    rows().into_iter().find(|r| r.id == id).expect("table 1 has IDs 0-5")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of Table 1: the formulas reproduce the printed
    /// values (intrinsic exactly, unfold within rounding).
    #[test]
    fn computed_values_match_paper() {
        for row in rows() {
            let i_err = (row.computed_intrinsic_ait() - row.paper_intrinsic_ait).abs()
                / row.paper_intrinsic_ait;
            assert!(
                i_err < 0.005,
                "ID {}: intrinsic {} vs {}",
                row.id,
                row.computed_intrinsic_ait(),
                row.paper_intrinsic_ait
            );
            let u_err =
                (row.computed_unfold_ait() - row.paper_unfold_ait).abs() / row.paper_unfold_ait;
            assert!(
                u_err < 0.05,
                "ID {}: unfold {} vs {}",
                row.id,
                row.computed_unfold_ait(),
                row.paper_unfold_ait
            );
            assert_eq!(row.computed_regions(), row.paper_regions, "ID {}", row.id);
        }
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let ids: Vec<usize> = rows().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn by_id_round_trips() {
        assert_eq!(by_id(3).spec.kx(), 7);
    }

    #[test]
    #[should_panic(expected = "IDs 0-5")]
    fn by_id_rejects_out_of_range() {
        by_id(6);
    }
}
