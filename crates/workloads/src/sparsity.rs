//! Error-gradient sparsity across training epochs (the paper's Fig. 3b).
//!
//! Two sources are provided:
//!
//! * [`modeled_curve`] — a parameterized fit of the paper's measured
//!   curves for MNIST, CIFAR, and ImageNet-100: all three exceed 85 %
//!   sparsity from the second epoch and keep rising as the model fits.
//! * [`measured_curve`] — *actual* training of a small CNN on a synthetic
//!   dataset, recording the mean sparsity of the error gradient entering
//!   each conv layer's backward pass per epoch. This demonstrates the
//!   mechanism (confident ReLU gating) rather than assuming it.

use spg_convnet::data::Dataset;
use spg_convnet::layer::{ConvLayer, FcLayer, MaxPoolLayer, ReluLayer};
use spg_convnet::{ConvSpec, Network, Trainer, TrainerConfig};
use spg_tensor::Shape3;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The three benchmarks of Fig. 3b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsityBenchmark {
    /// MNIST digit recognition.
    Mnist,
    /// CIFAR image recognition.
    Cifar,
    /// ImageNet restricted to 100 categories.
    ImageNet100,
}

impl SparsityBenchmark {
    /// All three benchmarks in the figure's legend order.
    pub fn all() -> [SparsityBenchmark; 3] {
        [SparsityBenchmark::Mnist, SparsityBenchmark::Cifar, SparsityBenchmark::ImageNet100]
    }

    /// The legend label used in Fig. 3b.
    pub fn label(self) -> &'static str {
        match self {
            SparsityBenchmark::Mnist => "MNIST",
            SparsityBenchmark::Cifar => "CIFAR",
            SparsityBenchmark::ImageNet100 => "ImageNet100",
        }
    }

    /// Fit parameters `(epoch-1 sparsity, asymptotic sparsity)` for the
    /// benchmark's Fig. 3b curve.
    fn fit(self) -> (f64, f64) {
        match self {
            SparsityBenchmark::Mnist => (0.88, 0.97),
            SparsityBenchmark::Cifar => (0.84, 0.95),
            SparsityBenchmark::ImageNet100 => (0.82, 0.93),
        }
    }
}

/// Modeled sparsity for epochs `1..=epochs`:
/// `s(e) = s_inf - (s_inf - s_1) * exp(-(e - 1) / tau)` with `tau = 2.5`.
///
/// # Example
///
/// ```
/// use spg_workloads::sparsity::{modeled_curve, SparsityBenchmark};
///
/// let s = modeled_curve(SparsityBenchmark::Mnist, 10);
/// assert_eq!(s.len(), 10);
/// assert!(s[1] > 0.85); // all benchmarks > 85 % from epoch 2 (Sec. 3.3)
/// assert!(s[9] > s[0]); // sparsity grows as the model becomes accurate
/// ```
pub fn modeled_curve(benchmark: SparsityBenchmark, epochs: usize) -> Vec<f64> {
    let (s1, s_inf) = benchmark.fit();
    const TAU: f64 = 2.5;
    (1..=epochs).map(|e| s_inf - (s_inf - s1) * (-((e - 1) as f64) / TAU).exp()).collect()
}

/// Trains a small CNN on a synthetic dataset and returns the measured
/// per-epoch error-gradient sparsity at the (first) conv layer — the
/// Fig. 3b mechanism reproduced with real training dynamics.
///
/// # Panics
///
/// Panics if `epochs == 0`.
pub fn measured_curve(epochs: usize, seed: u64) -> Vec<f64> {
    assert!(epochs > 0, "epoch count must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = ConvSpec::new(1, 12, 12, 6, 3, 3, 1, 1).expect("valid fixed spec");
    let out = spec.output_shape();
    let net = Network::new(vec![
        Box::new(ConvLayer::new(spec, &mut rng)),
        Box::new(ReluLayer::new(out.len())),
        Box::new(MaxPoolLayer::new(Shape3::new(out.c, out.h, out.w), 2).expect("valid fixed pool")),
        Box::new(FcLayer::new(6 * 5 * 5, 4, &mut rng)),
    ])
    .expect("geometry chains by construction");
    let mut net = net;
    let mut data = Dataset::synthetic(Shape3::new(1, 12, 12), 4, 40, 0.1, seed ^ 0xf00d);
    let trainer = Trainer::new(TrainerConfig {
        epochs,
        learning_rate: 0.08,
        batch_size: 8,
        sample_threads: 1,
        momentum: 0.0,
        shuffle_seed: seed,
        ..TrainerConfig::default()
    });
    let stats = trainer.train(&mut net, &mut data);
    stats.iter().map(|s| s.conv_grad_sparsity[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sec. 3.3: "After the second epoch, all three benchmarks have a
    /// sparsity level of more than 85 %."
    #[test]
    fn modeled_curves_exceed_85_percent_after_epoch_two() {
        for b in SparsityBenchmark::all() {
            let curve = modeled_curve(b, 10);
            for (i, s) in curve.iter().enumerate().skip(1) {
                assert!(*s > 0.85, "{}: epoch {} sparsity {s}", b.label(), i + 1);
            }
        }
    }

    /// "As the model becomes more accurate, these activation errors
    /// become even sparser."
    #[test]
    fn modeled_curves_are_monotone() {
        for b in SparsityBenchmark::all() {
            let curve = modeled_curve(b, 10);
            assert!(curve.windows(2).all(|w| w[1] >= w[0]), "{}", b.label());
        }
    }

    #[test]
    fn benchmarks_are_ordered_mnist_sparsest() {
        let m = modeled_curve(SparsityBenchmark::Mnist, 10);
        let i = modeled_curve(SparsityBenchmark::ImageNet100, 10);
        assert!(m[9] > i[9]);
    }

    /// The measured curve must show the mechanism: substantial sparsity
    /// that does not collapse as training proceeds.
    #[test]
    fn measured_sparsity_emerges_from_training() {
        let curve = measured_curve(8, 11);
        assert_eq!(curve.len(), 8);
        let last = *curve.last().expect("non-empty");
        let first = curve[0];
        assert!(last >= first - 0.05, "sparsity regressed: {first} -> {last}");
        assert!(last > 0.4, "final sparsity too low: {last}");
    }
}
