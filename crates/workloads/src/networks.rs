//! Trainable network descriptions for the paper's four benchmarks.
//!
//! Two flavours per benchmark:
//!
//! * [`description`] — the *full-scale* network text whose convolution
//!   layers match Table 2 exactly (for characterization, planning, and
//!   the machine model);
//! * [`scaled_description`] — a spatially reduced variant with the same
//!   feature counts and kernels, small enough to *train* in tests and
//!   examples on one core. Feature counts and kernel sizes — the
//!   quantities that select regions and techniques — are untouched.

use spg_convnet::Network;
use spg_core::config::NetworkDescription;

use crate::table2::Benchmark;

/// Full-scale network description whose conv layers reproduce Table 2.
///
/// Pooling windows are chosen so consecutive conv layers receive exactly
/// the input extents Table 2 lists (the paper's nets interleave pooling
/// and normalization; only conv geometry affects this reproduction).
///
/// # Example
///
/// ```
/// use spg_workloads::{networks, table2::Benchmark};
///
/// let desc = networks::description(Benchmark::Mnist);
/// let parsed = spg_core::config::NetworkDescription::parse(&desc)?;
/// assert_eq!(parsed.layers.len(), 5);
/// # Ok::<(), spg_core::SpgError>(())
/// ```
pub fn description(benchmark: Benchmark) -> String {
    match benchmark {
        Benchmark::Mnist => r#"
            name: "mnist"
            input { channels: 1 height: 28 width: 28 }
            conv  { features: 20 kernel: 5 }
            relu  { }
            pool  { window: 2 }
            fc    { outputs: 500 }
            fc    { outputs: 10 }
        "#
        .to_owned(),
        Benchmark::Cifar10 => r#"
            name: "cifar10"
            input { channels: 3 height: 36 width: 36 }
            conv  { features: 64 kernel: 5 }
            relu  { }
            pool  { window: 4 }
            conv  { features: 64 kernel: 5 }
            relu  { }
            fc    { outputs: 10 }
        "#
        .to_owned(),
        Benchmark::ImageNet1K => r#"
            name: "imagenet-1k"
            input { channels: 3 height: 227 width: 227 }
            conv  { features: 96 kernel: 11 stride: 4 }
            relu  { }
            lrn   { size: 5 }
            conv  { features: 256 kernel: 5 }
            relu  { }
            lrn   { size: 5 }
            pool  { window: 2 }
            conv  { features: 384 kernel: 3 }
            relu  { }
            pool  { window: 2 }
            conv  { features: 256 kernel: 3 }
            relu  { }
            fc    { outputs: 1000 }
            dropout { rate_pct: 50 }
            fc    { outputs: 1000 }
        "#
        .to_owned(),
        Benchmark::ImageNet22K => r#"
            name: "imagenet-22k"
            input { channels: 3 height: 262 width: 262 }
            conv  { features: 120 kernel: 7 stride: 2 }
            relu  { }
            pool  { window: 2 }
            conv  { features: 250 kernel: 5 stride: 2 }
            relu  { }
            pool  { window: 2 }
            conv  { features: 400 kernel: 3 }
            relu  { }
            conv  { features: 400 kernel: 3 }
            relu  { }
            conv  { features: 600 kernel: 3 }
            relu  { }
            fc    { outputs: 1000 }
        "#
        .to_owned(),
    }
}

/// Spatially reduced, trainable variant: same feature counts and kernel
/// sizes as Table 2, smaller images and classifier heads.
pub fn scaled_description(benchmark: Benchmark) -> String {
    match benchmark {
        Benchmark::Mnist => r#"
            name: "mnist-small"
            input { channels: 1 height: 14 width: 14 }
            conv  { features: 20 kernel: 5 }
            relu  { }
            pool  { window: 2 }
            fc    { outputs: 10 }
        "#
        .to_owned(),
        Benchmark::Cifar10 => r#"
            name: "cifar10-small"
            input { channels: 3 height: 18 width: 18 }
            conv  { features: 64 kernel: 5 }
            relu  { }
            pool  { window: 2 }
            conv  { features: 64 kernel: 5 }
            relu  { }
            fc    { outputs: 10 }
        "#
        .to_owned(),
        Benchmark::ImageNet1K => r#"
            name: "imagenet-1k-small"
            input { channels: 3 height: 39 width: 39 }
            conv  { features: 96 kernel: 11 stride: 4 }
            relu  { }
            conv  { features: 256 kernel: 5 }
            relu  { }
            fc    { outputs: 20 }
        "#
        .to_owned(),
        Benchmark::ImageNet22K => r#"
            name: "imagenet-22k-small"
            input { channels: 3 height: 31 width: 31 }
            conv  { features: 120 kernel: 7 stride: 2 }
            relu  { }
            conv  { features: 250 kernel: 5 stride: 2 }
            relu  { }
            fc    { outputs: 20 }
        "#
        .to_owned(),
    }
}

/// Parses and builds the scaled trainable network for a benchmark.
///
/// # Errors
///
/// Returns [`spg_core::SpgError`] if the built-in description fails to
/// build (would indicate a bug in this module; covered by tests).
pub fn build_scaled(benchmark: Benchmark, seed: u64) -> Result<Network, spg_core::SpgError> {
    NetworkDescription::parse(&scaled_description(benchmark))?.build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full-scale descriptions must reproduce the Table 2 conv layer
    /// specs exactly, in order.
    #[test]
    fn full_descriptions_match_table2() {
        for bench in Benchmark::all() {
            let parsed = NetworkDescription::parse(&description(bench)).expect("valid text");
            let net = parsed.build(1).expect("valid geometry");
            let convs: Vec<_> =
                net.layers().iter().filter_map(|l| l.conv_spec().copied()).collect();
            let expected = bench.conv_layers();
            assert_eq!(convs.len(), expected.len(), "{}", bench.label());
            for (i, (got, want)) in convs.iter().zip(&expected).enumerate() {
                // AlexNet L3's channel count comes from its grouped conv
                // (192 of 384 features); our sequential builder feeds all
                // 384, so compare the other dimensions there.
                let grouping_exception = bench == Benchmark::ImageNet1K && i == 3;
                // The paper bakes padding/cropping into its printed input
                // sizes (Table 2 note); a valid-convolution chain can only
                // approximate them, so allow a few pixels of slack.
                let dh = got.in_h() as i64 - want.in_h() as i64;
                assert!(
                    dh.abs() <= 4,
                    "{} L{i} input size: {} vs {}",
                    bench.label(),
                    got.in_h(),
                    want.in_h()
                );
                assert_eq!(got.features(), want.features(), "{} L{i} features", bench.label());
                assert_eq!(got.kx(), want.kx(), "{} L{i} kernel", bench.label());
                assert_eq!(got.sx(), want.sx(), "{} L{i} stride", bench.label());
                if !grouping_exception {
                    assert_eq!(got.in_c(), want.in_c(), "{} L{i} channels", bench.label());
                }
            }
        }
    }

    #[test]
    fn scaled_networks_build_and_run() {
        for bench in Benchmark::all() {
            let net = build_scaled(bench, 7).expect("valid description");
            let input = spg_tensor::Tensor::filled(net.input_len(), 0.1);
            let trace = net.forward(&input);
            assert!(trace.logits().len() >= 10, "{}", bench.label());
        }
    }

    #[test]
    fn scaled_preserves_feature_counts() {
        for bench in Benchmark::all() {
            let full = NetworkDescription::parse(&description(bench)).expect("valid text");
            let scaled = NetworkDescription::parse(&scaled_description(bench)).expect("valid text");
            let features = |d: &NetworkDescription| {
                d.layers
                    .iter()
                    .filter_map(|l| match l {
                        spg_core::config::LayerDesc::Conv { features, .. } => Some(*features),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            };
            let f_full = features(&full);
            let f_scaled = features(&scaled);
            assert!(
                f_full.starts_with(&f_scaled),
                "{}: {:?} vs {:?}",
                bench.label(),
                f_full,
                f_scaled
            );
        }
    }
}
