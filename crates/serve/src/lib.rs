//! Batched inference serving for spg-CNN models.
//!
//! The paper's central scalability argument — run many independent
//! single-threaded kernels (GEMM-in-Parallel, Sec. 4.1) instead of one
//! multi-threaded kernel, preserving per-core arithmetic intensity —
//! applies directly to inference serving. This crate is that analogue:
//!
//! * single-sample requests land on a bounded MPMC [`queue`];
//! * each persistent worker pops a request and gathers a dynamic
//!   micro-batch (up to `max_batch` requests or `max_delay` of waiting);
//! * every worker owns one warm
//!   [`ConvScratch`](spg_convnet::workspace::ConvScratch) and one
//!   single-threaded autotuner-selected
//!   [`CompiledConv`](spg_core::compiled::CompiledConv) per convolution
//!   layer, so the steady-state request path allocates nothing and pays
//!   no weight-transform cost;
//! * a full queue *rejects* ([`ServeError::Rejected`] /
//!   [`ServeError::Timeout`]) instead of buffering unbounded work, and
//!   shutdown drains every accepted request before the workers exit.
//!
//! Per-request latency and per-batch histograms are recorded through
//! `spg_telemetry` (`serve.request` / `serve.batch` labels), and each
//! worker's kernel flops accumulate under its `serve-worker{i}` scope,
//! giving per-worker goodput in the metrics document.
//!
//! Workers are *supervised*: a panic inside a micro-batch fails only that
//! batch (its requests get [`ServeError::WorkerFault`]) and the worker is
//! respawned with fresh warm state up to a configurable restart budget —
//! see the [`server`](ServeConfig) docs and the `fault-injection` cargo
//! feature for the deterministic crash-testing harness. The
//! `serve.worker_restarts` / `serve.faulted_batches` counters surface the
//! pool's fault history in the metrics document.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use spg_convnet::{ConvSpec, Engine};
//! use spg_serve::{ServeConfig, Server};
//!
//! let spec = ConvSpec::new(1, 8, 8, 4, 3, 3, 1, 1)?;
//! let engine = Engine::builder().spec(spec).seed(1).build()?;
//! let input_len = engine.network().input_len();
//! let net = engine.into_shared();
//!
//! let server = Server::start(Arc::clone(&net), &[], ServeConfig::default())?;
//! let pending = server.try_submit(vec![0.5; input_len]).expect("queue has room");
//! let response = pending.wait().expect("server alive");
//! assert!(response.class < net.output_len());
//! server.shutdown();
//! # Ok::<(), spg_error::Error>(())
//! ```

#![warn(missing_docs)]

pub mod queue;
mod server;
pub(crate) mod sync_prims;

pub use queue::{BoundedQueue, PushError};
pub use server::{PendingResponse, Response, ServeConfig, ServeError, Server};
pub use spg_sync::{FaultInjector, FaultPlan, ANY_WORKER};
