//! Primitive indirection for sources shared with the `spg-race` model
//! checker.
//!
//! `queue.rs` is compiled twice: in this crate against the real
//! primitives below, and inside `spg-race` (via `#[path]` inclusion)
//! against that crate's deterministic model types. Because an included
//! file's `crate::` resolves to the *including* crate, routing every
//! synchronization import through `crate::sync_prims` is what lets the
//! identical production source run under the model scheduler.
//!
//! Keep this module a pure re-export list: any helper logic added here
//! would run only in production and not under the model, silently
//! weakening the proofs.

pub(crate) use spg_sync::{lock, wait, wait_timeout};
pub(crate) use std::sync::{Condvar, Mutex};
pub(crate) use std::time::Instant;
