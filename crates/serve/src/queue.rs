//! A bounded MPMC queue with backpressure, built on `Mutex` + `Condvar`.
//!
//! The serving front end pushes single-sample requests; worker threads
//! pop them, batching greedily up to a deadline. The queue is *bounded*:
//! a full queue rejects (or times out) instead of buffering unbounded
//! work, which is what turns overload into fast, typed feedback rather
//! than silently growing latency.
//!
//! All lock acquisition goes through `spg-sync`'s poison-recovering
//! helpers: a worker that panics mid-batch (the supervisor catches it at
//! the batch boundary) must not take the queue — and with it every other
//! worker and submitter — down via `Mutex` poisoning. Queue state is
//! updated atomically under the guard (a `VecDeque` push/pop either
//! happened or it didn't), so a recovered guard always sees a consistent
//! queue.
//!
//! This file is compiled twice: here against std + `spg-sync`, and via
//! `#[path]` inclusion inside `spg-race` against that crate's model
//! primitives, which is how the model checker explores every schedule
//! of the *production* queue source. All synchronization imports must
//! therefore go through `crate::sync_prims` (which resolves per
//! including crate), and unit tests live in `tests/queue.rs` rather
//! than an in-file module.

use std::collections::VecDeque;

use crate::sync_prims::{lock, wait, wait_timeout, Condvar, Instant, Mutex};

/// Outcome of a non-blocking or deadline-bounded push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity.
    Full,
    /// The queue was closed for new work (shutdown in progress).
    Closed,
    /// The deadline passed while waiting for space.
    TimedOut,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty (single lock acquisition).
    pub fn is_empty(&self) -> bool {
        lock(&self.state).items.is_empty()
    }

    /// Non-blocking push: errors immediately when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push that waits for space until `deadline`.
    ///
    /// # Errors
    ///
    /// [`PushError::TimedOut`] when the deadline passes while the queue
    /// is still full, [`PushError::Closed`] if it closes while waiting.
    pub fn push_deadline(&self, item: T, deadline: Instant) -> Result<(), PushError> {
        let mut state = lock(&self.state);
        loop {
            if state.closed {
                return Err(PushError::Closed);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(PushError::TimedOut);
            };
            let (guard, timed_out) = wait_timeout(&self.not_full, state, remaining);
            state = guard;
            if timed_out && state.items.len() >= self.capacity {
                return Err(PushError::TimedOut);
            }
        }
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// drained — in-flight work is always completed before shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait(&self.not_empty, state);
        }
    }

    /// Non-blocking pop of one item, if any is immediately available.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        let item = state.items.pop_front();
        if item.is_some() {
            drop(state);
            self.not_full.notify_one();
        }
        item
    }

    /// Pops one item, waiting at most until `deadline`. Returns `None` on
    /// deadline expiry or on closed-and-drained.
    pub fn pop_deadline(&self, deadline: Instant) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            let remaining = deadline.checked_duration_since(now).filter(|d| !d.is_zero())?;
            let (guard, _) = wait_timeout(&self.not_empty, state, remaining);
            state = guard;
        }
    }

    /// Closes the queue: new pushes fail, pops drain what remains and
    /// then return `None`.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}
