//! The micro-batching serving engine.
//!
//! Requests enter on a bounded MPMC queue; each of `workers` persistent
//! threads pops a request, gathers more until `max_batch` or `max_delay`
//! elapses, then runs the whole micro-batch through its own warm
//! single-threaded kernels — the serving analogue of GEMM-in-Parallel:
//! instead of one multi-threaded kernel per request, many independent
//! single-threaded pipelines preserve per-core arithmetic intensity.
//!
//! # Fault isolation & supervision
//!
//! Each worker thread is its own supervisor. The inner worker loop runs
//! every micro-batch inside [`std::panic::catch_unwind`]: a panicking
//! kernel fails only that batch — its requests get a typed
//! [`ServeError::WorkerFault`] reply — and the supervisor respawns the
//! worker with freshly compiled kernels and a fresh warm [`ConvScratch`],
//! up to [`ServeConfig::restart_budget`] restarts with exponential
//! backoff. Lock handling everywhere in this crate recovers from
//! poisoning (see [`spg_sync`]), so one crash never cascades into
//! process-wide aborts.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spg_convnet::workspace::ConvScratch;
use spg_convnet::Network;
use spg_core::backend::{Backend, ConvDescriptor, CpuBackend};
use spg_core::compiled::CompiledConv;
use spg_core::schedule::{recommended_plan, LayerPlan};
use spg_sync::{FaultInjector, FaultPlan};

use crate::queue::{BoundedQueue, PushError};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning warm per-layer kernels and scratch.
    pub workers: usize,
    /// Maximum requests per micro-batch.
    pub max_batch: usize,
    /// How long a worker waits to fill a micro-batch after its first
    /// request arrives. `0` serves every request in its own batch.
    pub max_delay: Duration,
    /// Bounded request-queue capacity; pushes beyond it are rejected.
    pub queue_capacity: usize,
    /// How many times a crashed worker is respawned before its thread
    /// retires. The budget is per worker slot, not global.
    pub restart_budget: usize,
    /// Base delay before the first respawn; doubles per consecutive
    /// restart of the same worker (capped at one second).
    pub restart_backoff: Duration,
    /// Deterministic fault to inject for supervision testing. Inert
    /// unless the `fault-injection` cargo feature is enabled.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 64,
            restart_budget: 3,
            restart_backoff: Duration::from_millis(5),
            fault_plan: None,
        }
    }
}

/// Typed failure modes of the serving front end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded queue was full: backpressure, try again later.
    Rejected {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The submission deadline passed while the queue stayed full.
    Timeout {
        /// How long the submitter waited.
        waited: Duration,
    },
    /// The server is shutting down and accepts no new requests.
    ShuttingDown,
    /// The request input has the wrong length for the model.
    BadInput {
        /// Expected input activation count.
        expected: usize,
        /// Provided input activation count.
        actual: usize,
    },
    /// The worker processing the request disappeared (server dropped
    /// while the request was in flight).
    Disconnected,
    /// The worker panicked while executing this request's micro-batch.
    /// Only the requests in that batch fail; the worker is respawned
    /// (within its restart budget) and later requests are unaffected.
    WorkerFault {
        /// Index of the worker that crashed.
        worker: usize,
        /// 1-based micro-batch index within that worker's incarnation.
        batch: u64,
        /// The panic message, best effort.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { capacity } => {
                write!(f, "request rejected: queue at capacity {capacity}")
            }
            ServeError::Timeout { waited } => {
                write!(f, "request timed out after {waited:?} of backpressure")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadInput { expected, actual } => {
                write!(f, "input has {actual} values, model expects {expected}")
            }
            ServeError::Disconnected => write!(f, "serving worker disconnected"),
            ServeError::WorkerFault { worker, batch, message } => {
                write!(f, "worker {worker} panicked on micro-batch {batch}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for spg_error::Error {
    fn from(e: ServeError) -> Self {
        spg_error::Error::with_source(spg_error::ErrorKind::Serving, e.to_string(), e)
    }
}

/// A completed classification.
#[derive(Debug, Clone)]
pub struct Response {
    /// Raw network outputs.
    pub logits: Vec<f32>,
    /// Argmax of the logits (same tie-breaking as
    /// [`Network::predict`](spg_convnet::Network::predict)).
    pub class: usize,
    /// Submit-to-completion wall time.
    pub latency: Duration,
    /// Index of the worker that served the request.
    pub worker: usize,
    /// Size of the micro-batch the request rode in.
    pub batch_size: usize,
}

/// One queued request.
struct Request {
    input: Vec<f32>,
    submitted: Instant,
    reply: mpsc::SyncSender<Result<Response, ServeError>>,
}

/// Handle to a submitted request; redeem with [`wait`](Self::wait).
#[derive(Debug)]
pub struct PendingResponse {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl PendingResponse {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerFault`] if the worker panicked while running
    /// this request's micro-batch, [`ServeError::Disconnected`] if the
    /// server was torn down before the request completed.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)?
    }
}

/// Shared restart/fault counters for one server's worker pool.
#[derive(Debug, Default)]
struct PoolStats {
    restarts: spg_sync::ProgressCounter,
    faulted_batches: AtomicU64,
}

/// The batched inference server: a bounded request queue feeding a pool
/// of persistent workers, each owning one warm [`ConvScratch`] and one
/// compiled kernel per convolution layer.
///
/// Dropping the server performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown): the queue closes, in-flight and queued
/// requests drain, then the workers exit.
pub struct Server {
    queue: Arc<BoundedQueue<Request>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    input_len: usize,
    stats: Arc<PoolStats>,
}

impl Server {
    /// Starts `config.workers` worker threads serving `net`.
    ///
    /// `plans` maps convolution-layer indices to their autotuned
    /// [`LayerPlan`]s (as returned by
    /// `Framework::plan_network_forward`); conv layers without an entry
    /// fall back to the paper's heuristic plan. Every worker compiles its
    /// own single-threaded [`CompiledConv`] per conv layer — weight
    /// transforms are paid once per worker at startup (and once per
    /// respawn), never per request.
    ///
    /// # Errors
    ///
    /// Returns [`spg_error::ErrorKind::InvalidNetwork`] if a conv layer's
    /// weights cannot be compiled.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers`, `config.max_batch`, or
    /// `config.queue_capacity` is zero.
    pub fn start(
        net: Arc<Network>,
        plans: &[(usize, LayerPlan)],
        config: ServeConfig,
    ) -> Result<Self, spg_error::Error> {
        assert!(config.workers > 0, "worker count must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        let plan_by_layer: HashMap<usize, LayerPlan> = plans.iter().copied().collect();
        // Compile once up front to surface errors before spawning, then
        // once per worker so each owns private warm state. The startup
        // pass also records which backend algorithm each conv layer will
        // serve with (a no-op when telemetry is disabled).
        compile_kernels(&net, &plan_by_layer)?;
        record_compile_decisions(&net, &plan_by_layer);

        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let input_len = net.input_len();
        let stats = Arc::new(PoolStats::default());
        let injector = FaultInjector::new(config.fault_plan);
        // Batch-starvation clamp: the bounded queue can hold at most
        // `queue_capacity` requests, so a pool wider than the queue keeps
        // slots that can never all find work — each one still compiles a
        // full set of per-layer kernels at startup. Spawn only as many
        // workers as the queue can feed and count the declined slots.
        let effective_workers = config.workers.min(config.queue_capacity).max(1);
        let starved = config.workers - effective_workers;
        if starved > 0 {
            spg_telemetry::record_counter("serve.starved_workers", starved as u64);
        }
        let workers = (0..effective_workers)
            .map(|w| {
                let net = Arc::clone(&net);
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let plan_by_layer = plan_by_layer.clone();
                let injector = injector.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    supervise_worker(w, &net, &plan_by_layer, &queue, &config, &stats, injector)
                })
            })
            .collect();
        Ok(Server { queue, workers, input_len, stats })
    }

    /// Non-blocking submission: full queues reject immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] on a wrong-length input,
    /// [`ServeError::Rejected`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn try_submit(&self, input: Vec<f32>) -> Result<PendingResponse, ServeError> {
        let request = self.make_request(input)?;
        match self.queue.try_push(request.0) {
            Ok(()) => Ok(request.1),
            Err(PushError::Full) => Err(ServeError::Rejected { capacity: self.queue.capacity() }),
            Err(PushError::Closed | PushError::TimedOut) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submission that tolerates backpressure for up to `patience`, then
    /// times out rather than blocking indefinitely.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`], [`ServeError::Timeout`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit_timeout(
        &self,
        input: Vec<f32>,
        patience: Duration,
    ) -> Result<PendingResponse, ServeError> {
        let request = self.make_request(input)?;
        let start = Instant::now();
        match self.queue.push_deadline(request.0, start + patience) {
            Ok(()) => Ok(request.1),
            Err(PushError::TimedOut | PushError::Full) => {
                Err(ServeError::Timeout { waited: start.elapsed() })
            }
            Err(PushError::Closed) => Err(ServeError::ShuttingDown),
        }
    }

    fn make_request(&self, input: Vec<f32>) -> Result<(Request, PendingResponse), ServeError> {
        if input.len() != self.input_len {
            return Err(ServeError::BadInput { expected: self.input_len, actual: input.len() });
        }
        let (tx, rx) = mpsc::sync_channel(1);
        Ok((Request { input, submitted: Instant::now(), reply: tx }, PendingResponse { rx }))
    }

    /// Requests currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// How many worker respawns the supervisor has performed so far.
    pub fn restarts(&self) -> u64 {
        self.stats.restarts.get()
    }

    /// Block until the supervisor has performed at least `n` respawns,
    /// or `timeout` expires; `true` when the count was reached. The
    /// event-based alternative to sleep-polling in fault drills: a
    /// drill submits, waits for the respawn it induced, then asserts.
    pub fn wait_restarts(&self, n: u64, timeout: Duration) -> bool {
        self.stats.restarts.wait_until_timeout(n, timeout)
    }

    /// How many micro-batches have failed with a worker panic so far.
    pub fn faulted_batches(&self) -> u64 {
        self.stats.faulted_batches.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: closes the queue to new work, drains every
    /// queued request through the workers, and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The serving plan for one conv layer: its descriptor and the backend
/// algorithm the worker pool compiles for it.
///
/// cores = 1 everywhere: each serving worker is one independent
/// single-threaded pipeline (the GEMM-in-Parallel analogue).
fn layer_algo(
    spec: &spg_convnet::ConvSpec,
    plan: LayerPlan,
) -> (ConvDescriptor, spg_core::backend::AlgoChoice) {
    let desc = ConvDescriptor::new(*spec, 1);
    let algo = CpuBackend::new().algo_for(&desc, plan);
    (desc, algo)
}

/// Compiles one single-threaded kernel per convolution layer, indexed by
/// layer position (`None` for non-conv layers), dispatching through the
/// [`CpuBackend`] so serving runs exactly the algorithms the backend
/// enumerates.
fn compile_kernels(
    net: &Network,
    plan_by_layer: &HashMap<usize, LayerPlan>,
) -> Result<Vec<Option<CompiledConv>>, spg_error::Error> {
    let backend = CpuBackend::new();
    net.layers()
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let Some(spec) = layer.conv_spec() else { return Ok(None) };
            let plan =
                plan_by_layer.get(&i).copied().unwrap_or_else(|| recommended_plan(spec, 0.0, 1));
            let weights = layer.params().expect("conv layers expose parameters");
            let (desc, algo) = layer_algo(spec, plan);
            let compiled = backend.compile(&desc, algo, weights)?;
            Ok(Some(compiled))
        })
        .collect()
}

/// Records one telemetry decision per conv layer naming the backend and
/// algorithm the worker pool serves it with (schema minor 6). A no-op
/// when telemetry is disabled.
fn record_compile_decisions(net: &Network, plan_by_layer: &HashMap<usize, LayerPlan>) {
    let backend = CpuBackend::new();
    for (i, layer) in net.layers().iter().enumerate() {
        let Some(spec) = layer.conv_spec() else { continue };
        let plan = plan_by_layer.get(&i).copied().unwrap_or_else(|| recommended_plan(spec, 0.0, 1));
        let (_, algo) = layer_algo(spec, plan);
        spg_telemetry::record_decision(spg_telemetry::Decision {
            label: format!("serve-conv{i}"),
            phase: spg_telemetry::Phase::Forward,
            chosen: plan.forward.id().to_string(),
            sparsity: 0.0,
            cores: 1,
            candidates: Vec::new(),
            rejected: Vec::new(),
            kernel: None,
            backend: Some(backend.name().to_string()),
            algo: Some(algo.id()),
            partition: Some(plan.forward.partition_dim().id().to_string()),
        });
    }
}

/// Why one incarnation of the inner worker loop returned.
enum WorkerExit {
    /// The queue closed and drained: normal shutdown.
    Drained,
    /// A micro-batch panicked; the batch's requests were failed with
    /// [`ServeError::WorkerFault`] and the worker state is suspect.
    Faulted,
}

/// The per-thread supervisor: runs worker incarnations, respawning after
/// a fault with freshly compiled kernels and a fresh warm scratch until
/// the restart budget is spent.
fn supervise_worker(
    worker: usize,
    net: &Network,
    plan_by_layer: &HashMap<usize, LayerPlan>,
    queue: &BoundedQueue<Request>,
    config: &ServeConfig,
    stats: &PoolStats,
    injector: FaultInjector,
) {
    let mut restarts_used = 0usize;
    loop {
        // Fresh warm state per incarnation: a panic may have left the
        // previous kernels/scratch mid-update.
        let Ok(kernels) = compile_kernels(net, plan_by_layer) else {
            // Compilation succeeded in Server::start; a failure here means
            // the network itself is unusable — retire the slot. Other
            // workers keep draining the queue.
            return;
        };
        match worker_loop(worker, net, kernels, queue, config, stats, &injector) {
            WorkerExit::Drained => return,
            WorkerExit::Faulted => {
                if restarts_used >= config.restart_budget {
                    // Budget spent: retire this slot. Remaining workers
                    // keep serving; queued requests are never lost unless
                    // every slot retires.
                    return;
                }
                restarts_used += 1;
                stats.restarts.bump();
                spg_telemetry::record_counter("serve.worker_restarts", 1);
                let backoff = spg_sync::backoff_delay(config.restart_backoff, restarts_used);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// One worker incarnation: pop one request, gather a micro-batch until
/// `max_batch` or `max_delay`, run it inside a panic boundary, reply,
/// repeat until the queue is closed and drained or a batch faults.
fn worker_loop(
    worker: usize,
    net: &Network,
    kernels: Vec<Option<CompiledConv>>,
    queue: &BoundedQueue<Request>,
    config: &ServeConfig,
    stats: &PoolStats,
    injector: &FaultInjector,
) -> WorkerExit {
    let label = format!("serve-worker{worker}");
    let mut scratch = ConvScratch::new();
    // Ping-pong activation buffers sized for the widest layer boundary.
    let buf_len = net
        .layers()
        .iter()
        .flat_map(|l| [l.input_len(), l.output_len()])
        .max()
        .unwrap_or(net.input_len());
    let mut cur = vec![0.0f32; buf_len];
    let mut next = vec![0.0f32; buf_len];
    let mut batch: Vec<Request> = Vec::with_capacity(config.max_batch);
    let mut batch_index: u64 = 0;

    while let Some(first) = queue.pop() {
        batch.push(first);
        // `checked_add` guards against pathological `max_delay` values;
        // an unrepresentable deadline degrades to "no extra waiting".
        let deadline = Instant::now().checked_add(config.max_delay).unwrap_or_else(Instant::now);
        while batch.len() < config.max_batch {
            match queue.pop_deadline(deadline) {
                Some(request) => batch.push(request),
                None => break,
            }
        }

        batch_index += 1;
        let batch_start = Instant::now();
        let batch_size = batch.len();
        // The panic boundary: everything that can execute model code runs
        // inside. Replies are sent only after the whole batch succeeded,
        // so a request never observes both a response and a fault.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            injector.check(worker, batch_index);
            // One telemetry scope per micro-batch: kernels attribute
            // their flops to the innermost scope, so this bucket
            // accumulates the worker's goodput for the whole run.
            let _scope = spg_telemetry::scope(&label, spg_telemetry::Phase::Forward);
            let mut replies = Vec::with_capacity(batch_size);
            for request in batch.iter() {
                let class = forward_sample(
                    net,
                    &kernels,
                    &request.input,
                    &mut cur,
                    &mut next,
                    &mut scratch,
                );
                let logits = cur[..net.output_len()].to_vec();
                replies.push((logits, class));
            }
            replies
        }));

        match outcome {
            Ok(replies) => {
                for (request, (logits, class)) in batch.drain(..).zip(replies) {
                    let latency = request.submitted.elapsed();
                    spg_telemetry::record_latency_ns(
                        "serve.request",
                        spg_telemetry::saturating_nanos(latency),
                    );
                    // A dropped PendingResponse just means the caller
                    // stopped caring; the worker carries on.
                    let _ = request.reply.send(Ok(Response {
                        logits,
                        class,
                        latency,
                        worker,
                        batch_size,
                    }));
                }
                spg_telemetry::record_latency_ns(
                    "serve.batch",
                    spg_telemetry::saturating_nanos(batch_start.elapsed()),
                );
            }
            Err(payload) => {
                stats.faulted_batches.fetch_add(1, Ordering::Relaxed);
                spg_telemetry::record_counter("serve.faulted_batches", 1);
                let message = spg_sync::panic_message(payload.as_ref());
                for request in batch.drain(..) {
                    let _ = request.reply.send(Err(ServeError::WorkerFault {
                        worker,
                        batch: batch_index,
                        message: message.clone(),
                    }));
                }
                return WorkerExit::Faulted;
            }
        }
    }
    WorkerExit::Drained
}

/// Runs one sample through the layer chain, leaving the logits in
/// `cur[..net.output_len()]` and returning the argmax class (identical
/// tie-breaking to `Network::predict`: first maximum wins).
fn forward_sample(
    net: &Network,
    kernels: &[Option<CompiledConv>],
    input: &[f32],
    cur: &mut Vec<f32>,
    next: &mut Vec<f32>,
    scratch: &mut ConvScratch,
) -> usize {
    cur[..input.len()].copy_from_slice(input);
    for (layer, kernel) in net.layers().iter().zip(kernels) {
        let (in_len, out_len) = (layer.input_len(), layer.output_len());
        match kernel {
            Some(compiled) => {
                compiled.forward_scratch(&cur[..in_len], &mut next[..out_len], scratch)
            }
            None => layer.forward(&cur[..in_len], &mut next[..out_len], scratch),
        }
        std::mem::swap(cur, next);
    }
    let logits = &cur[..net.output_len()];
    let mut best = 0;
    for i in 1..logits.len() {
        if logits[i] > logits[best] {
            best = i;
        }
    }
    best
}
