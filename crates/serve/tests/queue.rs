//! `BoundedQueue` behaviour tests.
//!
//! These live outside `src/` because `queue.rs` itself is compiled both
//! here and inside `spg-race` (see `src/sync_prims.rs`); an in-file
//! test module would be dragged into the model build. The close/full
//! interaction matrix backs the shutdown story: close never loses
//! queued work and never wedges a blocked producer or consumer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spg_serve::{BoundedQueue, PushError};

#[test]
fn fifo_order_preserved() {
    let q = BoundedQueue::new(4);
    q.try_push(1).unwrap();
    q.try_push(2).unwrap();
    q.try_push(3).unwrap();
    assert_eq!(q.pop(), Some(1));
    assert_eq!(q.pop(), Some(2));
    assert_eq!(q.try_pop(), Some(3));
    assert!(q.try_pop().is_none());
}

#[test]
fn full_queue_rejects_not_blocks() {
    let q = BoundedQueue::new(2);
    q.try_push(1).unwrap();
    q.try_push(2).unwrap();
    assert_eq!(q.try_push(3), Err(PushError::Full));
    let start = Instant::now();
    let deadline = start + Duration::from_millis(20);
    assert_eq!(q.push_deadline(3, deadline), Err(PushError::TimedOut));
    assert!(start.elapsed() >= Duration::from_millis(20));
    assert!(start.elapsed() < Duration::from_secs(5), "push must not block indefinitely");
}

#[test]
fn closed_queue_drains_then_ends() {
    let q = BoundedQueue::new(4);
    q.try_push(7).unwrap();
    q.close();
    assert_eq!(q.try_push(8), Err(PushError::Closed));
    assert_eq!(q.pop(), Some(7)); // in-flight item still served
    assert_eq!(q.pop(), None);
}

#[test]
fn pop_deadline_times_out_when_empty() {
    let q: BoundedQueue<u32> = BoundedQueue::new(1);
    assert_eq!(q.pop_deadline(Instant::now() + Duration::from_millis(10)), None);
}

#[test]
fn concurrent_producers_and_consumers_deliver_everything() {
    let q = Arc::new(BoundedQueue::new(8));
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..50 {
                    let item = p * 1000 + i;
                    loop {
                        if q.push_deadline(item, Instant::now() + Duration::from_secs(5)).is_ok() {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    q.close();
    let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
    all.sort_unstable();
    assert_eq!(all.len(), 200);
    all.dedup();
    assert_eq!(all.len(), 200, "no item delivered twice");
}

// --- close-while-full / close-while-empty matrix ------------------------

#[test]
fn close_while_full_unblocks_waiting_producer_with_closed() {
    let q = Arc::new(BoundedQueue::new(1));
    q.try_push(1).unwrap();
    let pusher = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || q.push_deadline(2, Instant::now() + Duration::from_secs(30)))
    };
    // Nudge the producer towards its parked state; whether close lands
    // before or after it parks, the outcome must be `Closed` (the
    // parked-case interleavings are proved exhaustively by spg-race's
    // queue_close scenario — this is the live-thread smoke of it).
    for _ in 0..100 {
        std::thread::yield_now();
    }
    q.close();
    assert_eq!(pusher.join().unwrap(), Err(PushError::Closed), "close must fail a parked push");
    // The item queued before close still drains.
    assert_eq!(q.pop(), Some(1));
    assert_eq!(q.pop(), None);
}

#[test]
fn close_while_full_then_drain_serves_all_queued_items() {
    let q = BoundedQueue::new(2);
    q.try_push(1).unwrap();
    q.try_push(2).unwrap();
    q.close();
    assert_eq!(q.try_push(3), Err(PushError::Closed));
    assert_eq!(q.pop(), Some(1));
    assert_eq!(q.pop(), Some(2));
    assert_eq!(q.pop(), None);
    // A post-drain push still reports Closed, not Full.
    assert_eq!(q.try_push(4), Err(PushError::Closed));
}

#[test]
fn close_while_empty_unblocks_waiting_consumer_with_none() {
    let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));
    let popper = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || q.pop())
    };
    // Give the consumer a chance to park; close must wake it either way.
    std::thread::yield_now();
    q.close();
    assert_eq!(popper.join().unwrap(), None, "close must release a parked pop");
    assert_eq!(q.pop(), None, "closed-and-empty stays terminal");
}

#[test]
fn close_while_empty_fails_subsequent_pushes_and_timed_pops() {
    let q: BoundedQueue<u32> = BoundedQueue::new(2);
    q.close();
    assert!(q.is_closed());
    assert_eq!(q.try_push(1), Err(PushError::Closed));
    assert_eq!(
        q.push_deadline(1, Instant::now() + Duration::from_secs(5)),
        Err(PushError::Closed),
        "deadline push must fail fast on a closed queue, not wait out the deadline"
    );
    assert_eq!(q.pop_deadline(Instant::now() + Duration::from_secs(5)), None);
}

#[test]
fn close_is_idempotent_and_races_safely_with_drain() {
    let q = Arc::new(BoundedQueue::new(4));
    for i in 0..4 {
        q.try_push(i).unwrap();
    }
    let closer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            q.close();
            q.close();
        })
    };
    let mut got = Vec::new();
    while let Some(v) = q.pop() {
        got.push(v);
    }
    closer.join().unwrap();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3], "close concurrent with drain loses nothing");
}
