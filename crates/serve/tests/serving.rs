//! Tier-1 behavioural guarantees of the serving engine: batched serving
//! is bit-identical to the unbatched forward path for any worker count
//! and batch size, and a full queue rejects instead of blocking.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spg_convnet::layer::{ConvLayer, FcLayer, ReluLayer};
use spg_convnet::workspace::Workspace;
use spg_convnet::{ConvSpec, Network};
use spg_core::autotune::{Framework, TuningMode};
use spg_serve::{ServeConfig, ServeError, Server};

/// conv -> relu -> fc classifier over 8x8x2 inputs.
fn build_network(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = ConvSpec::new(2, 8, 8, 4, 3, 3, 1, 1).unwrap();
    let conv_out = spec.output_shape().len();
    Network::new(vec![
        Box::new(ConvLayer::new(spec, &mut rng)),
        Box::new(ReluLayer::new(conv_out)),
        Box::new(FcLayer::new(conv_out, 5, &mut rng)),
    ])
    .unwrap()
}

fn sample_input(len: usize, salt: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
}

/// The acceptance-criteria core: for every worker count and batch size,
/// per-request logits from the batched server are bit-identical to the
/// single-sample forward pass on the same (tuned) network.
#[test]
fn batched_serving_is_bit_identical_to_unbatched_forward() {
    let mut net = build_network(42);
    // Plan forward executors exactly as the serving CLI does: cores = 1,
    // the single-threaded-kernel-per-worker schedule.
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let net = Arc::new(net);

    // Reference logits from the unbatched path.
    let mut ws = Workspace::for_network(&net);
    let inputs: Vec<Vec<f32>> = (0..24).map(|s| sample_input(net.input_len(), s)).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|input| {
            net.forward_into(input, &mut ws);
            ws.trace.logits().as_slice().to_vec()
        })
        .collect();

    for workers in [1, 2, 4] {
        for max_batch in [1, 3, 8] {
            let config = ServeConfig {
                workers,
                max_batch,
                max_delay: Duration::from_millis(1),
                queue_capacity: 64,
                ..ServeConfig::default()
            };
            let server = Server::start(Arc::clone(&net), &plans, config).unwrap();
            let pending: Vec<_> = inputs
                .iter()
                .map(|input| {
                    server
                        .submit_timeout(input.clone(), Duration::from_secs(10))
                        .expect("capacity 64 covers 24 requests")
                })
                .collect();
            for (i, p) in pending.into_iter().enumerate() {
                let response = p.wait().expect("worker alive");
                assert_eq!(
                    response.logits, expected[i],
                    "workers={workers} max_batch={max_batch} request {i}: logits diverged"
                );
                assert!(response.batch_size >= 1 && response.batch_size <= max_batch);
                assert!(response.worker < workers);
            }
            server.shutdown();
        }
    }
}

/// Backpressure: a full queue must reject immediately (`try_submit`) and
/// time out within the deadline (`submit_timeout`) — never block past it.
#[test]
fn full_queue_rejects_rather_than_blocking() {
    let net = Arc::new(build_network(7));
    // One worker, long batch delay, tiny queue: the worker blocks its
    // batch window while the queue fills behind it.
    let config = ServeConfig {
        workers: 1,
        max_batch: 64,
        max_delay: Duration::from_secs(2),
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &[], config).unwrap();

    // First request wakes the worker and starts its 2 s gather window;
    // the rest land in the queue until it is full. The worker drains the
    // queue into its batch concurrently, so a fixed number of
    // submissions can lose the race on a busy (or single-core) host —
    // keep submitting until one is rejected, bounded by a deadline well
    // under the 2 s window.
    let mut pending = Vec::new();
    let mut rejected = 0;
    let mut s = 0;
    let flood_deadline = Instant::now() + Duration::from_millis(1500);
    while rejected == 0 && Instant::now() < flood_deadline {
        match server.try_submit(sample_input(net.input_len(), s)) {
            Ok(p) => pending.push(p),
            Err(ServeError::Rejected { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        s += 1;
    }
    assert!(rejected > 0, "instant submissions must overflow a 2-slot queue");

    // A deadline-bounded submit on the still-full queue must return
    // within (roughly) its deadline, not block for the 2 s batch window.
    let start = Instant::now();
    let result =
        server.submit_timeout(sample_input(net.input_len(), 99), Duration::from_millis(50));
    match result {
        Err(ServeError::Timeout { waited }) => {
            assert!(waited >= Duration::from_millis(50));
            assert!(
                start.elapsed() < Duration::from_millis(1500),
                "timed-out submit blocked for {:?}",
                start.elapsed()
            );
        }
        // The worker may have drained the queue between fills; accepting
        // is legal — the guarantee under test is only "never block past
        // the deadline".
        Ok(p) => drop(p),
        Err(e) => panic!("unexpected error: {e}"),
    }

    // Graceful shutdown still answers every accepted request.
    let accepted = pending.len();
    let answered = pending.into_iter().filter_map(|p| p.wait().ok()).count();
    assert_eq!(answered, accepted, "accepted requests must be served, not dropped");
    server.shutdown();
}

/// Regression: a pool wider than the request queue (workers=8,
/// queue_capacity=1) used to spawn all 8 workers even though the queue
/// can never feed them simultaneously. The clamp must keep serving
/// correct and record the declined slots in the starvation telemetry.
#[test]
fn starved_pool_clamps_workers_to_queue_capacity() {
    spg_telemetry::set_enabled(true);
    let before = spg_telemetry::snapshot().counter("serve.starved_workers");
    let mut net = build_network(9);
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let net = Arc::new(net);
    let config = ServeConfig {
        workers: 8,
        max_batch: 1,
        max_delay: Duration::from_millis(1),
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &plans, config).unwrap();
    let declined = spg_telemetry::snapshot().counter("serve.starved_workers") - before;
    assert_eq!(declined, 7, "7 of 8 worker slots declined for a 1-slot queue");
    // The clamped pool still serves correctly.
    let mut ws = Workspace::for_network(&net);
    for s in 0..4 {
        let input = sample_input(net.input_len(), s);
        net.forward_into(&input, &mut ws);
        let expected = ws.trace.logits().as_slice().to_vec();
        let response = server
            .submit_timeout(input, Duration::from_secs(10))
            .expect("clamped pool accepts work")
            .wait()
            .expect("clamped pool serves work");
        assert_eq!(response.logits, expected, "request {s}");
        assert!(response.worker < 1, "only the fed worker slot exists");
    }
    server.shutdown();
}

/// Bad inputs fail fast with a typed error instead of reaching a worker.
#[test]
fn wrong_length_input_is_rejected_up_front() {
    let net = Arc::new(build_network(3));
    let server = Server::start(Arc::clone(&net), &[], ServeConfig::default()).unwrap();
    match server.try_submit(vec![1.0; 3]) {
        Err(ServeError::BadInput { expected, actual }) => {
            assert_eq!(expected, net.input_len());
            assert_eq!(actual, 3);
        }
        other => panic!("expected BadInput, got {other:?}"),
    }
}

/// Shutdown drains queued work: every request accepted before shutdown
/// receives a response.
#[test]
fn shutdown_drains_in_flight_requests() {
    let net = Arc::new(build_network(5));
    let config = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        queue_capacity: 32,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &[], config).unwrap();
    let pending: Vec<_> = (0..20)
        .map(|s| {
            server
                .submit_timeout(sample_input(net.input_len(), s), Duration::from_secs(10))
                .expect("queue has room")
        })
        .collect();
    server.shutdown();
    for p in pending {
        p.wait().expect("accepted request served before shutdown completed");
    }
}

/// ServeError converts into the unified error type with kind `Serving`
/// and a walkable source chain.
#[test]
fn serve_errors_convert_to_unified_error() {
    let e: spg_error::Error = ServeError::ShuttingDown.into();
    assert_eq!(e.kind(), spg_error::ErrorKind::Serving);
    assert!(std::error::Error::source(&e).is_some());
}

/// `max_delay: 0` must serve every request in its own immediate batch —
/// the deadline arithmetic (`now + 0`) must not underflow or stall.
#[test]
fn zero_max_delay_serves_every_request() {
    let mut net = build_network(9);
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let net = Arc::new(net);
    let mut ws = Workspace::for_network(&net);
    let inputs: Vec<Vec<f32>> = (0..8).map(|s| sample_input(net.input_len(), s)).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|input| {
            net.forward_into(input, &mut ws);
            ws.trace.logits().as_slice().to_vec()
        })
        .collect();

    let config = ServeConfig { workers: 2, max_delay: Duration::ZERO, ..ServeConfig::default() };
    let server = Server::start(Arc::clone(&net), &plans, config).unwrap();
    for (i, input) in inputs.iter().enumerate() {
        let p = server.submit_timeout(input.clone(), Duration::from_secs(10)).unwrap();
        let r = p.wait().expect("zero-delay batches still complete");
        assert_eq!(r.logits, expected[i], "request {i}");
    }
    server.shutdown();
}

/// A layer that panics when its input starts with NaN — a deterministic
/// stand-in for a kernel bug, usable without the `fault-injection`
/// feature.
#[derive(Debug)]
struct PanickingLayer {
    len: usize,
}

impl spg_convnet::layer::Layer for PanickingLayer {
    fn name(&self) -> &str {
        "nan-tripwire"
    }

    fn input_len(&self) -> usize {
        self.len
    }

    fn output_len(&self) -> usize {
        self.len
    }

    fn forward(
        &self,
        input: &[f32],
        output: &mut [f32],
        _scratch: &mut spg_convnet::workspace::ConvScratch,
    ) {
        assert!(!input[0].is_nan(), "NaN tripwire: simulated kernel crash");
        output.copy_from_slice(input);
    }

    fn backward(
        &self,
        _input: &[f32],
        _output: &[f32],
        grad_out: &[f32],
        grad_in: &mut [f32],
        _param_grads: &mut spg_tensor::Tensor,
        _scratch: &mut spg_convnet::workspace::ConvScratch,
    ) {
        grad_in.copy_from_slice(grad_out);
    }
}

fn tripwire_network(len: usize) -> Arc<Network> {
    Arc::new(Network::new(vec![Box::new(PanickingLayer { len })]).unwrap())
}

/// The tentpole guarantee, no feature flags needed: a panicking batch
/// fails with a typed `WorkerFault`, every other request still gets a
/// correct response, and the supervisor respawns the crashed worker.
#[test]
fn panicking_batch_is_isolated_and_worker_respawns() {
    let net = tripwire_network(4);
    // max_batch 1 pins the blast radius to exactly the poisoned request.
    let config = ServeConfig {
        workers: 2,
        max_batch: 1,
        max_delay: Duration::ZERO,
        restart_backoff: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &[], config).unwrap();

    let good: Vec<_> = (0..6)
        .map(|s| {
            let input = sample_input(4, s);
            let p = server.submit_timeout(input.clone(), Duration::from_secs(10)).unwrap();
            (input, p)
        })
        .collect();
    let poison =
        server.submit_timeout(vec![f32::NAN, 0.0, 0.0, 0.0], Duration::from_secs(10)).unwrap();
    // Submitted after the poison pill: proves the pool keeps serving.
    let after: Vec<_> = (6..12)
        .map(|s| {
            let input = sample_input(4, s);
            let p = server.submit_timeout(input.clone(), Duration::from_secs(10)).unwrap();
            (input, p)
        })
        .collect();

    for (input, p) in good.into_iter().chain(after) {
        let r = p.wait().expect("healthy requests survive a neighbour's panic");
        assert_eq!(r.logits, input, "identity layer must echo the input bit-for-bit");
    }
    match poison.wait() {
        Err(ServeError::WorkerFault { worker, batch, message }) => {
            assert!(worker < 2);
            assert!(batch >= 1);
            assert!(message.contains("NaN tripwire"), "panic message survives: {message}");
        }
        other => panic!("expected WorkerFault, got {other:?}"),
    }
    // The supervisor bumps the restart counter just before respawning,
    // so the faulted reply can race a step ahead of it: poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.restarts() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.restarts(), 1, "one respawn");
    assert_eq!(server.faulted_batches(), 1, "one faulted batch");
    server.shutdown();
}

/// `restart_budget: 0` retires the slot instead of respawning: the fault
/// still only fails its own batch, and the restart counter stays at zero.
#[test]
fn exhausted_restart_budget_retires_the_worker() {
    let net = tripwire_network(4);
    let config = ServeConfig {
        workers: 1,
        max_batch: 1,
        max_delay: Duration::ZERO,
        restart_budget: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &[], config).unwrap();
    let poison =
        server.submit_timeout(vec![f32::NAN, 0.0, 0.0, 0.0], Duration::from_secs(10)).unwrap();
    assert!(matches!(poison.wait(), Err(ServeError::WorkerFault { .. })));
    // The only slot is retired; an accepted request can no longer be
    // served and must surface as Disconnected once the server goes away.
    let orphan = server.try_submit(sample_input(4, 1)).unwrap();
    assert_eq!(server.restarts(), 0);
    assert_eq!(server.faulted_batches(), 1);
    server.shutdown();
    assert!(matches!(orphan.wait(), Err(ServeError::Disconnected)));
}
