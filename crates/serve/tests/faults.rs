//! Deterministic fault-injection drills for the serving pool. Only built
//! with the `fault-injection` cargo feature:
//!
//! ```text
//! cargo test -p spg-serve --features fault-injection
//! ```
//!
//! The always-on supervision tests in `serving.rs` crash a worker through
//! a purpose-built panicking layer; these drills instead use the real
//! [`FaultPlan`] path that ships in the production config surface, i.e.
//! exactly what `spgcnn serve --inject-fault` exercises in CI.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spg_convnet::layer::{ConvLayer, FcLayer, ReluLayer};
use spg_convnet::workspace::Workspace;
use spg_convnet::{ConvSpec, Network};
use spg_core::autotune::{Framework, TuningMode};
use spg_serve::{FaultPlan, ServeConfig, ServeError, Server};

fn build_network(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = ConvSpec::new(2, 8, 8, 4, 3, 3, 1, 1).unwrap();
    let conv_out = spec.output_shape().len();
    Network::new(vec![
        Box::new(ConvLayer::new(spec, &mut rng)),
        Box::new(ReluLayer::new(conv_out)),
        Box::new(FcLayer::new(conv_out, 5, &mut rng)),
    ])
    .unwrap()
}

fn sample_input(len: usize, salt: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
}

/// The ISSUE acceptance drill: a 4-worker pool with one injected panic
/// answers every request — the faulted micro-batch's requests as typed
/// `WorkerFault`s, everything else bit-identical to the unbatched
/// forward path — and the supervisor restarts the crashed worker.
#[test]
fn four_worker_pool_survives_injected_panic() {
    let mut net = build_network(42);
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let net = Arc::new(net);

    let mut ws = Workspace::for_network(&net);
    let inputs: Vec<Vec<f32>> = (0..32).map(|s| sample_input(net.input_len(), s)).collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|input| {
            net.forward_into(input, &mut ws);
            ws.trace.logits().as_slice().to_vec()
        })
        .collect();

    // `any:2` rather than a fixed worker: on a small host the MPMC queue
    // does not guarantee which worker pops which request, but *some*
    // worker always reaches its second micro-batch with 32 requests and
    // max_batch 1.
    let config = ServeConfig {
        workers: 4,
        max_batch: 1,
        max_delay: Duration::ZERO,
        restart_backoff: Duration::ZERO,
        fault_plan: Some(FaultPlan::any_worker(2).with_seed(7)),
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&net), &plans, config).unwrap();
    let pending: Vec<_> = inputs
        .iter()
        .map(|input| server.submit_timeout(input.clone(), Duration::from_secs(30)).unwrap())
        .collect();

    let mut faulted = 0usize;
    for (i, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(r) => assert_eq!(r.logits, expected[i], "surviving request {i} diverged"),
            Err(ServeError::WorkerFault { batch, message, .. }) => {
                assert_eq!(batch, 2, "the plan targets the second micro-batch");
                assert!(message.contains("injected fault"), "panic message: {message}");
                assert!(message.contains("any:2:7"), "plan echoed for triage: {message}");
                faulted += 1;
            }
            Err(e) => panic!("request {i}: unexpected error {e}"),
        }
    }
    // max_batch 1: the one-shot plan fails exactly one request.
    assert_eq!(faulted, 1, "exactly the faulted micro-batch fails");
    assert_eq!(server.faulted_batches(), 1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.restarts() < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.restarts(), 1, "the crashed worker was respawned");
    server.shutdown();
}
