//! Plan-time static verification: lowers a [`LayerPlan`] into `spg-check`'s
//! plan IR and proves it safe before it is measured or deployed.
//!
//! The lowering mirrors the executors' dispatch logic exactly — the same
//! narrow-output cutoff, phase-transform condition, x-tile segmentation, and
//! worker count the kernels use at run time — so the proof is about the code
//! that runs. [`CompiledConv::compile`](crate::compiled::CompiledConv::compile)
//! and the autotuner both call [`verify_plan`] / [`verify_technique`]; a
//! rejected plan surfaces as [`SpgError::PlanRejected`] naming the offending
//! access instead of executing.

use spg_check::{
    band_sub_spec, BackwardPlan, BandDim, BandPlan, CheckReport, ConvPlan, ForwardPlan,
    RegisterTile, ScheduleTile, ScratchCapacity, XTile,
};
use spg_convnet::ConvSpec;

use crate::autotune::Phase;
use crate::hybrid::band_ranges;
use crate::schedule::{LayerPlan, Technique};
use crate::sparse::DEFAULT_TILE_WIDTH;
use crate::stencil::kernel::{x_plan, LANES, TILE_ROWS};
use crate::stencil::{plan_cache_schedule, plan_register_tile};
use crate::SpgError;

/// Lowers a forward technique to the verifier's IR, reproducing the
/// executors' dispatch: the narrow-output shifted-GEMM cutoff
/// (`out_w < LANES`), the Eq. 21 phase transform condition (`sx > 1`), the
/// kernel's x-tile segmentation, and the GEMM worker count.
pub fn lower_forward(spec: &ConvSpec, technique: Technique, cores: usize) -> ForwardPlan {
    match technique {
        Technique::StencilFp => {
            if spec.out_w() < LANES {
                ForwardPlan::StencilNarrow
            } else {
                ForwardPlan::StencilTiled {
                    lanes: LANES,
                    tile_rows: TILE_ROWS,
                    cache_rows: plan_cache_schedule(spec).y_tile.max(TILE_ROWS),
                    x_tiles: x_plan(spec.out_w())
                        .into_iter()
                        .map(|(x, wide)| XTile { x, vectors: if wide { 2 } else { 1 } })
                        .collect(),
                    phased: spec.sx() > 1,
                }
            }
        }
        Technique::StencilYBand | Technique::StencilXBand | Technique::StencilOutChannel => {
            let dim = technique
                .band_dim()
                .unwrap_or_else(|| unreachable!("band_dim is Some for hybrid variants"));
            lower_banded(spec, dim, cores)
        }
        Technique::ParallelGemm => ForwardPlan::UnfoldGemm { threads: cores.max(1) },
        // GEMM-in-Parallel runs one serial GEMM per training input; the
        // sparse technique has no forward kernel and falls back likewise.
        Technique::GemmInParallel | Technique::SparseBp => ForwardPlan::UnfoldGemm { threads: 1 },
    }
}

/// Lowers a banded hybrid decomposition: the very band ranges the
/// [`HybridExecutor`](crate::hybrid::HybridExecutor) will run (from the
/// shared [`band_ranges`] source of truth), each band carrying the
/// checker's own restriction of the spec and a recursively lowered wide
/// tiled plan. Unsplittable specs lower to a single band, which the
/// verifier rejects — exactly the candidates the executor could not
/// decompose.
fn lower_banded(spec: &ConvSpec, dim: BandDim, cores: usize) -> ForwardPlan {
    let bands = band_ranges(spec, dim, cores)
        .into_iter()
        .map(|(lo, hi)| {
            let sub = match band_sub_spec(spec, dim, lo, hi) {
                Ok(sub) => sub,
                // Degenerate restriction: carry the parent spec so the
                // verifier's sub-spec re-derivation names the mismatch.
                Err(_) => *spec,
            };
            BandPlan {
                range: (lo, hi),
                spec: sub,
                plan: lower_forward(&sub, Technique::StencilFp, 1),
            }
        })
        .collect();
    ForwardPlan::StencilBanded { dim, bands }
}

/// Lowers a backward technique to the verifier's IR.
pub fn lower_backward(spec: &ConvSpec, technique: Technique, cores: usize) -> BackwardPlan {
    let _ = spec;
    match technique {
        Technique::SparseBp => BackwardPlan::SparsePointerShift { tile_width: DEFAULT_TILE_WIDTH },
        Technique::ParallelGemm => BackwardPlan::UnfoldGemm { threads: cores.max(1) },
        // The stencil-family techniques (sequential and banded) are
        // forward-phase kernels; backward falls back to a serial GEMM.
        Technique::GemmInParallel
        | Technique::StencilFp
        | Technique::StencilYBand
        | Technique::StencilXBand
        | Technique::StencilOutChannel => BackwardPlan::UnfoldGemm { threads: 1 },
    }
}

/// Lowers a complete [`LayerPlan`] — both techniques plus the generators'
/// register tile and cache schedule for `spec` — to the verifier's IR.
pub fn lower_plan(spec: &ConvSpec, plan: LayerPlan, cores: usize) -> ConvPlan {
    let tile = plan_register_tile(spec);
    let schedule = plan_cache_schedule(spec);
    ConvPlan {
        forward: lower_forward(spec, plan.forward, cores),
        backward: lower_backward(spec, plan.backward, cores),
        register_tile: RegisterTile { rx: tile.rx, ry: tile.ry },
        schedule: ScheduleTile { y_tile: schedule.y_tile, x_tile: schedule.x_tile },
    }
}

/// Scratch capacities the verifier judges staging footprints against: what
/// [`ConvScratch::reserve`](spg_convnet::workspace::ConvScratch::reserve)
/// provides for this spec, which every `_scratch` entry point establishes.
fn capacities(spec: &ConvSpec) -> ScratchCapacity {
    ScratchCapacity::reserved_for(spec)
}

/// Verifies one technique for one phase of `spec` — the autotuner's
/// per-candidate gate.
///
/// # Errors
///
/// Returns [`SpgError::PlanRejected`] with the verifier's typed
/// [`CheckError`](spg_check::CheckError) if any symbolic access range
/// escapes its buffer, worker regions overlap, staging overflows the
/// reserved scratch, or the tile shapes contradict the spec.
pub fn verify_technique(
    spec: &ConvSpec,
    technique: Technique,
    phase: Phase,
    cores: usize,
) -> Result<CheckReport, SpgError> {
    let cap = capacities(spec);
    let tile = plan_register_tile(spec);
    let schedule = plan_cache_schedule(spec);
    let result = match phase {
        Phase::Forward => spg_check::verify_forward(
            spec,
            &lower_forward(spec, technique, cores),
            RegisterTile { rx: tile.rx, ry: tile.ry },
            ScheduleTile { y_tile: schedule.y_tile, x_tile: schedule.x_tile },
            &cap,
        ),
        Phase::Backward => {
            spg_check::verify_backward(spec, &lower_backward(spec, technique, cores), &cap)
        }
    };
    result.map_err(|check| SpgError::PlanRejected { technique: technique.id(), check })
}

/// Verifies a specialized registry instance for `spec`: lowers the
/// instance's own plan — its lane width, tile rows, cache block, and
/// x-tile list, which may differ from the generic kernel's (AVX-512
/// instances run 16 lanes) — and proves it through `spg-check` with the
/// generators' register tile and cache schedule.
/// [`select_kernel`](crate::specialized::select_kernel) calls this before
/// any instance is dispatched; a rejection silently routes the layer to
/// the generic loops.
///
/// # Errors
///
/// Returns [`SpgError::PlanRejected`] (technique
/// `"stencil-fp-specialized"`) with the verifier's typed
/// [`CheckError`](spg_check::CheckError) if any access range of the
/// instance's lowered plan escapes its buffer or overflows scratch.
pub fn verify_specialized(
    spec: &ConvSpec,
    inst: &spg_codegen::SpecializedKernel,
) -> Result<CheckReport, SpgError> {
    let cap = capacities(spec);
    let tile = plan_register_tile(spec);
    let schedule = plan_cache_schedule(spec);
    spg_check::verify_forward(
        spec,
        &inst.plan(spec, schedule.y_tile.max(TILE_ROWS)),
        RegisterTile { rx: tile.rx, ry: tile.ry },
        ScheduleTile { y_tile: schedule.y_tile, x_tile: schedule.x_tile },
        &cap,
    )
    .map_err(|check| SpgError::PlanRejected { technique: "stencil-fp-specialized", check })
}

/// Verifies a complete layer plan against `spec` — the gate
/// [`CompiledConv::compile`](crate::compiled::CompiledConv::compile) runs
/// before constructing the kernel.
///
/// # Errors
///
/// Returns [`SpgError::PlanRejected`] naming the offending access if either
/// phase of the lowered plan fails verification.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::schedule::recommended_plan;
/// use spg_core::verify::verify_plan;
///
/// let spec = ConvSpec::square(12, 16, 4, 3, 1);
/// let plan = recommended_plan(&spec, 0.9, 16);
/// let report = verify_plan(&spec, plan, 16)?;
/// assert!(report.accesses_proved > 0);
/// # Ok::<(), spg_core::SpgError>(())
/// ```
pub fn verify_plan(
    spec: &ConvSpec,
    plan: LayerPlan,
    cores: usize,
) -> Result<CheckReport, SpgError> {
    let lowered = lower_plan(spec, plan, cores);
    spg_check::verify_conv_plan(spec, &lowered, &capacities(spec)).map_err(|check| {
        let technique = match check {
            // Attribute the rejection to the phase whose kernel faulted;
            // tile-shape errors precede the phase dispatch and blame forward.
            spg_check::CheckError::OutOfBounds { buffer, .. }
            | spg_check::CheckError::ScratchOverflow { buffer, .. }
                if matches!(
                    buffer,
                    spg_check::Buf::GradIn | spg_check::Buf::GradOut | spg_check::Buf::GradWeights
                ) =>
            {
                plan.backward.id()
            }
            _ => plan.forward.id(),
        };
        SpgError::PlanRejected { technique, check }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every technique pair the scheduler can emit verifies clean on both a
    /// wide (tiled stencil) and a narrow (shifted-GEMM) layer.
    #[test]
    fn all_technique_pairs_verify_on_representative_specs() {
        let wide = ConvSpec::square(14, 5, 3, 3, 1);
        let narrow = ConvSpec::square(7, 6, 4, 3, 1); // 5-wide output
        let strided = ConvSpec::square(28, 8, 3, 5, 2);
        for spec in [wide, narrow, strided] {
            for &fwd in Technique::forward_candidates() {
                for &bwd in Technique::backward_candidates() {
                    let plan = LayerPlan { forward: fwd, backward: bwd };
                    match verify_plan(&spec, plan, 4) {
                        Ok(report) => assert!(report.accesses_proved > 0, "{spec} {plan}"),
                        // Hybrid candidates are legitimately rejected on
                        // specs the decomposition cannot split at this
                        // worker count; everything else must verify.
                        Err(err) => {
                            let dim = fwd.band_dim().unwrap_or_else(|| {
                                panic!("{spec} {plan} rejected: {err}");
                            });
                            assert!(
                                band_ranges(&spec, dim, 4).len() <= 1,
                                "{spec} {plan} rejected despite available bands: {err}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The lowering reproduces the executor's narrow-output cutoff.
    #[test]
    fn narrow_output_lowers_to_shifted_gemm() {
        let narrow = ConvSpec::square(7, 6, 4, 3, 1);
        assert_eq!(lower_forward(&narrow, Technique::StencilFp, 1), ForwardPlan::StencilNarrow);
        let wide = ConvSpec::square(14, 5, 3, 3, 1);
        assert!(matches!(
            lower_forward(&wide, Technique::StencilFp, 1),
            ForwardPlan::StencilTiled { phased: false, .. }
        ));
    }

    /// Strided layers lower with the phase transform, mirroring the kernel's
    /// `sx > 1` dispatch.
    #[test]
    fn strided_layer_lowers_phased() {
        let strided = ConvSpec::square(28, 8, 3, 5, 2);
        assert!(matches!(
            lower_forward(&strided, Technique::StencilFp, 1),
            ForwardPlan::StencilTiled { phased: true, .. }
        ));
    }

    /// The spg-check budget constants must stay equal to the generators'.
    /// (The verifier re-derives admissibility; divergence would let it
    /// reject plans the generator legitimately emits or vice versa.)
    #[test]
    fn verifier_constants_match_generators() {
        assert_eq!(spg_check::VECTOR_WIDTH, crate::stencil::VECTOR_WIDTH);
        assert_eq!(spg_check::ACCUMULATOR_BUDGET, crate::stencil::ACCUMULATOR_BUDGET);
        assert_eq!(spg_check::L1_BUDGET_ELEMS, crate::stencil::L1_BUDGET_ELEMS);
        assert_eq!(spg_check::PAGE_ELEMS, crate::stencil::PAGE_ELEMS);
        assert_eq!(spg_check::TLB_BUDGET_PAGES, crate::stencil::TLB_BUDGET_PAGES);
        assert_eq!(spg_check::VECTOR_WIDTH, LANES);
    }

    /// Every specialized registry instance's lowered plan verifies clean
    /// on a shape of its key wide enough for its lanes — including the
    /// 16-lane AVX-512 plans, which exercise the verifier at a lane width
    /// the generic kernel never lowers to. (Static proof: independent of
    /// host CPU features.)
    #[test]
    fn specialized_instances_verify() {
        for inst in spg_codegen::all_instances() {
            let k = inst.key();
            let n = k.sx * (inst.lanes() + 5) + k.fx;
            let spec = match ConvSpec::new(3, n, n, 2, k.fy, k.fx, k.sy, k.sx) {
                Ok(s) => s,
                Err(e) => panic!("spec for {k}: {e:?}"),
            };
            let report = verify_specialized(&spec, inst).unwrap();
            assert!(report.accesses_proved > 0, "{inst:?} on {spec}");
        }
    }

    /// The codegen crate's lane-parameterized x segmentation and tile
    /// height must reproduce the generic kernel's at 8 lanes — the
    /// bit-identity and plan-equivalence arguments both rest on it.
    #[test]
    fn codegen_plan_constants_match_generic_kernel() {
        assert_eq!(spg_codegen::TILE_ROWS, TILE_ROWS);
        for w in LANES..6 * LANES {
            assert_eq!(spg_codegen::xplan::x_plan_lanes(w, LANES), x_plan(w), "out_w={w}");
        }
    }

    /// Per-phase verification covers each candidate list end to end.
    #[test]
    fn per_phase_candidates_verify() {
        let spec = ConvSpec::square(12, 16, 4, 3, 1);
        for &t in Technique::forward_candidates() {
            match verify_technique(&spec, t, Phase::Forward, 8) {
                Ok(_) => {}
                Err(err) => {
                    // Only hybrids without an available decomposition may
                    // be rejected (here: x-bands on a 10-wide output).
                    let dim = t.band_dim().unwrap_or_else(|| panic!("{spec} {t} rejected: {err}"));
                    assert!(band_ranges(&spec, dim, 8).len() <= 1, "{spec} {t}: {err}");
                }
            }
        }
        for &t in Technique::backward_candidates() {
            verify_technique(&spec, t, Phase::Backward, 8).unwrap();
        }
    }

    /// Hybrid lowering emits the executor's own band ranges and verifies
    /// clean on a splittable spec; unsplittable specs lower to a single
    /// band that the verifier rejects.
    #[test]
    fn hybrid_lowering_verifies_when_splittable() {
        // ImageNet-22K L0 (Table 2): 128x128 output, stride 2.
        let spec = ConvSpec::square(262, 120, 3, 7, 2);
        for t in [Technique::StencilYBand, Technique::StencilXBand, Technique::StencilOutChannel] {
            let report = verify_technique(&spec, t, Phase::Forward, 8).unwrap();
            assert!(report.worker_regions >= 8, "{t}: {report:?}");
        }
        // Narrow output: single band, rejected at verification.
        let narrow = ConvSpec::square(7, 6, 4, 3, 1);
        for t in [Technique::StencilYBand, Technique::StencilXBand, Technique::StencilOutChannel] {
            verify_technique(&narrow, t, Phase::Forward, 8).unwrap_err();
        }
    }
}
