//! Network-description parser.
//!
//! The paper takes CNN descriptions "using Google Protocol Buffer, similar
//! to how CAFFE describes its inputs" (Sec. 4). This module implements a
//! small hand-written parser for an equivalent protobuf-text-like format,
//! avoiding an external dependency while playing the same role: declare a
//! network in text, get an optimized, trainable [`Network`].
//!
//! # Format
//!
//! ```text
//! # comments run to end of line
//! name: "cifar10"
//! input { channels: 3 height: 36 width: 36 }
//! conv  { features: 64 kernel: 5 stride: 1 }
//! relu  { }
//! lrn   { size: 5 }
//! pool  { window: 2 }
//! dropout { rate_pct: 50 }
//! fc    { outputs: 10 }
//! ```
//!
//! Layers are listed in order; activation geometry is inferred and
//! validated while building.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use spg_convnet::layer::{ConvLayer, FcLayer, Layer, MaxPoolLayer, ReluLayer};
use spg_convnet::regularize::{DropoutLayer, LrnLayer};
use spg_convnet::{ConvSpec, Network};
use spg_tensor::Shape3;

use crate::SpgError;

/// One layer in a parsed description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerDesc {
    /// Convolution with square kernel and stride.
    Conv {
        /// Output feature count `Nf`.
        features: usize,
        /// Kernel extent `Fx = Fy`.
        kernel: usize,
        /// Stride `sx = sy`.
        stride: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// Non-overlapping square max pooling.
    Pool {
        /// Window extent.
        window: usize,
    },
    /// Fully-connected layer.
    Fc {
        /// Output neuron count.
        outputs: usize,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability in integer percent (`50` = 0.5).
        rate_pct: usize,
    },
    /// Local response normalization across channels (AlexNet constants).
    Lrn {
        /// Channel window size.
        size: usize,
    },
}

/// A parsed network description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkDescription {
    /// Network name.
    pub name: String,
    /// Input activation geometry.
    pub input: Shape3,
    /// Layers in order.
    pub layers: Vec<LayerDesc>,
}

impl NetworkDescription {
    /// Parses a description from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::Parse`] on malformed input and
    /// [`SpgError::InvalidNetwork`] when required sections are missing.
    ///
    /// # Example
    ///
    /// ```
    /// use spg_core::config::NetworkDescription;
    ///
    /// let text = r#"
    ///     name: "mnist"
    ///     input { channels: 1 height: 28 width: 28 }
    ///     conv { features: 20 kernel: 5 stride: 1 }
    ///     relu { }
    ///     pool { window: 2 }
    ///     fc { outputs: 10 }
    /// "#;
    /// let desc = NetworkDescription::parse(text)?;
    /// assert_eq!(desc.name, "mnist");
    /// assert_eq!(desc.layers.len(), 4);
    /// # Ok::<(), spg_core::SpgError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Self, SpgError> {
        let mut name = None;
        let mut input = None;
        let mut layers = Vec::new();
        let mut tokens = tokenize(text);
        while let Some((line, tok)) = tokens.next() {
            match tok.as_str() {
                "name:" => {
                    let (_, value) = tokens.next().ok_or_else(|| SpgError::Parse {
                        line,
                        message: "expected a name after `name:`".into(),
                    })?;
                    name = Some(value.trim_matches('"').to_owned());
                }
                "input" => {
                    let fields = parse_block(&mut tokens, line)?;
                    input = Some(Shape3::new(
                        field(&fields, "channels", line)?,
                        field(&fields, "height", line)?,
                        field(&fields, "width", line)?,
                    ));
                }
                "conv" => {
                    let fields = parse_block(&mut tokens, line)?;
                    layers.push(LayerDesc::Conv {
                        features: field(&fields, "features", line)?,
                        kernel: field(&fields, "kernel", line)?,
                        stride: field_or(&fields, "stride", 1),
                    });
                }
                "relu" => {
                    parse_block(&mut tokens, line)?;
                    layers.push(LayerDesc::Relu);
                }
                "pool" => {
                    let fields = parse_block(&mut tokens, line)?;
                    layers.push(LayerDesc::Pool { window: field(&fields, "window", line)? });
                }
                "fc" => {
                    let fields = parse_block(&mut tokens, line)?;
                    layers.push(LayerDesc::Fc { outputs: field(&fields, "outputs", line)? });
                }
                "dropout" => {
                    let fields = parse_block(&mut tokens, line)?;
                    let rate_pct = field(&fields, "rate_pct", line)?;
                    if rate_pct >= 100 {
                        return Err(SpgError::Parse {
                            line,
                            message: format!("dropout rate_pct {rate_pct} must be below 100"),
                        });
                    }
                    layers.push(LayerDesc::Dropout { rate_pct });
                }
                "lrn" => {
                    let fields = parse_block(&mut tokens, line)?;
                    layers.push(LayerDesc::Lrn { size: field(&fields, "size", line)? });
                }
                other => {
                    return Err(SpgError::Parse {
                        line,
                        message: format!("unknown section `{other}`"),
                    })
                }
            }
        }
        let input = input.ok_or_else(|| SpgError::InvalidNetwork {
            message: "missing `input { ... }` section".into(),
        })?;
        if layers.is_empty() {
            return Err(SpgError::InvalidNetwork { message: "no layers declared".into() });
        }
        Ok(NetworkDescription { name: name.unwrap_or_else(|| "unnamed".into()), input, layers })
    }

    /// Builds a trainable [`Network`] with seeded random initialization.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::InvalidNetwork`] when layer geometry does not
    /// chain (e.g. a kernel larger than its input).
    pub fn build(&self, seed: u64) -> Result<Network, SpgError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut shape = self.input;
        let mut flat: Option<usize> = None;
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        for (i, desc) in self.layers.iter().enumerate() {
            match *desc {
                LayerDesc::Conv { features, kernel, stride } => {
                    if flat.is_some() {
                        return Err(SpgError::InvalidNetwork {
                            message: format!("layer {i}: conv after fc is unsupported"),
                        });
                    }
                    let spec = ConvSpec::new(
                        shape.c, shape.h, shape.w, features, kernel, kernel, stride, stride,
                    )
                    .map_err(|e| SpgError::InvalidNetwork { message: format!("layer {i}: {e}") })?;
                    shape = spec.output_shape();
                    layers.push(Box::new(ConvLayer::new(spec, &mut rng)));
                }
                LayerDesc::Relu => {
                    let len = flat.unwrap_or(shape.len());
                    layers.push(Box::new(ReluLayer::new(len)));
                }
                LayerDesc::Pool { window } => {
                    if flat.is_some() {
                        return Err(SpgError::InvalidNetwork {
                            message: format!("layer {i}: pool after fc is unsupported"),
                        });
                    }
                    let pool = MaxPoolLayer::new(shape, window).map_err(|e| {
                        SpgError::InvalidNetwork { message: format!("layer {i}: {e}") }
                    })?;
                    shape = pool.out_shape();
                    layers.push(Box::new(pool));
                }
                LayerDesc::Fc { outputs } => {
                    let in_len = flat.unwrap_or(shape.len());
                    layers.push(Box::new(FcLayer::new(in_len, outputs, &mut rng)));
                    flat = Some(outputs);
                }
                LayerDesc::Dropout { rate_pct } => {
                    let len = flat.unwrap_or(shape.len());
                    // The mask seed derives from the layer position only —
                    // not from the weight-initialization seed — so a saved
                    // model restored into a freshly built shell computes
                    // the same function (see `io`).
                    let layer = DropoutLayer::new(len, rate_pct as f32 / 100.0, 0xd20b ^ i as u64)
                        .map_err(|e| SpgError::InvalidNetwork {
                            message: format!("layer {i}: {e}"),
                        })?;
                    layers.push(Box::new(layer));
                }
                LayerDesc::Lrn { size } => {
                    if flat.is_some() {
                        return Err(SpgError::InvalidNetwork {
                            message: format!("layer {i}: lrn after fc is unsupported"),
                        });
                    }
                    let layer = LrnLayer::new(shape.c, shape.plane(), size).map_err(|e| {
                        SpgError::InvalidNetwork { message: format!("layer {i}: {e}") }
                    })?;
                    layers.push(Box::new(layer));
                }
            }
        }
        Network::new(layers).map_err(|e| SpgError::InvalidNetwork { message: e.to_string() })
    }
}

/// Tokenizer yielding `(line, token)` pairs; `{`/`}` are their own tokens,
/// `#` comments run to end of line.
fn tokenize(text: &str) -> impl Iterator<Item = (usize, String)> + '_ {
    text.lines().enumerate().flat_map(|(i, raw)| {
        let line = raw.split('#').next().unwrap_or("");
        line.replace('{', " { ")
            .replace('}', " } ")
            .split_whitespace()
            .map(|t| (i + 1, t.to_owned()))
            .collect::<Vec<_>>()
    })
}

fn parse_block(
    tokens: &mut impl Iterator<Item = (usize, String)>,
    start_line: usize,
) -> Result<Vec<(String, usize)>, SpgError> {
    match tokens.next() {
        Some((_, t)) if t == "{" => {}
        _ => {
            return Err(SpgError::Parse { line: start_line, message: "expected `{`".into() });
        }
    }
    let mut fields = Vec::new();
    loop {
        match tokens.next() {
            Some((_, t)) if t == "}" => return Ok(fields),
            Some((line, key)) if key.ends_with(':') => {
                let (_, value) = tokens.next().ok_or_else(|| SpgError::Parse {
                    line,
                    message: format!("expected a value after `{key}`"),
                })?;
                let parsed = value.parse::<usize>().map_err(|_| SpgError::Parse {
                    line,
                    message: format!("`{value}` is not a non-negative integer"),
                })?;
                fields.push((key.trim_end_matches(':').to_owned(), parsed));
            }
            Some((line, t)) => {
                return Err(SpgError::Parse { line, message: format!("unexpected token `{t}`") });
            }
            None => {
                return Err(SpgError::Parse {
                    line: start_line,
                    message: "unterminated block".into(),
                });
            }
        }
    }
}

fn field(fields: &[(String, usize)], key: &str, line: usize) -> Result<usize, SpgError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| SpgError::Parse { line, message: format!("missing field `{key}`") })
}

fn field_or(fields: &[(String, usize)], key: &str, default: usize) -> usize {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CIFAR: &str = r#"
        # CIFAR-10 (Table 2): two conv layers then a classifier.
        name: "cifar10"
        input { channels: 3 height: 36 width: 36 }
        conv { features: 64 kernel: 5 stride: 1 }
        relu { }
        pool { window: 2 }
        conv { features: 64 kernel: 5 stride: 1 }
        relu { }
        pool { window: 2 }
        fc { outputs: 10 }
    "#;

    #[test]
    fn parses_cifar_description() {
        let desc = NetworkDescription::parse(CIFAR).unwrap();
        assert_eq!(desc.name, "cifar10");
        assert_eq!(desc.input, Shape3::new(3, 36, 36));
        assert_eq!(desc.layers.len(), 7);
        assert_eq!(desc.layers[0], LayerDesc::Conv { features: 64, kernel: 5, stride: 1 });
        assert_eq!(desc.layers[6], LayerDesc::Fc { outputs: 10 });
    }

    #[test]
    fn builds_trainable_network_with_correct_geometry() {
        let desc = NetworkDescription::parse(CIFAR).unwrap();
        let net = desc.build(7).unwrap();
        // 36 -> conv5 -> 32 -> pool2 -> 16 -> conv5 -> 12 -> pool2 -> 6.
        assert_eq!(net.input_len(), 3 * 36 * 36);
        assert_eq!(net.output_len(), 10);
        assert_eq!(net.layers().len(), 7);
        assert!(net.layers()[3].conv_spec().is_some());
        assert_eq!(net.layers()[3].conv_spec().unwrap().in_h(), 16);
    }

    #[test]
    fn default_stride_is_one() {
        let desc = NetworkDescription::parse(
            "input { channels: 1 height: 8 width: 8 }\nconv { features: 2 kernel: 3 }",
        )
        .unwrap();
        assert_eq!(desc.layers[0], LayerDesc::Conv { features: 2, kernel: 3, stride: 1 });
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = NetworkDescription::parse("input { channels: 1 height: 8 width: 8 }\nwat { }")
            .unwrap_err();
        assert!(matches!(err, SpgError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_missing_input_and_empty_networks() {
        assert!(matches!(
            NetworkDescription::parse("conv { features: 2 kernel: 3 }"),
            Err(SpgError::InvalidNetwork { .. })
        ));
        assert!(matches!(
            NetworkDescription::parse("input { channels: 1 height: 4 width: 4 }"),
            Err(SpgError::InvalidNetwork { .. })
        ));
    }

    #[test]
    fn rejects_bad_values_and_unterminated_blocks() {
        assert!(NetworkDescription::parse("input { channels: x height: 4 width: 4 }").is_err());
        assert!(NetworkDescription::parse("input { channels: 1").is_err());
    }

    #[test]
    fn build_rejects_oversized_kernels() {
        let desc = NetworkDescription::parse(
            "input { channels: 1 height: 4 width: 4 }\nconv { features: 2 kernel: 9 }",
        )
        .unwrap();
        assert!(matches!(desc.build(0), Err(SpgError::InvalidNetwork { .. })));
    }

    #[test]
    fn dropout_and_lrn_layers_build() {
        let desc = NetworkDescription::parse(
            r#"
            input { channels: 4 height: 8 width: 8 }
            conv { features: 8 kernel: 3 }
            lrn { size: 3 }
            relu { }
            fc { outputs: 4 }
            dropout { rate_pct: 50 }
            fc { outputs: 2 }
            "#,
        )
        .unwrap();
        let net = desc.build(3).unwrap();
        assert_eq!(net.layers().len(), 6);
        assert_eq!(net.layers()[1].name(), "lrn");
        assert_eq!(net.layers()[4].name(), "dropout");
        assert_eq!(net.output_len(), 2);
        // Forward runs end to end.
        let out = net.forward(&spg_tensor::Tensor::filled(net.input_len(), 0.3));
        assert_eq!(out.logits().len(), 2);
    }

    #[test]
    fn dropout_rate_must_be_below_100() {
        let err = NetworkDescription::parse(
            "input { channels: 1 height: 4 width: 4 }\ndropout { rate_pct: 100 }",
        )
        .unwrap_err();
        assert!(matches!(err, SpgError::Parse { .. }), "{err}");
    }

    #[test]
    fn lrn_after_fc_rejected() {
        let desc = NetworkDescription::parse(
            "input { channels: 1 height: 4 width: 4 }\nfc { outputs: 4 }\nlrn { size: 3 }",
        )
        .unwrap();
        assert!(matches!(desc.build(0), Err(SpgError::InvalidNetwork { .. })));
    }

    #[test]
    fn build_is_seed_deterministic() {
        let desc = NetworkDescription::parse(CIFAR).unwrap();
        let a = desc.build(3).unwrap();
        let b = desc.build(3).unwrap();
        let input = spg_tensor::Tensor::filled(a.input_len(), 0.1);
        assert_eq!(a.forward(&input).logits().as_slice(), b.forward(&input).logits().as_slice());
    }
}
