//! Arithmetic-intensity characterization math (paper Sec. 3).
//!
//! These functions are the analytical core of the paper's scalability
//! argument: partitioning one GEMM across cores divides the arithmetic
//! evenly but *not* the memory traffic, so AIT per core falls as cores are
//! added (Sec. 3.2); running whole GEMMs per core keeps it flat (Sec. 4.1).
//! The `spg-simcpu` machine model turns these intensities into the
//! GFlops/core curves of Figs. 3a and 4a.

use spg_convnet::ConvSpec;

/// Arithmetic intensity of an `m x k` by `k x n` dense multiply executed
/// on one core: `2mnk / (mk + kn + mn)` flops per element of traffic.
///
/// # Example
///
/// ```
/// // Square n x n MM has AIT 2n/3 (Sec. 3.2).
/// let ait = spg_core::ait::mm_ait(300, 300, 300);
/// assert!((ait - 200.0).abs() < 1e-9);
/// ```
pub fn mm_ait(m: usize, n: usize, k: usize) -> f64 {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    2.0 * m * n * k / (m * k + k * n + m * n)
}

/// AIT *per core* when the multiply is row-partitioned across `cores`
/// (the Parallel-GEMM schedule): each core computes `m / cores` rows of
/// `C`, touching its slice of `A` and `C` but the **entire** `B`
/// (Sec. 3.2).
///
/// For the square dual-core example in the paper this gives `n / 2`,
/// down from the single-core `2n / 3`.
///
/// # Panics
///
/// Panics if `cores == 0`.
///
/// # Example
///
/// ```
/// use spg_core::ait::mm_ait_per_core;
///
/// // Paper's worked example: n x n on 2 cores -> AIT n/2.
/// let ait = mm_ait_per_core(100, 100, 100, 2);
/// assert!((ait - 50.0).abs() < 1e-9);
/// ```
pub fn mm_ait_per_core(m: usize, n: usize, k: usize, cores: usize) -> f64 {
    assert!(cores > 0, "core count must be positive");
    let p = cores as f64;
    let (m, n, k) = (m as f64, n as f64, k as f64);
    // Partition rows of C: flops/core = 2mnk/p,
    // traffic/core = (m/p)k (A band) + kn (all of B) + (m/p)n (C band).
    let flops = 2.0 * m * n * k / p;
    let traffic = (m / p) * k + k * n + (m / p) * n;
    flops / traffic
}

/// AIT *per core* when the multiply is column-partitioned across `cores`:
/// each core computes `n / cores` columns of `C`, touching its slice of
/// `B` and `C` but the **entire** `A`. Sec. 3.2 observes the partitioning
/// axis only swaps which operand is replicated — either way per-core AIT
/// falls.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn mm_ait_per_core_cols(m: usize, n: usize, k: usize, cores: usize) -> f64 {
    assert!(cores > 0, "core count must be positive");
    let p = cores as f64;
    let (m, n, k) = (m as f64, n as f64, k as f64);
    let flops = 2.0 * m * n * k / p;
    let traffic = m * k + k * (n / p) + m * (n / p);
    flops / traffic
}

/// The better of the two partitioning axes for the given shape — the
/// choice a partitioning-aware scheduler would make, still strictly worse
/// than not partitioning at all once `B` (or `A`) no longer fits a core.
pub fn mm_ait_per_core_best(m: usize, n: usize, k: usize, cores: usize) -> f64 {
    mm_ait_per_core(m, n, k, cores).max(mm_ait_per_core_cols(m, n, k, cores))
}

/// AIT per core under the GEMM-in-Parallel schedule: every core runs a
/// whole independent multiply, so the per-core AIT **equals** the
/// single-core AIT regardless of core count (Sec. 4.1).
pub fn mm_ait_gemm_in_parallel(m: usize, n: usize, k: usize, _cores: usize) -> f64 {
    mm_ait(m, n, k)
}

/// GEMM dimensions `(m, n, k)` of the three multiplies a convolution
/// layer performs under Unfold+GEMM (Sec. 2.3 / Sec. 3):
/// forward `O = W * U^T`, backward error `E_U = E_O^T * W`, and
/// delta-weights `dW = E_O * U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGemmDims {
    /// Forward multiply dimensions.
    pub forward: (usize, usize, usize),
    /// Backward error multiply dimensions.
    pub backward_data: (usize, usize, usize),
    /// Delta-weight multiply dimensions.
    pub backward_weights: (usize, usize, usize),
}

/// Computes the GEMM dimensions of a convolution under Unfold+GEMM.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::ait::conv_gemm_dims;
///
/// let spec = ConvSpec::square(8, 4, 2, 3, 1); // 6x6 output
/// let dims = conv_gemm_dims(&spec);
/// assert_eq!(dims.forward, (4, 36, 18)); // Nf x patches, K = Nc*Fy*Fx
/// ```
pub fn conv_gemm_dims(spec: &ConvSpec) -> ConvGemmDims {
    let patches = spec.out_h() * spec.out_w();
    let kdim = spec.in_c() * spec.ky() * spec.kx();
    let nf = spec.features();
    ConvGemmDims {
        forward: (nf, patches, kdim),
        backward_data: (patches, kdim, nf),
        backward_weights: (nf, kdim, patches),
    }
}

/// Mean AIT per core across a convolution's three training multiplies
/// under Parallel-GEMM — the quantity whose decay Fig. 3a visualizes.
pub fn conv_training_ait_per_core(spec: &ConvSpec, cores: usize) -> f64 {
    let dims = conv_gemm_dims(spec);
    let phases = [dims.forward, dims.backward_data, dims.backward_weights];
    phases.iter().map(|&(m, n, k)| mm_ait_per_core(m, n, k, cores)).sum::<f64>() / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mm_ait_is_two_thirds_n() {
        for n in [30, 300, 3000] {
            let ait = mm_ait(n, n, n);
            assert!((ait - 2.0 * n as f64 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn one_core_partition_equals_single_core() {
        assert_eq!(mm_ait_per_core(64, 96, 32, 1), mm_ait(64, 96, 32));
    }

    #[test]
    fn per_core_ait_decreases_with_cores() {
        let mut prev = f64::INFINITY;
        for cores in [1, 2, 4, 8, 16] {
            let ait = mm_ait_per_core(512, 512, 512, cores);
            assert!(ait < prev, "AIT must fall as cores grow");
            prev = ait;
        }
    }

    #[test]
    fn paper_dual_core_example() {
        // Sec. 3.2: square n x n on 2 cores -> n/2.
        let n = 256;
        let ait = mm_ait_per_core(n, n, n, 2);
        assert!((ait - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn gemm_in_parallel_ait_is_flat() {
        let base = mm_ait_gemm_in_parallel(128, 128, 128, 1);
        for cores in [2, 4, 8, 16, 32] {
            assert_eq!(mm_ait_gemm_in_parallel(128, 128, 128, cores), base);
        }
    }

    #[test]
    fn conv_gemm_dims_match_spec_algebra() {
        let spec = ConvSpec::square(32, 32, 32, 4, 1);
        let dims = conv_gemm_dims(&spec);
        let patches = 29 * 29;
        assert_eq!(dims.forward, (32, patches, 32 * 16));
        assert_eq!(dims.backward_data, (patches, 32 * 16, 32));
        assert_eq!(dims.backward_weights, (32, 32 * 16, patches));
        // Flop counts of all three multiplies are identical.
        let f = |(m, n, k): (usize, usize, usize)| 2 * m * n * k;
        assert_eq!(f(dims.forward), f(dims.backward_data));
        assert_eq!(f(dims.forward), f(dims.backward_weights));
        assert_eq!(f(dims.forward) as u64, spec.arithmetic_ops());
    }

    #[test]
    fn small_feature_convs_end_up_memory_bound() {
        // The effect behind Fig. 4b's ordering: partitioning pushes the
        // absolute per-core AIT of few-feature convolutions far below that
        // of wide ones, so they fall under the roofline ridge first and
        // benefit most from GEMM-in-Parallel.
        let small = ConvSpec::square(32, 32, 32, 4, 1); // Table 1 ID 0
        let large = ConvSpec::square(64, 1024, 512, 2, 1); // Table 1 ID 1
        let small16 = conv_training_ait_per_core(&small, 16);
        let large16 = conv_training_ait_per_core(&large, 16);
        assert!(small16 < large16 / 5.0, "small {small16} vs large {large16}");
        // And both lose AIT versus their own single-core schedule.
        assert!(small16 < conv_training_ait_per_core(&small, 1));
        assert!(large16 < conv_training_ait_per_core(&large, 1));
    }

    #[test]
    fn column_partition_mirrors_row_partition_on_square() {
        // On square shapes the two axes are symmetric.
        for cores in [1, 2, 4, 16] {
            let r = mm_ait_per_core(64, 64, 64, cores);
            let c = mm_ait_per_core_cols(64, 64, 64, cores);
            assert!((r - c).abs() < 1e-12, "cores {cores}");
        }
    }

    #[test]
    fn best_axis_replicates_the_smaller_operand() {
        // Tall-skinny: A (m*k) is huge, B (k*n) small. Row partitioning
        // replicates B (cheap); column partitioning replicates A
        // (ruinous). The row axis must win, and `best` must pick it.
        let (m, n, k) = (4096, 32, 64);
        let rows = mm_ait_per_core(m, n, k, 16);
        let cols = mm_ait_per_core_cols(m, n, k, 16);
        assert!(rows > cols);
        assert_eq!(mm_ait_per_core_best(m, n, k, 16), rows);
        // And the mirrored shape favours columns.
        let rows = mm_ait_per_core(32, 4096, 64, 16);
        let cols = mm_ait_per_core_cols(32, 4096, 64, 16);
        assert!(cols > rows);
    }

    #[test]
    fn even_the_best_axis_loses_to_gemm_in_parallel() {
        // Sec. 3.2's bottom line: any partitioning reduces per-core AIT.
        for &(m, n, k) in &[(256usize, 256usize, 256usize), (1024, 64, 512), (64, 1024, 512)] {
            let best = mm_ait_per_core_best(m, n, k, 16);
            assert!(best < mm_ait(m, n, k), "{m}x{n}x{k}");
        }
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_panics() {
        mm_ait_per_core(8, 8, 8, 0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_panics_cols() {
        mm_ait_per_core_cols(8, 8, 8, 0);
    }
}
