//! Verified dispatch into the `spg-codegen` specialized-kernel registry.
//!
//! `spg-codegen` resolves a monomorphized instance for a shape
//! ([`spg_codegen::lookup`]); this module is the *gate* in front of it:
//! no instance runs until its lowered `StencilTiled` plan — the exact
//! lane width, register-tile rows, cache block, and x-tile list the
//! monomorphized code executes — has passed `spg-check`. Verification
//! verdicts are memoized per `(spec, ISA)` so the per-sample dispatch
//! path stays allocation- and proof-free after the first call.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use spg_codegen::{Isa, SpecializedKernel};
use spg_convnet::ConvSpec;

/// Memoized `spg-check` verdicts for specialized instances. Keyed by the
/// full spec (not just the kernel geometry): the x-tile list and phase
/// containment proof depend on the input dimensions.
static VERIFIED: OnceLock<Mutex<HashMap<(ConvSpec, Isa), bool>>> = OnceLock::new();

/// Resolves the specialized instance for `spec` **and proves it safe**:
/// returns `Some` only when the registry has a runnable instance for the
/// shape ([`spg_codegen::lookup`]) *and* that instance's lowered plan
/// passes [`verify_specialized`](crate::verify::verify_specialized).
/// Every other case — unlisted geometry, narrow output, missing CPU
/// features, `SPG_FORCE_GENERIC`, or a rejected plan — yields `None` and
/// the caller runs the generic runtime-parameterized loops.
pub fn select_kernel(spec: &ConvSpec) -> Option<&'static SpecializedKernel> {
    let inst = spg_codegen::lookup(spec)?;
    let memo = VERIFIED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = match memo.lock() {
        Ok(guard) => guard,
        // A panic while holding the lock cannot corrupt the map (verdicts
        // are inserted atomically), so keep serving memoized results.
        Err(poisoned) => poisoned.into_inner(),
    };
    let ok = *map
        .entry((*spec, inst.isa()))
        .or_insert_with(|| crate::verify::verify_specialized(spec, inst).is_ok());
    if ok {
        Some(inst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_gemm::SimdLevel;

    /// Shapes the registry covers resolve iff the host can run SIMD; the
    /// verdict is stable across calls (memo hit).
    #[test]
    fn selection_is_gated_and_stable() {
        let spec = ConvSpec::square(20, 4, 2, 3, 1); // 18-wide output, 3x3 s1
        let first = select_kernel(&spec);
        if spg_codegen::force_generic() {
            // CI's SPG_FORCE_GENERIC=1 leg: nothing may resolve.
            assert!(first.is_none());
        } else if spg_gemm::detect_simd_level() >= SimdLevel::Avx2Fma {
            let inst = first.expect("registry shape on a SIMD host");
            assert_eq!(inst.key(), spg_codegen::KernelKey::of(&spec));
        } else {
            assert!(first.is_none());
        }
        let second = select_kernel(&spec);
        assert_eq!(first.map(|k| k.isa()), second.map(|k| k.isa()));
    }

    /// Unlisted geometries never resolve, regardless of host features.
    #[test]
    fn unlisted_geometry_stays_generic() {
        let spec = ConvSpec::new(1, 40, 40, 3, 4, 4, 3, 3).expect("valid spec");
        assert!(select_kernel(&spec).is_none());
    }
}
