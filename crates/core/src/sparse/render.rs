//! Renders the generated sparse backward kernel as readable pseudo-code,
//! mirroring the paper's Fig. 5b / Fig. 6 illustration of the
//! pointer-shifting composition. Like
//! [`render_basic_block`](crate::stencil::render_basic_block), this is
//! for inspection — the executable kernel lives in
//! [`kernel`](crate::sparse::kernel) — but it makes the generated code's
//! structure reviewable and testable.

use std::fmt::Write as _;

use spg_convnet::ConvSpec;

/// Emits the backward error-propagation kernel the generator produces for
/// `spec` at the given CT-CSR tile width, as commented pseudo-C.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::sparse::render_backward_kernel;
///
/// let spec = ConvSpec::square(8, 64, 64, 5, 1);
/// let listing = render_backward_kernel(&spec, 64);
/// assert!(listing.contains("CT-CSR"));
/// assert!(listing.contains("pointer shift"));
/// ```
pub fn render_backward_kernel(spec: &ConvSpec, tile_width: usize) -> String {
    let (nf, nc) = (spec.features(), spec.in_c());
    let (fy, fx) = (spec.ky(), spec.kx());
    let (sy, sx) = (spec.sy(), spec.sx());
    let tiles = nf.div_ceil(tile_width.max(1));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* sparse backward kernel: {spec}\n   E_O stored as CT-CSR: {tiles} column tile(s) of <= {tile_width} features */"
    );
    let _ = writeln!(
        out,
        "transform(W,  FCKK -> KKFC);   /* channels fastest: W'[ky][kx][f][0..{nc}] */"
    );
    let _ = writeln!(out, "transform(E_O, CHW -> HWC);    /* features fastest */");
    let _ = writeln!(out, "build_ct_csr(E_O, tile_width = {tile_width});");
    let _ = writeln!(out, "for (tile = 0; tile < {tiles}; ++tile)");
    let _ = writeln!(
        out,
        "  for (p = 0; p < OUT_H*OUT_W; ++p)        /* y' = p / OUT_W, x' = p % OUT_W */"
    );
    let _ =
        writeln!(out, "    for ((f, v) in ct_csr_row(tile, p)) {{ /* non-zeros only: goodput */");
    let _ = writeln!(out, "      for (ky = 0; ky < {fy}; ++ky)");
    let _ = writeln!(out, "        for (kx = 0; kx < {fx}; ++kx) {{");
    let _ = writeln!(
        out,
        "          /* pointer shift (Eq. 15): E_O[y',x',f] -> E_I[y'*{sy}+ky, x'*{sx}+kx, *] */"
    );
    let _ = writeln!(out, "          axpy_{nc}(E_I + ((y'*{sy}+ky)*IN_W + x'*{sx}+kx)*{nc},");
    let _ = writeln!(out, "                   W' + ((ky*{fx}+kx)*{nf} + f)*{nc}, v);");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "transform(E_I, HWC -> CHW);");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_reflects_geometry() {
        let spec = ConvSpec::new(16, 10, 10, 48, 3, 3, 2, 2).unwrap();
        let listing = render_backward_kernel(&spec, 32);
        assert!(listing.contains("2 column tile(s)")); // ceil(48/32)
        assert!(listing.contains("axpy_16")); // vectorized over 16 channels
        assert!(listing.contains("x'*2+kx")); // stride in the pointer shift
    }

    #[test]
    fn single_tile_when_width_covers_features() {
        let spec = ConvSpec::square(8, 20, 4, 3, 1);
        let listing = render_backward_kernel(&spec, 64);
        assert!(listing.contains("1 column tile(s)"));
    }

    #[test]
    fn transforms_bracket_the_kernel() {
        let spec = ConvSpec::square(8, 8, 2, 3, 1);
        let listing = render_backward_kernel(&spec, 8);
        let first = listing.find("FCKK -> KKFC").expect("weight transform");
        let last = listing.find("HWC -> CHW").expect("output transform");
        assert!(first < last);
    }
}
