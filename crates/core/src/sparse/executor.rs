use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::{gemm_exec, ConvSpec};

use crate::sparse::{kernel, DEFAULT_TILE_WIDTH};

/// [`ConvExecutor`] running the pointer-shifting sparse kernels for the
/// backward phases. The forward phase falls back to single-threaded
/// Unfold+GEMM: the paper deploys Sparse-Kernel for BP only, pairing it
/// with Stencil-Kernel or GEMM-in-Parallel for FP (Sec. 4.4).
///
/// # Example
///
/// ```
/// use spg_convnet::exec::ConvExecutor;
/// use spg_core::sparse::SparseBpExecutor;
///
/// let exec = SparseBpExecutor::new();
/// assert_eq!(exec.name(), "sparse-bp");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SparseBpExecutor {
    tile_width: usize,
}

impl SparseBpExecutor {
    /// Creates an executor with the default CT-CSR tile width.
    pub fn new() -> Self {
        SparseBpExecutor { tile_width: DEFAULT_TILE_WIDTH }
    }

    /// Creates an executor with an explicit CT-CSR tile width.
    ///
    /// # Panics
    ///
    /// Panics if `tile_width == 0`.
    pub fn with_tile_width(tile_width: usize) -> Self {
        assert!(tile_width > 0, "tile width must be positive");
        SparseBpExecutor { tile_width }
    }

    /// The CT-CSR column-tile width in features.
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }
}

impl Default for SparseBpExecutor {
    fn default() -> Self {
        SparseBpExecutor::new()
    }
}

impl ConvExecutor for SparseBpExecutor {
    fn name(&self) -> &str {
        "sparse-bp"
    }

    fn forward(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::forward_scratch(spec, input, weights, output, 1, scratch);
    }

    fn backward_data(
        &self,
        spec: &ConvSpec,
        weights: &[f32],
        grad_out: &[f32],
        grad_in: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        kernel::backward_data_scratch(spec, weights, grad_out, grad_in, self.tile_width, scratch);
    }

    fn backward_weights(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        grad_out: &[f32],
        grad_weights: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        kernel::backward_weights_scratch(
            spec,
            input,
            grad_out,
            grad_weights,
            self.tile_width,
            scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::exec::ReferenceExecutor;

    #[test]
    fn agrees_with_reference_on_sparse_gradients() {
        let spec = ConvSpec::new(3, 8, 8, 4, 3, 3, 1, 1).unwrap();
        let input: Vec<f32> =
            (0..spec.input_shape().len()).map(|i| (i as f32 * 0.23).sin()).collect();
        let weights: Vec<f32> =
            (0..spec.weight_shape().len()).map(|i| (i as f32 * 0.31).cos()).collect();
        // 80 % sparse gradient.
        let grad_out: Vec<f32> = (0..spec.output_shape().len())
            .map(|i| if i % 5 == 0 { (i as f32 * 0.4).sin() } else { 0.0 })
            .collect();

        let ours = SparseBpExecutor::new();
        let oracle = ReferenceExecutor;
        let mut scratch = ConvScratch::new();

        let mut a = vec![0f32; spec.output_shape().len()];
        let mut b = a.clone();
        ours.forward(&spec, &input, &weights, &mut a, &mut scratch);
        oracle.forward(&spec, &input, &weights, &mut b, &mut scratch);
        assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut ga = vec![0f32; spec.input_shape().len()];
        let mut gb = ga.clone();
        ours.backward_data(&spec, &weights, &grad_out, &mut ga, &mut scratch);
        oracle.backward_data(&spec, &weights, &grad_out, &mut gb, &mut scratch);
        assert!(ga.iter().zip(&gb).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut wa = vec![0f32; spec.weight_shape().len()];
        let mut wb = wa.clone();
        ours.backward_weights(&spec, &input, &grad_out, &mut wa, &mut scratch);
        oracle.backward_weights(&spec, &input, &grad_out, &mut wb, &mut scratch);
        assert!(wa.iter().zip(&wb).all(|(x, y)| (x - y).abs() < 1e-4));
    }

    #[test]
    fn tile_width_is_configurable() {
        assert_eq!(SparseBpExecutor::with_tile_width(16).tile_width(), 16);
        assert_eq!(SparseBpExecutor::default().tile_width(), DEFAULT_TILE_WIDTH);
    }

    #[test]
    #[should_panic(expected = "tile width")]
    fn zero_tile_width_rejected() {
        SparseBpExecutor::with_tile_width(0);
    }
}
