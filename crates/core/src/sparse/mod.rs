//! **Sparse-Kernel (BP)** — goodput-oriented backward propagation
//! (paper Sec. 4.2).
//!
//! After the first couple of training epochs, 85–95 % of backward error
//! gradients are zero (Fig. 3b), so a dense GEMM spends most of its cycles
//! multiplying zeros: high throughput, low *goodput*. Off-the-shelf sparse
//! GEMM only wins when both operands are >95 % sparse; CNN backward
//! passes multiply a *moderately sparse* gradient by a dense weight or
//! activation tensor.
//!
//! The paper's kernel — implemented in [`kernel`] — works as follows:
//!
//! 1. **Layout transforms**: weights are permuted to `[ky, kx, f, c]`
//!    (channels fastest) and activations/gradients to HWC, so every
//!    non-zero gradient element multiplies *contiguous* channel vectors.
//! 2. **CT-CSR**: the gradient matrix (spatial positions × features) is
//!    stored column-tiled (Fig. 5a) for cache and TLB locality.
//! 3. **Pointer shifting** (Eq. 11–15, Fig. 6): instead of unfolding, each
//!    non-zero `E_O[y', x', f]` scatters `v * W'[ky, kx, f, *]` into the
//!    output vector at `E_I[y'*sy + ky, x'*sx + kx, *]` for every kernel
//!    offset — composing the sparse convolution as a series of small dense
//!    multiplies computed in place.
//!
//! All transform and format-construction costs happen inside the kernel
//! calls, as in the paper's measurements.

pub mod kernel;

mod executor;
mod render;

pub use executor::SparseBpExecutor;
pub use render::render_backward_kernel;

/// Default CT-CSR column-tile width (features per tile). 64 channels of
/// f32 per weight slab keeps a tile's working set within L1/L2 reach.
pub const DEFAULT_TILE_WIDTH: usize = 64;
