//! The pointer-shifting sparse backward kernels (paper Sec. 4.2).

use spg_tensor::layout;
use spg_tensor::Shape3;

use spg_convnet::workspace::{zeroed_slice, ConvScratch};
use spg_convnet::ConvSpec;

/// Sparse backward error propagation allocating a throwaway
/// [`ConvScratch`] per call.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
#[cfg(feature = "legacy-alloc-path")]
#[deprecated(
    since = "0.1.0",
    note = "allocates scratch per call; use `backward_data_scratch` \
                                      with a reused `ConvScratch`"
)]
pub fn backward_data(
    spec: &ConvSpec,
    weights: &[f32],
    grad_out: &[f32],
    grad_in: &mut [f32],
    tile_width: usize,
) {
    backward_data_scratch(spec, weights, grad_out, grad_in, tile_width, &mut ConvScratch::new());
}

/// Backward error propagation exploiting gradient sparsity (Eq. 11–15),
/// staging the weight permutation, layout transforms, and CT-CSR build in
/// a caller-provided [`ConvScratch`]: the per-sample path performs no
/// heap allocation once the scratch has warmed up.
///
/// Semantically identical to
/// [`reference::backward_data`](spg_convnet::reference::backward_data):
/// computes `E_I` from `E_O` and the weights, but touches only the
/// non-zero gradient elements.
///
/// `tile_width` is the CT-CSR column-tile width in features.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
pub fn backward_data_scratch(
    spec: &ConvSpec,
    weights: &[f32],
    grad_out: &[f32],
    grad_in: &mut [f32],
    tile_width: usize,
    scratch: &mut ConvScratch,
) {
    assert_eq!(weights.len(), spec.weight_shape().len(), "weights length");
    // Data layout transformation: weights -> [ky, kx, f, c] (c fastest).
    // See Sec. 4.2 / Fig. 5b. Staged through `wperm`, taken out so the
    // rest of the scratch stays borrowable for the kernel proper.
    let mut w_kkfc = std::mem::take(&mut scratch.wperm);
    layout::fckk_to_kkfc_into(
        weights,
        spec.weight_shape(),
        zeroed_slice(&mut w_kkfc, weights.len()),
    );
    backward_data_pretransformed_scratch(spec, &w_kkfc, grad_out, grad_in, tile_width, scratch);
    scratch.wperm = w_kkfc;
}

/// The pretransformed sparse backward-data path allocating a throwaway
/// [`ConvScratch`] per call.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
#[cfg(feature = "legacy-alloc-path")]
#[deprecated(
    since = "0.1.0",
    note = "allocates scratch per call; use \
                                      `backward_data_pretransformed_scratch` with a reused \
                                      `ConvScratch`"
)]
pub fn backward_data_pretransformed(
    spec: &ConvSpec,
    w_kkfc: &[f32],
    grad_out: &[f32],
    grad_in: &mut [f32],
    tile_width: usize,
) {
    backward_data_pretransformed_scratch(
        spec,
        w_kkfc,
        grad_out,
        grad_in,
        tile_width,
        &mut ConvScratch::new(),
    );
}

/// Sparse backward-data with the weight tensor already permuted to
/// `[ky, kx, f, c]` order (see [`spg_tensor::layout::fckk_to_kkfc`]),
/// staging the gradient transform and CT-CSR build in a caller-provided
/// [`ConvScratch`] (the permuted weight tensor is the caller's own
/// buffer, e.g. a compiled plan's).
///
/// Weights change once per parameter update but the kernel runs once per
/// *sample*; pre-transforming them amortizes the layout cost across a
/// batch, which is how the paper's generated code uses it. The
/// per-sample gradient transform and CT-CSR build still happen here.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
pub fn backward_data_pretransformed_scratch(
    spec: &ConvSpec,
    w_kkfc: &[f32],
    grad_out: &[f32],
    grad_in: &mut [f32],
    tile_width: usize,
    scratch: &mut ConvScratch,
) {
    assert_eq!(w_kkfc.len(), spec.weight_shape().len(), "weights length");
    assert_eq!(grad_out.len(), spec.output_shape().len(), "grad_out length");
    assert_eq!(grad_in.len(), spec.input_shape().len(), "grad_in length");
    assert!(tile_width > 0, "tile width must be positive");

    let (nf, nc) = (spec.features(), spec.in_c());
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    let (in_h, in_w) = (spec.in_h(), spec.in_w());
    let (sy, sx) = (spec.sy(), spec.sx());
    let (fy, fx) = (spec.ky(), spec.kx());

    let ConvScratch { hwc_in, hwc_out, ctcsr, .. } = scratch;

    // Per-sample transform: gradient -> [y', x', f] (f fastest).
    let eo_hwc = zeroed_slice(hwc_out, nf * out_h * out_w);
    layout::chw_to_hwc_into(grad_out, Shape3::new(nf, out_h, out_w), eo_hwc);

    // Column-tiled CSR over (spatial positions x features), rebuilt in
    // place over the previous sample's tile storage.
    if ctcsr.assign_from_slice(out_h * out_w, nf, eo_hwc, tile_width).is_err() {
        unreachable!("tile width asserted positive above");
    }
    let eo_sparse = &*ctcsr;

    // Goodput accounting (Sec. 3.3): each stored gradient value touches
    // one `(c, ky, kx)` weight block, so the kernel performs
    // `2 * nnz * kdim` flops where a dense backward pass performs
    // `2 * Nf * H' * W' * kdim` — the skipped zeros are the gap.
    let nnz = eo_sparse.nnz() as u64;
    let kdim = (nc * fy * fx) as u64;
    spg_telemetry::record_flops(2 * nnz * kdim, spec.arithmetic_ops());
    spg_telemetry::record_tile_occupancy(nnz, (out_h * out_w * nf) as u64);

    // Accumulate E_I in HWC; each non-zero scatters a channel vector per
    // kernel offset via the Eq. 15 pointer shift.
    let ei_hwc = zeroed_slice(hwc_in, in_h * in_w * nc);
    let wv = w_kkfc;
    for (f0, tile) in eo_sparse.iter() {
        for p in 0..out_h * out_w {
            let (yp, xp) = (p / out_w, p % out_w);
            for (f_local, v) in tile.row_entries(p) {
                let f = f0 + f_local;
                for ky in 0..fy {
                    let row = (yp * sy + ky) * in_w;
                    for kx in 0..fx {
                        let dst = (row + xp * sx + kx) * nc;
                        let wbase = ((ky * fx + kx) * nf + f) * nc;
                        let wrow = &wv[wbase..wbase + nc];
                        let orow = &mut ei_hwc[dst..dst + nc];
                        for (o, &w) in orow.iter_mut().zip(wrow) {
                            *o += v * w;
                        }
                    }
                }
            }
        }
    }

    layout::hwc_to_chw_into(ei_hwc, Shape3::new(nc, in_h, in_w), grad_in);
}

/// Sparse delta-weight computation allocating a throwaway
/// [`ConvScratch`] per call.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
#[cfg(feature = "legacy-alloc-path")]
#[deprecated(
    since = "0.1.0",
    note = "allocates scratch per call; use \
                                      `backward_weights_scratch` with a reused `ConvScratch`"
)]
pub fn backward_weights(
    spec: &ConvSpec,
    input: &[f32],
    grad_out: &[f32],
    grad_weights: &mut [f32],
    tile_width: usize,
) {
    backward_weights_scratch(
        spec,
        input,
        grad_out,
        grad_weights,
        tile_width,
        &mut ConvScratch::new(),
    );
}

/// Delta-weight computation exploiting gradient sparsity (Eq. 4, executed
/// sparsely): `dW[f, c, ky, kx] = sum_{y,x} E_O[f, y, x] * I[c, y*sy+ky, x*sx+kx]`
/// with the sum restricted to non-zero gradients, staging the layout
/// transforms, CT-CSR build, and the permuted-order gradient accumulator
/// in a caller-provided [`ConvScratch`].
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec or `tile_width == 0`.
pub fn backward_weights_scratch(
    spec: &ConvSpec,
    input: &[f32],
    grad_out: &[f32],
    grad_weights: &mut [f32],
    tile_width: usize,
    scratch: &mut ConvScratch,
) {
    assert_eq!(input.len(), spec.input_shape().len(), "input length");
    assert_eq!(grad_out.len(), spec.output_shape().len(), "grad_out length");
    assert_eq!(grad_weights.len(), spec.weight_shape().len(), "grad_weights length");
    assert!(tile_width > 0, "tile width must be positive");

    let (nf, nc) = (spec.features(), spec.in_c());
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    let in_w = spec.in_w();
    let (sy, sx) = (spec.sy(), spec.sx());
    let (fy, fx) = (spec.ky(), spec.kx());

    let ConvScratch { hwc_in, hwc_out, wperm, ctcsr, .. } = scratch;

    let in_hwc = zeroed_slice(hwc_in, input.len());
    layout::chw_to_hwc_into(input, spec.input_shape(), in_hwc);
    let eo_hwc = zeroed_slice(hwc_out, nf * out_h * out_w);
    layout::chw_to_hwc_into(grad_out, Shape3::new(nf, out_h, out_w), eo_hwc);
    if ctcsr.assign_from_slice(out_h * out_w, nf, eo_hwc, tile_width).is_err() {
        unreachable!("tile width asserted positive above");
    }
    let eo_sparse = &*ctcsr;

    // Same goodput accounting as `backward_data_pretransformed`: the
    // delta-weight reduction also visits one `(c, ky, kx)` block per
    // stored gradient value (Eq. 4 executed sparsely).
    let nnz = eo_sparse.nnz() as u64;
    let kdim = (nc * fy * fx) as u64;
    spg_telemetry::record_flops(2 * nnz * kdim, spec.arithmetic_ops());
    spg_telemetry::record_tile_occupancy(nnz, (out_h * out_w * nf) as u64);

    // Accumulate dW in [ky, kx, f, c] (c fastest), then permute back.
    let dw_kkfc = zeroed_slice(wperm, fy * fx * nf * nc);
    let iv = &in_hwc[..];
    for (f0, tile) in eo_sparse.iter() {
        for p in 0..out_h * out_w {
            let (yp, xp) = (p / out_w, p % out_w);
            for (f_local, v) in tile.row_entries(p) {
                let f = f0 + f_local;
                for ky in 0..fy {
                    let row = (yp * sy + ky) * in_w;
                    for kx in 0..fx {
                        let src = (row + xp * sx + kx) * nc;
                        let dwbase = ((ky * fx + kx) * nf + f) * nc;
                        let irow = &iv[src..src + nc];
                        let drow = &mut dw_kkfc[dwbase..dwbase + nc];
                        for (d, &i) in drow.iter_mut().zip(irow) {
                            *d += v * i;
                        }
                    }
                }
            }
        }
    }

    layout::kkfc_to_fckk_into(dw_kkfc, spec.weight_shape(), grad_weights);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::reference;

    fn sparse_grad(n: usize, sparsity_mod: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if !(i * 7 + salt).is_multiple_of(sparsity_mod) {
                    0.0
                } else {
                    (((i * 13 + salt) % 17) as f32 - 8.0) / 4.0
                }
            })
            .collect()
    }

    fn pseudo(n: usize, salt: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 11 + salt * 3) % 19) as f32 - 9.0) / 6.0).collect()
    }

    fn spec_cases() -> Vec<ConvSpec> {
        vec![
            ConvSpec::new(1, 4, 4, 1, 2, 2, 1, 1).unwrap(),
            ConvSpec::new(3, 8, 8, 5, 3, 3, 1, 1).unwrap(),
            ConvSpec::new(2, 9, 7, 4, 2, 3, 2, 1).unwrap(),
            ConvSpec::new(4, 10, 10, 6, 3, 3, 2, 2).unwrap(),
            ConvSpec::new(2, 12, 12, 3, 5, 5, 1, 2).unwrap(),
        ]
    }

    #[test]
    fn backward_data_matches_reference() {
        for spec in spec_cases() {
            let weights = pseudo(spec.weight_shape().len(), 1);
            let grad_out = sparse_grad(spec.output_shape().len(), 5, 2);
            let mut ours = vec![0f32; spec.input_shape().len()];
            let mut oracle = vec![0f32; spec.input_shape().len()];
            for tw in [1, 2, 64] {
                backward_data_scratch(
                    &spec,
                    &weights,
                    &grad_out,
                    &mut ours,
                    tw,
                    &mut ConvScratch::new(),
                );
                reference::backward_data(&spec, &weights, &grad_out, &mut oracle);
                let diff =
                    ours.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
                assert!(diff < 1e-4, "{spec} tw={tw}: diff {diff}");
            }
        }
    }

    #[test]
    fn backward_weights_matches_reference() {
        for spec in spec_cases() {
            let input = pseudo(spec.input_shape().len(), 3);
            let grad_out = sparse_grad(spec.output_shape().len(), 4, 1);
            let mut ours = vec![0f32; spec.weight_shape().len()];
            let mut oracle = vec![0f32; spec.weight_shape().len()];
            for tw in [1, 3, 64] {
                backward_weights_scratch(
                    &spec,
                    &input,
                    &grad_out,
                    &mut ours,
                    tw,
                    &mut ConvScratch::new(),
                );
                reference::backward_weights(&spec, &input, &grad_out, &mut oracle);
                let diff =
                    ours.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
                assert!(diff < 1e-4, "{spec} tw={tw}: diff {diff}");
            }
        }
    }

    #[test]
    fn fully_sparse_gradient_is_free_and_zero() {
        let spec = ConvSpec::new(2, 6, 6, 3, 3, 3, 1, 1).unwrap();
        let weights = pseudo(spec.weight_shape().len(), 9);
        let zeros = vec![0f32; spec.output_shape().len()];
        let mut gin = vec![1.0; spec.input_shape().len()];
        backward_data_scratch(&spec, &weights, &zeros, &mut gin, 64, &mut ConvScratch::new());
        assert!(gin.iter().all(|v| *v == 0.0));
        let input = pseudo(spec.input_shape().len(), 10);
        let mut dw = vec![1.0; spec.weight_shape().len()];
        backward_weights_scratch(&spec, &input, &zeros, &mut dw, 64, &mut ConvScratch::new());
        assert!(dw.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn dense_gradient_still_correct() {
        // Sparsity 0 is the worst case but must stay correct.
        let spec = ConvSpec::new(2, 7, 7, 3, 3, 3, 1, 1).unwrap();
        let weights = pseudo(spec.weight_shape().len(), 4);
        let grad_out = pseudo(spec.output_shape().len(), 5);
        let mut ours = vec![0f32; spec.input_shape().len()];
        let mut oracle = vec![0f32; spec.input_shape().len()];
        backward_data_scratch(&spec, &weights, &grad_out, &mut ours, 64, &mut ConvScratch::new());
        reference::backward_data(&spec, &weights, &grad_out, &mut oracle);
        let diff = ours.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "diff {diff}");
    }

    #[test]
    #[should_panic(expected = "tile width")]
    fn zero_tile_width_panics() {
        let spec = ConvSpec::new(1, 4, 4, 1, 2, 2, 1, 1).unwrap();
        let mut gin = vec![0f32; 16];
        backward_data_scratch(&spec, &[0.0; 4], &[0.0; 9], &mut gin, 0, &mut ConvScratch::new());
    }
}
