//! The basic-block generator's register-tile search (paper Sec. 4.3).

use std::fmt;

use spg_convnet::ConvSpec;

/// SIMD vector width in f32 lanes (AVX: 8).
pub const VECTOR_WIDTH: usize = 8;

/// Vector registers available for output accumulators. Commodity x86-64
/// has 16 YMM registers; the kernel reserves some for the input vector,
/// the broadcast weight, and a temporary, as in the paper's Fig. 7.
pub const ACCUMULATOR_BUDGET: usize = 12;

/// A chosen output register tile for the stencil basic block.
///
/// The tile is `rx` vectors wide (each [`VECTOR_WIDTH`] outputs) and `ry`
/// rows tall. Larger `ry` lets one loaded input vector feed up to
/// `min(ry, Fy)` output rows (the spatial-reuse win); `rx` amortizes the
/// weight broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterTilePlan {
    /// Tile width in vectors.
    pub rx: usize,
    /// Tile height in rows.
    pub ry: usize,
    /// Vector loads the basic block issues per `(c)` slice:
    /// `(ry + Fy - 1) * Fx * rx`.
    pub loads_per_block: usize,
    /// Fused multiply-adds per block: `rx * ry * Fy * Fx`.
    pub fmas_per_block: usize,
}

impl RegisterTilePlan {
    /// Vector loads per FMA — the quantity the search minimizes. Lower is
    /// better; an unfolded GEMM of the same convolution effectively pays
    /// one load per FMA element for small kernels.
    pub fn loads_per_fma(&self) -> f64 {
        self.loads_per_block as f64 / self.fmas_per_block as f64
    }

    /// Input reuse factor: FMAs served per loaded input vector.
    pub fn reuse(&self) -> f64 {
        1.0 / self.loads_per_fma()
    }
}

impl fmt::Display for RegisterTilePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} tile ({} loads / {} fmas per block)",
            self.rx, self.ry, self.loads_per_block, self.fmas_per_block
        )
    }
}

/// Searches all register tiles fitting the accumulator budget and returns
/// the one minimizing vector loads per FMA, tie-breaking toward larger
/// tiles (fewer loop iterations) and then wider tiles (fewer weight
/// broadcasts).
///
/// This is the paper's "geometric optimization problem ... our code
/// generator finds the optimal solution by iterating over all possible
/// values for rx and ry" (Sec. 4.3).
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::stencil::plan_register_tile;
///
/// // Taller tiles amortize input loads across kernel rows.
/// let spec = ConvSpec::square(32, 16, 3, 3, 1);
/// let plan = plan_register_tile(&spec);
/// assert!(plan.ry > 1);
/// assert!(plan.rx * plan.ry <= spg_core::stencil::ACCUMULATOR_BUDGET);
/// ```
pub fn plan_register_tile(spec: &ConvSpec) -> RegisterTilePlan {
    let fy = spec.ky();
    let fx = spec.kx();
    // The 1x1 tile is always admissible, so the search below can only
    // improve on this seed; `best` is never left at a worse candidate.
    let mut best =
        RegisterTilePlan { rx: 1, ry: 1, loads_per_block: fy * fx, fmas_per_block: fy * fx };
    let mut seeded = true;
    for ry in 1..=ACCUMULATOR_BUDGET {
        for rx in 1..=ACCUMULATOR_BUDGET {
            if rx * ry > ACCUMULATOR_BUDGET {
                continue;
            }
            // Don't tile wider/taller than the output itself.
            if ry > spec.out_h() || (rx - 1) * VECTOR_WIDTH >= spec.out_w().max(1) + VECTOR_WIDTH {
                continue;
            }
            let candidate = RegisterTilePlan {
                rx,
                ry,
                loads_per_block: (ry + fy - 1) * fx * rx,
                fmas_per_block: rx * ry * fy * fx,
            };
            let better = if seeded {
                true
            } else {
                let b = &best;
                let (c, bb) = (candidate.loads_per_fma(), b.loads_per_fma());
                c < bb - 1e-12
                    || ((c - bb).abs() <= 1e-12
                        && (candidate.rx * candidate.ry > b.rx * b.ry
                            || (candidate.rx * candidate.ry == b.rx * b.ry && candidate.rx > b.rx)))
            };
            if better {
                best = candidate;
                seeded = false;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_example_counts() {
        // Fig. 7: Fx=1, Fy=2 kernel with rx=1, ry=2 tile -> 3 loads, 4 FMAs.
        let plan = RegisterTilePlan { rx: 1, ry: 2, loads_per_block: 3, fmas_per_block: 4 };
        assert!((plan.loads_per_fma() - 0.75).abs() < 1e-12);
        let spec = ConvSpec::new(1, 64, 64, 1, 2, 1, 1, 1).unwrap();
        let searched = plan_register_tile(&spec);
        // The searched plan must be at least as load-efficient as Fig. 7's.
        assert!(searched.loads_per_fma() <= plan.loads_per_fma());
    }

    #[test]
    fn respects_budget_and_output_bounds() {
        for (n, k) in [(32usize, 3usize), (8, 5), (64, 11), (4, 2)] {
            let spec = ConvSpec::square(n, 8, 4, k, 1);
            let plan = plan_register_tile(&spec);
            assert!(plan.rx * plan.ry <= ACCUMULATOR_BUDGET);
            assert!(plan.ry <= spec.out_h());
        }
    }

    #[test]
    fn taller_tiles_win_for_tall_kernels() {
        // With Fy large, reuse grows with ry, so the plan maxes ry.
        let spec = ConvSpec::square(64, 8, 4, 7, 1);
        let plan = plan_register_tile(&spec);
        assert_eq!(plan.ry, ACCUMULATOR_BUDGET, "plan was {plan}");
        assert_eq!(plan.rx, 1);
    }

    #[test]
    fn loads_formula_consistency() {
        let spec = ConvSpec::square(32, 8, 4, 3, 1);
        let plan = plan_register_tile(&spec);
        assert_eq!(plan.loads_per_block, (plan.ry + 3 - 1) * 3 * plan.rx);
        assert_eq!(plan.fmas_per_block, plan.rx * plan.ry * 9);
    }

    #[test]
    fn reuse_exceeds_one_for_multi_row_kernels() {
        // Any Fy > 1 kernel must achieve input reuse > 1 with a good tile.
        let spec = ConvSpec::square(32, 8, 4, 3, 1);
        let plan = plan_register_tile(&spec);
        assert!(plan.reuse() > 1.0, "reuse {}", plan.reuse());
    }

    #[test]
    fn one_by_one_kernel_has_no_reuse_to_find() {
        let spec = ConvSpec::square(16, 8, 4, 1, 1);
        let plan = plan_register_tile(&spec);
        // loads == fmas regardless of tile for 1x1 kernels.
        assert!((plan.loads_per_fma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_output_clamps_tile() {
        let spec = ConvSpec::new(1, 3, 64, 1, 2, 2, 1, 1).unwrap(); // out_h = 2
        let plan = plan_register_tile(&spec);
        assert!(plan.ry <= 2);
    }
}
