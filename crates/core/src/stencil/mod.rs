//! **Stencil-Kernel (FP)** — generated direct convolution (paper Sec. 4.3).
//!
//! Unfolding a small convolution multiplies its memory traffic by up to
//! `Fx * Fy`, collapsing arithmetic intensity (Table 1, IDs 0 and 5). The
//! stencil kernel instead computes the convolution *in place*, exploiting
//! the same spatial reuse a stencil computation enjoys: each input element
//! contributes to up to `Fy * Fx` neighbouring outputs while it sits in a
//! register or cache line.
//!
//! The module mirrors the paper's two-stage generator:
//!
//! * [`RegisterTilePlan`] / [`plan_register_tile`] — the **basic block
//!   generator**: searches output register-tile shapes `rx x ry`
//!   (vectors wide x rows tall) for the one minimizing vector loads per
//!   FMA, subject to the accumulator-register budget.
//! * [`CacheSchedule`] / [`plan_cache_schedule`] — the **schedule
//!   generator**: picks output cache tiles whose working set fits L1 and
//!   whose footprint respects the TLB budget; the kernel holds one such
//!   tile across the whole channel reduction.
//! * [`kernel`] — executes the planned direct convolution: an AVX2+FMA
//!   register-tiled basic block under the cache schedule, with the
//!   Eq. 21 strided-layout transform applied first when the
//!   convolution's `x`-stride is not 1, a feature-vectorized
//!   shifted-GEMM path for outputs narrower than one vector, and a
//!   portable scalar fallback.
//! * [`render_basic_block`] — emits the generated basic block as readable
//!   pseudo-C intrinsics, mirroring the paper's Fig. 7 listing.
//! * [`StencilExecutor`] — plugs the kernel into the training stack as a
//!   forward-phase [`ConvExecutor`](spg_convnet::exec::ConvExecutor).

mod executor;
pub mod kernel;
mod plan;
mod render;
mod schedule;

pub use executor::StencilExecutor;
pub use plan::{plan_register_tile, RegisterTilePlan, ACCUMULATOR_BUDGET, VECTOR_WIDTH};
pub use render::render_basic_block;
pub use schedule::{
    plan_cache_schedule, CacheSchedule, L1_BUDGET_ELEMS, PAGE_ELEMS, TLB_BUDGET_PAGES,
};
