//! Direct-convolution forward kernel (paper Sec. 4.3).
//!
//! Three execution strategies, chosen by geometry and CPU features:
//!
//! * **Register-tiled AVX basic block** (`x86_64` with AVX2+FMA, output
//!   rows at least one vector wide): the paper's Fig. 7 structure. An
//!   `ry`-row output register tile is held in YMM accumulators while the
//!   `(c, ky, kx)` reduction streams over it; every loaded input vector
//!   feeds up to `min(ry, Fy)` output rows — the spatial reuse that
//!   restores the arithmetic intensity unfolding destroys. Non-unit `x`
//!   strides first apply the Eq. 21 phase transform so the strided loads
//!   become contiguous.
//! * **Shifted small dense MMs** (outputs narrower than one vector):
//!   vectorizing along 4-element rows is pointless, so the kernel
//!   vectorizes along *features* instead: inputs and outputs are viewed
//!   in HWC layout and, for every kernel offset `(ky, kx)`, a small dense
//!   `out_w x Nf x Nc` multiply accumulates the shifted input rows into
//!   the output — convolution composed in place as a series of small
//!   dense MMs by pointer shifting, with no unfolded matrix.
//! * **Scalar shift-and-scale** fallback with identical semantics.

use spg_tensor::transform::StridedLayout;
use spg_tensor::{layout, Shape3};

use spg_convnet::workspace::{zeroed_slice, ConvScratch};
use spg_convnet::ConvSpec;
use spg_gemm::gemm_slice;

/// Output rows held in the AVX register tile. Six accumulators mirror the
/// GEMM micro-kernel's register budget and give `6*Fy / (Fy + 5)` input
/// reuse. Public so the plan verifier lowers the exact tile the kernel runs.
pub const TILE_ROWS: usize = 6;
/// f32 lanes per vector. Public for the same reason as [`TILE_ROWS`].
pub const LANES: usize = 8;

/// `x` tile plan covering `0..out_w`: 16-wide tiles while they fit, then
/// 8-wide, then one overlapping 8-wide tail for ragged widths. Returns
/// `(x, wide)` pairs; `wide` means two vectors (16 columns).
///
/// This is the segmentation the AVX basic block executes; it is portable
/// pure arithmetic, public so the plan verifier proves bounds for the very
/// tile list the kernel will iterate, not a reconstruction of it.
///
/// # Panics
///
/// Debug-asserts `out_w >= LANES` (narrower outputs take the shifted-GEMM
/// path and have no x plan).
pub fn x_plan(out_w: usize) -> Vec<(usize, bool)> {
    debug_assert!(out_w >= LANES);
    let mut plan = Vec::new();
    let mut x = 0;
    while x + 2 * LANES <= out_w {
        plan.push((x, true));
        x += 2 * LANES;
    }
    while x + LANES <= out_w {
        plan.push((x, false));
        x += LANES;
    }
    if x < out_w {
        plan.push((out_w - LANES, false));
    }
    plan
}

/// Builds the Eq. 21 phase layout for `spec`'s x stride.
fn phase_layout(spec: &ConvSpec) -> StridedLayout {
    match StridedLayout::new(spec.input_shape(), spec.sx()) {
        Ok(lay) => lay,
        // ConvSpec validation rejects zero strides.
        Err(_) => unreachable!("positive stride by spec validation"),
    }
}

/// Stencil forward propagation allocating a throwaway [`ConvScratch`]
/// per call.
///
/// # Panics
///
/// Panics if any buffer length does not match the spec.
#[cfg(feature = "legacy-alloc-path")]
#[deprecated(
    since = "0.1.0",
    note = "allocates scratch per call; use `forward_scratch` with a \
                                      reused `ConvScratch`"
)]
pub fn forward(spec: &ConvSpec, input: &[f32], weights: &[f32], output: &mut [f32]) {
    forward_scratch(spec, input, weights, output, &mut ConvScratch::new());
}

/// Forward propagation by direct (stencil-style) convolution, staging its
/// layout transforms and gathered patch blocks in a caller-provided
/// [`ConvScratch`]: the per-sample hot path performs no heap allocation
/// once the scratch has warmed up to this geometry.
///
/// Semantically identical to
/// [`reference::forward`](spg_convnet::reference::forward); layout
/// transforms for strided convolutions are performed internally and their
/// cost is part of this call (the paper includes transform time in its
/// stencil measurements, Sec. 4.3).
///
/// # Panics
///
/// Panics if any buffer length does not match the spec.
pub fn forward_scratch(
    spec: &ConvSpec,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
    scratch: &mut ConvScratch,
) {
    assert_eq!(input.len(), spec.input_shape().len(), "input length");
    assert_eq!(weights.len(), spec.weight_shape().len(), "weights length");
    assert_eq!(output.len(), spec.output_shape().len(), "output length");

    // The stencil kernel computes the full dense convolution, so every
    // charged flop is useful (goodput 1, Sec. 3.3).
    let ops = spec.arithmetic_ops();
    spg_telemetry::record_flops(ops, ops);

    if spec.out_w() < LANES {
        forward_shifted_gemm(spec, input, weights, output, scratch);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            if spec.sx() == 1 {
                // SAFETY: AVX2+FMA presence checked above; buffer lengths
                // validated at function entry.
                unsafe { avx::forward_tiled(spec, input, weights, output) };
            } else {
                let lay = phase_layout(spec);
                let phased = zeroed_slice(&mut scratch.hwc_in, lay.transformed_len());
                lay.apply_into(input, phased);
                // SAFETY: as above; the phased buffer geometry comes from
                // the layout itself.
                unsafe { avx::forward_tiled_phased(spec, &lay, phased, weights, output) };
            }
            return;
        }
    }
    forward_scalar(spec, input, weights, output, scratch);
}

/// Narrow-output path: compose the convolution as shifted small dense
/// MMs over channel/feature-major views (one `out_w x Nf x Nc` multiply
/// per kernel offset and output row), vectorized by the GEMM micro-kernel
/// along features.
fn forward_shifted_gemm(
    spec: &ConvSpec,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
    scratch: &mut ConvScratch,
) {
    // The weight permutation stages through `wperm`, which must stay
    // borrowable alongside the rest of the scratch below.
    let mut w_kkcf = std::mem::take(&mut scratch.wperm);
    narrow_weights_into(spec, weights, zeroed_slice(&mut w_kkcf, weights.len()));
    forward_narrow_pretransformed_scratch(spec, input, &w_kkcf, output, scratch);
    scratch.wperm = w_kkcf;
}

/// Permutes weights into the `[ky][kx]` blocks of `(Nc x Nf)` matrices
/// (features fastest) that the narrow-output shifted-GEMM path multiplies
/// against. Pre-compute once per parameter update and pass to
/// [`forward_narrow_pretransformed_scratch`] to amortize the transform across a
/// batch of samples.
///
/// # Panics
///
/// Panics if `weights.len() != spec.weight_shape().len()`.
pub fn narrow_weights(spec: &ConvSpec, weights: &[f32]) -> Vec<f32> {
    let mut w_kkcf = vec![0f32; weights.len()];
    narrow_weights_into(spec, weights, &mut w_kkcf);
    w_kkcf
}

/// [`narrow_weights`] writing into a caller-provided buffer of the same
/// length as `weights` (every element is overwritten).
///
/// # Panics
///
/// Panics if `weights.len() != spec.weight_shape().len()` or the output
/// buffer length differs from the weight length.
pub fn narrow_weights_into(spec: &ConvSpec, weights: &[f32], w_kkcf: &mut [f32]) {
    let wshape = spec.weight_shape();
    assert_eq!(weights.len(), wshape.len(), "weights length");
    assert_eq!(w_kkcf.len(), wshape.len(), "permuted weights length");
    let (nc, nf) = (spec.in_c(), spec.features());
    let (fy, fx) = (spec.ky(), spec.kx());
    for f in 0..nf {
        for c in 0..nc {
            for ky in 0..fy {
                for kx in 0..fx {
                    w_kkcf[((ky * fx + kx) * nc + c) * nf + f] =
                        weights[wshape.index(f, c, ky, kx)];
                }
            }
        }
    }
}

/// The pretransformed narrow-output forward path allocating a throwaway
/// [`ConvScratch`] per call.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec.
#[cfg(feature = "legacy-alloc-path")]
#[deprecated(
    since = "0.1.0",
    note = "allocates scratch per call; use \
                                      `forward_narrow_pretransformed_scratch` with a reused \
                                      `ConvScratch`"
)]
pub fn forward_narrow_pretransformed(
    spec: &ConvSpec,
    input: &[f32],
    w_kkcf: &[f32],
    output: &mut [f32],
) {
    forward_narrow_pretransformed_scratch(spec, input, w_kkcf, output, &mut ConvScratch::new());
}

/// The narrow-output forward path with weights already permuted by
/// [`narrow_weights`], staging the HWC views and the gathered patch block
/// in a caller-provided [`ConvScratch`]. Used directly by
/// [`CompiledConv`](crate::compiled::CompiledConv); prefer
/// [`forward_scratch`] unless you are amortizing the weight transform
/// yourself.
///
/// # Panics
///
/// Panics if buffer lengths do not match the spec.
pub fn forward_narrow_pretransformed_scratch(
    spec: &ConvSpec,
    input: &[f32],
    w_kkcf: &[f32],
    output: &mut [f32],
    scratch: &mut ConvScratch,
) {
    assert_eq!(input.len(), spec.input_shape().len(), "input length");
    assert_eq!(w_kkcf.len(), spec.weight_shape().len(), "weights length");
    assert_eq!(output.len(), spec.output_shape().len(), "output length");
    let (nc, nf) = (spec.in_c(), spec.features());
    let (in_w, out_h, out_w) = (spec.in_w(), spec.out_h(), spec.out_w());
    let (sy, sx) = (spec.sy(), spec.sx());
    let (fy, fx) = (spec.ky(), spec.kx());

    let ConvScratch { mat_a, hwc_in, hwc_out, .. } = scratch;
    let in_hwc = zeroed_slice(hwc_in, input.len());
    layout::chw_to_hwc_into(input, spec.input_shape(), in_hwc);

    // The GEMMs accumulate across kernel offsets, so the output staging
    // buffer must start zeroed.
    let out_hwc = zeroed_slice(hwc_out, out_h * out_w * nf);
    let iv = &in_hwc[..];
    // Per kernel offset: gather the pointer-shifted input pixels into one
    // contiguous (P x Nc) block (rows of one output row are sx*Nc apart,
    // rows of different output rows are not uniformly spaced, so a single
    // strided GEMM cannot cover them), then one dense multiply per offset.
    let patches = out_h * out_w;
    mat_a.resize(patches, nc);
    let gathered = mat_a.as_mut_slice();
    for ky in 0..fy {
        for kx in 0..fx {
            let b = &w_kkcf[(ky * fx + kx) * nc * nf..(ky * fx + kx + 1) * nc * nf];
            for y in 0..out_h {
                for x in 0..out_w {
                    let src = ((y * sy + ky) * in_w + x * sx + kx) * nc;
                    let dst = (y * out_w + x) * nc;
                    gathered[dst..dst + nc].copy_from_slice(&iv[src..src + nc]);
                }
            }
            gemm_slice(patches, nf, nc, gathered, nc, b, nf, out_hwc, nf);
        }
    }

    layout::hwc_to_chw_into(out_hwc, Shape3::new(nf, out_h, out_w), output);
}

/// Portable shift-and-scale path (also the oracle for the AVX tile).
fn forward_scalar(
    spec: &ConvSpec,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
    scratch: &mut ConvScratch,
) {
    if spec.sx() == 1 {
        scalar_unit_stride(spec, input, weights, output);
    } else {
        let lay = phase_layout(spec);
        let phased = zeroed_slice(&mut scratch.hwc_in, lay.transformed_len());
        lay.apply_into(input, phased);
        scalar_phased(spec, &lay, phased, weights, output);
    }
}

fn scalar_unit_stride(spec: &ConvSpec, input: &[f32], weights: &[f32], output: &mut [f32]) {
    output.fill(0.0);
    let ishape = spec.input_shape();
    let wshape = spec.weight_shape();
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    let sy = spec.sy();
    for f in 0..spec.features() {
        let out_plane = &mut output[f * out_h * out_w..(f + 1) * out_h * out_w];
        for c in 0..spec.in_c() {
            for ky in 0..spec.ky() {
                for kx in 0..spec.kx() {
                    let w = weights[wshape.index(f, c, ky, kx)];
                    if w == 0.0 {
                        continue;
                    }
                    for y in 0..out_h {
                        let in_base = ishape.index(c, y * sy + ky, kx);
                        let in_row = &input[in_base..in_base + out_w];
                        let out_row = &mut out_plane[y * out_w..(y + 1) * out_w];
                        for (o, &i) in out_row.iter_mut().zip(in_row) {
                            *o += w * i;
                        }
                    }
                }
            }
        }
    }
}

fn scalar_phased(
    spec: &ConvSpec,
    lay: &StridedLayout,
    phased: &[f32],
    weights: &[f32],
    output: &mut [f32],
) {
    output.fill(0.0);
    let wshape = spec.weight_shape();
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    let (sy, sx) = (spec.sy(), spec.sx());
    for f in 0..spec.features() {
        let out_plane = &mut output[f * out_h * out_w..(f + 1) * out_h * out_w];
        for c in 0..spec.in_c() {
            for ky in 0..spec.ky() {
                for kx in 0..spec.kx() {
                    let w = weights[wshape.index(f, c, ky, kx)];
                    if w == 0.0 {
                        continue;
                    }
                    let (phase, col0) = (kx % sx, kx / sx);
                    for y in 0..out_h {
                        let base = lay.index(c, y * sy + ky, phase, col0);
                        let in_row = &phased[base..base + out_w];
                        let out_row = &mut out_plane[y * out_w..(y + 1) * out_w];
                        for (o, &i) in out_row.iter_mut().zip(in_row) {
                            *o += w * i;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{LANES, TILE_ROWS};
    use spg_convnet::ConvSpec;
    use spg_tensor::transform::StridedLayout;
    use std::arch::x86_64::*;

    /// Register-tiled basic block over a `rows x LANES` output tile,
    /// reducing over **all** channels and kernel offsets before a single
    /// store (the Fig. 7 structure with the channel loop hoisted inside
    /// the tile): for every channel, every input row feeding the tile and
    /// every `kx` shift, load the input vector once and fan its
    /// contributions out to all output rows it serves. Because the tile
    /// performs the complete reduction, tiles may overlap in `x` —
    /// overlapping columns are simply recomputed — which lets callers
    /// cover ragged row tails with one final overlapping tile instead of
    /// a scalar path.
    ///
    /// Output row `ty` of the tile reads input rows `ty * sy + ky`; input
    /// row `iy` therefore serves output rows with `ky = iy - ty * sy` in
    /// `[0, fy)` — up to `ceil(fy / sy)` of them, so cross-row reuse
    /// survives vertical striding whenever `sy < fy` (e.g. the stride-2
    /// 7x7 ImageNet-22K layer reuses each loaded row up to 4x).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2+FMA; that for every `c < nc` and
    /// `iy < (rows - 1) * sy + fy`, `in_row(c, iy) + kx_offset(kx) +
    /// LANES` stays within the input buffer; that `weights(c)` points to
    /// `fy * fx` readable floats; and that `out` has `rows` rows of at
    /// least `LANES` writable elements at stride `out_stride`.
    /// `RX` is the tile width in vectors (1 or 2). The two-vector form
    /// mirrors the GEMM micro-kernel's 6x16 shape: one weight broadcast
    /// feeds `RX` fused multiply-adds, halving the broadcast overhead
    /// that otherwise caps the kernel's instruction throughput.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments, clippy::manual_range_contains, clippy::needless_range_loop)]
    unsafe fn tile_block<const RX: usize>(
        rows: usize,
        fy: usize,
        fx: usize,
        sy: usize,
        nc: usize,
        in_row: impl Fn(usize, usize) -> *const f32,
        weights: impl Fn(usize) -> *const f32,
        kx_offset: impl Fn(usize) -> usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        debug_assert!(rows >= 1 && rows <= TILE_ROWS && sy >= 1);
        debug_assert!(RX == 1 || RX == 2);
        let mut acc = [[_mm256_setzero_ps(); RX]; TILE_ROWS];
        for c in 0..nc {
            let w_fc = weights(c);
            for iy in 0..(rows - 1) * sy + fy {
                // Output rows served by input row iy: ty with
                // 0 <= iy - ty*sy < fy.
                let ty_lo = (iy + 1).saturating_sub(fy).div_ceil(sy);
                let ty_hi = (iy / sy).min(rows - 1);
                if ty_lo > ty_hi {
                    continue;
                }
                let base = in_row(c, iy);
                for kx in 0..fx {
                    let off = kx_offset(kx);
                    let mut ivec = [_mm256_setzero_ps(); RX];
                    for (rx, v) in ivec.iter_mut().enumerate() {
                        // SAFETY: the caller contract (verified at plan time
                        // by spg-check's x-tile and row-range proofs)
                        // guarantees in_row(c, iy) + kx_offset(kx) +
                        // RX * LANES stays inside the input buffer.
                        *v = unsafe { _mm256_loadu_ps(base.add(off + rx * LANES)) };
                    }
                    for ty in ty_lo..=ty_hi {
                        let ky = iy - ty * sy;
                        // SAFETY: ky < fy and kx < fx by the loop bounds, and
                        // the caller contract guarantees weights(c) points to
                        // fy * fx readable floats (the verifier's weight-
                        // broadcast range proof).
                        let w = unsafe { _mm256_broadcast_ss(&*w_fc.add(ky * fx + kx)) };
                        for rx in 0..RX {
                            acc[ty][rx] = _mm256_fmadd_ps(ivec[rx], w, acc[ty][rx]);
                        }
                    }
                }
            }
        }
        for (r, row) in acc.iter().enumerate().take(rows) {
            for (rx, a) in row.iter().enumerate() {
                // SAFETY: r < rows and the caller contract guarantees `out`
                // has `rows` rows of RX * LANES writable elements at stride
                // `out_stride` (the verifier's output-store range proof).
                unsafe { _mm256_storeu_ps(out.add(r * out_stride + rx * LANES), *a) };
            }
        }
    }

    use super::x_plan;

    /// Unit-`x`-stride register-tiled forward pass.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2+FMA and buffers matching `spec`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn forward_tiled(
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
    ) {
        let (in_h, in_w) = (spec.in_h(), spec.in_w());
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        let (fy, fx) = (spec.ky(), spec.kx());
        let (nc, nf, sy) = (spec.in_c(), spec.features(), spec.sy());
        let in_ptr = input.as_ptr();
        let w_ptr = weights.as_ptr();

        let cache_tile = crate::stencil::plan_cache_schedule(spec).y_tile.max(TILE_ROWS);
        let xs = x_plan(out_w);
        for f in 0..nf {
            // SAFETY: f < nf, so the plane offset stays inside the output
            // buffer whose length the caller validated against the spec.
            let out_plane = unsafe { output.as_mut_ptr().add(f * out_h * out_w) };
            // Cache schedule: sweep one block of output rows completely
            // (all channels reduced inside the register tiles) before
            // moving down the image.
            let mut y0 = 0;
            while y0 < out_h {
                let y1 = (y0 + cache_tile).min(out_h);
                let mut y = y0;
                while y < y1 {
                    let rows = TILE_ROWS.min(y1 - y);
                    for &(x, wide) in &xs {
                        // SAFETY: c < nc, y*sy + iy <= (out_h-1)*sy + fy - 1
                        // < in_h and x + kx + 2*LANES <= in_w for every tile
                        // of the x plan — the exact ranges spg-check proves
                        // in-bounds for this plan at compile (plan) time.
                        let in_row = |c: usize, iy: usize| unsafe {
                            in_ptr.add((c * in_h + y * sy + iy) * in_w + x)
                        };
                        // SAFETY: f < nf and c < nc index whole fy*fx blocks
                        // of the validated weight buffer.
                        let w_fc = |c: usize| unsafe { w_ptr.add((f * nc + c) * fy * fx) };
                        // SAFETY: y < out_h and x + tile width <= out_w
                        // (x-plan segment proof), inside the f-th plane.
                        let dst = unsafe { out_plane.add(y * out_w + x) };
                        // SAFETY: AVX2+FMA guaranteed by the caller; the
                        // closure contracts above bound every access the
                        // block performs.
                        unsafe {
                            if wide {
                                tile_block::<2>(
                                    rows,
                                    fy,
                                    fx,
                                    sy,
                                    nc,
                                    in_row,
                                    w_fc,
                                    |kx| kx,
                                    dst,
                                    out_w,
                                );
                            } else {
                                tile_block::<1>(
                                    rows,
                                    fy,
                                    fx,
                                    sy,
                                    nc,
                                    in_row,
                                    w_fc,
                                    |kx| kx,
                                    dst,
                                    out_w,
                                );
                            }
                        }
                    }
                    y += rows;
                }
                y0 = y1;
            }
        }
    }

    /// Strided (phase-transformed) register-tiled forward pass.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2+FMA and that `phased` came from `lay`
    /// applied to the input of `spec`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn forward_tiled_phased(
        spec: &ConvSpec,
        lay: &StridedLayout,
        phased: &[f32],
        weights: &[f32],
        output: &mut [f32],
    ) {
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        let (fy, fx) = (spec.ky(), spec.kx());
        let (nc, nf, sy, sx) = (spec.in_c(), spec.features(), spec.sy(), spec.sx());
        let pw = lay.phase_width();
        let in_ptr = phased.as_ptr();
        let w_ptr = weights.as_ptr();

        let cache_tile = crate::stencil::plan_cache_schedule(spec).y_tile.max(TILE_ROWS);
        let xs = x_plan(out_w);
        for f in 0..nf {
            // SAFETY: f < nf keeps the plane offset inside the validated
            // output buffer.
            let out_plane = unsafe { output.as_mut_ptr().add(f * out_h * out_w) };
            let mut y0 = 0;
            while y0 < out_h {
                let y1 = (y0 + cache_tile).min(out_h);
                let mut y = y0;
                while y < y1 {
                    let rows = TILE_ROWS.min(y1 - y);
                    for &(x, wide) in &xs {
                        // Base of row (y*sy + iy) at phase 0, column 0; the
                        // kx offset selects phase kx % sx at column
                        // kx / sx + x (the Eq. 21 access pattern).
                        // SAFETY: the phased loads stay inside the (c, h)
                        // phase group — spg-check's phased row-group
                        // containment proof — within the staged buffer of
                        // lay.transformed_len() elements.
                        let in_row = |c: usize, iy: usize| unsafe {
                            in_ptr.add(lay.index(c, y * sy + iy, 0, 0))
                        };
                        // SAFETY: f < nf and c < nc index whole fy*fx blocks
                        // of the validated weight buffer.
                        let w_fc = |c: usize| unsafe { w_ptr.add((f * nc + c) * fy * fx) };
                        let koff = |kx: usize| (kx % sx) * pw + kx / sx + x;
                        // SAFETY: y < out_h and x + tile width <= out_w,
                        // inside the f-th plane.
                        let dst = unsafe { out_plane.add(y * out_w + x) };
                        // SAFETY: AVX2+FMA guaranteed by the caller; closure
                        // contracts above bound every access in the block.
                        unsafe {
                            if wide {
                                tile_block::<2>(
                                    rows, fy, fx, sy, nc, in_row, w_fc, koff, dst, out_w,
                                );
                            } else {
                                tile_block::<1>(
                                    rows, fy, fx, sy, nc, in_row, w_fc, koff, dst, out_w,
                                );
                            }
                        }
                    }
                    y += rows;
                }
                y0 = y1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::reference;

    fn pseudo(n: usize, salt: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 29 + salt * 13) % 19) as f32 - 9.0) / 5.0).collect()
    }

    fn check(spec: ConvSpec) {
        let input = pseudo(spec.input_shape().len(), 1);
        let weights = pseudo(spec.weight_shape().len(), 2);
        let olen = spec.output_shape().len();
        let mut stencil = vec![0f32; olen];
        let mut oracle = vec![0f32; olen];
        forward_scratch(&spec, &input, &weights, &mut stencil, &mut ConvScratch::new());
        reference::forward(&spec, &input, &weights, &mut oracle);
        // Accumulation order differs from the reference; tolerance scales
        // with the reduction length (Nc * Fy * Fx).
        let diff = stencil.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(diff < 5e-4, "{spec}: diff {diff}");
    }

    #[test]
    fn unit_stride_matches_reference() {
        check(ConvSpec::new(1, 4, 4, 1, 2, 2, 1, 1).unwrap());
        check(ConvSpec::new(3, 8, 8, 4, 3, 3, 1, 1).unwrap());
        check(ConvSpec::new(2, 9, 7, 5, 2, 4, 1, 1).unwrap());
        // MNIST layer 0 shape (Table 2).
        check(ConvSpec::square(28, 20, 1, 5, 1));
    }

    #[test]
    fn strided_matches_reference() {
        check(ConvSpec::new(1, 8, 8, 2, 2, 2, 2, 2).unwrap());
        check(ConvSpec::new(2, 11, 13, 3, 3, 3, 1, 2).unwrap());
        check(ConvSpec::new(3, 12, 12, 2, 2, 2, 3, 3).unwrap());
        // AlexNet layer 0 geometry, shrunk input (stride 4, 11x11 kernel).
        check(ConvSpec::new(3, 30, 30, 4, 11, 11, 4, 4).unwrap());
    }

    #[test]
    fn vertical_stride_only() {
        // sy > 1 with sx == 1 stays on the fast path.
        check(ConvSpec::new(2, 10, 6, 3, 3, 3, 2, 1).unwrap());
    }

    #[test]
    fn narrow_output_uses_shifted_gemm() {
        // CIFAR-10 L1 (Table 2): 4x4 outputs, 64 features.
        check(ConvSpec::square(8, 64, 64, 5, 1));
        check(ConvSpec::new(3, 6, 6, 7, 3, 3, 1, 1).unwrap());
        // Narrow and strided.
        check(ConvSpec::new(2, 9, 9, 5, 3, 3, 2, 2).unwrap());
    }

    #[test]
    fn tile_edges_are_exact() {
        // Output widths straddling the 8-lane boundary and heights not
        // divisible by the 6-row tile.
        for w in [8usize, 9, 15, 16, 17] {
            for h in [3usize, 6, 7, 13] {
                check(ConvSpec::new(1, h + 2, w + 2, 2, 3, 3, 1, 1).unwrap());
            }
        }
    }

    #[test]
    fn zero_weights_short_circuit_is_invisible() {
        let spec = ConvSpec::new(1, 5, 12, 2, 3, 3, 1, 1).unwrap();
        let input = pseudo(60, 3);
        let mut weights = pseudo(18, 4);
        weights[4] = 0.0;
        weights[9] = 0.0;
        let mut stencil = vec![0f32; spec.output_shape().len()];
        let mut oracle = vec![0f32; spec.output_shape().len()];
        forward_scratch(&spec, &input, &weights, &mut stencil, &mut ConvScratch::new());
        reference::forward(&spec, &input, &weights, &mut oracle);
        let diff = stencil.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(diff < 5e-4, "diff {diff}");
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn validates_output_buffer() {
        let spec = ConvSpec::new(1, 4, 4, 1, 2, 2, 1, 1).unwrap();
        forward_scratch(&spec, &[0.0; 16], &[0.0; 4], &mut [0.0; 3], &mut ConvScratch::new());
    }
}
