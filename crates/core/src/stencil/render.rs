//! Renders a generated stencil basic block as pseudo-C AVX intrinsics,
//! mirroring the paper's Fig. 7 listing. The emitted text is for
//! inspection and documentation — the executable kernel lives in
//! [`kernel`](crate::stencil::kernel) — but it makes the "code generator"
//! nature of the framework tangible and testable.

use std::fmt::Write as _;

use spg_convnet::ConvSpec;

use crate::stencil::{plan_register_tile, RegisterTilePlan};

/// Emits the basic block for one `(f, c)` slice of `spec` under `plan` as
/// Fig. 7-style pseudo-C. Each input vector is loaded once and its
/// contributions to every output vector in the register tile are listed.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::stencil::{plan_register_tile, render_basic_block};
///
/// // The paper's Fig. 7 shape: 1x2 kernel, 1x2 register tile.
/// let spec = ConvSpec::new(1, 64, 64, 1, 2, 1, 1, 1)?;
/// let listing = render_basic_block(&spec, None);
/// assert!(listing.contains("_mm256_loadu_ps"));
/// assert!(listing.contains("_mm256_fmadd_ps"));
/// # Ok::<(), spg_convnet::ConvError>(())
/// ```
pub fn render_basic_block(spec: &ConvSpec, plan: Option<RegisterTilePlan>) -> String {
    let plan = plan.unwrap_or_else(|| plan_register_tile(spec));
    let (fy, fx) = (spec.ky(), spec.kx());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* stencil basic block: {}x{} kernel, {}x{} register tile",
        fy, fx, plan.rx, plan.ry
    );
    let _ = writeln!(
        out,
        "   {} vector loads, {} fmadds per block (reuse {:.2}x) */",
        plan.loads_per_block,
        plan.fmas_per_block,
        plan.reuse()
    );
    for ty in 0..plan.ry {
        for tx in 0..plan.rx {
            let _ = writeln!(out, "__m256 ovec_{ty}_{tx} = _mm256_setzero_ps();");
        }
    }
    let mut load_id = 0usize;
    for iy in 0..plan.ry + fy - 1 {
        for kx in 0..fx {
            for tx in 0..plan.rx {
                // Which output rows does input row `iy` feed? Row ty uses
                // input rows ty..ty+fy, so iy feeds ty in
                // [iy+1-fy, iy] \cap [0, ry).
                let ty_lo = iy.saturating_sub(fy - 1);
                let ty_hi = iy.min(plan.ry - 1);
                if ty_lo > ty_hi {
                    continue;
                }
                let contributions = ty_hi - ty_lo + 1;
                let _ = writeln!(
                    out,
                    "/* load input vector {load_id}: row y+{iy}, shift x+{kx}, tile col {tx} -> {contributions} contribution(s) */"
                );
                let _ = writeln!(
                    out,
                    "__m256 ivec{load_id} = _mm256_loadu_ps(input + (y + {iy})*NX + x + {tx}*8 + {kx});"
                );
                for ty in ty_lo..=ty_hi {
                    let ky = iy - ty;
                    let _ = writeln!(
                        out,
                        "ovec_{ty}_{tx} = _mm256_fmadd_ps(ivec{load_id}, wvec[{ky}][{kx}], ovec_{ty}_{tx});"
                    );
                }
                load_id += 1;
            }
        }
    }
    let _ = writeln!(out, "/* store register tile */");
    for ty in 0..plan.ry {
        for tx in 0..plan.rx {
            let _ = writeln!(
                out,
                "_mm256_storeu_ps(output + (y + {ty})*OX + x + {tx}*8, ovec_{ty}_{tx});"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_load_count() {
        // Fig. 7: Fy=2, Fx=1, tile 1x2 -> 3 loads.
        let spec = ConvSpec::new(1, 64, 64, 1, 2, 1, 1, 1).unwrap();
        let plan = RegisterTilePlan { rx: 1, ry: 2, loads_per_block: 3, fmas_per_block: 4 };
        let listing = render_basic_block(&spec, Some(plan));
        assert_eq!(listing.matches("_mm256_loadu_ps").count(), 3);
        assert_eq!(listing.matches("_mm256_fmadd_ps").count(), 4);
        assert_eq!(listing.matches("_mm256_storeu_ps").count(), 2);
    }

    #[test]
    fn counts_match_plan_for_searched_tiles() {
        for (k, n) in [(3usize, 32usize), (5, 32), (2, 16)] {
            let spec = ConvSpec::square(n, 8, 4, k, 1);
            let plan = plan_register_tile(&spec);
            let listing = render_basic_block(&spec, Some(plan));
            assert_eq!(
                listing.matches("_mm256_loadu_ps").count(),
                plan.loads_per_block,
                "kernel {k}"
            );
            assert_eq!(
                listing.matches("_mm256_fmadd_ps").count(),
                plan.fmas_per_block,
                "kernel {k}"
            );
        }
    }

    #[test]
    fn middle_rows_have_max_contributions() {
        // For a 3-tall kernel and tall tile, interior input rows feed 3
        // output rows each.
        let spec = ConvSpec::square(32, 8, 4, 3, 1);
        let listing = render_basic_block(&spec, None);
        assert!(listing.contains("3 contribution(s)"));
    }
}
