use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::{gemm_exec, ConvSpec};

use crate::stencil::kernel;

/// [`ConvExecutor`] running the stencil direct-convolution kernel for the
/// forward phase. Backward phases fall back to single-threaded
/// Unfold+GEMM: the paper deploys Stencil-Kernel for FP only, pairing it
/// with Sparse-Kernel or GEMM-in-Parallel for BP (Sec. 4.4, Sec. 5.1).
///
/// # Example
///
/// ```
/// use spg_convnet::exec::ConvExecutor;
/// use spg_core::stencil::StencilExecutor;
///
/// assert_eq!(StencilExecutor::new().name(), "stencil-fp");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StencilExecutor;

impl StencilExecutor {
    /// Creates a stencil forward executor.
    pub fn new() -> Self {
        StencilExecutor
    }
}

impl ConvExecutor for StencilExecutor {
    fn name(&self) -> &str {
        "stencil-fp"
    }

    fn forward(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        kernel::forward_scratch(spec, input, weights, output, scratch);
    }

    fn backward_data(
        &self,
        spec: &ConvSpec,
        weights: &[f32],
        grad_out: &[f32],
        grad_in: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_data_scratch(spec, weights, grad_out, grad_in, 1, scratch);
    }

    fn backward_weights(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        grad_out: &[f32],
        grad_weights: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_weights_scratch(spec, input, grad_out, grad_weights, 1, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::exec::ReferenceExecutor;

    #[test]
    fn agrees_with_reference_on_all_phases() {
        let spec = ConvSpec::new(2, 7, 9, 3, 3, 2, 1, 2).unwrap();
        let input: Vec<f32> =
            (0..spec.input_shape().len()).map(|i| (i as f32 * 0.17).sin()).collect();
        let weights: Vec<f32> =
            (0..spec.weight_shape().len()).map(|i| (i as f32 * 0.13).cos()).collect();
        let grad_out: Vec<f32> =
            (0..spec.output_shape().len()).map(|i| (i as f32 * 0.29).sin()).collect();

        let stencil = StencilExecutor::new();
        let oracle = ReferenceExecutor;
        let mut scratch = ConvScratch::new();

        let mut a = vec![0f32; spec.output_shape().len()];
        let mut b = a.clone();
        stencil.forward(&spec, &input, &weights, &mut a, &mut scratch);
        oracle.forward(&spec, &input, &weights, &mut b, &mut scratch);
        assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut ga = vec![0f32; spec.input_shape().len()];
        let mut gb = ga.clone();
        stencil.backward_data(&spec, &weights, &grad_out, &mut ga, &mut scratch);
        oracle.backward_data(&spec, &weights, &grad_out, &mut gb, &mut scratch);
        assert!(ga.iter().zip(&gb).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut wa = vec![0f32; spec.weight_shape().len()];
        let mut wb = wa.clone();
        stencil.backward_weights(&spec, &input, &grad_out, &mut wa, &mut scratch);
        oracle.backward_weights(&spec, &input, &grad_out, &mut wb, &mut scratch);
        assert!(wa.iter().zip(&wb).all(|(x, y)| (x - y).abs() < 1e-4));
    }
}
