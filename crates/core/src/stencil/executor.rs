use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::{gemm_exec, ConvSpec};

use crate::specialized::select_kernel;
use crate::stencil::{kernel, plan_cache_schedule};

/// [`ConvExecutor`] running the stencil direct-convolution kernel for the
/// forward phase. Backward phases fall back to single-threaded
/// Unfold+GEMM: the paper deploys Stencil-Kernel for FP only, pairing it
/// with Sparse-Kernel or GEMM-in-Parallel for BP (Sec. 4.4, Sec. 5.1).
///
/// Forward dispatch consults the `spg-codegen` specialized-kernel
/// registry first: shapes with a verified monomorphized instance run it
/// (bit-identical to the generic tiled loops), everything else — and
/// every shape when constructed with [`generic`](StencilExecutor::generic)
/// or under `SPG_FORCE_GENERIC` — runs the generic
/// runtime-parameterized kernel.
///
/// # Example
///
/// ```
/// use spg_convnet::exec::ConvExecutor;
/// use spg_core::stencil::StencilExecutor;
///
/// assert_eq!(StencilExecutor::new().name(), "stencil-fp");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StencilExecutor {
    force_generic: bool,
}

impl StencilExecutor {
    /// Creates a stencil forward executor with automatic kernel
    /// selection: specialized where the registry has a verified instance,
    /// generic otherwise.
    pub fn new() -> Self {
        StencilExecutor { force_generic: false }
    }

    /// Creates a stencil forward executor pinned to the generic
    /// runtime-parameterized loops — what the autotuner deploys when
    /// per-layer measurement favours them.
    pub fn generic() -> Self {
        StencilExecutor { force_generic: true }
    }

    /// Whether this executor skips the specialized-kernel registry.
    pub fn is_generic(&self) -> bool {
        self.force_generic
    }
}

impl ConvExecutor for StencilExecutor {
    fn name(&self) -> &str {
        "stencil-fp"
    }

    fn forward(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        if !self.force_generic {
            if let Some(inst) = select_kernel(spec) {
                inst.forward(
                    spec,
                    input,
                    weights,
                    output,
                    scratch,
                    plan_cache_schedule(spec).y_tile,
                );
                return;
            }
        }
        kernel::forward_scratch(spec, input, weights, output, scratch);
    }

    fn backward_data(
        &self,
        spec: &ConvSpec,
        weights: &[f32],
        grad_out: &[f32],
        grad_in: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_data_scratch(spec, weights, grad_out, grad_in, 1, scratch);
    }

    fn backward_weights(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        grad_out: &[f32],
        grad_weights: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_weights_scratch(spec, input, grad_out, grad_weights, 1, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::exec::ReferenceExecutor;

    #[test]
    fn agrees_with_reference_on_all_phases() {
        let spec = ConvSpec::new(2, 7, 9, 3, 3, 2, 1, 2).unwrap();
        let input: Vec<f32> =
            (0..spec.input_shape().len()).map(|i| (i as f32 * 0.17).sin()).collect();
        let weights: Vec<f32> =
            (0..spec.weight_shape().len()).map(|i| (i as f32 * 0.13).cos()).collect();
        let grad_out: Vec<f32> =
            (0..spec.output_shape().len()).map(|i| (i as f32 * 0.29).sin()).collect();

        let stencil = StencilExecutor::new();
        let oracle = ReferenceExecutor;
        let mut scratch = ConvScratch::new();

        let mut a = vec![0f32; spec.output_shape().len()];
        let mut b = a.clone();
        stencil.forward(&spec, &input, &weights, &mut a, &mut scratch);
        oracle.forward(&spec, &input, &weights, &mut b, &mut scratch);
        assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut ga = vec![0f32; spec.input_shape().len()];
        let mut gb = ga.clone();
        stencil.backward_data(&spec, &weights, &grad_out, &mut ga, &mut scratch);
        oracle.backward_data(&spec, &weights, &grad_out, &mut gb, &mut scratch);
        assert!(ga.iter().zip(&gb).all(|(x, y)| (x - y).abs() < 1e-4));

        let mut wa = vec![0f32; spec.weight_shape().len()];
        let mut wb = wa.clone();
        stencil.backward_weights(&spec, &input, &grad_out, &mut wa, &mut scratch);
        oracle.backward_weights(&spec, &input, &grad_out, &mut wb, &mut scratch);
        assert!(wa.iter().zip(&wb).all(|(x, y)| (x - y).abs() < 1e-4));
    }

    /// Auto and pinned-generic executors produce bit-identical output on
    /// a registry shape: the specialized instance preserves the generic
    /// kernel's reduction order exactly.
    #[test]
    fn specialized_dispatch_is_bit_identical_to_generic() {
        let spec = ConvSpec::square(24, 4, 3, 3, 1); // 22-wide output, 3x3 s1
        let input: Vec<f32> =
            (0..spec.input_shape().len()).map(|i| (i as f32 * 0.23).sin()).collect();
        let weights: Vec<f32> =
            (0..spec.weight_shape().len()).map(|i| (i as f32 * 0.19).cos()).collect();
        let mut scratch = ConvScratch::new();
        let mut auto = vec![0f32; spec.output_shape().len()];
        let mut generic = vec![0f32; spec.output_shape().len()];
        StencilExecutor::new().forward(&spec, &input, &weights, &mut auto, &mut scratch);
        StencilExecutor::generic().forward(&spec, &input, &weights, &mut generic, &mut scratch);
        assert_eq!(auto, generic);
        assert!(!StencilExecutor::new().is_generic());
        assert!(StencilExecutor::generic().is_generic());
    }
}
