//! The stencil **schedule generator** (paper Sec. 4.3): picks cache tiles
//! for the generated basic blocks so that the input rows feeding an
//! output tile, the output tile itself, and the active weight slice fit
//! in the target cache level, and so the tile touches few enough pages to
//! sit in the TLB.
//!
//! "Locality optimizations are used to reduce TLB and cache misses.
//! Corresponding input and output are copied into contiguous memory ...
//! and then tiled so that input and output tiles fit in cache."

use std::fmt;

use spg_convnet::ConvSpec;

/// Target L1 data-cache budget for one tile's working set, in f32
/// elements (half of a typical 32 KiB L1d, leaving room for weights and
/// stack traffic).
pub const L1_BUDGET_ELEMS: usize = 4 * 1024;

/// Conventional 4 KiB page size in f32 elements, used for the TLB bound.
pub const PAGE_ELEMS: usize = 1024;

/// Maximum distinct pages a tile may touch (a slice of a typical 64-entry
/// L1 DTLB, shared with the other operands).
pub const TLB_BUDGET_PAGES: usize = 16;

/// A cache/TLB tile for the stencil loop nest: the kernel sweeps `(f, c)`
/// over output blocks of `y_tile` rows by `x_tile` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSchedule {
    /// Output rows per tile (a multiple of the register tile height
    /// whenever the output allows it).
    pub y_tile: usize,
    /// Output columns per tile (a multiple of the vector width whenever
    /// the output allows it).
    pub x_tile: usize,
}

impl CacheSchedule {
    /// Elements of one channel's input the tile reads:
    /// `(y_tile + Fy - 1) * (x_tile + Fx - 1)` (valid for unit stride;
    /// strided convolutions read `sy`/`sx` times more rows/columns but
    /// use them once each, so the bound still holds per use).
    pub fn input_tile_elems(&self, spec: &ConvSpec) -> usize {
        (self.y_tile + spec.ky() - 1) * (self.x_tile + spec.kx() - 1)
    }

    /// Elements of one feature's output the tile writes.
    pub fn output_tile_elems(&self) -> usize {
        self.y_tile * self.x_tile
    }

    /// Total working set per `(f, c)` sweep in f32 elements.
    pub fn working_set_elems(&self, spec: &ConvSpec) -> usize {
        self.input_tile_elems(spec) + self.output_tile_elems() + spec.ky() * spec.kx()
    }

    /// Upper bound on distinct pages the tile's rows touch, assuming each
    /// tile row may straddle a page boundary.
    pub fn pages_touched(&self, spec: &ConvSpec) -> usize {
        let input_rows = self.y_tile + spec.ky() - 1;
        let row_pages = |w: usize| w / PAGE_ELEMS + 2;
        input_rows * row_pages(self.x_tile + spec.kx() - 1) / 2
            + self.y_tile * row_pages(self.x_tile) / 2
    }
}

impl fmt::Display for CacheSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} output tile", self.y_tile, self.x_tile)
    }
}

/// Chooses the largest output tile whose working set fits the L1 budget
/// and whose row count respects the TLB budget, preferring full-width
/// tiles (streaming whole rows keeps hardware prefetchers engaged) and
/// shrinking the width only when a single row group cannot fit.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::stencil::plan_cache_schedule;
///
/// // MNIST L0: 24x24 output, 5x5 kernel — whole output fits L1.
/// let spec = ConvSpec::square(28, 20, 1, 5, 1);
/// let tile = plan_cache_schedule(&spec);
/// assert_eq!(tile.x_tile, 24);
/// assert!(tile.working_set_elems(&spec) <= spg_core::stencil::L1_BUDGET_ELEMS);
/// ```
pub fn plan_cache_schedule(spec: &ConvSpec) -> CacheSchedule {
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    // Start from full width; shrink width only if even a minimal-height
    // tile overflows the budget.
    let mut x_tile = out_w;
    loop {
        let min_rows = CacheSchedule { y_tile: 1, x_tile };
        if min_rows.working_set_elems(spec) <= L1_BUDGET_ELEMS || x_tile <= 8 {
            break;
        }
        x_tile = (x_tile / 2).max(8);
    }
    // Grow height while the budget and TLB allow.
    let mut best = CacheSchedule { y_tile: 1, x_tile };
    for y_tile in 1..=out_h {
        let candidate = CacheSchedule { y_tile, x_tile };
        if candidate.working_set_elems(spec) > L1_BUDGET_ELEMS
            || candidate.pages_touched(spec) > TLB_BUDGET_PAGES
        {
            break;
        }
        best = candidate;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_outputs_get_one_tile() {
        // CIFAR L1: 4x4 output fits trivially.
        let spec = ConvSpec::square(8, 64, 64, 5, 1);
        let tile = plan_cache_schedule(&spec);
        assert_eq!((tile.y_tile, tile.x_tile), (4, 4));
    }

    #[test]
    fn budgets_are_respected() {
        for spec in [
            ConvSpec::square(256, 256, 128, 3, 1), // Table 1 ID 2
            ConvSpec::square(64, 64, 16, 11, 1),   // ID 5
            ConvSpec::square(262, 120, 3, 7, 2),   // ImageNet-22K L0
        ] {
            let tile = plan_cache_schedule(&spec);
            assert!(
                tile.working_set_elems(&spec) <= L1_BUDGET_ELEMS,
                "{spec}: {} elems",
                tile.working_set_elems(&spec)
            );
            assert!(tile.pages_touched(&spec) <= TLB_BUDGET_PAGES, "{spec}");
            assert!(tile.y_tile >= 1 && tile.x_tile >= 1);
        }
    }

    #[test]
    fn wide_outputs_shrink_width_before_giving_up() {
        // 254-wide rows with a 3x3 kernel: a full row pair exceeds no
        // budget, but several input rows do; the planner must still
        // return multiple rows by shrinking width.
        let spec = ConvSpec::square(256, 256, 128, 3, 1);
        let tile = plan_cache_schedule(&spec);
        assert!(tile.y_tile >= 2, "tile {tile}");
    }

    #[test]
    fn taller_kernels_get_shorter_tiles() {
        let small_kernel = plan_cache_schedule(&ConvSpec::square(64, 8, 4, 3, 1));
        let tall_kernel = plan_cache_schedule(&ConvSpec::square(64, 8, 4, 11, 1));
        assert!(tall_kernel.y_tile <= small_kernel.y_tile);
    }

    #[test]
    fn working_set_formula() {
        let spec = ConvSpec::square(16, 4, 2, 3, 1); // 14x14 out
        let tile = CacheSchedule { y_tile: 2, x_tile: 14 };
        assert_eq!(tile.input_tile_elems(&spec), 4 * 16);
        assert_eq!(tile.output_tile_elems(), 28);
        assert_eq!(tile.working_set_elems(&spec), 64 + 28 + 9);
    }

    #[test]
    fn display_is_readable() {
        let tile = CacheSchedule { y_tile: 6, x_tile: 32 };
        assert_eq!(tile.to_string(), "6x32 output tile");
    }
}
