//! The computation scheduler: techniques, per-layer plans, and the paper's
//! empirical selection heuristics (Sec. 4.4).

use std::fmt;
use std::sync::Arc;

use spg_convnet::exec::{SharedExecutor, UnfoldGemmExecutor};
use spg_convnet::ConvSpec;

use crate::region::{HIGH_FEATURE_THRESHOLD, LOW_FEATURE_THRESHOLD, SPARSE_THRESHOLD};
use crate::sparse::SparseBpExecutor;
use crate::stencil::StencilExecutor;

/// An execution technique for one phase of one convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// `Unfold + Parallel-GEMM`: each GEMM partitioned across all cores
    /// (the conventional baseline).
    ParallelGemm,
    /// `Unfold + GEMM-in-Parallel`: single-threaded GEMMs, whole training
    /// inputs distributed across cores (Sec. 4.1).
    GemmInParallel,
    /// Generated direct-convolution stencil kernel, forward phase
    /// (Sec. 4.3).
    StencilFp,
    /// CT-CSR + pointer-shifting sparse kernel, backward phase (Sec. 4.2).
    SparseBp,
}

impl Technique {
    /// All techniques applicable to the forward phase.
    pub fn forward_candidates() -> &'static [Technique] {
        &[Technique::ParallelGemm, Technique::GemmInParallel, Technique::StencilFp]
    }

    /// All techniques applicable to the backward phase.
    pub fn backward_candidates() -> &'static [Technique] {
        &[Technique::ParallelGemm, Technique::GemmInParallel, Technique::SparseBp]
    }

    /// Stable machine-readable identifier used in metrics JSON (matches
    /// the executor names where an executor exists for the technique).
    pub fn id(self) -> &'static str {
        match self {
            Technique::ParallelGemm => "parallel-gemm",
            Technique::GemmInParallel => "gemm-in-parallel",
            Technique::StencilFp => "stencil-fp",
            Technique::SparseBp => "sparse-bp",
        }
    }

    /// Builds the executor implementing this technique.
    ///
    /// `cores` configures Parallel-GEMM's partitioning; the other
    /// techniques are single-threaded per sample by design (their
    /// parallelism comes from running samples concurrently).
    pub fn executor(self, cores: usize) -> SharedExecutor {
        match self {
            Technique::ParallelGemm => Arc::new(UnfoldGemmExecutor::new(cores.max(1))),
            Technique::GemmInParallel => Arc::new(UnfoldGemmExecutor::new(1)),
            Technique::StencilFp => Arc::new(StencilExecutor::new()),
            Technique::SparseBp => Arc::new(SparseBpExecutor::new()),
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Technique::ParallelGemm => "Parallel-GEMM",
            Technique::GemmInParallel => "GEMM-in-Parallel",
            Technique::StencilFp => "Stencil-Kernel (FP)",
            Technique::SparseBp => "Sparse-Kernel (BP)",
        };
        f.write_str(name)
    }
}

/// The chosen techniques for one convolution layer's two phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    /// Forward-propagation technique.
    pub forward: Technique,
    /// Backward-propagation technique (error + delta-weight phases).
    pub backward: Technique,
}

impl fmt::Display for LayerPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FP: {}, BP: {}", self.forward, self.backward)
    }
}

/// The paper's empirical selection heuristics (Sec. 4.4):
/// GEMM-in-Parallel beats Parallel-GEMM below 1024 features,
/// Stencil-Kernel beats GEMM-in-Parallel below 128 output features, and
/// Sparse-Kernel beats dense BP above 75 % gradient sparsity.
///
/// `cores` only matters for the degenerate single-core case, where
/// Parallel-GEMM and GEMM-in-Parallel coincide and the former is reported.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::schedule::{recommended_plan, Technique};
///
/// // AlexNet layer 1 (Table 2): 256 features -> GiP forward.
/// let spec = ConvSpec::square(55, 256, 96, 5, 1);
/// let plan = recommended_plan(&spec, 0.85, 16);
/// assert_eq!(plan.forward, Technique::GemmInParallel);
/// assert_eq!(plan.backward, Technique::SparseBp);
/// ```
pub fn recommended_plan(spec: &ConvSpec, bp_sparsity: f64, cores: usize) -> LayerPlan {
    let features = spec.features();
    let forward = if cores <= 1 {
        if features < LOW_FEATURE_THRESHOLD {
            Technique::StencilFp
        } else {
            Technique::ParallelGemm
        }
    } else if features < LOW_FEATURE_THRESHOLD {
        Technique::StencilFp
    } else if features < HIGH_FEATURE_THRESHOLD {
        Technique::GemmInParallel
    } else {
        Technique::ParallelGemm
    };
    let backward = if bp_sparsity > SPARSE_THRESHOLD {
        Technique::SparseBp
    } else if cores > 1 && features < HIGH_FEATURE_THRESHOLD {
        Technique::GemmInParallel
    } else {
        Technique::ParallelGemm
    };
    LayerPlan { forward, backward }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_layer_plans_match_paper_narrative() {
        // ImageNet-22K L2 (400 features): GiP forward (Sec. 5.2).
        let l2 = ConvSpec::square(15, 400, 250, 3, 1);
        assert_eq!(recommended_plan(&l2, 0.5, 16).forward, Technique::GemmInParallel);
        // MNIST L0 (20 features): stencil forward (Sec. 5.2).
        let mnist = ConvSpec::square(28, 20, 1, 5, 1);
        assert_eq!(recommended_plan(&mnist, 0.5, 16).forward, Technique::StencilFp);
        // ID 1 of Table 1 (1024 features): Parallel-GEMM remains best.
        let big = ConvSpec::square(64, 1024, 512, 2, 1);
        assert_eq!(recommended_plan(&big, 0.5, 16).forward, Technique::ParallelGemm);
    }

    #[test]
    fn sparsity_gates_sparse_bp() {
        let spec = ConvSpec::square(32, 256, 64, 3, 1);
        assert_eq!(recommended_plan(&spec, 0.74, 16).backward, Technique::GemmInParallel);
        assert_eq!(recommended_plan(&spec, 0.76, 16).backward, Technique::SparseBp);
    }

    #[test]
    fn single_core_collapses_to_parallel_gemm() {
        let spec = ConvSpec::square(32, 256, 64, 3, 1);
        let plan = recommended_plan(&spec, 0.5, 1);
        assert_eq!(plan.forward, Technique::ParallelGemm);
        assert_eq!(plan.backward, Technique::ParallelGemm);
    }

    #[test]
    fn executors_are_constructible_for_all_techniques() {
        for &t in Technique::forward_candidates().iter().chain(Technique::backward_candidates()) {
            let exec = t.executor(4);
            assert!(!exec.name().is_empty());
        }
    }

    #[test]
    fn candidate_lists_are_phase_correct() {
        assert!(Technique::forward_candidates().contains(&Technique::StencilFp));
        assert!(!Technique::forward_candidates().contains(&Technique::SparseBp));
        assert!(Technique::backward_candidates().contains(&Technique::SparseBp));
        assert!(!Technique::backward_candidates().contains(&Technique::StencilFp));
    }

    #[test]
    fn display_names() {
        assert_eq!(Technique::SparseBp.to_string(), "Sparse-Kernel (BP)");
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        assert!(plan.to_string().contains("FP: Stencil"));
    }
}
