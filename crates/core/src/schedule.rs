//! The computation scheduler: techniques, per-layer plans, and the paper's
//! empirical selection heuristics (Sec. 4.4).

use std::fmt;
use std::sync::Arc;

use spg_convnet::exec::{SharedExecutor, UnfoldGemmExecutor};
use spg_convnet::ConvSpec;

use crate::hybrid::{band_ranges, HybridExecutor};
use crate::region::{HIGH_FEATURE_THRESHOLD, LOW_FEATURE_THRESHOLD, SPARSE_THRESHOLD};
use crate::sparse::SparseBpExecutor;
use crate::stencil::StencilExecutor;

/// An execution technique for one phase of one convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// `Unfold + Parallel-GEMM`: each GEMM partitioned across all cores
    /// (the conventional baseline).
    ParallelGemm,
    /// `Unfold + GEMM-in-Parallel`: single-threaded GEMMs, whole training
    /// inputs distributed across cores (Sec. 4.1).
    GemmInParallel,
    /// Generated direct-convolution stencil kernel, forward phase
    /// (Sec. 4.3).
    StencilFp,
    /// Stencil kernel with contiguous output-row bands split across
    /// workers within one sample (spatial-`y` hybrid parallelism).
    StencilYBand,
    /// Stencil kernel with contiguous output-column bands split across
    /// workers within one sample (spatial-`x` hybrid parallelism).
    StencilXBand,
    /// Stencil kernel with output-feature slices split across workers
    /// within one sample (output-channel hybrid parallelism).
    StencilOutChannel,
    /// CT-CSR + pointer-shifting sparse kernel, backward phase (Sec. 4.2).
    SparseBp,
}

/// The worker-decomposition dimension a technique parallelizes over —
/// the {sample, y-band, x-band, out-channel} split space of Jia et al.
/// and Dryden et al., reported in the autotuner's decision log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDim {
    /// Whole samples distributed across workers (data parallelism).
    Sample,
    /// Output rows of one sample banded across workers.
    YBand,
    /// Output columns of one sample banded across workers.
    XBand,
    /// Output features of one sample sliced across workers.
    OutChannel,
}

impl PartitionDim {
    /// Stable machine-readable identifier used in metrics JSON.
    pub fn id(self) -> &'static str {
        match self {
            PartitionDim::Sample => "sample",
            PartitionDim::YBand => "y-band",
            PartitionDim::XBand => "x-band",
            PartitionDim::OutChannel => "out-channel",
        }
    }
}

impl Technique {
    /// All techniques applicable to the forward phase.
    pub fn forward_candidates() -> &'static [Technique] {
        &[
            Technique::ParallelGemm,
            Technique::GemmInParallel,
            Technique::StencilFp,
            Technique::StencilYBand,
            Technique::StencilXBand,
            Technique::StencilOutChannel,
        ]
    }

    /// All techniques applicable to the backward phase.
    pub fn backward_candidates() -> &'static [Technique] {
        &[Technique::ParallelGemm, Technique::GemmInParallel, Technique::SparseBp]
    }

    /// Stable machine-readable identifier used in metrics JSON (matches
    /// the executor names where an executor exists for the technique).
    pub fn id(self) -> &'static str {
        match self {
            Technique::ParallelGemm => "parallel-gemm",
            Technique::GemmInParallel => "gemm-in-parallel",
            Technique::StencilFp => "stencil-fp",
            Technique::StencilYBand => "stencil-yband",
            Technique::StencilXBand => "stencil-xband",
            Technique::StencilOutChannel => "stencil-ochannel",
            Technique::SparseBp => "sparse-bp",
        }
    }

    /// The worker-decomposition dimension this technique splits.
    /// Parallel-GEMM row-bands each GEMM's output over features, so it
    /// reports out-channel; the per-sample serial techniques scale by
    /// running samples concurrently and report sample.
    pub fn partition_dim(self) -> PartitionDim {
        match self {
            Technique::ParallelGemm => PartitionDim::OutChannel,
            Technique::GemmInParallel | Technique::StencilFp | Technique::SparseBp => {
                PartitionDim::Sample
            }
            Technique::StencilYBand => PartitionDim::YBand,
            Technique::StencilXBand => PartitionDim::XBand,
            Technique::StencilOutChannel => PartitionDim::OutChannel,
        }
    }

    /// The banded-stencil split dimension, for the hybrid techniques only.
    pub fn band_dim(self) -> Option<spg_check::BandDim> {
        match self {
            Technique::StencilYBand => Some(spg_check::BandDim::YRows),
            Technique::StencilXBand => Some(spg_check::BandDim::XCols),
            Technique::StencilOutChannel => Some(spg_check::BandDim::OutChannels),
            _ => None,
        }
    }

    /// Builds the executor implementing this technique.
    ///
    /// `cores` configures Parallel-GEMM's partitioning and the hybrid
    /// banded stencils' worker count; the other techniques are
    /// single-threaded per sample by design (their parallelism comes from
    /// running samples concurrently).
    pub fn executor(self, cores: usize) -> SharedExecutor {
        match self {
            Technique::ParallelGemm => Arc::new(UnfoldGemmExecutor::new(cores.max(1))),
            Technique::GemmInParallel => Arc::new(UnfoldGemmExecutor::new(1)),
            Technique::StencilFp => Arc::new(StencilExecutor::new()),
            Technique::StencilYBand | Technique::StencilXBand | Technique::StencilOutChannel => {
                // band_dim is Some for exactly these variants.
                let dim = self
                    .band_dim()
                    .unwrap_or_else(|| unreachable!("band_dim is Some for hybrid variants"));
                Arc::new(HybridExecutor::new(dim, cores.max(1)))
            }
            Technique::SparseBp => Arc::new(SparseBpExecutor::new()),
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Technique::ParallelGemm => "Parallel-GEMM",
            Technique::GemmInParallel => "GEMM-in-Parallel",
            Technique::StencilFp => "Stencil-Kernel (FP)",
            Technique::StencilYBand => "Stencil-Kernel (FP, y-band)",
            Technique::StencilXBand => "Stencil-Kernel (FP, x-band)",
            Technique::StencilOutChannel => "Stencil-Kernel (FP, out-channel)",
            Technique::SparseBp => "Sparse-Kernel (BP)",
        };
        f.write_str(name)
    }
}

/// The chosen techniques for one convolution layer's two phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    /// Forward-propagation technique.
    pub forward: Technique,
    /// Backward-propagation technique (error + delta-weight phases).
    pub backward: Technique,
}

impl fmt::Display for LayerPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FP: {}, BP: {}", self.forward, self.backward)
    }
}

/// The paper's empirical selection heuristics (Sec. 4.4):
/// GEMM-in-Parallel beats Parallel-GEMM below 1024 features,
/// Stencil-Kernel beats GEMM-in-Parallel below 128 output features, and
/// Sparse-Kernel beats dense BP above 75 % gradient sparsity.
///
/// `cores` only matters for the degenerate single-core case, where
/// Parallel-GEMM and GEMM-in-Parallel coincide and the former is reported.
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::schedule::{recommended_plan, Technique};
///
/// // AlexNet layer 1 (Table 2): 256 features -> GiP forward.
/// let spec = ConvSpec::square(55, 256, 96, 5, 1);
/// let plan = recommended_plan(&spec, 0.85, 16);
/// assert_eq!(plan.forward, Technique::GemmInParallel);
/// assert_eq!(plan.backward, Technique::SparseBp);
/// ```
pub fn recommended_plan(spec: &ConvSpec, bp_sparsity: f64, cores: usize) -> LayerPlan {
    let features = spec.features();
    let forward = if cores <= 1 {
        if features < LOW_FEATURE_THRESHOLD {
            Technique::StencilFp
        } else {
            Technique::ParallelGemm
        }
    } else if features < LOW_FEATURE_THRESHOLD {
        Technique::StencilFp
    } else if features < HIGH_FEATURE_THRESHOLD {
        Technique::GemmInParallel
    } else {
        Technique::ParallelGemm
    };
    let backward = if bp_sparsity > SPARSE_THRESHOLD {
        Technique::SparseBp
    } else if cores > 1 && features < HIGH_FEATURE_THRESHOLD {
        Technique::GemmInParallel
    } else {
        Technique::ParallelGemm
    };
    LayerPlan { forward, backward }
}

/// Batch-aware variant of [`recommended_plan`]: when the batch cannot keep
/// every core busy with whole samples (`batch < cores`), sample-parallel
/// forward techniques starve, so the heuristic prefers an intra-sample
/// banded decomposition for layers wide enough to split (Jia et al.'s
/// hybrid dimension choice, restricted to the plan shapes `spg-check` can
/// prove). Falls back to [`recommended_plan`] whenever the batch saturates
/// the machine or no banding is available.
pub fn recommended_plan_for_batch(
    spec: &ConvSpec,
    bp_sparsity: f64,
    cores: usize,
    batch: usize,
) -> LayerPlan {
    let base = recommended_plan(spec, bp_sparsity, cores);
    if cores <= 1 || batch >= cores {
        return base;
    }
    // Sample parallelism covers only `batch` of the `cores` workers; spend
    // the idle ones inside the sample. Prefer y-bands (contiguous staging,
    // smallest halo), then x-bands, then out-channel slices.
    let hybrids = [Technique::StencilYBand, Technique::StencilXBand, Technique::StencilOutChannel];
    for technique in hybrids {
        let dim = technique
            .band_dim()
            .unwrap_or_else(|| unreachable!("band_dim is Some for hybrid variants"));
        if band_ranges(spec, dim, cores).len() > 1 {
            return LayerPlan { forward: technique, backward: base.backward };
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_layer_plans_match_paper_narrative() {
        // ImageNet-22K L2 (400 features): GiP forward (Sec. 5.2).
        let l2 = ConvSpec::square(15, 400, 250, 3, 1);
        assert_eq!(recommended_plan(&l2, 0.5, 16).forward, Technique::GemmInParallel);
        // MNIST L0 (20 features): stencil forward (Sec. 5.2).
        let mnist = ConvSpec::square(28, 20, 1, 5, 1);
        assert_eq!(recommended_plan(&mnist, 0.5, 16).forward, Technique::StencilFp);
        // ID 1 of Table 1 (1024 features): Parallel-GEMM remains best.
        let big = ConvSpec::square(64, 1024, 512, 2, 1);
        assert_eq!(recommended_plan(&big, 0.5, 16).forward, Technique::ParallelGemm);
    }

    #[test]
    fn sparsity_gates_sparse_bp() {
        let spec = ConvSpec::square(32, 256, 64, 3, 1);
        assert_eq!(recommended_plan(&spec, 0.74, 16).backward, Technique::GemmInParallel);
        assert_eq!(recommended_plan(&spec, 0.76, 16).backward, Technique::SparseBp);
    }

    #[test]
    fn single_core_collapses_to_parallel_gemm() {
        let spec = ConvSpec::square(32, 256, 64, 3, 1);
        let plan = recommended_plan(&spec, 0.5, 1);
        assert_eq!(plan.forward, Technique::ParallelGemm);
        assert_eq!(plan.backward, Technique::ParallelGemm);
    }

    #[test]
    fn executors_are_constructible_for_all_techniques() {
        for &t in Technique::forward_candidates().iter().chain(Technique::backward_candidates()) {
            let exec = t.executor(4);
            assert!(!exec.name().is_empty());
        }
    }

    #[test]
    fn candidate_lists_are_phase_correct() {
        assert!(Technique::forward_candidates().contains(&Technique::StencilFp));
        assert!(!Technique::forward_candidates().contains(&Technique::SparseBp));
        assert!(Technique::backward_candidates().contains(&Technique::SparseBp));
        assert!(!Technique::backward_candidates().contains(&Technique::StencilFp));
    }

    #[test]
    fn starved_batch_prefers_intra_sample_bands() {
        // ImageNet-22K L0 geometry (Table 2) at batch 1 on 8 cores: whole
        // samples cover one worker, so the y-band decomposition wins.
        let spec = ConvSpec::square(262, 120, 3, 7, 2);
        let plan = recommended_plan_for_batch(&spec, 0.5, 8, 1);
        assert_eq!(plan.forward, Technique::StencilYBand);
        // A saturating batch falls back to the sample-parallel heuristic.
        assert_eq!(recommended_plan_for_batch(&spec, 0.5, 8, 8), recommended_plan(&spec, 0.5, 8));
        // Narrow outputs cannot band: fall back even when starved.
        let narrow = ConvSpec::square(8, 64, 64, 5, 1); // 4x4 output
        assert_eq!(
            recommended_plan_for_batch(&narrow, 0.5, 8, 1),
            recommended_plan(&narrow, 0.5, 8)
        );
    }

    #[test]
    fn partition_dims_cover_the_split_space() {
        assert_eq!(Technique::GemmInParallel.partition_dim().id(), "sample");
        assert_eq!(Technique::StencilFp.partition_dim().id(), "sample");
        assert_eq!(Technique::StencilYBand.partition_dim().id(), "y-band");
        assert_eq!(Technique::StencilXBand.partition_dim().id(), "x-band");
        assert_eq!(Technique::StencilOutChannel.partition_dim().id(), "out-channel");
        // Parallel-GEMM row-bands the GEMM over output features.
        assert_eq!(Technique::ParallelGemm.partition_dim().id(), "out-channel");
    }

    #[test]
    fn display_names() {
        assert_eq!(Technique::SparseBp.to_string(), "Sparse-Kernel (BP)");
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        assert!(plan.to_string().contains("FP: Stencil"));
    }
}
