//! The Fig. 1 design-space classifier.
//!
//! The paper organizes convolutions in a 2-D space of arithmetic intensity
//! (which, per the Fig. 1 caption, tracks roughly `2 x` the output feature
//! count) and sparsity, dividing it into six regions with distinct
//! performance pathologies under `Unfold + Parallel-GEMM`:
//!
//! | Region | AIT / features | Sparsity | Pathology | Fix |
//! |---|---|---|---|---|
//! | 0 | high (>= 1024 features) | dense | none | — |
//! | 1 | high | sparse | poor goodput | Sparse-Kernel (BP) |
//! | 2 | moderate (128–1023) | dense | poor scalability | GEMM-in-Parallel |
//! | 3 | moderate | sparse | scalability + goodput | GiP + Sparse-Kernel |
//! | 4 | low (< 128 features) | dense | poor single-core perf | Stencil-Kernel (FP) |
//! | 5 | low | sparse | single-core + goodput | Stencil + Sparse-Kernel |

use std::fmt;

use spg_convnet::ConvSpec;

/// Feature-count boundary between the high-AIT regions (0, 1) and the
/// moderate regions (2, 3); from Sec. 4.4: Parallel-GEMM only stays
/// competitive at or above 1024 features.
pub const HIGH_FEATURE_THRESHOLD: usize = 1024;

/// Feature-count boundary between the moderate regions (2, 3) and the
/// low-AIT regions (4, 5); from Sec. 4.4: the stencil kernel wins below
/// 128 output features.
pub const LOW_FEATURE_THRESHOLD: usize = 128;

/// Sparsity above which a computation sits in an odd (sparse) region;
/// from Sec. 4.4: the sparse kernel overtakes dense GEMM above 75 %.
pub const SPARSE_THRESHOLD: f64 = 0.75;

/// One of the six regions of the paper's Fig. 1 design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// High AIT, dense: Parallel-GEMM already performs and scales well.
    R0,
    /// High AIT, sparse: throughput fine, goodput poor.
    R1,
    /// Moderate AIT, dense: scales poorly under Parallel-GEMM.
    R2,
    /// Moderate AIT, sparse: poor scalability and goodput.
    R3,
    /// Low AIT, dense: poor single-core performance after unfolding.
    R4,
    /// Low AIT, sparse: poor single-core performance and goodput.
    R5,
}

impl Region {
    /// Region index 0–5 as printed in the paper.
    pub fn index(self) -> usize {
        match self {
            Region::R0 => 0,
            Region::R1 => 1,
            Region::R2 => 2,
            Region::R3 => 3,
            Region::R4 => 4,
            Region::R5 => 5,
        }
    }

    /// `true` for the sparse (odd-numbered) regions.
    pub fn is_sparse(self) -> bool {
        self.index() % 2 == 1
    }

    /// The region's performance pathologies under Unfold+Parallel-GEMM.
    pub fn pathologies(self) -> &'static [&'static str] {
        match self {
            Region::R0 => &[],
            Region::R1 => &["goodput"],
            Region::R2 => &["scalability"],
            Region::R3 => &["scalability", "goodput"],
            Region::R4 => &["single-core performance", "scalability"],
            Region::R5 => &["single-core performance", "scalability", "goodput"],
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region {}", self.index())
    }
}

/// Classifies a convolution with a given error-gradient sparsity into its
/// Fig. 1 region, using the output-feature count as the AIT proxy the
/// figure's caption prescribes (`AIT ~ 2 x features`).
///
/// # Example
///
/// ```
/// use spg_convnet::ConvSpec;
/// use spg_core::region::{classify, Region};
///
/// // MNIST layer 0 (Table 2): 20 features -> low-AIT region.
/// let mnist = ConvSpec::square(28, 20, 1, 5, 1);
/// assert_eq!(classify(&mnist, 0.0), Region::R4);
/// assert_eq!(classify(&mnist, 0.9), Region::R5);
/// ```
pub fn classify(spec: &ConvSpec, sparsity: f64) -> Region {
    classify_by_features(spec.features(), sparsity)
}

/// Classifies directly from a feature count and sparsity.
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1]`.
pub fn classify_by_features(features: usize, sparsity: f64) -> Region {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
    let sparse = sparsity > SPARSE_THRESHOLD;
    if features >= HIGH_FEATURE_THRESHOLD {
        if sparse {
            Region::R1
        } else {
            Region::R0
        }
    } else if features >= LOW_FEATURE_THRESHOLD {
        if sparse {
            Region::R3
        } else {
            Region::R2
        }
    } else if sparse {
        Region::R5
    } else {
        Region::R4
    }
}

/// The dense/sparse region pair a convolution occupies across training
/// (dense early, sparse once gradients sparsify) — the "Region (Reg)"
/// column of Table 1.
pub fn region_pair(spec: &ConvSpec) -> (Region, Region) {
    (classify(spec, 0.0), classify(spec, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's "Region (Reg)" column, reproduced for all six IDs.
    #[test]
    fn table1_region_column() {
        let cases = [
            (32, 32, 32, 4, (Region::R4, Region::R5)),
            (64, 1024, 512, 2, (Region::R0, Region::R1)),
            (256, 256, 128, 3, (Region::R2, Region::R3)),
            (128, 128, 64, 7, (Region::R2, Region::R3)),
            (128, 512, 256, 5, (Region::R2, Region::R3)),
            (64, 64, 16, 11, (Region::R4, Region::R5)),
        ];
        for (n, nf, nc, k, expect) in cases {
            let spec = ConvSpec::square(n, nf, nc, k, 1);
            assert_eq!(region_pair(&spec), expect, "conv {n},{nf},{nc},{k}");
        }
    }

    #[test]
    fn sparsity_flips_parity_only() {
        for features in [16, 128, 500, 1024, 4096] {
            let dense = classify_by_features(features, 0.0);
            let sparse = classify_by_features(features, 0.95);
            assert_eq!(sparse.index(), dense.index() + 1);
        }
    }

    #[test]
    fn boundaries_are_inclusive_upward() {
        assert_eq!(classify_by_features(1024, 0.0), Region::R0);
        assert_eq!(classify_by_features(1023, 0.0), Region::R2);
        assert_eq!(classify_by_features(128, 0.0), Region::R2);
        assert_eq!(classify_by_features(127, 0.0), Region::R4);
    }

    #[test]
    fn sparse_threshold_is_exclusive() {
        assert_eq!(classify_by_features(256, 0.75), Region::R2);
        assert_eq!(classify_by_features(256, 0.7501), Region::R3);
    }

    #[test]
    fn pathologies_accumulate_down_the_space() {
        assert!(Region::R0.pathologies().is_empty());
        assert_eq!(Region::R5.pathologies().len(), 3);
        assert!(Region::R3.pathologies().contains(&"goodput"));
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn invalid_sparsity_panics() {
        classify_by_features(64, 1.5);
    }

    #[test]
    fn display_prints_index() {
        assert_eq!(Region::R3.to_string(), "Region 3");
    }
}
