//! **spg-CNN** — the optimization framework of *"Optimizing CNNs on
//! Multicores for Scalability, Performance and Goodput"* (ASPLOS 2017).
//!
//! The paper characterizes CNN training on multicore CPUs along a 2-D
//! design space of arithmetic intensity and sparsity (Fig. 1), then builds
//! three techniques plus a scheduler that picks among them per layer and
//! per phase:
//!
//! | Problem (region of Fig. 1) | Technique | Module |
//! |---|---|---|
//! | Parallel-GEMM loses per-core AIT as cores are added (R2, R3) | **GEMM-in-Parallel** — independent single-threaded GEMMs, one training input per core | [`schedule`], executors in `spg-gemm` / `spg-convnet` |
//! | Unfolding destroys the AIT of small convolutions (R4, R5) | **Stencil-Kernel (FP)** — generated direct-convolution kernels with register-tile reuse and a strided-layout transform | [`stencil`] |
//! | Dense BP wastes goodput on ~85–95 % sparse error gradients (R1, R3, R5) | **Sparse-Kernel (BP)** — CT-CSR gradients composed in place as small dense MMs by pointer shifting | [`sparse`] |
//! | Which technique where? | measure-and-pick scheduler with epoch re-tuning | [`autotune`] |
//!
//! Supporting modules: [`ait`] (the Sec. 3 characterization math),
//! [`region`] (the Fig. 1 classifier), and [`config`] (a protobuf-text-like
//! network description parser, standing in for the paper's Protocol Buffer
//! front end).
//!
//! # Example: plan a CIFAR-10 layer
//!
//! ```
//! use spg_convnet::ConvSpec;
//! use spg_core::schedule::{recommended_plan, Technique};
//!
//! // CIFAR-10 layer 1 (Table 2): 64 features, 5x5, on 16 cores with
//! // 85 % gradient sparsity.
//! let spec = ConvSpec::square(8, 64, 64, 5, 1);
//! let plan = recommended_plan(&spec, 0.85, 16);
//! assert_eq!(plan.forward, Technique::StencilFp);     // < 128 features
//! assert_eq!(plan.backward, Technique::SparseBp);      // > 75 % sparse
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ait;
pub mod autotune;
pub mod backend;
pub mod compiled;
pub mod config;
mod error;
pub mod hybrid;
pub mod region;
pub mod schedule;
pub mod sparse;
pub mod specialized;
pub mod stencil;
pub mod verify;

pub use error::SpgError;
