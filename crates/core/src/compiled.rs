//! Compiled per-layer kernels — the artifact the paper's code generator
//! produces.
//!
//! spg-CNN is a *code generation* framework: for each convolution layer it
//! emits specialized kernels whose setup work — weight layout transforms,
//! register-tile and cache-schedule planning — happens once per layer (or
//! once per parameter update), not once per sample. The stateless
//! [`ConvExecutor`] seam pays those costs
//! on every call; [`CompiledConv`] is the amortized form: compile once,
//! [`set_weights`](CompiledConv::set_weights) after each SGD step, and run
//! every sample of the batch against the cached plan.

use std::fmt;

use spg_codegen::{KernelChoice, SpecializedKernel};
use spg_tensor::{layout, Tensor};

use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::{gemm_exec, ConvSpec};

use crate::hybrid::HybridExecutor;
use crate::schedule::{LayerPlan, Technique};
use crate::sparse::{kernel as sparse_kernel, DEFAULT_TILE_WIDTH};
use crate::specialized::select_kernel;
use crate::stencil::{
    kernel as stencil_kernel, plan_cache_schedule, plan_register_tile, render_basic_block,
    CacheSchedule, RegisterTilePlan, VECTOR_WIDTH,
};

/// A convolution layer compiled against a [`LayerPlan`]: cached weight
/// transforms plus the generator's tile plans, executable over any number
/// of samples.
///
/// # Example
///
/// ```
/// use spg_convnet::workspace::ConvScratch;
/// use spg_convnet::ConvSpec;
/// use spg_core::compiled::CompiledConv;
/// use spg_core::schedule::recommended_plan;
///
/// let spec = ConvSpec::square(12, 16, 4, 3, 1);
/// let plan = recommended_plan(&spec, 0.9, 16);
/// let weights = vec![0.01; spec.weight_shape().len()];
/// let kernel = CompiledConv::compile(spec, plan, &weights, 1)?;
///
/// let input = vec![1.0; spec.input_shape().len()];
/// let mut output = vec![0.0; spec.output_shape().len()];
/// let mut scratch = ConvScratch::new();
/// kernel.forward_scratch(&input, &mut output, &mut scratch);
/// assert!(output.iter().any(|v| *v != 0.0));
/// # Ok::<(), spg_core::SpgError>(())
/// ```
pub struct CompiledConv {
    spec: ConvSpec,
    plan: LayerPlan,
    cores: usize,
    tile_width: usize,
    /// Owned weights in canonical FCKK order.
    weights: Tensor,
    /// Cached `[ky, kx, f, c]` weights for the sparse backward kernel.
    w_kkfc: Option<Tensor>,
    /// Cached `[ky][kx] (Nc x Nf)` weights for the narrow stencil path.
    w_kkcf: Option<Vec<f32>>,
    /// Verified `spg-codegen` instance for the forward stencil, when one
    /// resolved (stencil plans compiled with [`KernelChoice::Auto`] only).
    specialized: Option<&'static SpecializedKernel>,
    /// Banded intra-sample executor for hybrid forward plans; owns the
    /// per-worker staging pool so repeated calls allocate nothing.
    hybrid: Option<HybridExecutor>,
    register_tile: RegisterTilePlan,
    cache_schedule: CacheSchedule,
}

impl CompiledConv {
    /// Compiles a layer: plans the register tile and cache schedule and
    /// pre-computes every weight transform the chosen techniques need.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::InvalidNetwork`](crate::SpgError::InvalidNetwork)
    /// if the weight buffer length does not match the spec, or
    /// [`SpgError::PlanRejected`](crate::SpgError::PlanRejected) if the
    /// static verifier cannot prove the lowered plan safe.
    pub fn compile(
        spec: ConvSpec,
        plan: LayerPlan,
        weights: &[f32],
        cores: usize,
    ) -> Result<Self, crate::SpgError> {
        Self::compile_with_kernel(spec, plan, weights, cores, KernelChoice::Auto)
    }

    /// [`compile`](CompiledConv::compile) with an explicit forward-kernel
    /// choice: [`KernelChoice::Auto`] consults the `spg-codegen` registry
    /// after the plan verifies (a resolved instance is itself re-verified
    /// against its own lowered plan before it is kept);
    /// [`KernelChoice::Generic`] pins the generic runtime-parameterized
    /// loops — what the autotuner passes when per-layer measurement
    /// favours them.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::InvalidNetwork`](crate::SpgError::InvalidNetwork)
    /// if the weight buffer length does not match the spec, or
    /// [`SpgError::PlanRejected`](crate::SpgError::PlanRejected) if the
    /// static verifier cannot prove the lowered plan safe.
    pub fn compile_with_kernel(
        spec: ConvSpec,
        plan: LayerPlan,
        weights: &[f32],
        cores: usize,
        kernel_choice: KernelChoice,
    ) -> Result<Self, crate::SpgError> {
        if weights.len() != spec.weight_shape().len() {
            return Err(crate::SpgError::InvalidNetwork {
                message: format!(
                    "weight buffer has {} elements, spec requires {}",
                    weights.len(),
                    spec.weight_shape().len()
                ),
            });
        }
        // Plan-time gate: prove every access range of the lowered plan
        // in-bounds, disjoint across workers, and within scratch capacity
        // before constructing anything that will execute it.
        crate::verify::verify_plan(&spec, plan, cores.max(1))?;
        // Registry consult, after the generic plan passed: a specialized
        // instance is kept only if its own lowered plan also verifies
        // (select_kernel gates through verify_specialized).
        let specialized = match (plan.forward, kernel_choice) {
            (Technique::StencilFp, KernelChoice::Auto) => select_kernel(&spec),
            _ => None,
        };
        let mut compiled = CompiledConv {
            spec,
            plan,
            cores: cores.max(1),
            tile_width: DEFAULT_TILE_WIDTH,
            weights: Tensor::zeros(weights.len()),
            w_kkfc: None,
            w_kkcf: None,
            specialized,
            hybrid: plan.forward.band_dim().map(|dim| HybridExecutor::new(dim, cores.max(1))),
            register_tile: plan_register_tile(&spec),
            cache_schedule: plan_cache_schedule(&spec),
        };
        compiled.set_weights(weights);
        Ok(compiled)
    }

    /// Refreshes the cached weight transforms after a parameter update.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the compiled spec's weight
    /// count (the geometry was fixed at compile time).
    pub fn set_weights(&mut self, weights: &[f32]) {
        assert_eq!(weights.len(), self.spec.weight_shape().len(), "weights length");
        self.weights = Tensor::from_vec(weights.to_vec());
        self.w_kkfc = if self.plan.backward == Technique::SparseBp {
            match layout::fckk_to_kkfc(&self.weights, self.spec.weight_shape()) {
                Ok(kkfc) => Some(kkfc),
                Err(_) => unreachable!("weight length asserted at entry"),
            }
        } else {
            None
        };
        self.w_kkcf =
            if self.plan.forward == Technique::StencilFp && self.spec.out_w() < VECTOR_WIDTH {
                Some(stencil_kernel::narrow_weights(&self.spec, weights))
            } else {
                None
            };
    }

    /// The compiled convolution's specification.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The plan the layer was compiled against.
    pub fn plan(&self) -> LayerPlan {
        self.plan
    }

    /// The generator's register-tile choice.
    pub fn register_tile(&self) -> RegisterTilePlan {
        self.register_tile
    }

    /// The generator's cache-schedule choice.
    pub fn cache_schedule(&self) -> CacheSchedule {
        self.cache_schedule
    }

    /// Which forward kernel this layer runs: `"specialized"` when a
    /// verified `spg-codegen` instance was bound at compile time,
    /// `"generic"` otherwise.
    pub fn kernel_kind(&self) -> &'static str {
        if self.specialized.is_some() {
            "specialized"
        } else {
            "generic"
        }
    }

    /// The bound specialized instance, if any.
    pub fn specialized_kernel(&self) -> Option<&'static SpecializedKernel> {
        self.specialized
    }

    /// Forward propagation allocating a throwaway [`ConvScratch`] per
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    #[cfg(feature = "legacy-alloc-path")]
    #[deprecated(
        since = "0.1.0",
        note = "allocates scratch per call; use `forward_scratch` with \
                                          a reused `ConvScratch`"
    )]
    pub fn forward(&self, input: &[f32], output: &mut [f32]) {
        self.forward_scratch(input, output, &mut ConvScratch::new());
    }

    /// Forward propagation for one sample running out of a
    /// caller-provided [`ConvScratch`]: with a reused scratch the
    /// per-sample path performs no heap allocation. `output` is
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    pub fn forward_scratch(&self, input: &[f32], output: &mut [f32], scratch: &mut ConvScratch) {
        match self.plan.forward {
            Technique::StencilFp => {
                if let Some(w_kkcf) = &self.w_kkcf {
                    stencil_kernel::forward_narrow_pretransformed_scratch(
                        &self.spec, input, w_kkcf, output, scratch,
                    );
                } else if let Some(inst) = self.specialized {
                    inst.forward(
                        &self.spec,
                        input,
                        self.weights.as_slice(),
                        output,
                        scratch,
                        self.cache_schedule.y_tile,
                    );
                } else {
                    stencil_kernel::forward_scratch(
                        &self.spec,
                        input,
                        self.weights.as_slice(),
                        output,
                        scratch,
                    );
                }
            }
            Technique::ParallelGemm => {
                gemm_exec::forward_scratch(
                    &self.spec,
                    input,
                    self.weights.as_slice(),
                    output,
                    self.cores,
                    scratch,
                );
            }
            Technique::StencilYBand | Technique::StencilXBand | Technique::StencilOutChannel => {
                // The compile-time verifier proved the banded plan, so the
                // executor (sharing its band source of truth) runs it.
                self.hybrid
                    .as_ref()
                    .unwrap_or_else(|| {
                        unreachable!("hybrid plan compiled with its banded executor")
                    })
                    .forward(&self.spec, input, self.weights.as_slice(), output, scratch);
            }
            Technique::GemmInParallel | Technique::SparseBp => {
                gemm_exec::forward_scratch(
                    &self.spec,
                    input,
                    self.weights.as_slice(),
                    output,
                    1,
                    scratch,
                );
            }
        }
    }

    /// Backward error propagation allocating a throwaway [`ConvScratch`]
    /// per call.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    #[cfg(feature = "legacy-alloc-path")]
    #[deprecated(
        since = "0.1.0",
        note = "allocates scratch per call; use \
                                          `backward_data_scratch` with a reused `ConvScratch`"
    )]
    pub fn backward_data(&self, grad_out: &[f32], grad_in: &mut [f32]) {
        self.backward_data_scratch(grad_out, grad_in, &mut ConvScratch::new());
    }

    /// Backward error propagation for one sample running out of a
    /// caller-provided [`ConvScratch`]. `grad_in` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    pub fn backward_data_scratch(
        &self,
        grad_out: &[f32],
        grad_in: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        match (&self.plan.backward, &self.w_kkfc) {
            (Technique::SparseBp, Some(w_kkfc)) => {
                sparse_kernel::backward_data_pretransformed_scratch(
                    &self.spec,
                    w_kkfc.as_slice(),
                    grad_out,
                    grad_in,
                    self.tile_width,
                    scratch,
                )
            }
            (Technique::ParallelGemm, _) => gemm_exec::backward_data_scratch(
                &self.spec,
                self.weights.as_slice(),
                grad_out,
                grad_in,
                self.cores,
                scratch,
            ),
            _ => gemm_exec::backward_data_scratch(
                &self.spec,
                self.weights.as_slice(),
                grad_out,
                grad_in,
                1,
                scratch,
            ),
        }
    }

    /// Delta-weight computation allocating a throwaway [`ConvScratch`]
    /// per call.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    #[cfg(feature = "legacy-alloc-path")]
    #[deprecated(
        since = "0.1.0",
        note = "allocates scratch per call; use \
                                          `backward_weights_scratch` with a reused `ConvScratch`"
    )]
    pub fn backward_weights(&self, input: &[f32], grad_out: &[f32], grad_weights: &mut [f32]) {
        self.backward_weights_scratch(input, grad_out, grad_weights, &mut ConvScratch::new());
    }

    /// Delta-weight computation for one sample running out of a
    /// caller-provided [`ConvScratch`]. `grad_weights` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec.
    pub fn backward_weights_scratch(
        &self,
        input: &[f32],
        grad_out: &[f32],
        grad_weights: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        match self.plan.backward {
            Technique::SparseBp => sparse_kernel::backward_weights_scratch(
                &self.spec,
                input,
                grad_out,
                grad_weights,
                self.tile_width,
                scratch,
            ),
            Technique::ParallelGemm => gemm_exec::backward_weights_scratch(
                &self.spec,
                input,
                grad_out,
                grad_weights,
                self.cores,
                scratch,
            ),
            _ => gemm_exec::backward_weights_scratch(
                &self.spec,
                input,
                grad_out,
                grad_weights,
                1,
                scratch,
            ),
        }
    }

    /// Renders the generated kernels as readable pseudo-C: the stencil
    /// basic block for stencil forward plans, and the pointer-shifting
    /// sparse kernel for sparse backward plans.
    pub fn render(&self) -> String {
        let kernel = match self.specialized {
            Some(inst) => {
                format!(
                    "specialized ({}, {}, {} lanes)",
                    inst.key(),
                    inst.isa().name(),
                    inst.lanes()
                )
            }
            None => "generic".to_string(),
        };
        let mut out = format!(
            "/* compiled conv: {}\n   plan: {}\n   cache schedule: {}\n   forward kernel: {} */\n",
            self.spec, self.plan, self.cache_schedule, kernel
        );
        if self.plan.forward == Technique::StencilFp && self.spec.out_w() >= VECTOR_WIDTH {
            out.push_str(&render_basic_block(&self.spec, Some(self.register_tile)));
        }
        if self.plan.backward == Technique::SparseBp {
            out.push('\n');
            out.push_str(&crate::sparse::render_backward_kernel(&self.spec, self.tile_width));
        }
        out
    }
}

impl fmt::Debug for CompiledConv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledConv({}, {}, tile {}, schedule {})",
            self.spec, self.plan, self.register_tile, self.cache_schedule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::reference;

    fn pseudo(n: usize, salt: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 37 + salt * 11) % 23) as f32 - 11.0) / 9.0).collect()
    }

    fn sparse_grad(n: usize, keep: usize) -> Vec<f32> {
        (0..n).map(|i| if i % keep == 0 { ((i % 13) as f32 - 6.0) / 4.0 } else { 0.0 }).collect()
    }

    fn check_all_phases(spec: ConvSpec, plan: LayerPlan) {
        let weights = pseudo(spec.weight_shape().len(), 1);
        let kernel = match CompiledConv::compile(spec, plan, &weights, 2) {
            Ok(kernel) => kernel,
            // Hybrid forwards are legitimately rejected on specs they
            // cannot band; every other plan must compile.
            Err(err) => {
                assert!(plan.forward.band_dim().is_some(), "{spec} {plan}: {err}");
                return;
            }
        };
        let input = pseudo(spec.input_shape().len(), 2);
        let grad_out = sparse_grad(spec.output_shape().len(), 4);

        let mut scratch = ConvScratch::new();
        let mut out = vec![0.0; spec.output_shape().len()];
        let mut oracle = vec![0.0; spec.output_shape().len()];
        kernel.forward_scratch(&input, &mut out, &mut scratch);
        reference::forward(&spec, &input, &weights, &mut oracle);
        let d = out.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(d < 1e-3, "{spec} fwd ({plan}): {d}");

        let mut gin = vec![0.0; spec.input_shape().len()];
        let mut gin_oracle = vec![0.0; spec.input_shape().len()];
        kernel.backward_data_scratch(&grad_out, &mut gin, &mut scratch);
        reference::backward_data(&spec, &weights, &grad_out, &mut gin_oracle);
        let d = gin.iter().zip(&gin_oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(d < 1e-3, "{spec} bwd-data ({plan}): {d}");

        let mut gw = vec![0.0; spec.weight_shape().len()];
        let mut gw_oracle = vec![0.0; spec.weight_shape().len()];
        kernel.backward_weights_scratch(&input, &grad_out, &mut gw, &mut scratch);
        reference::backward_weights(&spec, &input, &grad_out, &mut gw_oracle);
        let d = gw.iter().zip(&gw_oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(d < 1e-3, "{spec} bwd-w ({plan}): {d}");
    }

    #[test]
    fn every_plan_combination_matches_reference() {
        let wide = ConvSpec::square(14, 5, 3, 3, 1);
        let narrow = ConvSpec::square(7, 6, 4, 3, 1); // 5-wide output
        for spec in [wide, narrow] {
            for &fwd in Technique::forward_candidates() {
                for &bwd in Technique::backward_candidates() {
                    check_all_phases(spec, LayerPlan { forward: fwd, backward: bwd });
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One ConvScratch carried across every phase and plan combination
        // must not change results relative to a fresh per-call scratch.
        let spec = ConvSpec::square(14, 5, 3, 3, 1);
        let weights = pseudo(spec.weight_shape().len(), 6);
        let input = pseudo(spec.input_shape().len(), 7);
        let grad_out = sparse_grad(spec.output_shape().len(), 3);
        let mut scratch = ConvScratch::new();
        for &fwd in Technique::forward_candidates() {
            for &bwd in Technique::backward_candidates() {
                let plan = LayerPlan { forward: fwd, backward: bwd };
                let kernel = match CompiledConv::compile(spec, plan, &weights, 2) {
                    Ok(kernel) => kernel,
                    Err(err) => {
                        assert!(plan.forward.band_dim().is_some(), "{plan}: {err}");
                        continue;
                    }
                };
                let olen = spec.output_shape().len();
                let (ilen, wlen) = (spec.input_shape().len(), spec.weight_shape().len());
                let mut a = vec![0f32; olen];
                let mut b = vec![0f32; olen];
                kernel.forward_scratch(&input, &mut a, &mut scratch);
                kernel.forward_scratch(&input, &mut b, &mut ConvScratch::new());
                assert_eq!(a, b, "{plan} fwd");
                let mut ga = vec![0f32; ilen];
                let mut gb = vec![0f32; ilen];
                kernel.backward_data_scratch(&grad_out, &mut ga, &mut scratch);
                kernel.backward_data_scratch(&grad_out, &mut gb, &mut ConvScratch::new());
                assert_eq!(ga, gb, "{plan} bwd-data");
                let mut wa = vec![0f32; wlen];
                let mut wb = vec![0f32; wlen];
                kernel.backward_weights_scratch(&input, &grad_out, &mut wa, &mut scratch);
                kernel.backward_weights_scratch(
                    &input,
                    &grad_out,
                    &mut wb,
                    &mut ConvScratch::new(),
                );
                assert_eq!(wa, wb, "{plan} bwd-w");
            }
        }
    }

    #[test]
    fn set_weights_refreshes_caches() {
        let spec = ConvSpec::square(10, 4, 2, 3, 1);
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        let w1 = pseudo(spec.weight_shape().len(), 3);
        let mut kernel = CompiledConv::compile(spec, plan, &w1, 1).expect("valid weights");

        let input = pseudo(spec.input_shape().len(), 4);
        let grad_out = sparse_grad(spec.output_shape().len(), 3);
        let mut scratch = ConvScratch::new();
        let mut before = vec![0.0; spec.input_shape().len()];
        kernel.backward_data_scratch(&grad_out, &mut before, &mut scratch);

        let w2: Vec<f32> = w1.iter().map(|v| v * 2.0).collect();
        kernel.set_weights(&w2);
        let mut after = vec![0.0; spec.input_shape().len()];
        kernel.backward_data_scratch(&grad_out, &mut after, &mut scratch);
        for (b, a) in before.iter().zip(&after) {
            assert!((b * 2.0 - a).abs() < 1e-4, "cache not refreshed: {b} vs {a}");
        }
        let _ = input;
    }

    #[test]
    fn compile_validates_weight_length() {
        let spec = ConvSpec::square(8, 2, 2, 3, 1);
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        assert!(CompiledConv::compile(spec, plan, &[0.0; 3], 1).is_err());
    }

    #[test]
    fn render_includes_plan_and_block() {
        let spec = ConvSpec::square(16, 4, 2, 3, 1);
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        let weights = vec![0.1; spec.weight_shape().len()];
        let kernel = CompiledConv::compile(spec, plan, &weights, 1).expect("valid weights");
        let listing = kernel.render();
        assert!(listing.contains("Stencil-Kernel"));
        assert!(listing.contains("_mm256_fmadd_ps"));
        assert!(listing.contains("output tile"));
    }

    /// A pinned-generic compile never binds an instance, and its output is
    /// bit-identical to the auto compile's (the specialized instance
    /// preserves the generic reduction order exactly).
    #[test]
    fn kernel_choice_generic_pins_generic_and_matches_auto() {
        let spec = ConvSpec::square(24, 4, 3, 3, 1); // 22-wide output, 3x3 s1
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        let weights = pseudo(spec.weight_shape().len(), 8);
        let auto = CompiledConv::compile(spec, plan, &weights, 1).expect("valid weights");
        let generic = CompiledConv::compile_with_kernel(
            spec,
            plan,
            &weights,
            1,
            spg_codegen::KernelChoice::Generic,
        )
        .expect("valid weights");
        assert_eq!(generic.kernel_kind(), "generic");
        assert!(generic.specialized_kernel().is_none());
        if spg_gemm::detect_simd_level() >= spg_gemm::SimdLevel::Avx2Fma
            && !spg_codegen::force_generic()
        {
            assert_eq!(auto.kernel_kind(), "specialized");
            assert!(auto.render().contains("forward kernel: specialized"));
        }
        let input = pseudo(spec.input_shape().len(), 9);
        let mut scratch = ConvScratch::new();
        let mut a = vec![0f32; spec.output_shape().len()];
        let mut b = vec![0f32; spec.output_shape().len()];
        auto.forward_scratch(&input, &mut a, &mut scratch);
        generic.forward_scratch(&input, &mut b, &mut scratch);
        assert_eq!(a, b);
    }

    /// Shapes outside the registry compile to the generic kernel even
    /// under `KernelChoice::Auto` — the silent fallback.
    #[test]
    fn unlisted_shape_compiles_generic() {
        let spec = ConvSpec::square(14, 5, 3, 4, 1); // 4x4 kernel: no key
        let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
        let weights = pseudo(spec.weight_shape().len(), 5);
        let kernel = CompiledConv::compile(spec, plan, &weights, 1).expect("valid weights");
        assert_eq!(kernel.kernel_kind(), "generic");
        assert!(kernel.render().contains("forward kernel: generic"));
    }

    #[test]
    fn debug_is_informative() {
        let spec = ConvSpec::square(8, 2, 2, 3, 1);
        let plan = LayerPlan { forward: Technique::GemmInParallel, backward: Technique::SparseBp };
        let weights = vec![0.1; spec.weight_shape().len()];
        let kernel = CompiledConv::compile(spec, plan, &weights, 1).expect("valid weights");
        assert!(format!("{kernel:?}").contains("CompiledConv"));
    }
}
