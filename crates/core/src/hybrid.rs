//! Hybrid intra-layer parallelism: banded stencil execution of one sample.
//!
//! The paper's GEMM-in-Parallel scales by distributing whole samples, so
//! strong scaling collapses when `batch < cores` — the regime Jia et al.
//! (*Exploring Hidden Dimensions in Parallelizing CNNs*) and Dryden et al.
//! (*Improving Strong-Scaling of CNN Training by Exploiting Finer-Grained
//! Parallelism*) address by also splitting *within* a layer. This module
//! implements the three intra-sample decompositions the plan IR can prove
//! safe ([`spg_check::BandDim`]): contiguous output-row bands, output-column
//! bands, and output-feature slices, each band running the same wide
//! register-tiled stencil kernel as the sequential path.
//!
//! **Bit-identity.** Every output element's reduction is a single FMA chain
//! ordered `(channel asc, ky asc, kx asc)` regardless of tile position or
//! band offsets, and the banded executor is gated (by `band_ranges` and the
//! `spg-check` banded proof) to the wide tiled path where that invariant
//! holds. Banded outputs are therefore bit-identical to the sequential
//! kernel — the golden suite asserts exact equality, not a tolerance.

use std::fmt;
use std::sync::Mutex;

use spg_check::band_sub_spec;
pub use spg_check::BandDim;
use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::{zeroed_slice, ConvScratch};
use spg_convnet::{gemm_exec, ConvSpec};

use crate::stencil::kernel::{self, LANES};

/// The split extent of `spec` along `dim`.
fn extent(spec: &ConvSpec, dim: BandDim) -> usize {
    match dim {
        BandDim::YRows => spec.out_h(),
        BandDim::XCols => spec.out_w(),
        BandDim::OutChannels => spec.features(),
    }
}

/// The contiguous per-worker bands a hybrid decomposition of `spec` along
/// `dim` uses at `workers` workers: the single source of truth shared by
/// plan lowering (so the verifier proves the very bands that run) and the
/// executor (so it runs the very bands that were proved).
///
/// Returns one band — i.e. "no decomposition available" — when the spec is
/// too narrow for the wide tiled kernel (`out_w < LANES`, where the
/// shifted-GEMM path's different accumulation order would break
/// bit-identity), when `workers <= 1`, or when the extent cannot be split.
/// X-bands additionally shed workers until every band is at least one
/// vector wide, since each band must itself satisfy the wide-kernel gate.
pub fn band_ranges(spec: &ConvSpec, dim: BandDim, workers: usize) -> Vec<(usize, usize)> {
    let n = extent(spec, dim);
    if spec.out_w() < LANES || workers <= 1 {
        return vec![(0, n)];
    }
    match dim {
        BandDim::YRows | BandDim::OutChannels => spg_check::gemm::row_bands(n, workers),
        BandDim::XCols => {
            let mut w = workers.min(n / LANES).max(1);
            loop {
                let bands = spg_check::gemm::row_bands(n, w);
                let narrowest = bands.iter().map(|&(lo, hi)| hi - lo).min().unwrap_or(0);
                if narrowest >= LANES || w == 1 {
                    return bands;
                }
                w -= 1;
            }
        }
    }
}

/// Per-worker staging buffers, pooled across calls so the per-sample hot
/// path performs no heap allocation once warmed up to a geometry.
#[derive(Default)]
struct BandWorkspace {
    input: Vec<f32>,
    output: Vec<f32>,
    scratch: ConvScratch,
}

/// [`ConvExecutor`] running the forward pass as disjoint per-worker bands
/// of one sample along a fixed [`BandDim`], each band executing the wide
/// register-tiled stencil on its restriction of the spec. Backward phases
/// fall back to single-threaded Unfold+GEMM, exactly like
/// [`StencilExecutor`](crate::stencil::StencilExecutor): the hybrid
/// techniques are forward-phase candidates.
///
/// Specs the decomposition cannot split (see [`band_ranges`]) fall back to
/// the sequential generic stencil kernel — same kernel, same bits.
pub struct HybridExecutor {
    dim: BandDim,
    workers: usize,
    pool: Mutex<Vec<BandWorkspace>>,
}

impl fmt::Debug for HybridExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridExecutor")
            .field("dim", &self.dim)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl HybridExecutor {
    /// Creates a banded executor splitting `dim` across `workers` workers.
    pub fn new(dim: BandDim, workers: usize) -> Self {
        HybridExecutor { dim, workers: workers.max(1), pool: Mutex::new(Vec::new()) }
    }

    /// The split dimension this executor bands.
    pub fn dim(&self) -> BandDim {
        self.dim
    }

    /// The worker count this executor decomposes for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn take_workspace(&self) -> BandWorkspace {
        self.pool.lock().unwrap_or_else(|p| p.into_inner()).pop().unwrap_or_default()
    }

    fn put_workspace(&self, ws: BandWorkspace) {
        self.pool.lock().unwrap_or_else(|p| p.into_inner()).push(ws);
    }

    /// Output-feature slices: no staging — workers write disjoint
    /// `split_at_mut` plane slices of the parent output directly.
    fn forward_out_channels(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        ranges: &[(usize, usize)],
    ) {
        let plane = spec.out_h() * spec.out_w();
        let per_feature = spec.weight_shape().per_feature();
        let mut rest = output;
        let mut slices = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges {
            let (band, tail) = rest.split_at_mut((hi - lo) * plane);
            slices.push((lo, hi, band));
            rest = tail;
        }
        std::thread::scope(|s| {
            for (lo, hi, band_out) in slices {
                let sub = band_sub_spec(spec, BandDim::OutChannels, lo, hi)
                    .unwrap_or_else(|_| unreachable!("band restriction is a valid convolution"));
                let band_weights = &weights[lo * per_feature..hi * per_feature];
                s.spawn(move || {
                    let mut ws = self.take_workspace();
                    kernel::forward_scratch(&sub, input, band_weights, band_out, &mut ws.scratch);
                    self.put_workspace(ws);
                });
            }
        });
    }

    /// Spatial bands: each worker stages its input band (rows or columns,
    /// with the stencil halo), runs the kernel into a staged band output,
    /// and the bands are scattered into the parent output after the join —
    /// a deterministic gather, not a shared-write.
    fn forward_spatial(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        ranges: &[(usize, usize)],
    ) {
        let (nc, nf) = (spec.in_c(), spec.features());
        let (in_h, in_w) = (spec.in_h(), spec.in_w());
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let sub = band_sub_spec(spec, self.dim, lo, hi).unwrap_or_else(|_| {
                        unreachable!("band restriction is a valid convolution")
                    });
                    s.spawn(move || {
                        let mut ws = self.take_workspace();
                        let BandWorkspace { input: stage_in, output: stage_out, scratch } = &mut ws;
                        let band_in = zeroed_slice(stage_in, sub.input_shape().len());
                        match self.dim {
                            BandDim::YRows => {
                                // Rows [lo*sy, lo*sy + in_h') of each channel
                                // are contiguous: one copy per channel.
                                let rows = sub.in_h();
                                let row_lo = lo * spec.sy();
                                for c in 0..nc {
                                    let src = (c * in_h + row_lo) * in_w;
                                    band_in[c * rows * in_w..(c + 1) * rows * in_w]
                                        .copy_from_slice(&input[src..src + rows * in_w]);
                                }
                            }
                            BandDim::XCols => {
                                // Columns [lo*sx, lo*sx + in_w') of every row.
                                let cols = sub.in_w();
                                let col_lo = lo * spec.sx();
                                for c in 0..nc {
                                    for r in 0..in_h {
                                        let src = (c * in_h + r) * in_w + col_lo;
                                        let dst = (c * in_h + r) * cols;
                                        band_in[dst..dst + cols]
                                            .copy_from_slice(&input[src..src + cols]);
                                    }
                                }
                            }
                            BandDim::OutChannels => {
                                unreachable!("out-channel bands take the unstaged path")
                            }
                        }
                        let band_out = zeroed_slice(stage_out, sub.output_shape().len());
                        kernel::forward_scratch(&sub, band_in, weights, band_out, scratch);
                        (lo, hi, ws)
                    })
                })
                .collect();
            for handle in handles {
                let (lo, hi, ws) = handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                let len = hi - lo;
                match self.dim {
                    BandDim::YRows => {
                        for f in 0..nf {
                            let src = f * len * out_w;
                            let dst = (f * out_h + lo) * out_w;
                            output[dst..dst + len * out_w]
                                .copy_from_slice(&ws.output[src..src + len * out_w]);
                        }
                    }
                    BandDim::XCols => {
                        for f in 0..nf {
                            for r in 0..out_h {
                                let src = (f * out_h + r) * len;
                                let dst = (f * out_h + r) * out_w + lo;
                                output[dst..dst + len].copy_from_slice(&ws.output[src..src + len]);
                            }
                        }
                    }
                    BandDim::OutChannels => {
                        unreachable!("out-channel bands take the unstaged path")
                    }
                }
                self.put_workspace(ws);
            }
        });
    }
}

impl ConvExecutor for HybridExecutor {
    fn name(&self) -> &str {
        match self.dim {
            BandDim::YRows => "stencil-yband",
            BandDim::XCols => "stencil-xband",
            BandDim::OutChannels => "stencil-ochannel",
        }
    }

    fn forward(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        assert_eq!(input.len(), spec.input_shape().len(), "input length");
        assert_eq!(weights.len(), spec.weight_shape().len(), "weights length");
        assert_eq!(output.len(), spec.output_shape().len(), "output length");
        let ranges = band_ranges(spec, self.dim, self.workers);
        if ranges.len() <= 1 {
            kernel::forward_scratch(spec, input, weights, output, scratch);
            return;
        }
        match self.dim {
            BandDim::OutChannels => {
                self.forward_out_channels(spec, input, weights, output, &ranges);
            }
            BandDim::YRows | BandDim::XCols => {
                self.forward_spatial(spec, input, weights, output, &ranges);
            }
        }
    }

    fn backward_data(
        &self,
        spec: &ConvSpec,
        weights: &[f32],
        grad_out: &[f32],
        grad_in: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_data_scratch(spec, weights, grad_out, grad_in, 1, scratch);
    }

    fn backward_weights(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        grad_out: &[f32],
        grad_weights: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        gemm_exec::backward_weights_scratch(spec, input, grad_out, grad_weights, 1, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, salt: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
    }

    fn sequential(spec: &ConvSpec, input: &[f32], weights: &[f32]) -> Vec<f32> {
        let mut out = vec![0f32; spec.output_shape().len()];
        kernel::forward_scratch(spec, input, weights, &mut out, &mut ConvScratch::new());
        out
    }

    fn check_bit_identical(spec: ConvSpec, dim: BandDim, workers: usize) {
        let input = pseudo(spec.input_shape().len(), 1);
        let weights = pseudo(spec.weight_shape().len(), 2);
        let oracle = sequential(&spec, &input, &weights);
        let exec = HybridExecutor::new(dim, workers);
        let mut banded = vec![0f32; spec.output_shape().len()];
        exec.forward(&spec, &input, &weights, &mut banded, &mut ConvScratch::new());
        assert_eq!(oracle, banded, "{spec} {dim:?} x{workers} not bit-identical");
    }

    #[test]
    fn bands_are_bit_identical_to_sequential_kernel() {
        let unit = ConvSpec::square(34, 6, 3, 3, 1); // 32x32 output
        let strided = ConvSpec::square(69, 4, 3, 7, 2); // 32x32 output, sx 2
        for dim in [BandDim::YRows, BandDim::XCols, BandDim::OutChannels] {
            for workers in [2, 3, 8] {
                check_bit_identical(unit, dim, workers);
                check_bit_identical(strided, dim, workers);
            }
        }
    }

    #[test]
    fn narrow_spec_falls_back_to_sequential() {
        // 4x4 output: no wide tiles, so band_ranges refuses to split and
        // the executor runs the plain kernel (here: shifted-GEMM path).
        let spec = ConvSpec::square(8, 6, 4, 5, 1);
        assert_eq!(band_ranges(&spec, BandDim::YRows, 8), vec![(0, spec.out_h())]);
        let input = pseudo(spec.input_shape().len(), 3);
        let weights = pseudo(spec.weight_shape().len(), 4);
        let oracle = sequential(&spec, &input, &weights);
        let mut out = vec![0f32; spec.output_shape().len()];
        HybridExecutor::new(BandDim::YRows, 8).forward(
            &spec,
            &input,
            &weights,
            &mut out,
            &mut ConvScratch::new(),
        );
        assert_eq!(oracle, out);
    }

    #[test]
    fn x_bands_shed_workers_until_vector_wide() {
        // 25-wide output at 8 workers: 25/8 = 3 bands of >= LANES, and the
        // ragged split (9,9,7) must shed to 2 workers (13,12).
        let spec = ConvSpec::new(1, 27, 27, 2, 3, 3, 1, 1).unwrap();
        let ranges = band_ranges(&spec, BandDim::XCols, 8);
        assert!(ranges.iter().all(|&(lo, hi)| hi - lo >= LANES), "{ranges:?}");
        let covered: usize = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
        assert_eq!(covered, spec.out_w());
    }

    #[test]
    fn workspace_pool_is_reused_across_calls() {
        let spec = ConvSpec::square(34, 4, 2, 3, 1);
        let input = pseudo(spec.input_shape().len(), 5);
        let weights = pseudo(spec.weight_shape().len(), 6);
        let exec = HybridExecutor::new(BandDim::YRows, 4);
        let mut scratch = ConvScratch::new();
        let mut a = vec![0f32; spec.output_shape().len()];
        let mut b = vec![0f32; spec.output_shape().len()];
        exec.forward(&spec, &input, &weights, &mut a, &mut scratch);
        let pooled = exec.pool.lock().unwrap().len();
        assert!(pooled >= 1, "workers should return workspaces to the pool");
        exec.forward(&spec, &input, &weights, &mut b, &mut scratch);
        assert_eq!(a, b);
        assert!(exec.pool.lock().unwrap().len() >= pooled);
    }
}
