use std::error::Error;
use std::fmt;

/// Error type for the spg-CNN framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpgError {
    /// A network description failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed network is structurally invalid.
    InvalidNetwork {
        /// What went wrong.
        message: String,
    },
    /// A tuning run was requested with no candidate techniques.
    NoCandidates,
    /// The plan-time verifier rejected a candidate execution plan.
    PlanRejected {
        /// Technique id of the rejected candidate.
        technique: &'static str,
        /// The verifier's proof obligation that failed.
        check: spg_check::CheckError,
    },
}

impl fmt::Display for SpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpgError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            SpgError::InvalidNetwork { message } => write!(f, "invalid network: {message}"),
            SpgError::NoCandidates => write!(f, "no candidate techniques to tune over"),
            SpgError::PlanRejected { technique, check } => {
                write!(f, "plan rejected by static verifier: {technique}: {check}")
            }
        }
    }
}

impl Error for SpgError {}

impl From<SpgError> for spg_error::Error {
    fn from(e: SpgError) -> Self {
        let kind = match e {
            SpgError::Parse { .. } => spg_error::ErrorKind::Parse,
            SpgError::InvalidNetwork { .. } => spg_error::ErrorKind::InvalidNetwork,
            SpgError::NoCandidates | SpgError::PlanRejected { .. } => spg_error::ErrorKind::Tuning,
        };
        spg_error::Error::with_source(kind, e.to_string(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = SpgError::Parse { line: 3, message: "unexpected token".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpgError>();
    }
}
