//! Measure-and-pick scheduling (paper Sec. 4.4).
//!
//! "spg-CNN integrates the three techniques and automatically identifies
//! the best set for each convolution layer ... it runs each layer with
//! \[all applicable techniques\] and, based on the measured performance,
//! chooses the fastest technique to deploy for each layer. For BP, it
//! checks for a change in relative performance ... after a pre-specified
//! number of epochs as error gradient sparsity changes during training."
//!
//! [`tune_layer`] is the measurement primitive; [`Framework`] applies
//! plans to whole networks and re-tunes between epochs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spg_codegen::KernelChoice;
use spg_convnet::exec::{ConvExecutor, SharedExecutor};
use spg_convnet::workspace::ConvScratch;
use spg_convnet::{ConvSpec, EpochStats, Network};

use crate::backend::{AlgoChoice, Backend, ConvDescriptor, CpuBackend};
use crate::schedule::{recommended_plan, LayerPlan, Technique};
use crate::stencil::StencilExecutor;

/// Which phase of a convolution layer a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Forward propagation.
    Forward,
    /// Backward propagation (error + delta-weight computation).
    Backward,
}

/// Times one technique on one phase of a convolution at a given gradient
/// sparsity, returning the mean wall time of `reps` runs (after one
/// warm-up run that also pays allocation and code-path warming costs).
///
/// The synthetic operands are deterministic, so repeated calls measure
/// the same work.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn measure_technique(
    spec: &ConvSpec,
    technique: Technique,
    phase: Phase,
    sparsity: f64,
    cores: usize,
    reps: usize,
) -> Duration {
    measure_executor(spec, &*technique.executor(cores), phase, sparsity, reps)
}

/// Times one concrete executor on one phase — the primitive behind
/// [`measure_technique`], also used to race the generic stencil loops
/// against a specialized registry instance for the same technique.
///
/// # Panics
///
/// Panics if `reps == 0`.
fn measure_executor(
    spec: &ConvSpec,
    exec: &dyn ConvExecutor,
    phase: Phase,
    sparsity: f64,
    reps: usize,
) -> Duration {
    assert!(reps > 0, "repetition count must be positive");
    let input: Vec<f32> =
        (0..spec.input_shape().len()).map(|i| ((i % 23) as f32 - 11.0) / 7.0).collect();
    let weights: Vec<f32> =
        (0..spec.weight_shape().len()).map(|i| ((i % 19) as f32 - 9.0) / 5.0).collect();
    let olen = spec.output_shape().len();
    // Clamped sparsity bounds the ratio to [1, 1000], so the cast is exact.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let keep_every = (1.0 / (1.0 - sparsity.clamp(0.0, 0.999)).max(1e-3)).round() as usize;
    let grad_out: Vec<f32> = (0..olen)
        .map(|i| if i % keep_every.max(1) == 0 { ((i % 13) as f32 - 6.0) / 4.0 } else { 0.0 })
        .collect();

    let mut output = vec![0.0f32; olen];
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    let mut grad_w = vec![0.0f32; spec.weight_shape().len()];
    // One scratch reused across warm-up and all reps: the warm-up run
    // pays the buffer growth, so the timed runs measure the steady-state
    // (allocation-free) path the trainer actually executes.
    let mut scratch = ConvScratch::new();

    let mut run = |scratch: &mut ConvScratch| match phase {
        Phase::Forward => exec.forward(spec, &input, &weights, &mut output, scratch),
        Phase::Backward => {
            exec.backward_data(spec, &weights, &grad_out, &mut grad_in, scratch);
            exec.backward_weights(spec, &input, &grad_out, &mut grad_w, scratch);
        }
    };
    run(&mut scratch); // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        run(&mut scratch);
    }
    // Repetition counts are single digits in practice; saturate rather than
    // truncate on a pathological caller.
    start.elapsed() / u32::try_from(reps).unwrap_or(u32::MAX)
}

/// Measures every applicable technique for both phases and returns the
/// fastest pair — the paper's per-layer selection step.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn tune_layer(spec: &ConvSpec, sparsity: f64, cores: usize, reps: usize) -> LayerPlan {
    tune_layer_with_kernels(spec, sparsity, cores, reps).plan
}

/// What tuning one layer produced: the technique pair plus which stencil
/// forward kernel — specialized registry instance or generic loops — the
/// per-layer measurement favoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedLayer {
    /// The fastest technique pair.
    pub plan: LayerPlan,
    /// Forward stencil kernel choice: [`KernelChoice::Generic`] when the
    /// generic loops measured faster than the specialized instance (or
    /// the caller should pin them), [`KernelChoice::Auto`] otherwise.
    pub fp_kernel: KernelChoice,
}

/// [`tune_layer`] returning the forward kernel choice alongside the
/// technique pair. The candidate space is the CPU backend's
/// [`get_algos`](Backend::get_algos) enumeration — the generic search the
/// backend abstraction makes possible — so the autotuner measures exactly
/// the algorithms any other backend consumer can compile. When the
/// stencil forward technique is enumerated with a verified specialized
/// instance, the instance is raced against the generic loops and the
/// winner is recorded in the decision log (schema minor 5, `kernel`
/// field; the chosen backend/algo ids land in the minor-6 fields).
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn tune_layer_with_kernels(
    spec: &ConvSpec,
    sparsity: f64,
    cores: usize,
    reps: usize,
) -> TunedLayer {
    let desc = ConvDescriptor::new(*spec, cores);
    let algos: Vec<AlgoChoice> = CpuBackend::new().get_algos(&desc).collect();
    let (forward, fp_kernel) = pick(spec, Phase::Forward, &algos, sparsity, cores, reps);
    let (backward, _) = pick(spec, Phase::Backward, &algos, sparsity, cores, reps);
    TunedLayer { plan: LayerPlan { forward, backward }, fp_kernel }
}

/// The techniques the backend enumeration admits for one phase, in
/// [`Technique`] candidate order, plus the rejection evidence for the
/// candidates it filtered out (re-deriving the verifier's reason, since
/// [`Backend::get_algos`] yields only survivors).
fn phase_candidates(
    spec: &ConvSpec,
    phase: Phase,
    algos: &[AlgoChoice],
    cores: usize,
) -> (Vec<Technique>, Vec<spg_telemetry::RejectedCandidate>) {
    let candidates = match phase {
        Phase::Forward => Technique::forward_candidates(),
        Phase::Backward => Technique::backward_candidates(),
    };
    let of_phase = |a: &AlgoChoice| match phase {
        Phase::Forward => a.forward,
        Phase::Backward => a.backward,
    };
    let mut safe = Vec::with_capacity(candidates.len());
    let mut rejected = Vec::new();
    for &t in candidates {
        if algos.iter().any(|a| of_phase(a) == t) {
            safe.push(t);
        } else if let Err(e) = crate::verify::verify_technique(spec, t, phase, cores) {
            rejected.push(spg_telemetry::RejectedCandidate {
                technique: t.id().to_string(),
                reason: e.to_string(),
            });
        }
    }
    (safe, rejected)
}

/// Measures the backend-enumerated techniques for one phase and picks the
/// fastest, recording the decision (with the forward stencil kernel
/// choice, the chosen backend/algo ids, and the winner's partition
/// dimension) when telemetry is enabled.
fn pick(
    spec: &ConvSpec,
    phase: Phase,
    algos: &[AlgoChoice],
    sparsity: f64,
    cores: usize,
    reps: usize,
) -> (Technique, KernelChoice) {
    // The deploy gate re-proves the winner through the plan-time verifier
    // at the moment it is about to be installed, so a plan that was
    // enumerable when the race started but is rejected by the time it
    // would deploy is demoted, not installed.
    pick_with_gate(spec, phase, algos, sparsity, cores, reps, &|t| {
        crate::verify::verify_technique(spec, t, phase, cores).map(|_| ())
    })
}

/// [`pick`] with an explicit deploy-time gate, the seam fault-injection
/// tests use to reject a candidate mid-race. A gated-out winner is moved
/// to the decision's `rejected` list and the race re-picks from the
/// remaining timings; if the gate refuses every measured candidate the
/// layer falls back to the GEMM-in-Parallel serial baseline rather than
/// panicking or dropping the layer.
fn pick_with_gate(
    spec: &ConvSpec,
    phase: Phase,
    algos: &[AlgoChoice],
    sparsity: f64,
    cores: usize,
    reps: usize,
    gate: &dyn Fn(Technique) -> Result<(), crate::SpgError>,
) -> (Technique, KernelChoice) {
    // Plan-time gate: the backend enumerates only verifier-approved
    // algorithms, so everything measured below is deployable; rejections
    // are logged, never run.
    let (safe, mut rejected) = phase_candidates(spec, phase, algos, cores);
    let mut timed: Vec<(Technique, Duration)> = safe
        .iter()
        .map(|&t| (t, measure_technique(spec, t, phase, sparsity, cores, reps)))
        .collect();
    let chosen = loop {
        let fastest =
            timed.iter().enumerate().min_by_key(|&(_, &(_, d))| d).map(|(i, &(t, _))| (i, t));
        let Some((idx, candidate)) = fastest else {
            // GEMM-in-Parallel is the always-applicable serial baseline;
            // it backstops the all-candidates-rejected case.
            break Technique::GemmInParallel;
        };
        match gate(candidate) {
            Ok(()) => break candidate,
            Err(e) => {
                // Rejected mid-race: record the refusal and re-pick from
                // the remaining timings.
                rejected.push(spg_telemetry::RejectedCandidate {
                    technique: candidate.id().to_string(),
                    reason: e.to_string(),
                });
                timed.remove(idx);
            }
        }
    };
    // Generic-vs-specialized race for the stencil forward kernel — only
    // when the verifier admitted the stencil technique (a rejected plan
    // must never run, not even for measurement).
    let kernel = match phase {
        Phase::Forward if safe.contains(&Technique::StencilFp) => {
            Some(tune_forward_kernel(spec, sparsity, reps))
        }
        _ => None,
    };
    // Log the measure-and-pick evidence so `spgcnn tune --json` can
    // report not just the winner but why it won.
    if spg_telemetry::enabled() {
        // Per-phase algo spelling: `<technique>/<kernel>`, where the
        // kernel leg is the race winner for a chosen stencil forward and
        // `generic` everywhere else (only the stencil forward has a
        // specialized binding to choose).
        let algo_kernel = if chosen == Technique::StencilFp {
            kernel.map_or("generic", |(_, name)| name)
        } else {
            "generic"
        };
        spg_telemetry::record_decision(spg_telemetry::Decision {
            label: spg_telemetry::current_label().unwrap_or_else(|| "unscoped".to_string()),
            phase: match phase {
                Phase::Forward => spg_telemetry::Phase::Forward,
                Phase::Backward => spg_telemetry::Phase::Backward,
            },
            chosen: chosen.id().to_string(),
            sparsity,
            cores,
            candidates: timed
                .iter()
                .map(|&(t, d)| spg_telemetry::CandidateTiming {
                    technique: t.id().to_string(),
                    wall_ns: duration_ns(d),
                })
                .collect(),
            rejected,
            kernel: kernel.map(|(_, name)| name.to_string()),
            backend: Some("cpu".to_string()),
            algo: Some(format!("{}/{algo_kernel}", chosen.id())),
            // Minor-8 field: which dimension the winner splits the layer
            // along. Backward techniques always split by sample.
            partition: match phase {
                Phase::Forward => Some(chosen.partition_dim().id().to_string()),
                Phase::Backward => None,
            },
        });
    }
    (chosen, kernel.map_or(KernelChoice::Auto, |(choice, _)| choice))
}

/// Races the verified specialized instance (when one resolves) against
/// the generic loops for the stencil forward kernel, returning the
/// deployment choice and its decision-log spelling. Shapes with no
/// runnable instance skip the measurement: `Auto` dispatch already falls
/// back to the generic loops there.
fn tune_forward_kernel(
    spec: &ConvSpec,
    sparsity: f64,
    reps: usize,
) -> (KernelChoice, &'static str) {
    if crate::specialized::select_kernel(spec).is_none() {
        return (KernelChoice::Auto, "generic");
    }
    let specialized =
        measure_executor(spec, &StencilExecutor::new(), Phase::Forward, sparsity, reps);
    let generic =
        measure_executor(spec, &StencilExecutor::generic(), Phase::Forward, sparsity, reps);
    if specialized <= generic {
        (KernelChoice::Auto, "specialized")
    } else {
        (KernelChoice::Generic, "generic")
    }
}

/// The forward executor a tuned plan deploys: the stencil executor
/// pinned to the generic loops when measurement favoured them, the
/// technique's default executor otherwise.
fn forward_executor_for(
    technique: Technique,
    kernel: KernelChoice,
    cores: usize,
) -> SharedExecutor {
    if technique == Technique::StencilFp && kernel == KernelChoice::Generic {
        Arc::new(StencilExecutor::generic())
    } else {
        technique.executor(cores)
    }
}

/// Saturating nanosecond count for telemetry (u64 holds ~584 years).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Measures only the forward-phase candidates and returns the fastest —
/// the inference/serving subset of [`tune_layer`]. Backward candidates
/// are never run, so tuning for a forward-only deployment costs roughly
/// a third of a full training tune.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn tune_layer_forward(spec: &ConvSpec, cores: usize, reps: usize) -> Technique {
    tune_layer_forward_with_kernels(spec, cores, reps).0
}

/// [`tune_layer_forward`] returning the stencil kernel choice alongside
/// the technique — the serving path's analogue of
/// [`tune_layer_with_kernels`].
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn tune_layer_forward_with_kernels(
    spec: &ConvSpec,
    cores: usize,
    reps: usize,
) -> (Technique, KernelChoice) {
    let desc = ConvDescriptor::new(*spec, cores);
    let algos: Vec<AlgoChoice> = CpuBackend::new().get_algos(&desc).collect();
    pick(spec, Phase::Forward, &algos, 0.0, cores, reps)
}

/// How the framework chooses techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningMode {
    /// Use the paper's Sec. 4.4 empirical thresholds (no measurement).
    Heuristic,
    /// Measure all candidates with this many repetitions and pick the
    /// fastest (the paper's default behaviour).
    Measured {
        /// Timing repetitions per candidate.
        reps: usize,
    },
}

/// The spg-CNN framework facade: plans a network's layers and re-tunes
/// backward techniques as gradient sparsity drifts across epochs.
///
/// # Example
///
/// ```
/// use spg_core::autotune::{Framework, TuningMode};
///
/// let fw = Framework::new(16, TuningMode::Heuristic, 2);
/// assert_eq!(fw.cores(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    cores: usize,
    mode: TuningMode,
    retune_every: usize,
}

impl Framework {
    /// Creates a framework for a machine with `cores` cores, re-checking
    /// backward plans every `retune_every` epochs (the paper's
    /// "pre-specified number of epochs").
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `retune_every == 0`.
    pub fn new(cores: usize, mode: TuningMode, retune_every: usize) -> Self {
        assert!(cores > 0, "core count must be positive");
        assert!(retune_every > 0, "retune interval must be positive");
        Framework { cores, mode, retune_every }
    }

    /// The configured core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The tuning mode.
    pub fn mode(&self) -> TuningMode {
        self.mode
    }

    /// Plans one layer at the given gradient sparsity.
    pub fn plan_layer(&self, spec: &ConvSpec, sparsity: f64) -> LayerPlan {
        self.plan_layer_with_kernels(spec, sparsity).plan
    }

    /// Plans one layer and reports the forward stencil kernel choice
    /// alongside the technique pair. Heuristic mode never measures, so it
    /// keeps [`KernelChoice::Auto`] (specialized where available).
    pub fn plan_layer_with_kernels(&self, spec: &ConvSpec, sparsity: f64) -> TunedLayer {
        match self.mode {
            TuningMode::Heuristic => TunedLayer {
                plan: recommended_plan(spec, sparsity, self.cores),
                fp_kernel: KernelChoice::Auto,
            },
            TuningMode::Measured { reps } => {
                tune_layer_with_kernels(spec, sparsity, self.cores, reps)
            }
        }
    }

    /// Plans every convolution layer of a network assuming `sparsity`
    /// backward-gradient sparsity, installs the executors (with the
    /// stencil forward kernel pinned to the generic loops where
    /// measurement favoured them), and returns `(layer index, plan)`
    /// pairs for reporting.
    pub fn plan_network(&self, net: &mut Network, sparsity: f64) -> Vec<(usize, LayerPlan)> {
        let mut plans = Vec::new();
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let label = spg_convnet::scope_label(i, layer.name());
            let Some(conv) = layer.as_conv_mut() else { continue };
            // Tuning traffic records under the layer's label, Tune phase,
            // keeping measurement flops out of the training buckets.
            let _tune = spg_telemetry::scope(&label, spg_telemetry::Phase::Tune);
            let tuned = self.plan_layer_with_kernels(&conv.spec().clone(), sparsity);
            let plan = tuned.plan;
            conv.set_forward_executor(forward_executor_for(
                plan.forward,
                tuned.fp_kernel,
                self.cores,
            ));
            conv.set_backward_executor(plan.backward.executor(self.cores));
            plans.push((i, plan));
        }
        plans
    }

    /// Plans one layer's forward technique only (the serving path).
    pub fn plan_layer_forward(&self, spec: &ConvSpec) -> Technique {
        self.plan_layer_forward_with_kernels(spec).0
    }

    /// [`plan_layer_forward`](Framework::plan_layer_forward) reporting the
    /// stencil kernel choice alongside the technique.
    pub fn plan_layer_forward_with_kernels(&self, spec: &ConvSpec) -> (Technique, KernelChoice) {
        match self.mode {
            TuningMode::Heuristic => {
                (recommended_plan(spec, 0.0, self.cores).forward, KernelChoice::Auto)
            }
            TuningMode::Measured { reps } => {
                tune_layer_forward_with_kernels(spec, self.cores, reps)
            }
        }
    }

    /// Plans and installs forward executors only — inference never runs
    /// backward propagation, so backward tuning (and the stencil layer's
    /// backward weight caches) is skipped entirely. The returned plans
    /// carry the heuristic backward technique purely for reporting.
    pub fn plan_network_forward(&self, net: &mut Network) -> Vec<(usize, LayerPlan)> {
        let mut plans = Vec::new();
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let label = spg_convnet::scope_label(i, layer.name());
            let Some(conv) = layer.as_conv_mut() else { continue };
            let _tune = spg_telemetry::scope(&label, spg_telemetry::Phase::Tune);
            let spec = *conv.spec();
            let (forward, fp_kernel) = self.plan_layer_forward_with_kernels(&spec);
            conv.set_forward_executor(forward_executor_for(forward, fp_kernel, self.cores));
            plans.push((
                i,
                LayerPlan { forward, backward: recommended_plan(&spec, 0.0, self.cores).backward },
            ));
        }
        plans
    }

    /// Verifying variant of [`plan_network`](Framework::plan_network):
    /// measures/chooses every layer's plan first, proves each chosen plan
    /// through the plan-time verifier, and only then installs executors —
    /// so a rejection leaves the network's executors untouched (no
    /// partial install). This is what [`Engine::try_tune`] reaches via
    /// [`NetworkPlanner::try_plan`].
    ///
    /// [`Engine::try_tune`]: spg_convnet::Engine::try_tune
    /// [`NetworkPlanner::try_plan`]: spg_convnet::NetworkPlanner::try_plan
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::PlanRejected`](crate::SpgError::PlanRejected)
    /// if any layer's chosen plan fails verification (possible in
    /// heuristic mode, whose recommendations are not pre-filtered;
    /// measured mode only picks from verified candidates).
    pub fn try_plan_network(
        &self,
        net: &mut Network,
        sparsity: f64,
    ) -> Result<Vec<(usize, LayerPlan)>, crate::SpgError> {
        let mut tuned_layers = Vec::new();
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let label = spg_convnet::scope_label(i, layer.name());
            let Some(conv) = layer.as_conv_mut() else { continue };
            let _tune = spg_telemetry::scope(&label, spg_telemetry::Phase::Tune);
            let spec = *conv.spec();
            let tuned = self.plan_layer_with_kernels(&spec, sparsity);
            crate::verify::verify_plan(&spec, tuned.plan, self.cores)?;
            tuned_layers.push((i, tuned));
        }
        let mut plans = Vec::new();
        for (i, tuned) in tuned_layers {
            // The first pass only pushed indices of conv layers, so the
            // lookup cannot miss; skipping is the benign way to say so.
            let Some(conv) = net.layers_mut()[i].as_conv_mut() else { continue };
            conv.set_forward_executor(forward_executor_for(
                tuned.plan.forward,
                tuned.fp_kernel,
                self.cores,
            ));
            conv.set_backward_executor(tuned.plan.backward.executor(self.cores));
            plans.push((i, tuned.plan));
        }
        Ok(plans)
    }

    /// Verifying variant of
    /// [`plan_network_forward`](Framework::plan_network_forward): chooses
    /// and verifies every layer's forward technique before installing any
    /// executor.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::PlanRejected`](crate::SpgError::PlanRejected)
    /// if any layer's chosen forward technique fails verification.
    pub fn try_plan_network_forward(
        &self,
        net: &mut Network,
    ) -> Result<Vec<(usize, LayerPlan)>, crate::SpgError> {
        let mut chosen = Vec::new();
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let label = spg_convnet::scope_label(i, layer.name());
            let Some(conv) = layer.as_conv_mut() else { continue };
            let _tune = spg_telemetry::scope(&label, spg_telemetry::Phase::Tune);
            let spec = *conv.spec();
            let (forward, fp_kernel) = self.plan_layer_forward_with_kernels(&spec);
            crate::verify::verify_technique(&spec, forward, Phase::Forward, self.cores)?;
            chosen.push((i, spec, forward, fp_kernel));
        }
        let mut plans = Vec::new();
        for (i, spec, forward, fp_kernel) in chosen {
            // The first pass only pushed indices of conv layers, so the
            // lookup cannot miss; skipping is the benign way to say so.
            let Some(conv) = net.layers_mut()[i].as_conv_mut() else { continue };
            conv.set_forward_executor(forward_executor_for(forward, fp_kernel, self.cores));
            plans.push((
                i,
                LayerPlan { forward, backward: recommended_plan(&spec, 0.0, self.cores).backward },
            ));
        }
        Ok(plans)
    }

    /// Epoch callback for [`Trainer::train_with`](spg_convnet::Trainer):
    /// every `retune_every` epochs, re-plans each conv layer's *backward*
    /// executor using that layer's measured gradient sparsity from the
    /// epoch statistics (forward plans do not depend on sparsity).
    pub fn retune(&self, net: &mut Network, stats: &EpochStats) {
        // Epochs are 1-based; 0 is a synthetic "before training" value
        // some callers pass, and `0.is_multiple_of(n)` holds for every n,
        // which used to trigger a spurious re-plan before the first batch.
        if stats.epoch == 0 || !stats.epoch.is_multiple_of(self.retune_every) {
            return;
        }
        let mut conv_idx = 0;
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let label = spg_convnet::scope_label(i, layer.name());
            let Some(conv) = layer.as_conv_mut() else { continue };
            let _tune = spg_telemetry::scope(&label, spg_telemetry::Phase::Tune);
            let sparsity = stats.conv_grad_sparsity.get(conv_idx).copied().unwrap_or(0.0);
            let plan = self.plan_layer(&conv.spec().clone(), sparsity);
            conv.set_backward_executor(plan.backward.executor(self.cores));
            conv_idx += 1;
        }
    }
}

impl spg_convnet::NetworkPlanner for Framework {
    fn plan(&self, net: &mut Network, sparsity: f64) {
        self.plan_network(net, sparsity);
    }

    fn plan_forward(&self, net: &mut Network) {
        self.plan_network_forward(net);
    }

    fn retune(&self, net: &mut Network, stats: &EpochStats) {
        Framework::retune(self, net, stats);
    }

    fn try_plan(&self, net: &mut Network, sparsity: f64) -> Result<(), spg_error::Error> {
        self.try_plan_network(net, sparsity).map(|_| ()).map_err(spg_error::Error::from)
    }

    fn try_plan_forward(&self, net: &mut Network) -> Result<(), spg_error::Error> {
        self.try_plan_network_forward(net).map(|_| ()).map_err(spg_error::Error::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spg_convnet::layer::{ConvLayer, ReluLayer};

    fn small_spec() -> ConvSpec {
        ConvSpec::new(2, 10, 10, 4, 3, 3, 1, 1).unwrap()
    }

    #[test]
    fn measurement_returns_nonzero_time() {
        let d =
            measure_technique(&small_spec(), Technique::GemmInParallel, Phase::Forward, 0.0, 1, 2);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn tune_layer_returns_applicable_techniques() {
        let plan = tune_layer(&small_spec(), 0.9, 1, 1);
        assert!(Technique::forward_candidates().contains(&plan.forward));
        assert!(Technique::backward_candidates().contains(&plan.backward));
    }

    #[test]
    fn heuristic_framework_installs_executors() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = small_spec();
        let conv = ConvLayer::new(spec, &mut rng);
        let olen = spec.output_shape().len();
        let mut net = Network::new(vec![Box::new(conv), Box::new(ReluLayer::new(olen))]).unwrap();
        let fw = Framework::new(16, TuningMode::Heuristic, 1);
        let plans = fw.plan_network(&mut net, 0.9);
        assert_eq!(plans.len(), 1);
        // 4 features < 128 -> stencil FP; 0.9 > 0.75 -> sparse BP.
        assert_eq!(plans[0].1.forward, Technique::StencilFp);
        assert_eq!(plans[0].1.backward, Technique::SparseBp);
        let conv = net.layers_mut()[0].as_conv_mut().unwrap();
        let (fwd, bwd) = conv.executor_names();
        assert_eq!(fwd, "stencil-fp");
        assert_eq!(bwd, "sparse-bp");
    }

    #[test]
    fn retune_respects_interval_and_sparsity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = small_spec();
        let conv = ConvLayer::new(spec, &mut rng);
        let olen = spec.output_shape().len();
        let mut net = Network::new(vec![Box::new(conv), Box::new(ReluLayer::new(olen))]).unwrap();
        let fw = Framework::new(16, TuningMode::Heuristic, 2);
        fw.plan_network(&mut net, 0.0); // dense start: GiP backward
        let stats = |epoch, sparsity| EpochStats {
            epoch,
            mean_loss: 1.0,
            accuracy: 0.5,
            conv_grad_sparsity: vec![sparsity],
            images_per_sec: 1.0,
        };
        // Epoch 1: interval not hit, stays dense.
        fw.retune(&mut net, &stats(1, 0.95));
        let bwd = net.layers_mut()[0].as_conv_mut().unwrap().executor_names().1;
        assert_ne!(bwd, "sparse-bp");
        // Epoch 2: interval hit, sparsity high -> sparse BP installed.
        fw.retune(&mut net, &stats(2, 0.95));
        let bwd = net.layers_mut()[0].as_conv_mut().unwrap().executor_names().1;
        assert_eq!(bwd, "sparse-bp");
    }

    #[test]
    fn retune_ignores_synthetic_epoch_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let spec = small_spec();
        let conv = ConvLayer::new(spec, &mut rng);
        let olen = spec.output_shape().len();
        let mut net = Network::new(vec![Box::new(conv), Box::new(ReluLayer::new(olen))]).unwrap();
        // Measured mode records a tuning decision per re-planned phase, so
        // the decision log doubles as evidence of whether retune ran.
        let fw = Framework::new(1, TuningMode::Measured { reps: 1 }, 2);
        spg_telemetry::set_enabled(true);
        let stats = |epoch| EpochStats {
            epoch,
            mean_loss: 1.0,
            accuracy: 0.5,
            conv_grad_sparsity: vec![0.95],
            images_per_sec: 1.0,
        };
        // Retune scopes each layer, so its decisions carry the layer label.
        let label = spg_convnet::scope_label(0, net.layers_mut()[0].name());
        let logged = |label: &str| {
            spg_telemetry::snapshot().decisions.iter().filter(|d| d.label == label).count()
        };
        let before = logged(&label);
        // 0 is a multiple of every interval; before the guard this logged
        // a spurious pre-training re-plan.
        fw.retune(&mut net, &stats(0));
        assert_eq!(logged(&label), before, "epoch 0 must not re-plan");
        // Positive control: a real on-interval epoch does re-plan.
        fw.retune(&mut net, &stats(2));
        assert!(logged(&label) > before, "epoch 2 re-plans and logs its decision");
    }

    /// Forward decisions carry the minor-5 `kernel` field whenever the
    /// stencil technique was measured; backward decisions never do.
    #[test]
    fn forward_decisions_record_kernel_choice() {
        spg_telemetry::set_enabled(true);
        // Registry shape (3x3 s1) with an 18-wide output: stencil-fp
        // verifies, so the generic-vs-specialized race runs.
        let spec = ConvSpec::new(2, 20, 20, 3, 3, 3, 1, 1).unwrap();
        {
            let _scope = spg_telemetry::scope("kernel-decision-layer", spg_telemetry::Phase::Tune);
            let tuned = tune_layer_with_kernels(&spec, 0.5, 1, 1);
            assert!(matches!(tuned.fp_kernel, KernelChoice::Auto | KernelChoice::Generic));
        }
        let snap = spg_telemetry::snapshot();
        let mine: Vec<_> =
            snap.decisions.iter().filter(|d| d.label == "kernel-decision-layer").collect();
        let forward: Vec<_> =
            mine.iter().filter(|d| d.phase == spg_telemetry::Phase::Forward).collect();
        assert!(!forward.is_empty(), "forward decision logged");
        for d in &forward {
            let kernel = d.kernel.as_deref().expect("forward decision records kernel");
            assert!(kernel == "specialized" || kernel == "generic", "kernel = {kernel}");
        }
        for d in mine.iter().filter(|d| d.phase == spg_telemetry::Phase::Backward) {
            assert!(d.kernel.is_none(), "backward decisions carry no kernel field");
        }
    }

    /// The deployment helper pins the generic stencil executor only for
    /// a measured-generic stencil plan.
    #[test]
    fn forward_executor_honours_kernel_choice() {
        let pinned = forward_executor_for(Technique::StencilFp, KernelChoice::Generic, 1);
        assert_eq!(pinned.name(), "stencil-fp");
        let auto = forward_executor_for(Technique::StencilFp, KernelChoice::Auto, 1);
        assert_eq!(auto.name(), "stencil-fp");
        let gemm = forward_executor_for(Technique::GemmInParallel, KernelChoice::Generic, 1);
        assert_ne!(gemm.name(), "stencil-fp");
    }

    /// Fault injection for the deploy-time gate: when every measured
    /// candidate is rejected mid-race, the layer falls back to the
    /// GEMM-in-Parallel baseline, every refusal lands in the decision's
    /// `rejected` list, and nothing panics or drops the layer.
    #[test]
    fn gate_rejecting_everything_falls_back_to_gip() {
        spg_telemetry::set_enabled(true);
        let spec = small_spec();
        let desc = ConvDescriptor::new(spec, 1);
        let algos: Vec<AlgoChoice> = CpuBackend::new().get_algos(&desc).collect();
        let reject_all = |t: Technique| {
            Err(crate::SpgError::PlanRejected {
                technique: t.id(),
                check: spg_check::CheckError::BudgetExceeded {
                    budget: 0,
                    used: 1,
                    context: "injected deploy-time fault",
                },
            })
        };
        let chosen = {
            let _scope = spg_telemetry::scope("gate-fault-layer", spg_telemetry::Phase::Tune);
            pick_with_gate(&spec, Phase::Forward, &algos, 0.0, 1, 1, &reject_all).0
        };
        assert_eq!(chosen, Technique::GemmInParallel, "baseline fallback");
        let snap = spg_telemetry::snapshot();
        let decision = snap
            .decisions
            .iter()
            .find(|d| d.label == "gate-fault-layer" && d.phase == spg_telemetry::Phase::Forward)
            .expect("decision still logged under fault injection");
        assert!(decision.candidates.is_empty(), "every timing was demoted");
        let rejected: Vec<&str> = decision.rejected.iter().map(|r| r.technique.as_str()).collect();
        for t in Technique::forward_candidates() {
            assert!(rejected.contains(&t.id()), "{} recorded as rejected", t.id());
        }
        assert!(
            decision.rejected.iter().any(|r| r.reason.contains("injected deploy-time fault")),
            "gate refusals carry the verifier's reason"
        );
    }

    /// A gate that refuses only the would-be winner re-picks the next
    /// fastest surviving candidate instead of falling all the way back.
    #[test]
    fn gate_rejecting_the_winner_repicks_a_survivor() {
        let spec = small_spec();
        let desc = ConvDescriptor::new(spec, 1);
        let algos: Vec<AlgoChoice> = CpuBackend::new().get_algos(&desc).collect();
        use std::sync::Mutex;
        let refused: Mutex<Option<Technique>> = Mutex::new(None);
        let reject_first = |t: Technique| {
            let mut slot = refused.lock().unwrap();
            match *slot {
                // First candidate the gate sees (the race winner): refuse.
                None => {
                    *slot = Some(t);
                    Err(crate::SpgError::PlanRejected {
                        technique: t.id(),
                        check: spg_check::CheckError::BudgetExceeded {
                            budget: 0,
                            used: 1,
                            context: "injected deploy-time fault",
                        },
                    })
                }
                Some(_) => Ok(()),
            }
        };
        let (chosen, _) = pick_with_gate(&spec, Phase::Forward, &algos, 0.0, 1, 1, &reject_first);
        let first = refused.lock().unwrap().expect("gate saw the race winner");
        assert_ne!(chosen, first, "refused winner must not deploy");
        assert!(Technique::forward_candidates().contains(&chosen));
    }

    /// Forward decisions record the minor-8 `partition` field naming the
    /// winner's worker decomposition; backward decisions leave it absent.
    #[test]
    fn decisions_record_partition_dimension() {
        spg_telemetry::set_enabled(true);
        let spec = small_spec();
        {
            let _scope = spg_telemetry::scope("partition-layer", spg_telemetry::Phase::Tune);
            tune_layer(&spec, 0.5, 1, 1);
        }
        let snap = spg_telemetry::snapshot();
        let mine: Vec<_> = snap.decisions.iter().filter(|d| d.label == "partition-layer").collect();
        assert!(!mine.is_empty());
        for d in &mine {
            match d.phase {
                spg_telemetry::Phase::Forward => {
                    let p = d.partition.as_deref().expect("forward decision names its partition");
                    assert!(
                        ["sample", "y-band", "x-band", "out-channel"].contains(&p),
                        "partition = {p}"
                    );
                }
                _ => assert!(d.partition.is_none(), "backward decisions carry no partition"),
            }
        }
    }

    #[test]
    fn measured_mode_runs_end_to_end() {
        let fw = Framework::new(1, TuningMode::Measured { reps: 1 }, 1);
        let plan = fw.plan_layer(&small_spec(), 0.85);
        assert!(Technique::backward_candidates().contains(&plan.backward));
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        Framework::new(0, TuningMode::Heuristic, 1);
    }
}
