//! cuDNN-style backend abstraction: descriptors, algorithm enumeration,
//! workspace queries, and compilation (ROADMAP item 3).
//!
//! The paper's central move is treating convolution execution strategy as
//! a *searchable space*. This module makes that space an explicit, typed
//! contract mirroring the cuDNN convolution API shape:
//!
//! | cuDNN | here |
//! |---|---|
//! | `cudnnConvolutionDescriptor_t` | [`ConvDescriptor`] |
//! | `cudnnConvolutionFwdAlgo_t` | [`AlgoChoice`] |
//! | `cudnnGetConvolutionForwardAlgorithm_v7` | [`Backend::get_algos`] |
//! | `cudnnGetConvolutionForwardWorkspaceSize` | [`Backend::workspace_size`] |
//! | plan/graph instantiation | [`Backend::compile`] |
//!
//! Two implementations ship behind the trait: [`CpuBackend`] — the real
//! SIMD backend, whose [`compile`](Backend::compile) produces the same
//! [`CompiledConv`] the serving path runs — and the analytical
//! `spg-simcpu` backend (`SimBackend`), whose answers come from the
//! Sec. 3 AIT model, so capacity planning exercises the *same* API as
//! production.
//!
//! # Example: enumerate, query, compile
//!
//! ```
//! use spg_convnet::ConvSpec;
//! use spg_core::backend::{Backend, ConvDescriptor, CpuBackend};
//!
//! let backend = CpuBackend::new();
//! let desc = ConvDescriptor::new(ConvSpec::square(12, 16, 4, 3, 1), 4);
//! let weights = vec![0.01; desc.spec.weight_shape().len()];
//! for algo in backend.get_algos(&desc) {
//!     let bytes = backend.workspace_size(&desc, algo);
//!     let kernel = backend.compile(&desc, algo, &weights)?;
//!     assert_eq!(kernel.plan(), algo.plan());
//!     assert!(bytes > 0);
//! }
//! # Ok::<(), spg_core::SpgError>(())
//! ```

use std::fmt;
use std::sync::Arc;

use spg_codegen::{Isa, KernelChoice};
use spg_convnet::exec::SharedExecutor;
use spg_convnet::layer::ConvLayer;
use spg_convnet::ConvSpec;

use crate::autotune::Phase;
use crate::compiled::CompiledConv;
use crate::schedule::{LayerPlan, Technique};
use crate::sparse::DEFAULT_TILE_WIDTH;
use crate::specialized::select_kernel;
use crate::stencil::StencilExecutor;
use crate::verify::{verify_plan, verify_technique};
use crate::SpgError;

/// Descriptor of one convolution problem instance: the layer geometry plus
/// the core budget the algorithms may partition across. Plays the role of
/// `cudnnConvolutionDescriptor_t` — every [`Backend`] query takes one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDescriptor {
    /// The convolution geometry (channels, image, features, kernel,
    /// strides).
    pub spec: ConvSpec,
    /// Cores available to parallel techniques (clamped to at least 1).
    pub cores: usize,
}

impl ConvDescriptor {
    /// Builds a descriptor; a zero `cores` is clamped to 1.
    pub fn new(spec: ConvSpec, cores: usize) -> Self {
        ConvDescriptor { spec, cores: cores.max(1) }
    }
}

/// Which generated forward kernel an [`AlgoChoice`] binds: the generic
/// runtime-parameterized loops, or a monomorphized `spg-codegen` instance
/// for a specific ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKernel {
    /// Generic runtime-parameterized loops (always available).
    Generic,
    /// Verified specialized instance for the named ISA; only enumerated
    /// when the registry resolves one for the shape on this host.
    Specialized(Isa),
}

impl AlgoKernel {
    /// Stable machine-readable identifier (`"generic"`, `"avx2"`,
    /// `"avx512"`).
    pub fn id(self) -> &'static str {
        match self {
            AlgoKernel::Generic => "generic",
            AlgoKernel::Specialized(isa) => isa.name(),
        }
    }
}

/// One runnable execution strategy for a convolution layer: a forward
/// technique × a backward technique × a forward kernel binding. The
/// backend analogue of a `cudnnConvolutionFwdAlgo_t` value, except typed
/// and enumerable per descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgoChoice {
    /// Forward-propagation technique.
    pub forward: Technique,
    /// Backward-propagation technique.
    pub backward: Technique,
    /// Forward kernel binding (generic loops or a specialized instance).
    pub kernel: AlgoKernel,
}

impl AlgoChoice {
    /// The two-phase layer plan this algorithm executes.
    pub fn plan(self) -> LayerPlan {
        LayerPlan { forward: self.forward, backward: self.backward }
    }

    /// Stable machine-readable identifier,
    /// `"<forward>+<backward>/<kernel>"` — e.g.
    /// `"stencil-fp+sparse-bp/avx2"`. Recorded in decision telemetry.
    pub fn id(self) -> String {
        format!("{}+{}/{}", self.forward.id(), self.backward.id(), self.kernel.id())
    }
}

impl fmt::Display for AlgoChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// A convolution execution backend: enumerates runnable algorithms for a
/// descriptor, answers per-algorithm workspace queries, and compiles a
/// chosen algorithm into an executable kernel.
///
/// Implemented by [`CpuBackend`] (real SIMD execution) and
/// `spg_simcpu::SimBackend` (analytical predictions from the Sec. 3
/// model); the autotuner, `Engine`, and `spg-serve` all dispatch through
/// this trait.
pub trait Backend {
    /// What [`compile`](Backend::compile) produces: an executable
    /// [`CompiledConv`] for the CPU backend, an analytical prediction for
    /// the simulator.
    type Kernel;

    /// Stable backend identifier recorded in telemetry (`"cpu"`, `"sim"`).
    fn name(&self) -> &'static str;

    /// Enumerates every algorithm this backend can run for `desc`,
    /// filtered by `spg-check` plan verification and host CPU features.
    /// Order is deterministic: forward candidates × backward candidates in
    /// [`Technique`] candidate order, generic kernel before specialized.
    fn get_algos(&self, desc: &ConvDescriptor) -> impl Iterator<Item = AlgoChoice>;

    /// Upper bound, in bytes, on the [`ConvScratch`] footprint running
    /// `algo` on `desc` will reach — the cuDNN workspace-size query.
    /// Answered from closed-form sizing math; no buffers are allocated.
    ///
    /// [`ConvScratch`]: spg_convnet::workspace::ConvScratch
    fn workspace_size(&self, desc: &ConvDescriptor, algo: AlgoChoice) -> usize;

    /// Compiles `algo` for `desc` against `weights`, producing the bound
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SpgError::InvalidNetwork`] if `weights` does not match
    /// the descriptor geometry or the algorithm's kernel binding is not
    /// runnable for it, or [`SpgError::PlanRejected`] if the plan-time
    /// verifier rejects the lowered plan.
    fn compile(
        &self,
        desc: &ConvDescriptor,
        algo: AlgoChoice,
        weights: &[f32],
    ) -> Result<Self::Kernel, SpgError>;
}

/// Closed-form upper bound on the [`ConvScratch`] bytes running `algo` on
/// `desc` reaches — the arithmetic behind every backend's
/// [`workspace_size`](Backend::workspace_size).
///
/// The geometry-determined buffers reproduce
/// [`ConvScratch::reserve`](spg_convnet::workspace::ConvScratch::reserve)
/// exactly; on top of that the backward technique's lazily-grown storage
/// is bounded: the GEMM panel packs of the single-threaded backward-data
/// transposed multiply ([`spg_gemm::pack_high_water`]) for
/// GEMM-in-Parallel-style backwards, and the dense-gradient CT-CSR
/// capacity for Sparse-Kernel (BP).
///
/// [`ConvScratch`]: spg_convnet::workspace::ConvScratch
pub fn conv_workspace_bytes(desc: &ConvDescriptor, algo: AlgoChoice) -> usize {
    let spec = &desc.spec;
    let f32s = std::mem::size_of::<f32>();
    let patches = spec.out_h() * spec.out_w();
    let patch_len = spec.weight_shape().per_feature();
    let features = spec.features();
    let ishape = spec.input_shape();
    // The strided stencil path stages a phased input copy whose padded
    // length can exceed the input itself (mirrors ConvScratch::reserve).
    let phased = ishape.c * ishape.h * spec.sx() * ishape.w.div_ceil(spec.sx());
    let reserved = patches * patch_len.max(features)   // mat_a
        + patches * patch_len                          // mat_b
        + ishape.len().max(phased)                     // hwc_in
        + spec.output_shape().len()                    // hwc_out
        + spec.weight_shape().len(); // wperm
    let extra = match algo.backward {
        // Single-threaded backward-data runs the transposed multiply
        // E_U = E_O^T W through the scratch pack buffers: k = features,
        // m = patches, n = patch_len.
        Technique::GemmInParallel
        | Technique::StencilFp
        | Technique::StencilYBand
        | Technique::StencilXBand
        | Technique::StencilOutChannel => {
            let (a, b) = spg_gemm::pack_high_water(patches, features, patch_len);
            a + b
        }
        // CT-CSR staging: values + column indices bounded by a dense
        // gradient, plus one row-pointer array per column tile.
        Technique::SparseBp => {
            patches * features * 2 + features.div_ceil(DEFAULT_TILE_WIDTH) * (patches + 1)
        }
        // At one core the Parallel-GEMM backward degenerates to the same
        // single-threaded packed multiply as GEMM-in-Parallel; with more
        // cores it stages E_O^T in mat_a (already counted) and packs
        // per-worker locally, outside the scratch.
        Technique::ParallelGemm if desc.cores == 1 => {
            let (a, b) = spg_gemm::pack_high_water(patches, features, patch_len);
            a + b
        }
        Technique::ParallelGemm => 0,
    };
    (reserved + extra) * f32s
}

/// The real CPU SIMD backend: algorithms are the verified
/// technique-pair × kernel space and [`compile`](Backend::compile)
/// produces the same [`CompiledConv`] artifact `spg-serve` runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl CpuBackend {
    /// Creates the CPU backend (stateless).
    pub fn new() -> Self {
        CpuBackend
    }

    /// The algorithm the default ([`KernelChoice::Auto`]) compile path
    /// binds for `plan`: the specialized instance when the registry
    /// resolves and verifies one for a stencil forward, generic loops
    /// otherwise. `compile(desc, algo_for(desc, plan), ..)` is
    /// bit-identical to [`CompiledConv::compile`].
    pub fn algo_for(&self, desc: &ConvDescriptor, plan: LayerPlan) -> AlgoChoice {
        let kernel = match plan.forward {
            Technique::StencilFp => match select_kernel(&desc.spec) {
                Some(inst) => AlgoKernel::Specialized(inst.isa()),
                None => AlgoKernel::Generic,
            },
            _ => AlgoKernel::Generic,
        };
        AlgoChoice { forward: plan.forward, backward: plan.backward, kernel }
    }
}

impl Backend for CpuBackend {
    type Kernel = CompiledConv;

    fn name(&self) -> &'static str {
        "cpu"
    }

    fn get_algos(&self, desc: &ConvDescriptor) -> impl Iterator<Item = AlgoChoice> {
        let spec = desc.spec;
        let cores = desc.cores;
        let fwd: Vec<Technique> = Technique::forward_candidates()
            .iter()
            .copied()
            .filter(|t| verify_technique(&spec, *t, Phase::Forward, cores).is_ok())
            .collect();
        let bwd: Vec<Technique> = Technique::backward_candidates()
            .iter()
            .copied()
            .filter(|t| verify_technique(&spec, *t, Phase::Backward, cores).is_ok())
            .collect();
        let specialized = select_kernel(&spec).map(|inst| inst.isa());
        let mut algos = Vec::with_capacity(fwd.len() * bwd.len() * 2);
        for &forward in &fwd {
            for &backward in &bwd {
                algos.push(AlgoChoice { forward, backward, kernel: AlgoKernel::Generic });
                if forward == Technique::StencilFp {
                    if let Some(isa) = specialized {
                        algos.push(AlgoChoice {
                            forward,
                            backward,
                            kernel: AlgoKernel::Specialized(isa),
                        });
                    }
                }
            }
        }
        algos.into_iter()
    }

    fn workspace_size(&self, desc: &ConvDescriptor, algo: AlgoChoice) -> usize {
        conv_workspace_bytes(desc, algo)
    }

    fn compile(
        &self,
        desc: &ConvDescriptor,
        algo: AlgoChoice,
        weights: &[f32],
    ) -> Result<CompiledConv, SpgError> {
        let choice = match algo.kernel {
            AlgoKernel::Generic => KernelChoice::Generic,
            AlgoKernel::Specialized(isa) => {
                if algo.forward != Technique::StencilFp {
                    return Err(SpgError::InvalidNetwork {
                        message: format!(
                            "specialized {} kernel requires a stencil-fp forward, got {}",
                            isa.name(),
                            algo.forward.id()
                        ),
                    });
                }
                match select_kernel(&desc.spec) {
                    // Auto re-resolves the same verified instance
                    // deterministically inside compile_with_kernel.
                    Some(inst) if inst.isa() == isa => KernelChoice::Auto,
                    _ => {
                        return Err(SpgError::InvalidNetwork {
                            message: format!(
                                "no verified {} specialized kernel for this shape on this host",
                                isa.name()
                            ),
                        })
                    }
                }
            }
        };
        CompiledConv::compile_with_kernel(desc.spec, algo.plan(), weights, desc.cores, choice)
    }
}

/// An [`AlgoChoice`] installs on an [`Engine`](spg_convnet::Engine) layer
/// via [`algo_override`](spg_convnet::Engine::algo_override): the plan is
/// verified for the layer's geometry, then the matching executors are
/// bound (the pinned-generic stencil executor when the kernel binding is
/// [`AlgoKernel::Generic`], mirroring the autotuner's deployment).
impl spg_convnet::LayerAlgo for AlgoChoice {
    fn id(&self) -> String {
        AlgoChoice::id(*self)
    }

    fn install(&self, conv: &mut ConvLayer, cores: usize) -> Result<(), spg_error::Error> {
        let spec = *conv.spec();
        let cores = cores.max(1);
        verify_plan(&spec, self.plan(), cores)?;
        let forward: SharedExecutor = match (self.forward, self.kernel) {
            (Technique::StencilFp, AlgoKernel::Generic) => Arc::new(StencilExecutor::generic()),
            (Technique::StencilFp, AlgoKernel::Specialized(isa)) => match select_kernel(&spec) {
                Some(inst) if inst.isa() == isa => Technique::StencilFp.executor(cores),
                _ => {
                    return Err(SpgError::InvalidNetwork {
                        message: format!(
                            "no verified {} specialized kernel for this shape on this host",
                            isa.name()
                        ),
                    }
                    .into())
                }
            },
            (forward, AlgoKernel::Specialized(isa)) => {
                return Err(SpgError::InvalidNetwork {
                    message: format!(
                        "specialized {} kernel requires a stencil-fp forward, got {}",
                        isa.name(),
                        forward.id()
                    ),
                }
                .into())
            }
            (forward, AlgoKernel::Generic) => forward.executor(cores),
        };
        conv.set_forward_executor(forward);
        conv.set_backward_executor(self.backward.executor(cores));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::workspace::ConvScratch;

    fn specs() -> Vec<ConvSpec> {
        vec![
            ConvSpec::square(12, 16, 4, 3, 1),
            ConvSpec::square(24, 4, 3, 3, 1),
            ConvSpec::new(2, 10, 10, 4, 3, 3, 1, 1).unwrap(),
            ConvSpec::new(3, 8, 8, 4, 3, 3, 2, 2).unwrap(),
            ConvSpec::square(28, 20, 1, 5, 1),
        ]
    }

    #[test]
    fn enumeration_is_verified_product_in_candidate_order() {
        for spec in specs() {
            let desc = ConvDescriptor::new(spec, 4);
            let algos: Vec<AlgoChoice> = CpuBackend::new().get_algos(&desc).collect();
            assert!(!algos.is_empty(), "no algos for {spec:?}");
            // Every enumerated generic pair verifies; every verified pair
            // is enumerated.
            for f in Technique::forward_candidates() {
                for b in Technique::backward_candidates() {
                    let runnable = verify_technique(&spec, *f, Phase::Forward, desc.cores).is_ok()
                        && verify_technique(&spec, *b, Phase::Backward, desc.cores).is_ok();
                    let listed = algos.iter().any(|a| {
                        a.forward == *f && a.backward == *b && a.kernel == AlgoKernel::Generic
                    });
                    assert_eq!(runnable, listed, "{spec:?} {f:?}+{b:?}");
                }
            }
            // Specialized entries appear exactly when the registry
            // resolves, and only on stencil forwards.
            let resolved = select_kernel(&spec).is_some();
            let any_specialized =
                algos.iter().any(|a| matches!(a.kernel, AlgoKernel::Specialized(_)));
            let stencil_listed = algos.iter().any(|a| a.forward == Technique::StencilFp);
            assert_eq!(any_specialized, resolved && stencil_listed, "{spec:?}");
            assert!(algos
                .iter()
                .filter(|a| matches!(a.kernel, AlgoKernel::Specialized(_)))
                .all(|a| a.forward == Technique::StencilFp));
        }
    }

    #[test]
    fn workspace_query_matches_reserve_and_bounds_extras() {
        for spec in specs() {
            let desc = ConvDescriptor::new(spec, 4);
            let mut scratch = ConvScratch::new();
            scratch.reserve(&spec);
            // ParallelGemm backward adds nothing beyond the reserved
            // geometry buffers, so the query equals the real footprint.
            let base = AlgoChoice {
                forward: Technique::ParallelGemm,
                backward: Technique::ParallelGemm,
                kernel: AlgoKernel::Generic,
            };
            assert_eq!(conv_workspace_bytes(&desc, base), scratch.bytes(), "{spec:?}");
            // Other backwards only grow the bound.
            for backward in [Technique::GemmInParallel, Technique::SparseBp] {
                let algo = AlgoChoice { backward, ..base };
                assert!(conv_workspace_bytes(&desc, algo) > scratch.bytes(), "{spec:?}");
            }
            // At one core even Parallel-GEMM backward takes the packed
            // single-threaded path, so its bound grows past the reserve.
            let single = ConvDescriptor::new(spec, 1);
            assert!(conv_workspace_bytes(&single, base) > scratch.bytes(), "{spec:?}");
        }
    }

    #[test]
    fn algo_for_reproduces_auto_kernel_binding() {
        let backend = CpuBackend::new();
        for spec in specs() {
            let desc = ConvDescriptor::new(spec, 1);
            let plan =
                LayerPlan { forward: Technique::StencilFp, backward: Technique::GemmInParallel };
            let algo = backend.algo_for(&desc, plan);
            let expected = match select_kernel(&spec) {
                Some(inst) => AlgoKernel::Specialized(inst.isa()),
                None => AlgoKernel::Generic,
            };
            assert_eq!(algo.kernel, expected);
            let auto = CompiledConv::compile(
                spec,
                plan,
                &vec![0.02; spec.weight_shape().len()],
                desc.cores,
            )
            .unwrap();
            let routed =
                backend.compile(&desc, algo, &vec![0.02; spec.weight_shape().len()]).unwrap();
            assert_eq!(auto.kernel_kind(), routed.kernel_kind(), "{spec:?}");
        }
    }

    #[test]
    fn compile_rejects_unavailable_specialized_binding() {
        let backend = CpuBackend::new();
        // Unlisted geometry: no specialized instance can resolve.
        let spec = ConvSpec::new(1, 40, 40, 3, 4, 4, 3, 3).unwrap();
        let desc = ConvDescriptor::new(spec, 1);
        let weights = vec![0.0; spec.weight_shape().len()];
        let algo = AlgoChoice {
            forward: Technique::StencilFp,
            backward: Technique::GemmInParallel,
            kernel: AlgoKernel::Specialized(Isa::Avx2),
        };
        assert!(backend.compile(&desc, algo, &weights).is_err());
        let wrong_fwd = AlgoChoice { forward: Technique::ParallelGemm, ..algo };
        assert!(backend.compile(&desc, wrong_fwd, &weights).is_err());
    }

    #[test]
    fn ids_are_stable() {
        let algo = AlgoChoice {
            forward: Technique::StencilFp,
            backward: Technique::SparseBp,
            kernel: AlgoKernel::Generic,
        };
        assert_eq!(algo.id(), "stencil-fp+sparse-bp/generic");
        assert_eq!(algo.to_string(), algo.id());
        assert_eq!(AlgoKernel::Specialized(Isa::Avx512).id(), "avx512");
        assert_eq!(ConvDescriptor::new(specs()[0], 0).cores, 1);
    }
}
