//! End-to-end gradient checks for the workspace-threaded executors.
//!
//! The `ConvExecutor` seam now routes every phase through a caller-owned
//! [`ConvScratch`]; these tests prove the optimized executors still compute
//! the same mathematics as [`ReferenceExecutor`] when driven through that
//! seam — first phase-by-phase against the oracle with one scratch reused
//! across every call, then as whole networks whose backpropagated
//! gradients must survive central finite differences.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use spg_convnet::exec::{ConvExecutor, ReferenceExecutor, UnfoldGemmExecutor};
use spg_convnet::gradcheck::check_gradients;
use spg_convnet::layer::{ConvLayer, FcLayer};
use spg_convnet::{ConvScratch, ConvSpec, Network};
use spg_core::sparse::SparseBpExecutor;
use spg_core::stencil::StencilExecutor;
use spg_tensor::Tensor;

fn pseudo(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let v = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(salt);
            ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max)
}

/// Every optimized executor must agree with the reference oracle on all
/// three phases, with a single `ConvScratch` reused across every call,
/// spec, and executor — the exact reuse pattern the worker pool runs.
#[test]
fn workspace_executors_match_reference_on_all_phases() {
    let specs = [
        ConvSpec::new(1, 8, 8, 4, 3, 3, 1, 1).unwrap(),
        ConvSpec::new(3, 10, 10, 5, 5, 5, 1, 1).unwrap(),
        ConvSpec::new(2, 9, 9, 3, 3, 3, 2, 2).unwrap(),
    ];
    let execs: Vec<Box<dyn ConvExecutor>> = vec![
        Box::new(UnfoldGemmExecutor::new(2)),
        Box::new(StencilExecutor::new()),
        Box::new(SparseBpExecutor::new()),
    ];
    let mut scratch = ConvScratch::new();
    let mut oracle_scratch = ConvScratch::new();
    for (si, spec) in specs.iter().enumerate() {
        let salt = 0xA11 + si as u64;
        let input = pseudo(spec.input_shape().len(), salt);
        let weights = pseudo(spec.weight_shape().len(), salt ^ 0x77);
        let grad_out = pseudo(spec.output_shape().len(), salt ^ 0x99);

        let mut oracle_out = vec![0f32; spec.output_shape().len()];
        let mut oracle_gin = vec![0f32; spec.input_shape().len()];
        let mut oracle_gw = vec![0f32; spec.weight_shape().len()];
        ReferenceExecutor.forward(spec, &input, &weights, &mut oracle_out, &mut oracle_scratch);
        ReferenceExecutor.backward_data(
            spec,
            &weights,
            &grad_out,
            &mut oracle_gin,
            &mut oracle_scratch,
        );
        ReferenceExecutor.backward_weights(
            spec,
            &input,
            &grad_out,
            &mut oracle_gw,
            &mut oracle_scratch,
        );

        for exec in &execs {
            let mut out = vec![0f32; spec.output_shape().len()];
            let mut gin = vec![0f32; spec.input_shape().len()];
            let mut gw = vec![0f32; spec.weight_shape().len()];
            exec.forward(spec, &input, &weights, &mut out, &mut scratch);
            exec.backward_data(spec, &weights, &grad_out, &mut gin, &mut scratch);
            exec.backward_weights(spec, &input, &grad_out, &mut gw, &mut scratch);
            assert!(
                max_diff(&out, &oracle_out) < 1e-3,
                "{} forward diverged on spec {si}",
                exec.name()
            );
            assert!(
                max_diff(&gin, &oracle_gin) < 1e-3,
                "{} backward_data diverged on spec {si}",
                exec.name()
            );
            assert!(
                max_diff(&gw, &oracle_gw) < 1e-3,
                "{} backward_weights diverged on spec {si}",
                exec.name()
            );
        }
    }
}

/// A smooth conv+fc network wired with the stencil forward executor and
/// the sparse backward executor must pass numerical gradient checking —
/// the strongest end-to-end evidence that the scratch-threaded phases
/// compose into correct training.
#[test]
fn gradcheck_passes_with_optimized_executors() {
    let mut rng = SmallRng::seed_from_u64(7);
    let spec = ConvSpec::new(1, 8, 8, 3, 3, 3, 1, 1).unwrap();
    let out = spec.output_shape();
    let mut conv = ConvLayer::new(spec, &mut rng);
    conv.set_forward_executor(std::sync::Arc::new(StencilExecutor::new()));
    conv.set_backward_executor(std::sync::Arc::new(SparseBpExecutor::new()));
    let mut net =
        Network::new(vec![Box::new(conv), Box::new(FcLayer::new(out.len(), 2, &mut rng))]).unwrap();
    let input = Tensor::random_uniform(64, 1.0, &mut rng);
    let mismatches = check_gradients(&mut net, &input, 1, 1e-2, 2e-2, 3);
    assert!(mismatches.is_empty(), "{mismatches:?}");
}

/// Same network, backward phases on the parallel Unfold+GEMM executor —
/// covers the threaded GEMM path through the scratch seam.
#[test]
fn gradcheck_passes_with_parallel_gemm_backward() {
    let mut rng = SmallRng::seed_from_u64(11);
    let spec = ConvSpec::new(2, 7, 7, 4, 3, 3, 1, 1).unwrap();
    let out = spec.output_shape();
    let mut conv = ConvLayer::new(spec, &mut rng);
    conv.set_forward_executor(std::sync::Arc::new(UnfoldGemmExecutor::new(2)));
    conv.set_backward_executor(std::sync::Arc::new(UnfoldGemmExecutor::new(2)));
    let mut net =
        Network::new(vec![Box::new(conv), Box::new(FcLayer::new(out.len(), 2, &mut rng))]).unwrap();
    let input = Tensor::random_uniform(spec.input_shape().len(), 1.0, &mut rng);
    let mismatches = check_gradients(&mut net, &input, 0, 1e-2, 2e-2, 3);
    assert!(mismatches.is_empty(), "{mismatches:?}");
}
