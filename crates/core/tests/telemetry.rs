//! Telemetry agreement tests: the goodput counters recorded by the
//! execution stack must match the closed-form characterization math in
//! `spg_core::ait` exactly — flop for flop — and the sparse kernels'
//! useful-flop fraction must equal the gradient density.
//!
//! Telemetry state is process-global, so every test records under a
//! unique scope label and asserts on before/after deltas; no test ever
//! disables collection (another test may still be recording).

use proptest::prelude::*;

use spg_convnet::exec::{ConvExecutor, UnfoldGemmExecutor};
use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;
use spg_core::ait::conv_gemm_dims;
use spg_core::autotune::tune_layer;
use spg_core::schedule::Technique;
use spg_core::sparse::kernel as sparse_kernel;
use spg_core::stencil::kernel as stencil_kernel;
use spg_telemetry::Phase;

/// Current `(useful, total, tile_nnz, tile_capacity)` of one bucket.
fn bucket(label: &str, phase: Phase) -> (u64, u64, u64, u64) {
    spg_telemetry::snapshot()
        .scope(label, phase)
        .map(|s| (s.useful_flops, s.total_flops, s.tile_nnz, s.tile_capacity))
        .unwrap_or((0, 0, 0, 0))
}

fn delta(before: (u64, u64, u64, u64), after: (u64, u64, u64, u64)) -> (u64, u64, u64, u64) {
    (after.0 - before.0, after.1 - before.1, after.2 - before.2, after.3 - before.3)
}

fn pseudo(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let v = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(salt);
            ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Runs `f` inside a `(label, phase)` scope and returns the bucket delta.
fn record_under(label: &str, phase: Phase, f: impl FnOnce()) -> (u64, u64, u64, u64) {
    spg_telemetry::set_enabled(true);
    let before = bucket(label, phase);
    {
        let _scope = spg_telemetry::scope(label, phase);
        f();
    }
    delta(before, bucket(label, phase))
}

/// The Unfold+GEMM executor's recorded flops must equal the analytic
/// `2*m*n*k` of the three convolution multiplies (`ait::conv_gemm_dims`)
/// exactly, for both the single-threaded (GEMM-in-Parallel building
/// block) and the row-partitioned Parallel-GEMM schedules.
#[test]
fn unfold_gemm_counters_match_ait_analytics() {
    let spec = ConvSpec::new(3, 10, 9, 5, 3, 2, 1, 1).unwrap();
    let dims = conv_gemm_dims(&spec);
    let flops = |(m, n, k): (usize, usize, usize)| 2 * (m * n * k) as u64;

    let input = pseudo(spec.input_shape().len(), 1);
    let weights = pseudo(spec.weight_shape().len(), 2);
    let grad_out = pseudo(spec.output_shape().len(), 3);
    let mut output = vec![0.0; spec.output_shape().len()];
    let mut grad_in = vec![0.0; spec.input_shape().len()];
    let mut grad_w = vec![0.0; spec.weight_shape().len()];

    for (threads, label) in [(1usize, "tel_unfold_gip"), (4, "tel_unfold_pg")] {
        let exec = UnfoldGemmExecutor::new(threads);
        let mut scratch = ConvScratch::new();
        let fwd = record_under(label, Phase::Forward, || {
            exec.forward(&spec, &input, &weights, &mut output, &mut scratch);
        });
        assert_eq!(fwd, (flops(dims.forward), flops(dims.forward), 0, 0), "{label} forward");

        let bwd_d = record_under(label, Phase::BackwardData, || {
            exec.backward_data(&spec, &weights, &grad_out, &mut grad_in, &mut scratch);
        });
        assert_eq!(
            bwd_d,
            (flops(dims.backward_data), flops(dims.backward_data), 0, 0),
            "{label} backward_data"
        );

        let bwd_w = record_under(label, Phase::BackwardWeights, || {
            exec.backward_weights(&spec, &input, &grad_out, &mut grad_w, &mut scratch);
        });
        assert_eq!(
            bwd_w,
            (flops(dims.backward_weights), flops(dims.backward_weights), 0, 0),
            "{label} backward_weights"
        );
    }

    // All three multiplies move the same flop count (ait invariant), so
    // each phase must also equal `spec.arithmetic_ops()`.
    assert_eq!(flops(dims.forward), spec.arithmetic_ops());
}

/// The stencil kernel computes the full dense convolution, so its
/// recorded useful and total flops both equal `spec.arithmetic_ops()` on
/// every internal code path (wide AVX/scalar, narrow shifted-GEMM).
#[test]
fn stencil_counters_match_arithmetic_ops() {
    let wide = ConvSpec::new(2, 12, 12, 4, 3, 3, 1, 1).unwrap(); // out_w >= 8
    let narrow = ConvSpec::new(2, 8, 6, 4, 3, 3, 1, 1).unwrap(); // out_w < 8
    for (spec, label) in [(wide, "tel_stencil_wide"), (narrow, "tel_stencil_narrow")] {
        let input = pseudo(spec.input_shape().len(), 7);
        let weights = pseudo(spec.weight_shape().len(), 8);
        let mut output = vec![0.0; spec.output_shape().len()];
        let got = record_under(label, Phase::Forward, || {
            stencil_kernel::forward_scratch(
                &spec,
                &input,
                &weights,
                &mut output,
                &mut ConvScratch::new(),
            );
        });
        let ops = spec.arithmetic_ops();
        assert_eq!(got, (ops, ops, 0, 0), "{label}");
    }
}

/// Every `tune_layer` call must log one decision per phase, carrying the
/// active scope label, a timing for every candidate, and a winner drawn
/// from the candidate set.
#[test]
fn tune_layer_logs_decisions_with_candidate_timings() {
    spg_telemetry::set_enabled(true);
    let spec = ConvSpec::new(2, 8, 8, 4, 3, 3, 1, 1).unwrap();
    {
        let _scope = spg_telemetry::scope("tel_tune", Phase::Tune);
        tune_layer(&spec, 0.9, 1, 1);
    }
    let snap = spg_telemetry::snapshot();
    let ours: Vec<_> = snap.decisions.iter().filter(|d| d.label == "tel_tune").collect();
    assert_eq!(ours.len(), 2, "one decision per phase");
    for (decision, candidates) in
        [(ours[0], Technique::forward_candidates()), (ours[1], Technique::backward_candidates())]
    {
        // Every candidate is accounted for: timed in the race or recorded
        // as rejected (hybrid decompositions on unsplittable specs).
        assert_eq!(decision.candidates.len() + decision.rejected.len(), candidates.len());
        let ids: Vec<&str> = candidates.iter().map(|t| t.id()).collect();
        assert!(ids.contains(&decision.chosen.as_str()), "winner is a candidate");
        for timing in &decision.candidates {
            assert!(ids.contains(&timing.technique.as_str()));
        }
        for rejected in &decision.rejected {
            assert!(ids.contains(&rejected.technique.as_str()));
        }
        assert_eq!((decision.sparsity, decision.cores), (0.9, 1));
    }
    assert_eq!(ours[0].phase, Phase::Forward);
    assert_eq!(ours[1].phase, Phase::Backward);
}

fn conv_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..4, 4usize..14, 4usize..14, 1usize..6, 1usize..5, 1usize..5, 1usize..4, 1usize..4)
        .prop_filter_map("kernel fits input", |(c, h, w, f, ky, kx, sy, sx)| {
            ConvSpec::new(c, h, w, f, ky, kx, sy, sx).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sparse kernels' useful-flop fraction must track gradient
    /// sparsity *exactly*: useful = 2*nnz*kdim against the dense
    /// 2*Nf*H'*W'*kdim total, and the reported tile occupancy is
    /// nnz over the gradient matrix capacity.
    #[test]
    fn sparse_useful_flops_track_gradient_sparsity(
        spec in conv_spec(),
        salt in 0u64..500,
        keep in 1usize..8,
        tile_width in 1usize..8,
    ) {
        let mut grad_out = pseudo(spec.output_shape().len(), salt);
        for (i, x) in grad_out.iter_mut().enumerate() {
            if i % keep != 0 {
                *x = 0.0;
            }
        }
        let nnz = grad_out.iter().filter(|v| **v != 0.0).count() as u64;
        let kdim = (spec.in_c() * spec.ky() * spec.kx()) as u64;
        let capacity = (spec.out_h() * spec.out_w() * spec.features()) as u64;
        let expect = (2 * nnz * kdim, spec.arithmetic_ops(), nnz, capacity);

        let weights = pseudo(spec.weight_shape().len(), salt ^ 0xa5a5);
        let input = pseudo(spec.input_shape().len(), salt ^ 0x5a5a);
        let mut grad_in = vec![0.0; spec.input_shape().len()];
        let mut grad_w = vec![0.0; spec.weight_shape().len()];

        let data = record_under("tel_sparse", Phase::BackwardData, || {
            sparse_kernel::backward_data_scratch(
                &spec,
                &weights,
                &grad_out,
                &mut grad_in,
                tile_width,
                &mut ConvScratch::new(),
            );
        });
        prop_assert_eq!(data, expect);

        let wts = record_under("tel_sparse", Phase::BackwardWeights, || {
            sparse_kernel::backward_weights_scratch(
                &spec,
                &input,
                &grad_out,
                &mut grad_w,
                tile_width,
                &mut ConvScratch::new(),
            );
        });
        prop_assert_eq!(wts, expect);
    }
}
