//! Property-based tests for the spg-CNN framework: the optimized kernels
//! must agree with the reference loops on arbitrary specs and sparsity
//! levels, and the characterization math must satisfy its invariants.

use proptest::prelude::*;

use spg_convnet::workspace::ConvScratch;
use spg_convnet::{reference, ConvSpec};
use spg_core::ait::{mm_ait, mm_ait_per_core, mm_ait_per_core_best, mm_ait_per_core_cols};
use spg_core::compiled::CompiledConv;
use spg_core::region::{classify_by_features, Region};
use spg_core::schedule::{recommended_plan, LayerPlan, Technique};
use spg_core::sparse::kernel as sparse_kernel;
use spg_core::stencil::{
    kernel as stencil_kernel, plan_cache_schedule, plan_register_tile, ACCUMULATOR_BUDGET,
    L1_BUDGET_ELEMS,
};

fn conv_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..4, 4usize..14, 4usize..14, 1usize..6, 1usize..5, 1usize..5, 1usize..4, 1usize..4)
        .prop_filter_map("kernel fits input", |(c, h, w, f, ky, kx, sy, sx)| {
            ConvSpec::new(c, h, w, f, ky, kx, sy, sx).ok()
        })
}

fn pseudo(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let v = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(salt);
            ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn sparsify(v: &mut [f32], keep_every: usize) {
    for (i, x) in v.iter_mut().enumerate() {
        if i % keep_every != 0 {
            *x = 0.0;
        }
    }
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stencil_forward_matches_reference(spec in conv_spec(), salt in 0u64..500) {
        let input = pseudo(spec.input_shape().len(), salt);
        let weights = pseudo(spec.weight_shape().len(), salt ^ 0x1234);
        let olen = spec.output_shape().len();
        let mut ours = vec![0.0; olen];
        let mut oracle = vec![0.0; olen];
        stencil_kernel::forward_scratch(&spec, &input, &weights, &mut ours, &mut ConvScratch::new());
        reference::forward(&spec, &input, &weights, &mut oracle);
        prop_assert!(max_diff(&ours, &oracle) < 1e-3);
    }

    #[test]
    fn sparse_backward_data_matches_reference(
        spec in conv_spec(),
        salt in 0u64..500,
        keep in 1usize..8,
        tile_width in 1usize..8,
    ) {
        let weights = pseudo(spec.weight_shape().len(), salt);
        let mut grad_out = pseudo(spec.output_shape().len(), salt ^ 0x9e77);
        sparsify(&mut grad_out, keep);
        let ilen = spec.input_shape().len();
        let mut ours = vec![0.0; ilen];
        let mut oracle = vec![0.0; ilen];
        sparse_kernel::backward_data_scratch(&spec, &weights, &grad_out, &mut ours, tile_width, &mut ConvScratch::new());
        reference::backward_data(&spec, &weights, &grad_out, &mut oracle);
        prop_assert!(max_diff(&ours, &oracle) < 1e-3);
    }

    #[test]
    fn sparse_backward_weights_matches_reference(
        spec in conv_spec(),
        salt in 0u64..500,
        keep in 1usize..8,
        tile_width in 1usize..8,
    ) {
        let input = pseudo(spec.input_shape().len(), salt);
        let mut grad_out = pseudo(spec.output_shape().len(), salt ^ 0x51a3);
        sparsify(&mut grad_out, keep);
        let wlen = spec.weight_shape().len();
        let mut ours = vec![0.0; wlen];
        let mut oracle = vec![0.0; wlen];
        sparse_kernel::backward_weights_scratch(&spec, &input, &grad_out, &mut ours, tile_width, &mut ConvScratch::new());
        reference::backward_weights(&spec, &input, &grad_out, &mut oracle);
        prop_assert!(max_diff(&ours, &oracle) < 1e-3);
    }

    /// The register-tile search must return an admissible plan that is at
    /// least as good as every admissible alternative.
    #[test]
    fn register_tile_search_is_optimal(spec in conv_spec()) {
        let plan = plan_register_tile(&spec);
        prop_assert!(plan.rx * plan.ry <= ACCUMULATOR_BUDGET);
        prop_assert!(plan.ry <= spec.out_h());
        for ry in 1..=ACCUMULATOR_BUDGET.min(spec.out_h()) {
            let loads = (ry + spec.ky() - 1) * spec.kx();
            let fmas = ry * spec.ky() * spec.kx();
            prop_assert!(
                plan.loads_per_fma() <= loads as f64 / fmas as f64 + 1e-12,
                "search missed ry={ry}"
            );
        }
    }

    /// AIT-per-core is monotonically non-increasing in the core count —
    /// the analytical heart of the scalability characterization.
    #[test]
    fn ait_per_core_monotone(m in 1usize..512, n in 1usize..512, k in 1usize..512) {
        let mut prev = f64::INFINITY;
        for cores in [1usize, 2, 4, 8, 16, 32] {
            let a = mm_ait_per_core(m, n, k, cores);
            prop_assert!(a <= prev + 1e-9);
            prop_assert!(a > 0.0);
            prev = a;
        }
        prop_assert!((mm_ait_per_core(m, n, k, 1) - mm_ait(m, n, k)).abs() < 1e-12);
    }

    /// The region classifier is total and consistent with its thresholds.
    #[test]
    fn region_classifier_total(features in 1usize..5000, sparsity in 0.0f64..1.0) {
        let r = classify_by_features(features, sparsity);
        prop_assert!(r.index() <= 5);
        prop_assert_eq!(r.is_sparse(), sparsity > 0.75);
        if features >= 1024 {
            prop_assert!(matches!(r, Region::R0 | Region::R1));
        }
    }

    /// Recommended plans always pick phase-appropriate techniques.
    #[test]
    fn plans_are_phase_appropriate(
        spec in conv_spec(),
        sparsity in 0.0f64..1.0,
        cores in 1usize..64,
    ) {
        let plan = recommended_plan(&spec, sparsity, cores);
        prop_assert!(Technique::forward_candidates().contains(&plan.forward));
        prop_assert!(Technique::backward_candidates().contains(&plan.backward));
        prop_assert_eq!(plan.backward == Technique::SparseBp, sparsity > 0.75);
    }

    /// Column partitioning mirrors row partitioning under operand swap,
    /// and `best` dominates both.
    #[test]
    fn partition_axis_duality(m in 1usize..300, n in 1usize..300, k in 1usize..300, p in 1usize..32) {
        let rows = mm_ait_per_core(m, n, k, p);
        let cols = mm_ait_per_core_cols(m, n, k, p);
        let swapped = mm_ait_per_core(n, m, k, p);
        prop_assert!((cols - swapped).abs() < 1e-9, "duality broken: {cols} vs {swapped}");
        let best = mm_ait_per_core_best(m, n, k, p);
        prop_assert!(best + 1e-12 >= rows && best + 1e-12 >= cols);
        prop_assert!(best <= mm_ait(m, n, k) + 1e-9);
    }

    /// A compiled kernel must compute the same function as the reference
    /// for every plan combination on arbitrary specs.
    #[test]
    fn compiled_conv_matches_reference(
        spec in conv_spec(),
        salt in 0u64..200,
        fwd_idx in 0usize..3,
        bwd_idx in 0usize..3,
    ) {
        let plan = LayerPlan {
            forward: Technique::forward_candidates()[fwd_idx],
            backward: Technique::backward_candidates()[bwd_idx],
        };
        let weights = pseudo(spec.weight_shape().len(), salt);
        let kernel = CompiledConv::compile(spec, plan, &weights, 2).expect("valid weights");
        let input = pseudo(spec.input_shape().len(), salt ^ 0x1111);
        let mut grad_out = pseudo(spec.output_shape().len(), salt ^ 0x2222);
        sparsify(&mut grad_out, 3);

        let mut out = vec![0.0; spec.output_shape().len()];
        let mut oracle = vec![0.0; spec.output_shape().len()];
        kernel.forward_scratch(&input, &mut out, &mut ConvScratch::new());
        reference::forward(&spec, &input, &weights, &mut oracle);
        prop_assert!(max_diff(&out, &oracle) < 1e-3);

        let mut gin = vec![0.0; spec.input_shape().len()];
        let mut gin_oracle = vec![0.0; spec.input_shape().len()];
        kernel.backward_data_scratch(&grad_out, &mut gin, &mut ConvScratch::new());
        reference::backward_data(&spec, &weights, &grad_out, &mut gin_oracle);
        prop_assert!(max_diff(&gin, &gin_oracle) < 1e-3);
    }

    /// The cache schedule always returns an admissible tile.
    #[test]
    fn cache_schedule_is_admissible(spec in conv_spec()) {
        let tile = plan_cache_schedule(&spec);
        prop_assert!(tile.y_tile >= 1 && tile.y_tile <= spec.out_h());
        prop_assert!(tile.x_tile >= 1 && tile.x_tile <= spec.out_w());
        // Single-row tiles are always allowed to exceed nothing.
        if tile.y_tile > 1 {
            prop_assert!(tile.working_set_elems(&spec) <= L1_BUDGET_ELEMS);
        }
    }
}
