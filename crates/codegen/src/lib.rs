//! Specialized-kernel codegen (JIT-lite) for the spg-CNN stencil forward
//! pass.
//!
//! The paper's basic-block generator chooses a register tile; this crate
//! finishes the job the way Georganas et al. describe for SIMD
//! convolutions: **specialize the kernel per (tile, stride, layout)
//! tuple** so the inner loops are branch-free with compile-time-constant
//! trip counts. Rust const generics play the role of the JIT — each
//! registry entry is a monomorphized instance of the tiled basic block
//! with `Fy`, `Fx`, `sy`, `sx` baked in — and the registry covers the
//! kernel geometries of the paper's Table 2 benchmarks in both AVX2+FMA
//! (8-lane) and AVX-512F+FMA (16-lane) variants.
//!
//! Contracts:
//!
//! * **Verified before run.** Every instance lowers to the same
//!   `spg-check` `StencilTiled` plan IR as the generic kernel
//!   ([`SpecializedKernel::plan`]); `spg-core` verifies that plan before
//!   dispatching to the instance, so the bounds proofs are about the
//!   exact tile list the monomorphized code executes.
//! * **Bit-identical.** Instances reproduce the generic kernel's
//!   per-output-element reduction order (channels, `ky`, `kx`,
//!   single-rounded FMA), so their outputs are bit-identical to the
//!   generic AVX path — asserted over the full golden Table 2 suite.
//! * **Guaranteed fallback.** [`lookup`] returns `None` for unlisted
//!   geometries, narrow outputs, missing CPU features, or when
//!   `SPG_FORCE_GENERIC` is set; callers then run the generic
//!   runtime-parameterized loops. Dispatch never fails loudly.

#![warn(missing_docs)]

use std::sync::OnceLock;

mod kernels;
mod registry;
pub mod xplan;

pub use registry::{all_instances, lookup, lookup_for_plan, Isa, KernelKey, SpecializedKernel};

/// Output rows held in the register tile — must equal the generic
/// kernel's `TILE_ROWS` (a coupling test in `spg-core` pins this): six
/// rows of up to two vectors fill the verifier's accumulator budget at
/// either lane width.
pub const TILE_ROWS: usize = 6;

/// Which stencil forward kernel a caller wants deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelChoice {
    /// Use the specialized instance when one exists, verifies clean, and
    /// the CPU can run it; otherwise the generic loops (the default).
    #[default]
    Auto,
    /// Always run the generic runtime-parameterized loops (what the
    /// autotuner deploys when measurement favours them, and what
    /// `SPG_FORCE_GENERIC=1` forces process-wide).
    Generic,
}

impl KernelChoice {
    /// The decision-log spelling (`specialized` is recorded only for a
    /// resolved instance, never for the `Auto` intent itself).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Generic => "generic",
        }
    }
}

/// Whether `SPG_FORCE_GENERIC` disables every specialized instance.
///
/// Read once per process (the CI fallback leg sets it for whole test
/// runs; per-call reads would put a syscall on the dispatch path). Any
/// non-empty value other than `0` forces the generic loops.
pub fn force_generic() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var_os("SPG_FORCE_GENERIC").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::workspace::ConvScratch;
    use spg_convnet::{reference, ConvSpec};
    use spg_gemm::SimdLevel;

    fn pseudo(n: usize, salt: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 29 + salt * 13) % 19) as f32 - 9.0) / 5.0).collect()
    }

    /// Every instance the host can run matches the reference oracle on a
    /// spec of its key (tolerance: reduction order differs from the
    /// reference's).
    #[test]
    fn runnable_instances_match_reference() {
        let level = spg_gemm::detect_simd_level();
        for inst in all_instances() {
            if !inst.isa().runnable_at(level) {
                continue;
            }
            let k = inst.key();
            // An input tall/wide enough for at least `lanes` output
            // columns and a couple of register tiles of rows.
            let n = k.sx * (inst.lanes() + 3) + k.fx;
            let spec = match ConvSpec::new(2, n, n, 3, k.fy, k.fx, k.sy, k.sx) {
                Ok(s) => s,
                Err(e) => panic!("spec for {k}: {e:?}"),
            };
            assert!(spec.out_w() >= inst.lanes());
            let input = pseudo(spec.input_shape().len(), 1);
            let weights = pseudo(spec.weight_shape().len(), 2);
            let mut out = vec![0f32; spec.output_shape().len()];
            let mut oracle = out.clone();
            inst.forward(&spec, &input, &weights, &mut out, &mut ConvScratch::new(), 12);
            reference::forward(&spec, &input, &weights, &mut oracle);
            let diff = out.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(diff < 5e-4, "{inst:?} on {spec}: diff {diff}");
        }
    }

    /// Unlisted geometries resolve to no instance — the silent generic
    /// fallback.
    #[test]
    fn unlisted_shape_falls_back() {
        // 4x4 kernel at stride 3 is in no registry key.
        let spec = ConvSpec::new(2, 40, 40, 3, 4, 4, 3, 3).map_err(|e| format!("{e:?}")).unwrap();
        assert!(lookup(&spec).is_none());
        // 3x3 s1 *is* a key, but a 4-wide output row is narrower than any
        // instance's vector.
        let narrow = ConvSpec::square(6, 3, 2, 3, 1);
        assert!(lookup(&narrow).is_none());
    }

    /// Dispatch prefers the widest runnable ISA and respects the output
    /// width floor per instance.
    #[test]
    fn dispatch_prefers_widest_runnable_isa() {
        if force_generic() {
            // The CI fallback leg (SPG_FORCE_GENERIC=1) disables every
            // instance; dispatch order is unobservable there.
            assert!(lookup(&ConvSpec::square(20, 4, 2, 3, 1)).is_none());
            return;
        }
        let level = spg_gemm::detect_simd_level();
        let wide = ConvSpec::square(20, 4, 2, 3, 1); // 18-wide output
        let mid = ConvSpec::square(12, 4, 2, 3, 1); // 10-wide output
        match level {
            SimdLevel::Scalar => {
                assert!(lookup(&wide).is_none());
            }
            SimdLevel::Avx2Fma => {
                assert_eq!(lookup(&wide).map(|k| k.isa()), Some(Isa::Avx2));
            }
            SimdLevel::Avx512Fma => {
                assert_eq!(lookup(&wide).map(|k| k.isa()), Some(Isa::Avx512));
                // 10 < 16 lanes: AVX-512 instance inapplicable, AVX2 runs.
                assert_eq!(lookup(&mid).map(|k| k.isa()), Some(Isa::Avx2));
            }
        }
    }

    /// The plan lowering matches what the instance executes: lane width,
    /// tile rows, phase flag, and a covering x-tile list.
    #[test]
    fn lowered_plan_reflects_instance() {
        let spec = ConvSpec::square(64, 4, 3, 5, 2);
        let Some(inst) = lookup(&spec) else { return };
        match inst.plan(&spec, 1) {
            spg_check::ForwardPlan::StencilTiled {
                lanes,
                tile_rows,
                cache_rows,
                x_tiles,
                phased,
            } => {
                assert_eq!(lanes, inst.lanes());
                assert_eq!(tile_rows, TILE_ROWS);
                assert_eq!(cache_rows, TILE_ROWS, "cache_rows clamps up to the tile");
                assert!(phased);
                assert!(!x_tiles.is_empty());
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
    }

    /// `lookup_for_plan` only resolves for tiled stencil plans.
    #[test]
    fn plan_keyed_lookup_requires_tiled_stencil() {
        let spec = ConvSpec::square(20, 4, 2, 3, 1);
        let gemm = spg_check::ForwardPlan::UnfoldGemm { threads: 1 };
        assert!(lookup_for_plan(&spec, &gemm).is_none());
        let narrow = spg_check::ForwardPlan::StencilNarrow;
        assert!(lookup_for_plan(&spec, &narrow).is_none());
        if let Some(inst) = lookup(&spec) {
            let tiled = inst.plan(&spec, 6);
            assert!(lookup_for_plan(&spec, &tiled).is_some());
        }
    }

    #[test]
    fn registry_covers_table2_geometries() {
        for key in [(3, 3, 1, 1), (5, 5, 1, 1), (5, 5, 2, 2), (7, 7, 2, 2), (11, 11, 4, 4)] {
            let (fy, fx, sy, sx) = key;
            let hits =
                all_instances().iter().filter(|k| k.key() == KernelKey { fy, fx, sy, sx }).count();
            assert_eq!(hits, 2, "expected avx2+avx512 instances for {key:?}");
        }
    }

    #[test]
    fn kernel_choice_strings() {
        assert_eq!(KernelChoice::Auto.as_str(), "auto");
        assert_eq!(KernelChoice::Generic.as_str(), "generic");
        assert_eq!(KernelChoice::default(), KernelChoice::Auto);
    }
}
