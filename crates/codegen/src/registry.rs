//! The specialized-kernel registry: monomorphized instances keyed by
//! kernel geometry, dispatched by runtime CPU features, gated by the
//! caller through `spg-check`.

use spg_check::ForwardPlan;
use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;
use spg_gemm::SimdLevel;

use crate::kernels::ForwardFn;
use crate::xplan::x_tiles;
use crate::TILE_ROWS;

/// The geometry tuple a specialized instance is monomorphized for —
/// the registry key, derived from a `ConvSpec` or from the `spg-check`
/// plan IR via [`lookup_for_plan`](crate::lookup_for_plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Kernel rows (`Fy`).
    pub fy: usize,
    /// Kernel columns (`Fx`).
    pub fx: usize,
    /// Vertical stride (`sy`).
    pub sy: usize,
    /// Horizontal stride (`sx`).
    pub sx: usize,
}

impl KernelKey {
    /// The key for a convolution's kernel geometry.
    pub fn of(spec: &ConvSpec) -> KernelKey {
        KernelKey { fy: spec.ky(), fx: spec.kx(), sy: spec.sy(), sx: spec.sx() }
    }

    /// Whether instances for this key run the Eq. 21 phase transform —
    /// exactly the `phased` flag of the lowered `StencilTiled` plan.
    pub fn phased(&self) -> bool {
        self.sx > 1
    }
}

impl std::fmt::Display for KernelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}s{}", self.fy, self.fx, self.sx)
    }
}

/// Instruction set a specialized instance was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// AVX2 + FMA, 8 f32 lanes.
    Avx2,
    /// AVX-512F + FMA, 16 f32 lanes.
    Avx512,
}

impl Isa {
    /// Whether a detected [`SimdLevel`] can run this instance.
    pub fn runnable_at(self, level: SimdLevel) -> bool {
        match self {
            Isa::Avx2 => level >= SimdLevel::Avx2Fma,
            Isa::Avx512 => level >= SimdLevel::Avx512Fma,
        }
    }

    /// Short name for telemetry and benchmark documents.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

/// One monomorphized kernel instance: a `(geometry, ISA)` pair bound to
/// the const-generic function the compiler emitted for it.
pub struct SpecializedKernel {
    pub(crate) key: KernelKey,
    pub(crate) isa: Isa,
    pub(crate) lanes: usize,
    pub(crate) forward: ForwardFn,
}

impl SpecializedKernel {
    /// The geometry key this instance was monomorphized for.
    pub fn key(&self) -> KernelKey {
        self.key
    }

    /// The instruction set this instance requires.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// f32 lanes per vector (8 for AVX2, 16 for AVX-512).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lowers this instance to the verifier's IR for `spec`: the exact
    /// lane width, tile rows, cache block, and x-tile list the instance
    /// executes. Callers MUST pass this through `spg_check::verify_forward`
    /// (spg-core's `verify_specialized` does) before running the instance;
    /// `cache_rows` is the cache-schedule row block and is clamped to
    /// [`TILE_ROWS`] exactly as the kernel clamps it.
    ///
    /// # Panics
    ///
    /// Panics if `spec.out_w() < self.lanes()` (such specs never resolve
    /// to this instance through [`lookup`](crate::lookup)).
    pub fn plan(&self, spec: &ConvSpec, cache_rows: usize) -> ForwardPlan {
        ForwardPlan::StencilTiled {
            lanes: self.lanes,
            tile_rows: TILE_ROWS,
            cache_rows: cache_rows.max(TILE_ROWS),
            x_tiles: x_tiles(spec.out_w(), self.lanes),
            phased: self.key.phased(),
        }
    }

    /// Runs the monomorphized forward kernel for one sample, staging the
    /// phase transform (strided keys) in `scratch`. `cache_rows` is the
    /// cache-schedule row block from the generator (clamped to
    /// [`TILE_ROWS`]).
    ///
    /// The flop traffic is recorded against telemetry exactly like the
    /// generic kernel (full dense convolution: goodput 1).
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the spec, if the spec's
    /// geometry does not match this instance's key, if `spec.out_w()` is
    /// narrower than one vector, or if the running CPU lacks this
    /// instance's instruction set.
    pub fn forward(
        &self,
        spec: &ConvSpec,
        input: &[f32],
        weights: &[f32],
        output: &mut [f32],
        scratch: &mut ConvScratch,
        cache_rows: usize,
    ) {
        assert_eq!(KernelKey::of(spec), self.key, "spec geometry vs instance key");
        assert!(spec.out_w() >= self.lanes, "output row narrower than one vector");
        assert!(
            self.isa.runnable_at(spg_gemm::detect_simd_level()),
            "CPU lacks the {} features this instance requires",
            self.isa.name()
        );
        let ops = spec.arithmetic_ops();
        spg_telemetry::record_flops(ops, ops);
        // SAFETY: the ISA assertion above guarantees the instance's target
        // features; the entry validates buffer lengths against the spec,
        // and the caller ran this instance's lowered plan (self.plan)
        // through spg-check before dispatching here.
        unsafe { (self.forward)(spec, input, weights, output, scratch, cache_rows) };
    }
}

impl std::fmt::Debug for SpecializedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpecializedKernel({}, {}, {} lanes)", self.key, self.isa.name(), self.lanes)
    }
}

/// Expands to the registry entries for one geometry key: an AVX-512
/// instance (preferred when the host has it) and an AVX2 instance.
#[cfg(target_arch = "x86_64")]
macro_rules! instances {
    ($( ($fy:literal, $fx:literal, $sy:literal, $sx:literal) ),* $(,)?) => {
        &[
            $(
                SpecializedKernel {
                    key: KernelKey { fy: $fy, fx: $fx, sy: $sy, sx: $sx },
                    isa: Isa::Avx512,
                    lanes: crate::kernels::avx512::LANES,
                    forward: crate::kernels::avx512::forward_entry::<$fy, $fx, $sy, $sx>,
                },
                SpecializedKernel {
                    key: KernelKey { fy: $fy, fx: $fx, sy: $sy, sx: $sx },
                    isa: Isa::Avx2,
                    lanes: crate::kernels::avx2::LANES,
                    forward: crate::kernels::avx2::forward_entry::<$fy, $fx, $sy, $sx>,
                },
            )*
        ]
    };
}

/// Every monomorphized instance, in dispatch-preference order per key.
/// The key set covers the kernel geometries of the paper's Table 2
/// benchmarks — (7x7, s2), (5x5, s2), (3x3, s1), (5x5, s1), (11x11, s4) —
/// which is where the autotuner spends its forward time; anything else
/// falls back to the generic runtime-parameterized loops.
#[cfg(target_arch = "x86_64")]
static REGISTRY: &[SpecializedKernel] =
    instances![(3, 3, 1, 1), (5, 5, 1, 1), (5, 5, 2, 2), (7, 7, 2, 2), (11, 11, 4, 4),];

/// Non-x86 hosts have no specialized instances: every shape takes the
/// generic path, which is the guaranteed-fallback contract.
#[cfg(not(target_arch = "x86_64"))]
static REGISTRY: &[SpecializedKernel] = &[];

/// All registry instances (dispatch-preference order). Exposed so tests
/// and the golden suite can enumerate every instance; use
/// [`lookup`](crate::lookup) for dispatch.
pub fn all_instances() -> &'static [SpecializedKernel] {
    REGISTRY
}

/// Resolves the specialized instance for `spec`, or `None` when the
/// generic path must run: unlisted geometry, output rows narrower than
/// the instance's vector, missing CPU features, or the
/// `SPG_FORCE_GENERIC` escape hatch. Wider ISAs win ties.
pub fn lookup(spec: &ConvSpec) -> Option<&'static SpecializedKernel> {
    if crate::force_generic() {
        return None;
    }
    let key = KernelKey::of(spec);
    let level = spg_gemm::detect_simd_level();
    REGISTRY.iter().find(|k| k.key == key && k.isa.runnable_at(level) && spec.out_w() >= k.lanes)
}

/// [`lookup`] keyed by the `spg-check` plan IR: resolves only for
/// `StencilTiled` plans whose `phased` flag matches the key (narrow and
/// GEMM plans never specialize), so the registry consult composes with
/// `verify_plan` on the plan that actually passed.
pub fn lookup_for_plan(spec: &ConvSpec, plan: &ForwardPlan) -> Option<&'static SpecializedKernel> {
    match plan {
        ForwardPlan::StencilTiled { phased, .. } if *phased == (spec.sx() > 1) => lookup(spec),
        _ => None,
    }
}
