//! Monomorphized stencil forward kernels (JIT-lite specialization).
//!
//! One `define_simd_forward!` expansion per instruction set generates the
//! register-tiled basic block and its driver with the kernel geometry —
//! `Fy`, `Fx`, `sy`, `sx` — as **const generic parameters**: the `(ky, kx)`
//! reduction loops have compile-time-constant trip counts, so LLVM fully
//! unrolls them and folds every weight index `ky*Fx + kx` and every
//! kernel-offset address to a constant. This is the Georganas et al.
//! per-(tile, stride, layout) specialization, realized through Rust
//! monomorphization instead of a run-time JIT.
//!
//! The loop structure — and therefore the per-output-element reduction
//! order `(c, ky, kx)` with single-rounded FMA throughout — is copied from
//! the generic `spg-core` stencil kernel, so every specialized instance is
//! **bit-identical** to the generic AVX path on any geometry both execute
//! (the golden Table 2 suite asserts this). Lane width does not change the
//! per-element chain: each output column is one SIMD lane, and a 16-lane
//! FMA rounds each lane exactly like an 8-lane FMA.

use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;
use spg_tensor::transform::StridedLayout;

/// Signature of a monomorphized forward instance. `cache_rows` is the
/// cache-schedule row block (already clamped to at least [`TILE_ROWS`] by
/// the caller) — the schedule itself stays single-sourced in `spg-core`.
///
/// # Safety
///
/// Callers of a `ForwardFn` must guarantee the module's target features
/// are available on the running CPU, the spec's geometry matches the
/// instance's const parameters, and `out_w >= LANES` — exactly the checks
/// [`crate::SpecializedKernel::forward`] performs before dispatching.
pub(crate) type ForwardFn =
    unsafe fn(&ConvSpec, &[f32], &[f32], &mut [f32], &mut ConvScratch, usize);

/// Builds the Eq. 21 phase layout for a compile-time `x` stride.
fn phase_layout(spec: &ConvSpec, sx: usize) -> StridedLayout {
    match StridedLayout::new(spec.input_shape(), sx) {
        Ok(lay) => lay,
        // Registry keys carry strictly positive strides.
        Err(_) => unreachable!("positive stride by registry key construction"),
    }
}

macro_rules! define_simd_forward {
    (
        module: $mod_:ident,
        feature: $feat:literal,
        lanes: $lanes:literal,
        vec: $vec:ty,
        setzero: $setzero:ident,
        loadu: $loadu:ident,
        set1: $set1:ident,
        fmadd: $fmadd:ident,
        storeu: $storeu:ident
    ) => {
        pub(crate) mod $mod_ {
            use std::arch::x86_64::*;

            use spg_convnet::workspace::zeroed_slice;
            use spg_convnet::ConvSpec;

            use super::{phase_layout, ConvScratch};
            use crate::xplan::x_plan_lanes;
            use crate::TILE_ROWS;

            /// f32 lanes per vector for this instruction set.
            pub(crate) const LANES: usize = $lanes;

            /// Register-tiled basic block over a `rows x (RX*LANES)` output
            /// tile with compile-time kernel geometry: the complete
            /// `(c, ky, kx)` reduction runs before a single store, `FY`/`FX`
            /// trip counts unroll at compile time, and `koff[kx]` holds the
            /// per-tap input column offset (unit-stride: `x + kx`; phased:
            /// `(kx % sx)*pw + kx/sx + x`), loop-invariant across the whole
            /// block. The reduction order per output element matches the
            /// generic kernel exactly — channels, then `ky` (via `iy`),
            /// then `kx`, all single-rounded FMA — which is what makes the
            /// instance bit-identical to the generic path.
            ///
            /// # Safety
            ///
            /// Caller guarantees the target features of this module; that
            /// for every `c < nc` and `iy < (rows-1)*SY + FY`,
            /// `in_tile + c*c_stride + iy*row_stride + koff[kx] + RX*LANES`
            /// stays within the input buffer (spg-check's x-tile, row-range
            /// and phase-group proofs for this instance's lowered plan);
            /// that `w_f` points to `nc * FY * FX` readable floats; and
            /// that `out` has `rows` rows of `RX*LANES` writable elements
            /// at stride `out_stride`.
            #[target_feature(enable = $feat)]
            #[inline]
            #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
            unsafe fn tile_block<
                const RX: usize,
                const FY: usize,
                const FX: usize,
                const SY: usize,
            >(
                rows: usize,
                nc: usize,
                in_tile: *const f32,
                c_stride: usize,
                row_stride: usize,
                koff: &[usize; FX],
                w_f: *const f32,
                out: *mut f32,
                out_stride: usize,
            ) {
                debug_assert!((1..=TILE_ROWS).contains(&rows) && SY >= 1);
                debug_assert!(RX == 1 || RX == 2);
                let mut acc = [[$setzero(); RX]; TILE_ROWS];
                for c in 0..nc {
                    // SAFETY: c < nc; the caller contract bounds
                    // in_tile + c*c_stride and w_f + c*FY*FX.
                    let (in_c, w_fc) = unsafe { (in_tile.add(c * c_stride), w_f.add(c * FY * FX)) };
                    for iy in 0..(rows - 1) * SY + FY {
                        // Output rows served by input row iy: ty with
                        // 0 <= iy - ty*SY < FY.
                        let ty_lo = (iy + 1).saturating_sub(FY).div_ceil(SY);
                        let ty_hi = (iy / SY).min(rows - 1);
                        if ty_lo > ty_hi {
                            continue;
                        }
                        // SAFETY: iy stays below the caller-proved row bound.
                        let base = unsafe { in_c.add(iy * row_stride) };
                        for kx in 0..FX {
                            let mut ivec = [$setzero(); RX];
                            for (rx, v) in ivec.iter_mut().enumerate() {
                                // SAFETY: the caller contract (proved at plan
                                // time by spg-check for this instance's exact
                                // x-tile list) keeps koff[kx] + RX*LANES
                                // inside the input buffer.
                                *v = unsafe { $loadu(base.add(koff[kx] + rx * LANES)) };
                            }
                            for ty in ty_lo..=ty_hi {
                                let ky = iy - ty * SY;
                                // SAFETY: ky < FY and kx < FX by loop bounds;
                                // w_fc points to FY*FX readable floats (the
                                // verifier's weight-broadcast range proof).
                                let w = unsafe { $set1(*w_fc.add(ky * FX + kx)) };
                                for rx in 0..RX {
                                    acc[ty][rx] = $fmadd(ivec[rx], w, acc[ty][rx]);
                                }
                            }
                        }
                    }
                }
                for (r, row) in acc.iter().enumerate().take(rows) {
                    for (rx, a) in row.iter().enumerate() {
                        // SAFETY: r < rows; the caller contract guarantees
                        // `out` has rows rows of RX*LANES writable elements
                        // at stride out_stride (output-store range proof).
                        unsafe { $storeu(out.add(r * out_stride + rx * LANES), *a) };
                    }
                }
            }

            /// Drives [`tile_block`] over the cache schedule and the
            /// lane-width x-tile plan, mirroring the generic kernel's loop
            /// nest (feature plane, cache row block, register tile, x tile).
            ///
            /// # Safety
            ///
            /// Caller guarantees the target features of this module and
            /// that `in_ptr`/`c_stride`/`row_stride`/`koff0` describe a
            /// staging buffer in which every access the tile blocks perform
            /// is in-bounds — exactly the ranges spg-check proves for this
            /// instance's lowered `StencilTiled` plan. `weights` and
            /// `output` must match `spec`.
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            unsafe fn forward_tiled<const FY: usize, const FX: usize, const SY: usize>(
                spec: &ConvSpec,
                in_ptr: *const f32,
                c_stride: usize,
                row_stride: usize,
                koff0: [usize; FX],
                weights: *const f32,
                output: *mut f32,
                cache_rows: usize,
            ) {
                let (out_h, out_w) = (spec.out_h(), spec.out_w());
                let (nc, nf) = (spec.in_c(), spec.features());
                // Per-tile kernel-offset tables, hoisted out of the loop
                // nest: tap offsets are loop-invariant for a whole tile.
                let tiles: Vec<(usize, bool, [usize; FX])> = x_plan_lanes(out_w, LANES)
                    .into_iter()
                    .map(|(x, wide)| {
                        let mut koff = koff0;
                        for o in koff.iter_mut() {
                            *o += x;
                        }
                        (x, wide, koff)
                    })
                    .collect();
                for f in 0..nf {
                    // SAFETY: f < nf keeps the plane offset inside the
                    // validated output buffer.
                    let out_plane = unsafe { output.add(f * out_h * out_w) };
                    // SAFETY: f < nf keeps the weight block offset inside
                    // the validated weight buffer.
                    let w_f = unsafe { weights.add(f * nc * FY * FX) };
                    let mut y0 = 0;
                    while y0 < out_h {
                        let y1 = (y0 + cache_rows).min(out_h);
                        let mut y = y0;
                        while y < y1 {
                            let rows = TILE_ROWS.min(y1 - y);
                            for &(x, wide, ref koff) in &tiles {
                                // SAFETY: row y*SY is the first input row the
                                // tile reads; the caller-proved row-range
                                // bound covers y*SY + iy for every in-tile iy.
                                let in_tile = unsafe { in_ptr.add(y * SY * row_stride) };
                                // SAFETY: y < out_h and x + tile width <=
                                // out_w (x-plan segment proof), inside the
                                // f-th plane.
                                let dst = unsafe { out_plane.add(y * out_w + x) };
                                // SAFETY: target features guaranteed by the
                                // caller; the pointer arguments satisfy the
                                // tile-block contract per the caller-proved
                                // plan (spg-check gates every instance).
                                unsafe {
                                    if wide {
                                        tile_block::<2, FY, FX, SY>(
                                            rows, nc, in_tile, c_stride, row_stride, koff, w_f,
                                            dst, out_w,
                                        );
                                    } else {
                                        tile_block::<1, FY, FX, SY>(
                                            rows, nc, in_tile, c_stride, row_stride, koff, w_f,
                                            dst, out_w,
                                        );
                                    }
                                }
                            }
                            y += rows;
                        }
                        y0 = y1;
                    }
                }
            }

            /// The registry entry point for one `(Fy, Fx, sy, sx)` key:
            /// validates buffer lengths, applies the Eq. 21 phase transform
            /// when `SX > 1` (a compile-time branch), and runs the
            /// monomorphized tiled driver.
            ///
            /// # Safety
            ///
            /// Caller guarantees the CPU supports this module's target
            /// features and that the instance's lowered plan verified clean
            /// under spg-check for `spec` (the registry wrapper enforces
            /// both).
            pub(crate) unsafe fn forward_entry<
                const FY: usize,
                const FX: usize,
                const SY: usize,
                const SX: usize,
            >(
                spec: &ConvSpec,
                input: &[f32],
                weights: &[f32],
                output: &mut [f32],
                scratch: &mut ConvScratch,
                cache_rows: usize,
            ) {
                assert_eq!(input.len(), spec.input_shape().len(), "input length");
                assert_eq!(weights.len(), spec.weight_shape().len(), "weights length");
                assert_eq!(output.len(), spec.output_shape().len(), "output length");
                assert!(
                    (spec.ky(), spec.kx(), spec.sy(), spec.sx()) == (FY, FX, SY, SX),
                    "spec geometry does not match the monomorphized instance"
                );
                let (in_h, in_w) = (spec.in_h(), spec.in_w());
                let cache_rows = cache_rows.max(TILE_ROWS);
                if SX == 1 {
                    let koff0: [usize; FX] = std::array::from_fn(|kx| kx);
                    // SAFETY: target features guaranteed by the caller; the
                    // unit-stride strides (channel plane in_h*in_w, row in_w)
                    // describe the validated input buffer, matching the
                    // accesses spg-check proved for this instance's plan.
                    unsafe {
                        forward_tiled::<FY, FX, SY>(
                            spec,
                            input.as_ptr(),
                            in_h * in_w,
                            in_w,
                            koff0,
                            weights.as_ptr(),
                            output.as_mut_ptr(),
                            cache_rows,
                        );
                    }
                } else {
                    let lay = phase_layout(spec, SX);
                    let phased = zeroed_slice(&mut scratch.hwc_in, lay.transformed_len());
                    lay.apply_into(input, phased);
                    let pw = lay.phase_width();
                    let group = SX * pw;
                    let koff0: [usize; FX] = std::array::from_fn(|kx| (kx % SX) * pw + kx / SX);
                    // SAFETY: target features guaranteed by the caller; the
                    // phased strides (channel plane in_h*group, row group)
                    // describe the freshly staged buffer of
                    // lay.transformed_len() elements, and spg-check's phased
                    // row-group containment proof bounds every koff access.
                    unsafe {
                        forward_tiled::<FY, FX, SY>(
                            spec,
                            phased.as_ptr(),
                            in_h * group,
                            group,
                            koff0,
                            weights.as_ptr(),
                            output.as_mut_ptr(),
                            cache_rows,
                        );
                    }
                }
            }
        }
    };
}

define_simd_forward! {
    module: avx2,
    feature: "avx2,fma",
    lanes: 8,
    vec: __m256,
    setzero: _mm256_setzero_ps,
    loadu: _mm256_loadu_ps,
    set1: _mm256_set1_ps,
    fmadd: _mm256_fmadd_ps,
    storeu: _mm256_storeu_ps
}

define_simd_forward! {
    module: avx512,
    feature: "avx512f,fma",
    lanes: 16,
    vec: __m512,
    setzero: _mm512_setzero_ps,
    loadu: _mm512_loadu_ps,
    set1: _mm512_set1_ps,
    fmadd: _mm512_fmadd_ps,
    storeu: _mm512_storeu_ps
}
