//! Lane-parameterized `x` tile segmentation.
//!
//! The generic kernel's `x_plan` is hard-wired to 8 lanes (AVX2). The
//! specialized registry carries 16-lane (AVX-512) instances too, so the
//! segmentation is generalized over the lane count here: double-width
//! tiles while they fit, then single vectors, then one overlapping
//! single-vector tail for ragged widths. A coupling test in `spg-core`
//! pins the 8-lane case to the generic kernel's plan.

use spg_check::XTile;

/// `x` tile plan covering `0..out_w` with `lanes`-wide vectors: `2*lanes`
/// tiles while they fit, then `lanes`-wide, then one overlapping
/// `lanes`-wide tail. Returns `(x, wide)` pairs; `wide` means two vectors.
///
/// # Panics
///
/// Panics if `lanes == 0` or `out_w < lanes` (narrower outputs take the
/// shifted-GEMM path and have no x plan).
pub fn x_plan_lanes(out_w: usize, lanes: usize) -> Vec<(usize, bool)> {
    assert!(lanes > 0, "lane count must be positive");
    assert!(out_w >= lanes, "output row narrower than one vector");
    let mut plan = Vec::new();
    let mut x = 0;
    while x + 2 * lanes <= out_w {
        plan.push((x, true));
        x += 2 * lanes;
    }
    while x + lanes <= out_w {
        plan.push((x, false));
        x += lanes;
    }
    if x < out_w {
        plan.push((out_w - lanes, false));
    }
    plan
}

/// [`x_plan_lanes`] in the verifier's IR: the exact tile list a
/// specialized instance iterates, handed to `spg-check` so the proof is
/// about the code that runs.
///
/// # Panics
///
/// Panics if `lanes == 0` or `out_w < lanes`.
pub fn x_tiles(out_w: usize, lanes: usize) -> Vec<XTile> {
    x_plan_lanes(out_w, lanes)
        .into_iter()
        .map(|(x, wide)| XTile { x, vectors: if wide { 2 } else { 1 } })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_with_overlapping_tail() {
        for lanes in [8usize, 16] {
            for out_w in lanes..5 * lanes {
                let plan = x_plan_lanes(out_w, lanes);
                let mut covered = vec![false; out_w];
                for &(x, wide) in &plan {
                    let w = if wide { 2 * lanes } else { lanes };
                    assert!(x + w <= out_w, "tile escapes: x={x} w={w} out_w={out_w}");
                    for c in covered.iter_mut().skip(x).take(w) {
                        *c = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap at out_w={out_w} lanes={lanes}");
            }
        }
    }

    #[test]
    fn exact_multiples_have_no_tail_overlap() {
        let plan = x_plan_lanes(32, 8);
        assert_eq!(plan, vec![(0, true), (16, true)]);
        let plan = x_plan_lanes(32, 16);
        assert_eq!(plan, vec![(0, true)]);
    }

    #[test]
    fn tiles_translate_to_ir() {
        let tiles = x_tiles(24, 16);
        assert_eq!(tiles.len(), 2);
        assert_eq!((tiles[0].x, tiles[0].vectors), (0, 1));
        assert_eq!((tiles[1].x, tiles[1].vectors), (8, 1));
    }

    #[test]
    #[should_panic(expected = "narrower")]
    fn narrow_rows_rejected() {
        x_plan_lanes(7, 8);
    }
}
