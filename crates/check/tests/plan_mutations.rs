//! Property tests for the plan verifier: known-good plans verify clean, and
//! every seeded mutation — off-by-one tile bounds, overlapping worker splits,
//! gapped row coverage, undersized scratch — is rejected with the matching
//! [`CheckError`] variant. The verifier's value is exactly this asymmetry:
//! real plans pass, every corrupted neighbour of a real plan fails loudly.

use proptest::prelude::*;

use spg_check::{
    band_sub_spec, gemm, verify_forward, BackwardPlan, BandDim, BandPlan, Buf, CheckError,
    ConvPlan, ForwardPlan, RegisterTile, ScheduleTile, ScratchCapacity, XTile, VECTOR_WIDTH,
};
use spg_convnet::ConvSpec;

/// Specs wide enough for the tiled stencil path (`out_w >= VECTOR_WIDTH`).
fn wide_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..4, 10usize..24, 1usize..6, 1usize..5, 1usize..3).prop_filter_map(
        "tiled stencil needs a full vector of output columns",
        |(c, n, f, k, s)| {
            let spec = ConvSpec::new(c, n, n, f, k, k, s, s).ok()?;
            (spec.out_w() >= VECTOR_WIDTH).then_some(spec)
        },
    )
}

/// Any valid spec, narrow outputs included.
fn any_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..4, 4usize..18, 1usize..6, 1usize..5, 1usize..3)
        .prop_filter_map("kernel fits input", |(c, n, f, k, s)| {
            ConvSpec::new(c, n, n, f, k, k, s, s).ok()
        })
}

/// Mirrors the stencil kernel's x-plan segmentation (16-wide greedy, then
/// 8-wide, then an overlapping 8-wide remainder anchored at the row end).
fn x_tiles(out_w: usize) -> Vec<XTile> {
    let lanes = VECTOR_WIDTH;
    let mut tiles = Vec::new();
    let mut x = 0;
    while x + 2 * lanes <= out_w {
        tiles.push(XTile { x, vectors: 2 });
        x += 2 * lanes;
    }
    while x + lanes <= out_w {
        tiles.push(XTile { x, vectors: 1 });
        x += lanes;
    }
    if x < out_w {
        tiles.push(XTile { x: out_w - lanes, vectors: 1 });
    }
    tiles
}

/// The known-good tiled stencil plan for a wide spec.
fn good_tiled(spec: &ConvSpec) -> ForwardPlan {
    ForwardPlan::StencilTiled {
        lanes: VECTOR_WIDTH,
        tile_rows: 2,
        cache_rows: 2,
        x_tiles: x_tiles(spec.out_w()),
        phased: spec.sx() > 1,
    }
}

/// A register/schedule tile pair that is always admissible (the generators'
/// unconditional 1x1 / single-row fallbacks).
fn good_tiles(spec: &ConvSpec) -> (RegisterTile, ScheduleTile) {
    (RegisterTile { rx: 1, ry: 1 }, ScheduleTile { y_tile: 1, x_tile: spec.out_w() })
}

fn verify(spec: &ConvSpec, fwd: &ForwardPlan, cap: &ScratchCapacity) -> Result<(), CheckError> {
    let (rt, st) = good_tiles(spec);
    verify_forward(spec, fwd, rt, st, cap).map(|_| ())
}

/// Specs whose output splits into two vector-wide bands along every
/// dimension: spatial extents of at least 18 (two x-bands of >= 9
/// columns) and at least 4 output features (two non-trivial slices).
fn splittable_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..3, 20usize..44, 4usize..8, 1usize..4, 1usize..3).prop_filter_map(
        "two vector-wide bands per split dimension",
        |(c, n, f, k, s)| {
            let spec = ConvSpec::new(c, n, n, f, k, k, s, s).ok()?;
            (spec.out_w() >= 18 && spec.out_h() >= 18).then_some(spec)
        },
    )
}

fn band_dims() -> impl Strategy<Value = BandDim> {
    prop_oneof![Just(BandDim::YRows), Just(BandDim::XCols), Just(BandDim::OutChannels)]
}

/// The split extent of `spec` along `dim` (output rows / columns / features).
fn extent_for(spec: &ConvSpec, dim: BandDim) -> usize {
    match dim {
        BandDim::YRows => spec.out_h(),
        BandDim::XCols => spec.out_w(),
        BandDim::OutChannels => spec.features(),
    }
}

/// A banded plan over `ranges`, each band carrying its re-derived
/// sub-spec and the mirrored tiled inner plan.
fn banded_plan(spec: &ConvSpec, dim: BandDim, ranges: &[(usize, usize)]) -> ForwardPlan {
    let bands = ranges
        .iter()
        .map(|&(lo, hi)| {
            let sub = band_sub_spec(spec, dim, lo, hi).expect("band restriction is a valid spec");
            let plan = ForwardPlan::StencilTiled {
                lanes: VECTOR_WIDTH,
                tile_rows: 2,
                cache_rows: 2,
                x_tiles: x_tiles(sub.out_w()),
                phased: sub.sx() > 1,
            };
            BandPlan { range: (lo, hi), spec: sub, plan }
        })
        .collect();
    ForwardPlan::StencilBanded { dim, bands }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Baseline: the mirrored-from-the-kernel plan always verifies.
    #[test]
    fn good_tiled_plan_verifies(spec in wide_spec()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        prop_assert!(verify(&spec, &good_tiled(&spec), &cap).is_ok());
    }

    /// Off-by-one tile bound: shifting any x-tile one column right must be
    /// rejected — either the segment escapes the row (OutOfBounds) or it
    /// opens a one-column gap at its old position (IncompleteCover).
    #[test]
    fn shifted_x_tile_rejected(spec in wide_spec(), pick in 0usize..64) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut tiles = x_tiles(spec.out_w());
        let i = pick % tiles.len();
        tiles[i].x += 1;
        let mutated = ForwardPlan::StencilTiled {
            lanes: VECTOR_WIDTH,
            tile_rows: 2,
            cache_rows: 2,
            x_tiles: tiles,
            phased: spec.sx() > 1,
        };
        let err = verify(&spec, &mutated, &cap).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckError::OutOfBounds { buffer: Buf::Output, .. }
                    | CheckError::IncompleteCover { buffer: Buf::Output, .. }
            ),
            "unexpected error {err:?}"
        );
    }

    /// Dropping an x-tile leaves uncovered output columns: IncompleteCover.
    /// (No tile is redundant: coverage below the remainder is tight, and the
    /// remainder is the only segment reaching the row end.)
    #[test]
    fn dropped_x_tile_rejected(spec in wide_spec(), pick in 0usize..64) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut tiles = x_tiles(spec.out_w());
        let i = pick % tiles.len();
        tiles.remove(i);
        let mutated = ForwardPlan::StencilTiled {
            lanes: VECTOR_WIDTH,
            tile_rows: 2,
            cache_rows: 2,
            x_tiles: tiles,
            phased: spec.sx() > 1,
        };
        let err = verify(&spec, &mutated, &cap).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::IncompleteCover { buffer: Buf::Output, .. }),
            "unexpected error {err:?}"
        );
    }

    /// Claiming the phase transform on a unit-stride layer (or omitting it
    /// on a strided one) contradicts the kernel dispatch: PlanShapeMismatch.
    #[test]
    fn wrong_phase_claim_rejected(spec in wide_spec()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let mutated = ForwardPlan::StencilTiled {
            lanes: VECTOR_WIDTH,
            tile_rows: 2,
            cache_rows: 2,
            x_tiles: x_tiles(spec.out_w()),
            phased: spec.sx() == 1, // inverted
        };
        let err = verify(&spec, &mutated, &cap).unwrap_err();
        prop_assert!(matches!(err, CheckError::PlanShapeMismatch { .. }));
    }

    /// Undersized scratch: shrinking a required staging capacity below the
    /// plan's high-water footprint is a ScratchOverflow. The narrow stencil
    /// stages the whole input in hwc_in, so zeroing that reservation must
    /// overflow on every spec.
    #[test]
    fn undersized_scratch_rejected(spec in any_spec()) {
        let mut cap = ScratchCapacity::reserved_for(&spec);
        cap.hwc_in = 0;
        let err = verify(&spec, &ForwardPlan::StencilNarrow, &cap).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::ScratchOverflow { buffer: Buf::HwcIn, .. }),
            "unexpected error {err:?}"
        );
    }

    /// The phased tiled path stages the phase-transformed input in hwc_in;
    /// one element short of its footprint is likewise a ScratchOverflow.
    #[test]
    fn undersized_phased_scratch_rejected(spec in wide_spec()) {
        let mut cap = ScratchCapacity::reserved_for(&spec);
        if spec.sx() > 1 {
            cap.hwc_in -= 1;
            let err = verify(&spec, &good_tiled(&spec), &cap).unwrap_err();
            prop_assert!(
                matches!(err, CheckError::ScratchOverflow { buffer: Buf::HwcIn, .. }),
                "unexpected error {err:?}"
            );
        }
    }

    /// Overlapping worker splits: merging two adjacent GEMM row bands into
    /// overlapping ranges is an OverlappingWorkers rejection.
    #[test]
    fn overlapping_worker_bands_rejected(m in 2usize..64, threads in 2usize..8) {
        let mut bands = gemm::row_bands(m, threads);
        prop_assert!(bands.len() >= 2); // min(threads, m) >= 2 workers
        // Stretch band 0 one row into band 1's territory.
        bands[0].1 += 1;
        let err = gemm::verify_row_bands(Buf::Output, "mutated bands", m, 4, &bands).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::OverlappingWorkers { worker_a: 0, worker_b: 1, .. }),
            "unexpected error {err:?}"
        );
    }

    /// Gapped worker splits: a skipped output row is an IncompleteCover.
    /// `m >= 2 * threads` keeps every band at least two rows tall, so the
    /// shrunken band stays non-empty and the gap is a genuine hole.
    #[test]
    fn gapped_worker_bands_rejected(m in 16usize..64, threads in 2usize..8) {
        let mut bands = gemm::row_bands(m, threads);
        prop_assert!(bands.len() >= 2 && bands[0].1 - bands[0].0 >= 2);
        bands[0].1 -= 1;
        let err = gemm::verify_row_bands(Buf::Output, "mutated bands", m, 4, &bands).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::IncompleteCover { .. }),
            "unexpected error {err:?}"
        );
    }

    /// Escaping worker splits: extending the last band past `m` rows is an
    /// OutOfBounds on the output operand.
    #[test]
    fn escaping_worker_band_rejected(m in 2usize..64, threads in 1usize..8) {
        let mut bands = gemm::row_bands(m, threads);
        let last = bands.len() - 1;
        bands[last].1 += 1;
        let err = gemm::verify_row_bands(Buf::Output, "mutated bands", m, 4, &bands).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::OutOfBounds { buffer: Buf::Output, .. }),
            "unexpected error {err:?}"
        );
    }

    /// Oversized register tiles (accumulator budget) and zero-sized tiles
    /// are rejected as BudgetExceeded / PlanShapeMismatch respectively.
    #[test]
    fn bad_register_tiles_rejected(spec in wide_spec()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let st = ScheduleTile { y_tile: 1, x_tile: spec.out_w() };
        let over = RegisterTile { rx: 4, ry: 4 };
        let err = verify_forward(&spec, &good_tiled(&spec), over, st, &cap).unwrap_err();
        prop_assert!(matches!(err, CheckError::BudgetExceeded { .. }));
        let zero = RegisterTile { rx: 0, ry: 1 };
        let err = verify_forward(&spec, &good_tiled(&spec), zero, st, &cap).unwrap_err();
        prop_assert!(matches!(err, CheckError::PlanShapeMismatch { .. }));
    }

    /// Baseline for the band mutations: a two-band split of any dimension
    /// — y-rows, x-columns, or out-channel slices — verifies clean.
    #[test]
    fn good_band_split_verifies(spec in splittable_spec(), dim in band_dims()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let e = extent_for(&spec, dim);
        let plan = banded_plan(&spec, dim, &[(0, e / 2), (e / 2, e)]);
        prop_assert!(verify(&spec, &plan, &cap).is_ok());
    }

    /// Overlapping bands: stretching worker 0 one unit into worker 1's
    /// range is an OverlappingWorkers rejection on every split dimension.
    #[test]
    fn overlapping_bands_rejected(spec in splittable_spec(), dim in band_dims()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let e = extent_for(&spec, dim);
        let plan = banded_plan(&spec, dim, &[(0, e / 2 + 1), (e / 2, e)]);
        let err = verify(&spec, &plan, &cap).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckError::OverlappingWorkers { buffer: Buf::Output, worker_a: 0, worker_b: 1, .. }
            ),
            "unexpected error {err:?}"
        );
    }

    /// Gapped bands: shrinking worker 0 leaves an uncovered unit of the
    /// split extent — IncompleteCover on every split dimension.
    #[test]
    fn gapped_bands_rejected(spec in splittable_spec(), dim in band_dims()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let e = extent_for(&spec, dim);
        let plan = banded_plan(&spec, dim, &[(0, e / 2 - 1), (e / 2, e)]);
        let err = verify(&spec, &plan, &cap).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::IncompleteCover { buffer: Buf::Output, .. }),
            "unexpected error {err:?}"
        );
    }

    /// Escaping bands: extending the last band past the split extent is an
    /// OutOfBounds on the output operand for every split dimension.
    #[test]
    fn escaping_band_rejected(spec in splittable_spec(), dim in band_dims()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let e = extent_for(&spec, dim);
        let plan = banded_plan(&spec, dim, &[(0, e / 2), (e / 2, e + 1)]);
        let err = verify(&spec, &plan, &cap).unwrap_err();
        prop_assert!(
            matches!(err, CheckError::OutOfBounds { buffer: Buf::Output, .. }),
            "unexpected error {err:?}"
        );
    }

    /// A band claiming a sub-spec that is not the exact restriction of the
    /// parent to its range is a PlanShapeMismatch naming a `band sub-spec`
    /// field, on every split dimension.
    #[test]
    fn wrong_band_sub_spec_rejected(spec in splittable_spec(), dim in band_dims()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let e = extent_for(&spec, dim);
        let mut plan = banded_plan(&spec, dim, &[(0, e / 2), (e / 2, e)]);
        if let ForwardPlan::StencilBanded { bands, .. } = &mut plan {
            // Claim the restriction of a one-unit-longer band instead.
            bands[0].spec = band_sub_spec(&spec, dim, 0, e / 2 + 1).unwrap();
        }
        let err = verify(&spec, &plan, &cap).unwrap_err();
        match err {
            CheckError::PlanShapeMismatch { context, .. } => {
                prop_assert!(context.starts_with("band sub-spec"), "context {context}");
            }
            other => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// The full-plan entry point rejects a corrupted backward tile width.
    #[test]
    fn zero_sparse_tile_width_rejected(spec in any_spec()) {
        let cap = ScratchCapacity::reserved_for(&spec);
        let (rt, _) = good_tiles(&spec);
        let plan = ConvPlan {
            forward: ForwardPlan::UnfoldGemm { threads: 1 },
            backward: BackwardPlan::SparsePointerShift { tile_width: 0 },
            register_tile: rt,
            schedule: ScheduleTile { y_tile: 1, x_tile: spec.out_w().max(1) },
        };
        let err = spg_check::verify_conv_plan(&spec, &plan, &cap).unwrap_err();
        prop_assert!(matches!(err, CheckError::PlanShapeMismatch { .. }));
    }
}
