//! Abstract model of `ConvScratch` capacity.
//!
//! The verifier never holds a real scratch arena; it reasons about the element
//! counts a `ConvScratch::reserve` call guarantees. `reserved_for` mirrors the
//! reservation arithmetic in `spg-convnet::workspace` exactly (a coupling test
//! in that crate keeps the two in lock-step), and `of_scratch` reads the
//! capacities off a live arena so callers can verify against what was actually
//! allocated rather than what should have been.

use spg_convnet::workspace::ConvScratch;
use spg_convnet::ConvSpec;

/// Element capacities of the five `ConvScratch` staging buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchCapacity {
    /// `ConvScratch::mat_a` capacity in `f32` elements.
    pub mat_a: usize,
    /// `ConvScratch::mat_b` capacity in `f32` elements.
    pub mat_b: usize,
    /// `ConvScratch::hwc_in` capacity in `f32` elements.
    pub hwc_in: usize,
    /// `ConvScratch::hwc_out` capacity in `f32` elements.
    pub hwc_out: usize,
    /// `ConvScratch::wperm` capacity in `f32` elements.
    pub wperm: usize,
}

impl ScratchCapacity {
    /// Capacities `ConvScratch::reserve(spec)` guarantees, computed without
    /// allocating. Must stay byte-for-byte in sync with the reservation code.
    #[must_use]
    pub fn reserved_for(spec: &ConvSpec) -> Self {
        let patches = spec.out_h() * spec.out_w();
        let patch_len = spec.weight_shape().per_feature();
        let unfold_area = patches * patch_len.max(spec.features());
        let ishape = spec.input_shape();
        let phased = ishape.c * ishape.h * spec.sx() * ishape.w.div_ceil(spec.sx());
        ScratchCapacity {
            mat_a: unfold_area,
            mat_b: patches * patch_len,
            hwc_in: ishape.len().max(phased),
            hwc_out: spec.output_shape().len(),
            wperm: spec.weight_shape().len(),
        }
    }

    /// Capacities of a live scratch arena (what was actually allocated).
    #[must_use]
    pub fn of_scratch(scratch: &ConvScratch) -> Self {
        ScratchCapacity {
            mat_a: scratch.mat_a.len(),
            mat_b: scratch.mat_b.len(),
            hwc_in: scratch.hwc_in.len(),
            hwc_out: scratch.hwc_out.len(),
            wperm: scratch.wperm.len(),
        }
    }

    /// Component-wise maximum: the envelope a shared `Workspace` reserves when
    /// one arena serves several layers.
    #[must_use]
    pub fn envelope(self, other: ScratchCapacity) -> Self {
        ScratchCapacity {
            mat_a: self.mat_a.max(other.mat_a),
            mat_b: self.mat_b.max(other.mat_b),
            hwc_in: self.hwc_in.max(other.hwc_in),
            hwc_out: self.hwc_out.max(other.hwc_out),
            wperm: self.wperm.max(other.wperm),
        }
    }

    /// Total `f32` elements across all staging buffers.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.mat_a + self.mat_b + self.hwc_in + self.hwc_out + self.wperm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_matches_live_scratch() {
        // The definitive coupling check: the abstract capacities must equal the
        // lengths a freshly reserved arena reports through `of_scratch`.
        for spec in [
            ConvSpec::square(32, 16, 8, 5, 1),
            ConvSpec::square(31, 7, 3, 3, 2),
            ConvSpec::new(3, 13, 27, 5, 2, 4, 1, 3).unwrap(),
        ] {
            let mut scratch = ConvScratch::new();
            scratch.reserve(&spec);
            assert_eq!(
                ScratchCapacity::reserved_for(&spec),
                ScratchCapacity::of_scratch(&scratch),
                "capacity model diverged from ConvScratch::reserve for {spec:?}"
            );
        }
    }

    #[test]
    fn envelope_is_component_wise() {
        let a = ScratchCapacity { mat_a: 10, mat_b: 1, hwc_in: 5, hwc_out: 9, wperm: 2 };
        let b = ScratchCapacity { mat_a: 3, mat_b: 8, hwc_in: 5, hwc_out: 1, wperm: 7 };
        let e = a.envelope(b);
        assert_eq!(e, ScratchCapacity { mat_a: 10, mat_b: 8, hwc_in: 5, hwc_out: 9, wperm: 7 });
        assert_eq!(e.elems(), 10 + 8 + 5 + 9 + 7);
    }
}
