//! Stencil forward-plan checks: the register-tiled basic block over wide rows
//! (including the Eq. 21 phase-transformed strided variant) and the narrow
//! gather + GEMM fallback.

use crate::error::{Buf, CheckError};
use crate::interval::Span;
use crate::plan::{XTile, ACCUMULATOR_BUDGET};
use crate::Interp;
use spg_convnet::ConvSpec;

/// Verifies the register-tiled stencil forward plan.
///
/// Symbolically evaluates every access expression the generated basic block
/// executes — input loads `(c*H + y*sy + iy)*W + x + kx + v*lanes + lane`,
/// weight broadcasts `(f*Nc + c)*FyFx + ky*Fx + kx`, and output stores — and
/// proves them in-bounds; additionally proves the x-tile list covers the whole
/// output row, the accumulator budget holds, and (for `phased` plans) the
/// phase-transformed staging fits scratch and every load stays inside its
/// `(c, h)` row group.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_forward_tiled(
    interp: &mut Interp,
    spec: &ConvSpec,
    lanes: usize,
    tile_rows: usize,
    cache_rows: usize,
    x_tiles: &[XTile],
    phased: bool,
    cap: &crate::ScratchCapacity,
) -> Result<(), CheckError> {
    let out_w = spec.out_w();
    let out_h = spec.out_h();
    let (nc, in_h, in_w) = (spec.in_c(), spec.in_h(), spec.in_w());
    let (fy, fx, nf) = (spec.ky(), spec.kx(), spec.features());
    if lanes == 0 || tile_rows == 0 || cache_rows == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "tiled stencil lane/row counts must be positive",
            expected: 1,
            found: 0,
        });
    }
    if out_w < lanes {
        return Err(CheckError::PlanShapeMismatch {
            context: "tiled stencil requires a full vector of output columns",
            expected: lanes,
            found: out_w,
        });
    }
    if cache_rows < tile_rows {
        return Err(CheckError::PlanShapeMismatch {
            context: "cache tile shorter than the basic block it wraps",
            expected: tile_rows,
            found: cache_rows,
        });
    }
    if phased != (spec.sx() > 1) {
        return Err(CheckError::PlanShapeMismatch {
            context: "phase transform must be applied exactly when sx > 1",
            expected: usize::from(spec.sx() > 1),
            found: usize::from(phased),
        });
    }

    // The basic block keeps tile_rows x vectors accumulators live.
    let max_vectors = x_tiles.iter().map(|t| t.vectors).max().unwrap_or(0);
    let accumulators = tile_rows * max_vectors;
    if accumulators > ACCUMULATOR_BUDGET {
        return Err(CheckError::BudgetExceeded {
            context: "stencil basic-block accumulators",
            used: accumulators,
            budget: ACCUMULATOR_BUDGET,
        });
    }

    // Per-tile output row segments: in-bounds and jointly covering 0..out_w.
    // Overlap is allowed — the trailing remainder tile intentionally rewrites
    // columns the previous tile already produced (same values, same worker).
    let mut segments: Vec<Span> = Vec::with_capacity(x_tiles.len());
    for tile in x_tiles {
        if tile.vectors == 0 || tile.vectors > 2 {
            return Err(CheckError::PlanShapeMismatch {
                context: "x-tile vector count must be 1 or 2",
                expected: 2,
                found: tile.vectors,
            });
        }
        let seg = Span::range(tile.x, tile.x + tile.vectors * lanes);
        if seg.hi > out_w {
            return Err(CheckError::OutOfBounds {
                buffer: Buf::Output,
                context: "stencil x-tile row segment",
                lo: seg.lo,
                hi: seg.hi,
                len: out_w,
            });
        }
        interp.proved(1);
        segments.push(seg);
    }
    let mut sorted = segments.clone();
    sorted.sort_by_key(|s| s.lo);
    let mut next = 0usize;
    for seg in &sorted {
        if seg.lo > next {
            return Err(CheckError::IncompleteCover {
                buffer: Buf::Output,
                context: "stencil x-tile row coverage",
                missing: next,
                len: out_w,
            });
        }
        next = next.max(seg.hi);
    }
    if next < out_w {
        return Err(CheckError::IncompleteCover {
            buffer: Buf::Output,
            context: "stencil x-tile row coverage",
            missing: next,
            len: out_w,
        });
    }
    let seg_span = segments.iter().copied().fold(Span::range(0, 0), Span::hull);

    // Input rows the block touches: y*sy + iy for y a tile base and iy the
    // in-tile row; bounded by (out_h-1)*sy + fy - 1 regardless of tiling.
    let row_span = Span::iter(out_h).scale(spec.sy()).plus(Span::iter(fy));
    interp.access(Buf::Input, "stencil input row range", row_span, in_h)?;

    if phased {
        // Eq. 21 phase transform: the input is restaged as nc * in_h row
        // groups of sx phases, each ceil(in_w/sx) wide.
        let pw = in_w.div_ceil(spec.sx());
        let group = spec.sx() * pw;
        let phased_len = nc * in_h * group;
        interp.capacity(Buf::HwcIn, "phase-transformed input staging", phased_len, cap.hwc_in)?;
        // In-group offset of a load: (kx % sx)*pw + kx/sx + x + v*lanes + lane.
        let koff = (0..fx)
            .map(|kx| (kx % spec.sx()) * pw + kx / spec.sx())
            .fold(Span::range(0, 0), |acc, k| acc.hull(Span::point(k)));
        let intra = koff.plus(seg_span);
        // Row-group containment: a vector load must not run past the group
        // into the next (c, h) row's phases.
        if intra.hi > group {
            return Err(CheckError::OutOfBounds {
                buffer: Buf::HwcIn,
                context: "phased load escapes its (c, h) phase group",
                lo: intra.lo,
                hi: intra.hi,
                len: group,
            });
        }
        interp.proved(1);
        let flat = Span::iter(nc).scale(in_h).plus(row_span).scale(group).plus(intra);
        interp.access(Buf::HwcIn, "phased stencil input load", flat, phased_len)?;
    } else {
        // Unit-stride loads read fx + vectors*lanes contiguous columns per row.
        let col_span = seg_span.plus(Span::iter(fx));
        interp.access(Buf::Input, "stencil input column range", col_span, in_w)?;
        let flat = Span::iter(nc).scale(in_h).plus(row_span).scale(in_w).plus(col_span);
        interp.access(Buf::Input, "stencil input load", flat, spec.input_shape().len())?;
    }

    // Weight broadcasts: (f*nc + c)*fy*fx + ky*fx + kx.
    let w_span = Span::iter(nf)
        .scale(nc)
        .plus(Span::iter(nc))
        .scale(fy * fx)
        .plus(Span::iter(fy).scale(fx).plus(Span::iter(fx)));
    interp.access(Buf::Weights, "stencil weight broadcast", w_span, spec.weight_shape().len())?;

    // Output stores: f*oh*ow + (y + ty)*ow + segment columns.
    let out_span =
        Span::iter(nf).scale(out_h * out_w).plus(Span::iter(out_h).scale(out_w)).plus(seg_span);
    interp.access(Buf::Output, "stencil output store", out_span, spec.output_shape().len())?;
    Ok(())
}

/// Verifies the narrow-output stencil plan: per-tap gathers of `nc`-wide HWC
/// pixels into a patch block, a small GEMM against the `kkcf` weight blocks,
/// and HWC staging of both activations.
pub(crate) fn check_forward_narrow(
    interp: &mut Interp,
    spec: &ConvSpec,
    cap: &crate::ScratchCapacity,
) -> Result<(), CheckError> {
    let (nc, in_w) = (spec.in_c(), spec.in_w());
    let (fy, fx, nf) = (spec.ky(), spec.kx(), spec.features());
    let patches = spec.out_h() * spec.out_w();
    let in_len = spec.input_shape().len();
    let out_len = spec.output_shape().len();
    let w_len = spec.weight_shape().len();

    interp.capacity(Buf::HwcIn, "HWC input staging", in_len, cap.hwc_in)?;
    interp.capacity(Buf::HwcOut, "HWC output staging", patches * nf, cap.hwc_out)?;
    interp.capacity(Buf::MatA, "gathered patch block", patches * nc, cap.mat_a)?;

    // Per-tap gather: src = ((y*sy + ky)*in_w + x*sx + kx)*nc + 0..nc.
    let gather = Span::iter(spec.out_h())
        .scale(spec.sy())
        .plus(Span::iter(fy))
        .scale(in_w)
        .plus(Span::iter(spec.out_w()).scale(spec.sx()).plus(Span::iter(fx)))
        .scale(nc)
        .block(nc);
    interp.access(Buf::HwcIn, "narrow per-tap gather", gather, in_len)?;

    // kkcf weight block for tap (ky, kx): a contiguous nc*nf slab.
    let w_block = Span::iter(fy).scale(fx).plus(Span::iter(fx)).scale(nc * nf).block(nc * nf);
    interp.access(Buf::Weights, "narrow kkcf weight block", w_block, w_len)?;

    // Accumulating GEMM: gathered (patches x nc) * block (nc x nf) -> out_hwc.
    crate::gemm::check_gemm_dims(
        interp,
        "narrow stencil GEMM operands",
        (patches, nf, nc),
        crate::gemm::Operand { buf: Buf::MatA, len: patches * nc, ld: nc },
        crate::gemm::Operand { buf: Buf::Weights, len: nc * nf, ld: nf },
        crate::gemm::Operand { buf: Buf::HwcOut, len: patches * nf, ld: nf },
    )?;
    interp.access(Buf::Output, "narrow HWC-to-CHW store", Span::iter(out_len), out_len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchCapacity;

    fn spec() -> ConvSpec {
        ConvSpec::square(32, 16, 8, 5, 1)
    }

    /// Mirrors the kernel's x_plan segmentation for tests.
    fn tiles_for(out_w: usize, lanes: usize) -> Vec<XTile> {
        let mut tiles = Vec::new();
        let mut x = 0;
        while x + 2 * lanes <= out_w {
            tiles.push(XTile { x, vectors: 2 });
            x += 2 * lanes;
        }
        while x + lanes <= out_w {
            tiles.push(XTile { x, vectors: 1 });
            x += lanes;
        }
        if x < out_w {
            tiles.push(XTile { x: out_w - lanes, vectors: 1 });
        }
        tiles
    }

    #[test]
    fn generated_plan_verifies() {
        let spec = spec();
        let cap = ScratchCapacity::reserved_for(&spec);
        let tiles = tiles_for(spec.out_w(), 8);
        let mut interp = Interp::default();
        check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, false, &cap).unwrap();
        assert!(interp.report.accesses_proved > 0);
    }

    #[test]
    fn strided_phased_plan_verifies() {
        let spec = ConvSpec::square(64, 4, 2, 3, 2);
        let cap = ScratchCapacity::reserved_for(&spec);
        let tiles = tiles_for(spec.out_w(), 8);
        let mut interp = Interp::default();
        check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, true, &cap).unwrap();
    }

    /// The AVX-512 registry instances in `spg-codegen` run 16-lane
    /// x-tiles; the verifier's symbolic model is lane-width-parametric, so
    /// the same plan shape proves at `lanes = 16`, including the
    /// overlapping 16-wide tail tile the x-plan emits for ragged rows.
    #[test]
    fn sixteen_lane_plan_verifies() {
        let spec = ConvSpec::square(40, 16, 8, 5, 1); // out_w = 36: 2x16 + overlap tail
        let cap = ScratchCapacity::reserved_for(&spec);
        let tiles = tiles_for(spec.out_w(), 16);
        assert!(tiles.iter().any(|t| t.x + t.vectors * 16 > 32), "tail must overlap");
        let mut interp = Interp::default();
        check_forward_tiled(&mut interp, &spec, 16, 6, 6, &tiles, false, &cap).unwrap();
        assert!(interp.report.accesses_proved > 0);
    }

    /// Same at stride 2 with the Eq. 21 phase transform — the geometry the
    /// registry's phased AVX-512 instances (e.g. 5x5/s2, 7x7/s2) execute.
    #[test]
    fn sixteen_lane_phased_plan_verifies() {
        let spec = ConvSpec::square(79, 4, 2, 3, 2); // out_w = 39
        let cap = ScratchCapacity::reserved_for(&spec);
        let tiles = tiles_for(spec.out_w(), 16);
        let mut interp = Interp::default();
        check_forward_tiled(&mut interp, &spec, 16, 6, 6, &tiles, true, &cap).unwrap();
    }

    #[test]
    fn escaping_x_tile_rejected() {
        let spec = spec();
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut tiles = tiles_for(spec.out_w(), 8);
        tiles.last_mut().unwrap().x += 1; // off-by-one past the row end
        let mut interp = Interp::default();
        let err =
            check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, false, &cap).unwrap_err();
        assert!(matches!(
            err,
            CheckError::OutOfBounds {
                buffer: Buf::Output,
                context: "stencil x-tile row segment",
                ..
            }
        ));
    }

    #[test]
    fn gapped_x_tiles_rejected() {
        let spec = spec();
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut tiles = tiles_for(spec.out_w(), 8);
        tiles.remove(0);
        let mut interp = Interp::default();
        let err =
            check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, false, &cap).unwrap_err();
        assert!(matches!(err, CheckError::IncompleteCover { missing: 0, .. }));
    }

    #[test]
    fn missing_phase_transform_rejected() {
        let spec = ConvSpec::square(64, 4, 2, 3, 2);
        let cap = ScratchCapacity::reserved_for(&spec);
        let tiles = tiles_for(spec.out_w(), 8);
        let mut interp = Interp::default();
        let err =
            check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, false, &cap).unwrap_err();
        assert!(matches!(err, CheckError::PlanShapeMismatch { expected: 1, found: 0, .. }));
    }

    #[test]
    fn undersized_phased_staging_rejected() {
        let spec = ConvSpec::square(64, 4, 2, 3, 2);
        let mut cap = ScratchCapacity::reserved_for(&spec);
        cap.hwc_in -= 1;
        let tiles = tiles_for(spec.out_w(), 8);
        let mut interp = Interp::default();
        let err = check_forward_tiled(&mut interp, &spec, 8, 6, 6, &tiles, true, &cap).unwrap_err();
        assert!(matches!(err, CheckError::ScratchOverflow { buffer: Buf::HwcIn, .. }));
    }

    #[test]
    fn narrow_plan_verifies() {
        let spec = ConvSpec::square(8, 4, 2, 3, 1); // out_w = 6 < 8
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut interp = Interp::default();
        check_forward_narrow(&mut interp, &spec, &cap).unwrap();
    }
}
