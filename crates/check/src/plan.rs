//! The verifier's plan IR and the basic-block / schedule consistency checks.
//!
//! `spg-core` lowers its `LayerPlan` + generated tile/schedule parameters into
//! this IR before verification; the IR deliberately carries the *derived*
//! quantities the kernels actually execute with (lane count, tile row count,
//! x-tile list, worker count) rather than the planner's abstract knobs, so the
//! proof is about the code that runs, not the heuristic that chose it.

use crate::error::CheckError;
use crate::Interp;
use spg_convnet::ConvSpec;

/// SIMD lanes per vector register the stencil basic block is generated for.
/// Mirrors `spg-core`'s `VECTOR_WIDTH` (a coupling test there keeps them equal).
pub const VECTOR_WIDTH: usize = 8;

/// Architectural vector-accumulator budget for one basic block (Sec. 4.3:
/// sixteen YMM registers minus operand/broadcast temporaries).
pub const ACCUMULATOR_BUDGET: usize = 12;

/// L1 working-set budget in `f32` elements the schedule generator targets.
pub const L1_BUDGET_ELEMS: usize = 4 * 1024;

/// Elements per page used by the TLB cost model.
pub const PAGE_ELEMS: usize = 1024;

/// Data-TLB entry budget the schedule generator targets.
pub const TLB_BUDGET_PAGES: usize = 16;

/// One contiguous x-segment of a stencil row, `vectors * lanes` columns wide,
/// starting at output column `x`. Mirrors `spg-core`'s `x_plan` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XTile {
    /// First output column the segment writes.
    pub x: usize,
    /// Vector registers per row of the segment (1 or 2).
    pub vectors: usize,
}

/// Register-tile shape chosen by the basic-block generator (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterTile {
    /// Vector registers along x.
    pub rx: usize,
    /// Rows along y.
    pub ry: usize,
}

/// Cache/TLB schedule tile chosen by the schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleTile {
    /// Output rows per cache tile.
    pub y_tile: usize,
    /// Output columns per cache tile.
    pub x_tile: usize,
}

/// Which output dimension a banded (hybrid intra-layer) decomposition
/// splits across workers. Sample parallelism needs no plan: each worker
/// runs the whole unsplit plan on its own sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandDim {
    /// Contiguous bands of output rows (spatial-`y` partitioning).
    YRows,
    /// Contiguous bands of output columns (spatial-`x` partitioning).
    XCols,
    /// Contiguous slices of output features (channel partitioning).
    OutChannels,
}

/// One worker's band of a [`ForwardPlan::StencilBanded`] decomposition: the
/// half-open output range it owns along the split dimension, the sub-spec
/// its kernel executes, and the (recursively verified) plan it runs on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandPlan {
    /// Half-open `[lo, hi)` range along the split dimension, in output
    /// rows / columns / features according to the parent's [`BandDim`].
    pub range: (usize, usize),
    /// The restricted convolution this band's worker executes.
    pub spec: ConvSpec,
    /// The forward plan the band runs on its sub-spec.
    pub plan: ForwardPlan,
}

/// How the forward pass executes under the candidate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardPlan {
    /// Register-tiled direct stencil over wide rows (`out_w >= lanes`),
    /// optionally through the Eq. 21 phase transform when `sx > 1`.
    StencilTiled {
        /// SIMD lanes per vector store.
        lanes: usize,
        /// Output rows per basic-block invocation.
        tile_rows: usize,
        /// Output rows per cache tile wrapped around the basic block.
        cache_rows: usize,
        /// Row segmentation; must cover `0..out_w` without escaping it.
        x_tiles: Vec<XTile>,
        /// Whether the input is staged through the phase transform.
        phased: bool,
    },
    /// Narrow-output stencil: per-tap gather into a patch block + small GEMM.
    StencilNarrow,
    /// Hybrid intra-layer decomposition: disjoint contiguous worker bands
    /// along one output dimension, each running the wide register-tiled
    /// stencil on its restricted sub-spec.
    StencilBanded {
        /// The output dimension the bands split.
        dim: BandDim,
        /// Per-worker bands; must disjointly cover the split extent.
        bands: Vec<BandPlan>,
    },
    /// Unfold + GEMM with `threads` parallel row bands (Parallel-GEMM when
    /// `threads > 1`, GEMM-in-Parallel's per-core serial GEMM when 1).
    UnfoldGemm {
        /// Parallel workers splitting the GEMM output.
        threads: usize,
    },
}

/// How the backward pass executes under the candidate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackwardPlan {
    /// CT-CSR pointer-shifting sparse composition (Eq. 11–15).
    SparsePointerShift {
        /// Feature-tile width of the CT-CSR build.
        tile_width: usize,
    },
    /// Unfold + GEMM backward (data and weights phases).
    UnfoldGemm {
        /// Parallel workers splitting each GEMM output.
        threads: usize,
    },
}

/// A complete lowered layer plan: both phases plus the generated tile shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvPlan {
    /// Forward execution strategy.
    pub forward: ForwardPlan,
    /// Backward execution strategy.
    pub backward: BackwardPlan,
    /// Basic-block register tile the generator chose for this spec.
    pub register_tile: RegisterTile,
    /// Cache/TLB schedule tile the generator chose for this spec.
    pub schedule: ScheduleTile,
}

/// Proves the register tile admissible: within the accumulator budget and
/// no larger than the output extent it tiles (the generator's own admissibility
/// predicate, re-derived from the spec rather than trusted).
pub(crate) fn check_register_tile(
    interp: &mut Interp,
    spec: &ConvSpec,
    tile: RegisterTile,
) -> Result<(), CheckError> {
    if tile.rx == 0 || tile.ry == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "register tile must be at least 1x1",
            expected: 1,
            found: 0,
        });
    }
    let accumulators = tile.rx * tile.ry;
    if accumulators > ACCUMULATOR_BUDGET {
        return Err(CheckError::BudgetExceeded {
            context: "register-tile vector accumulators",
            used: accumulators,
            budget: ACCUMULATOR_BUDGET,
        });
    }
    if tile.ry > spec.out_h() {
        return Err(CheckError::PlanShapeMismatch {
            context: "register tile taller than the output",
            expected: spec.out_h(),
            found: tile.ry,
        });
    }
    // Mirrors the generator's width admissibility: the widest admissible tile
    // keeps its last vector within one vector width of the row end.
    if (tile.rx - 1) * VECTOR_WIDTH >= spec.out_w().max(1) + VECTOR_WIDTH {
        return Err(CheckError::PlanShapeMismatch {
            context: "register tile wider than the output row admits",
            expected: spec.out_w(),
            found: tile.rx * VECTOR_WIDTH,
        });
    }
    interp.proved(3);
    Ok(())
}

/// Proves the schedule tile consistent with the spec and, for multi-row tiles,
/// within the L1 and TLB budgets the schedule generator targets.
///
/// Single-row tiles are the generator's unconditional fallback (a layer whose
/// one-row working set exceeds L1 still has to run), so budget violations are
/// only rejected when the plan claims a grown tile.
pub(crate) fn check_schedule_tile(
    interp: &mut Interp,
    spec: &ConvSpec,
    tile: ScheduleTile,
) -> Result<(), CheckError> {
    if tile.y_tile == 0 || tile.x_tile == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "schedule tile must be at least 1x1",
            expected: 1,
            found: 0,
        });
    }
    if tile.y_tile > spec.out_h() {
        return Err(CheckError::PlanShapeMismatch {
            context: "schedule tile taller than the output",
            expected: spec.out_h(),
            found: tile.y_tile,
        });
    }
    if tile.x_tile > spec.out_w() {
        return Err(CheckError::PlanShapeMismatch {
            context: "schedule tile wider than the output",
            expected: spec.out_w(),
            found: tile.x_tile,
        });
    }
    if tile.y_tile > 1 {
        let working_set = working_set_elems(spec, tile);
        if working_set > L1_BUDGET_ELEMS {
            return Err(CheckError::BudgetExceeded {
                context: "cache-tile L1 working set",
                used: working_set,
                budget: L1_BUDGET_ELEMS,
            });
        }
        let pages = pages_touched(spec, tile);
        if pages > TLB_BUDGET_PAGES {
            return Err(CheckError::BudgetExceeded {
                context: "cache-tile TLB pages",
                used: pages,
                budget: TLB_BUDGET_PAGES,
            });
        }
    }
    interp.proved(3);
    Ok(())
}

/// Elements one cache tile keeps live: its input halo, its output tile, and
/// the kernel. Mirrors the schedule generator's cost model.
fn working_set_elems(spec: &ConvSpec, tile: ScheduleTile) -> usize {
    let input_tile = (tile.y_tile + spec.ky() - 1) * (tile.x_tile + spec.kx() - 1);
    input_tile + tile.y_tile * tile.x_tile + spec.ky() * spec.kx()
}

/// Average pages one cache tile touches. Mirrors the schedule generator's
/// TLB cost model (half-page expectation per row segment).
fn pages_touched(spec: &ConvSpec, tile: ScheduleTile) -> usize {
    let row_pages = |w: usize| w / PAGE_ELEMS + 2;
    let input_rows = tile.y_tile + spec.ky() - 1;
    input_rows * row_pages(tile.x_tile + spec.kx() - 1) / 2
        + tile.y_tile * row_pages(tile.x_tile) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ConvSpec {
        ConvSpec::square(32, 16, 8, 5, 1)
    }

    #[test]
    fn budget_tile_accepted() {
        let mut interp = Interp::default();
        check_register_tile(&mut interp, &spec(), RegisterTile { rx: 2, ry: 6 }).unwrap();
        check_schedule_tile(&mut interp, &spec(), ScheduleTile { y_tile: 4, x_tile: 28 }).unwrap();
    }

    #[test]
    fn oversized_register_tile_rejected() {
        let mut interp = Interp::default();
        let err =
            check_register_tile(&mut interp, &spec(), RegisterTile { rx: 4, ry: 4 }).unwrap_err();
        assert!(matches!(err, CheckError::BudgetExceeded { used: 16, budget: 12, .. }));
    }

    #[test]
    fn register_tile_taller_than_output_rejected() {
        let small = ConvSpec::square(8, 4, 2, 3, 1); // 6x6 output
        let mut interp = Interp::default();
        let err =
            check_register_tile(&mut interp, &small, RegisterTile { rx: 1, ry: 12 }).unwrap_err();
        assert!(matches!(err, CheckError::PlanShapeMismatch { found: 12, .. }));
    }

    #[test]
    fn grown_schedule_tile_over_tlb_rejected() {
        // 28x28 output: a tile the full height of the output touches 32 pages
        // under the half-page model, over the 16-entry budget.
        let mut interp = Interp::default();
        let err =
            check_schedule_tile(&mut interp, &spec(), ScheduleTile { y_tile: 28, x_tile: 28 })
                .unwrap_err();
        assert!(matches!(err, CheckError::BudgetExceeded { context: "cache-tile TLB pages", .. }));
    }

    #[test]
    fn grown_schedule_tile_over_l1_rejected() {
        // 76x76 output: a 60-row tile keeps a ~5000-element input halo live.
        let wide = ConvSpec::square(80, 4, 1, 5, 1);
        let mut interp = Interp::default();
        let err = check_schedule_tile(&mut interp, &wide, ScheduleTile { y_tile: 60, x_tile: 76 })
            .unwrap_err();
        assert!(matches!(
            err,
            CheckError::BudgetExceeded { context: "cache-tile L1 working set", .. }
        ));
    }

    #[test]
    fn single_row_fallback_tile_always_accepted() {
        let mut interp = Interp::default();
        check_schedule_tile(&mut interp, &spec(), ScheduleTile { y_tile: 1, x_tile: 28 }).unwrap();
    }
}
