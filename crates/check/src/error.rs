//! Typed verification failures naming the offending access.

use std::fmt;

/// The buffer an access range was proved (or failed to prove) against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Buf {
    /// The layer input tensor (CHW) or its HWC staging copy.
    Input,
    /// The layer weight tensor (or a permuted copy of it).
    Weights,
    /// The layer output tensor.
    Output,
    /// The input-gradient tensor written by backward-data.
    GradIn,
    /// The output-gradient tensor read by backward.
    GradOut,
    /// The weight-gradient tensor written by backward-weights.
    GradWeights,
    /// `ConvScratch::mat_a` (unfold / gather / transpose staging).
    MatA,
    /// `ConvScratch::mat_b` (backward-data unfolded gradient).
    MatB,
    /// `ConvScratch::hwc_in` (HWC / phase-transformed input staging).
    HwcIn,
    /// `ConvScratch::hwc_out` (HWC output staging).
    HwcOut,
    /// `ConvScratch::wperm` (permuted weight / weight-gradient staging).
    Wperm,
}

impl Buf {
    /// Stable short name used in error messages and telemetry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Buf::Input => "input",
            Buf::Weights => "weights",
            Buf::Output => "output",
            Buf::GradIn => "grad_in",
            Buf::GradOut => "grad_out",
            Buf::GradWeights => "grad_weights",
            Buf::MatA => "scratch.mat_a",
            Buf::MatB => "scratch.mat_b",
            Buf::HwcIn => "scratch.hwc_in",
            Buf::HwcOut => "scratch.hwc_out",
            Buf::Wperm => "scratch.wperm",
        }
    }
}

impl fmt::Display for Buf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A plan was proved unsafe (or inconsistent with its layer spec); nothing ran.
///
/// Every variant names the construct that failed so the rejection can be logged
/// and acted on without reproducing the abstract interpretation by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// A symbolically computed access range `[lo, hi)` escapes the buffer.
    OutOfBounds {
        /// Buffer the access targets.
        buffer: Buf,
        /// Which access expression in the plan produced the range.
        context: &'static str,
        /// Lowest index the plan would touch.
        lo: usize,
        /// One past the highest index the plan would touch.
        hi: usize,
        /// Declared length of the buffer.
        len: usize,
    },
    /// A partition of an output buffer leaves some element unwritten.
    IncompleteCover {
        /// Buffer the partition targets.
        buffer: Buf,
        /// Which partition in the plan is incomplete.
        context: &'static str,
        /// First index no worker/tile covers.
        missing: usize,
        /// Declared length of the buffer.
        len: usize,
    },
    /// Two parallel workers would write overlapping output regions (a data race).
    OverlappingWorkers {
        /// Buffer both workers write.
        buffer: Buf,
        /// Which parallel split in the plan overlaps.
        context: &'static str,
        /// First worker index.
        worker_a: usize,
        /// Second worker index.
        worker_b: usize,
        /// First worker's write range `[lo, hi)`.
        a: (usize, usize),
        /// Second worker's write range `[lo, hi)`.
        b: (usize, usize),
    },
    /// A plan's high-water scratch footprint exceeds the reserved capacity.
    ScratchOverflow {
        /// Scratch buffer that would need to grow (i.e. allocate) mid-run.
        buffer: Buf,
        /// Which staging step in the plan needs the capacity.
        context: &'static str,
        /// Elements the plan requires.
        required: usize,
        /// Elements the `ConvScratch` reservation provides.
        reserved: usize,
    },
    /// A plan parameter disagrees with what the layer spec implies.
    PlanShapeMismatch {
        /// Which parameter is inconsistent.
        context: &'static str,
        /// Value the spec implies.
        expected: usize,
        /// Value the plan carries.
        found: usize,
    },
    /// A plan exceeds a hardware budget the generator is required to respect.
    BudgetExceeded {
        /// Which budget (accumulator registers, L1 working set, TLB pages).
        context: &'static str,
        /// Amount the plan uses.
        used: usize,
        /// The budget ceiling.
        budget: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::OutOfBounds { buffer, context, lo, hi, len } => {
                write!(f, "{context}: access range [{lo}, {hi}) escapes {buffer} of length {len}")
            }
            CheckError::IncompleteCover { buffer, context, missing, len } => write!(
                f,
                "{context}: partition of {buffer} (length {len}) never writes index {missing}"
            ),
            CheckError::OverlappingWorkers { buffer, context, worker_a, worker_b, a, b } => {
                write!(
                    f,
                    "{context}: workers {worker_a} and {worker_b} write overlapping ranges \
                     [{}, {}) and [{}, {}) of {buffer}",
                    a.0, a.1, b.0, b.1
                )
            }
            CheckError::ScratchOverflow { buffer, context, required, reserved } => write!(
                f,
                "{context}: needs {required} elements of {buffer} but only {reserved} reserved"
            ),
            CheckError::PlanShapeMismatch { context, expected, found } => {
                write!(f, "{context}: plan carries {found}, spec implies {expected}")
            }
            CheckError::BudgetExceeded { context, used, budget } => {
                write!(f, "{context}: plan uses {used}, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Stable short tag for a rejection, suitable for telemetry.
impl CheckError {
    /// One-word classification of the failure (variant name in kebab case).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CheckError::OutOfBounds { .. } => "out-of-bounds",
            CheckError::IncompleteCover { .. } => "incomplete-cover",
            CheckError::OverlappingWorkers { .. } => "overlapping-workers",
            CheckError::ScratchOverflow { .. } => "scratch-overflow",
            CheckError::PlanShapeMismatch { .. } => "plan-shape-mismatch",
            CheckError::BudgetExceeded { .. } => "budget-exceeded",
        }
    }
}
