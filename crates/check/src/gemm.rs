//! Unfold + GEMM plan checks: operand dimension consistency and the
//! disjointness / coverage proof for Parallel-GEMM's row-band split.

use crate::error::{Buf, CheckError};
use crate::interval::Span;
use crate::Interp;
use spg_convnet::ConvSpec;

/// The row bands `parallel_gemm_slice` assigns to its workers for an `m`-row
/// output and `threads` requested workers: `workers = threads.min(m)` bands of
/// `ceil(m / workers)` rows, the last one truncated. Public so property tests
/// can mutate the bands and feed them back through [`verify_row_bands`].
#[must_use]
pub fn row_bands(m: usize, threads: usize) -> Vec<(usize, usize)> {
    if m == 0 || threads == 0 {
        return Vec::new();
    }
    let workers = threads.min(m);
    let band = m.div_ceil(workers);
    (0..workers)
        .map(|w| {
            let row0 = (w * band).min(m);
            (row0, ((w + 1) * band).min(m))
        })
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Proves a set of half-open row bands over an `m x n` row-major buffer is a
/// race-free partition: every band in-bounds, pairwise disjoint, and jointly
/// covering all `m` rows. Public entry for tests and external auditors.
pub fn verify_row_bands(
    buffer: Buf,
    context: &'static str,
    m: usize,
    n: usize,
    bands: &[(usize, usize)],
) -> Result<crate::CheckReport, CheckError> {
    let mut interp = Interp::default();
    check_row_bands(&mut interp, buffer, context, m, n, bands)?;
    Ok(interp.report)
}

/// Proves a set of half-open row bands over an `m x n` row-major buffer is a
/// race-free partition: every band in-bounds, pairwise disjoint, and jointly
/// covering all `m` rows. Bands are element ranges once scaled by `n`.
pub(crate) fn check_row_bands(
    interp: &mut Interp,
    buffer: Buf,
    context: &'static str,
    m: usize,
    n: usize,
    bands: &[(usize, usize)],
) -> Result<(), CheckError> {
    let len = m * n;
    let spans: Vec<Span> =
        bands.iter().map(|&(lo, hi)| Span::range(lo * n, hi.max(lo) * n)).collect();
    for (w, span) in spans.iter().enumerate() {
        if span.hi > len {
            return Err(CheckError::OutOfBounds { buffer, context, lo: span.lo, hi: span.hi, len });
        }
        for (v, other) in spans.iter().enumerate().skip(w + 1) {
            if span.overlaps(*other) {
                return Err(CheckError::OverlappingWorkers {
                    buffer,
                    context,
                    worker_a: w,
                    worker_b: v,
                    a: (span.lo, span.hi),
                    b: (other.lo, other.hi),
                });
            }
        }
    }
    // Sweep for the first uncovered element.
    let mut sorted = spans.clone();
    sorted.sort_by_key(|s| s.lo);
    let mut next = 0usize;
    for span in sorted.iter().filter(|s| !s.is_empty()) {
        if span.lo > next {
            return Err(CheckError::IncompleteCover { buffer, context, missing: next, len });
        }
        next = next.max(span.hi);
    }
    if next < len {
        return Err(CheckError::IncompleteCover { buffer, context, missing: next, len });
    }
    interp.proved(spans.len());
    interp.report.worker_regions += spans.len();
    Ok(())
}

/// One GEMM operand: the buffer it lives in, its declared length, and its
/// leading dimension.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Operand {
    pub buf: Buf,
    pub len: usize,
    pub ld: usize,
}

/// Proves a `gemm_slice(m, n, k, a, lda, b, ldb, c, ldc)` call in-bounds:
/// mirrors the kernel's own entry asserts, but at plan time, symbolically.
pub(crate) fn check_gemm_dims(
    interp: &mut Interp,
    context: &'static str,
    (m, n, k): (usize, usize, usize),
    a: Operand,
    b: Operand,
    c: Operand,
) -> Result<(), CheckError> {
    if a.ld < k {
        return Err(CheckError::PlanShapeMismatch { context, expected: k, found: a.ld });
    }
    if b.ld < n || c.ld < n {
        return Err(CheckError::PlanShapeMismatch { context, expected: n, found: b.ld.min(c.ld) });
    }
    if m == 0 || n == 0 || k == 0 {
        // Degenerate GEMMs perform no accesses.
        interp.proved(1);
        return Ok(());
    }
    // Row i of A spans [i*lda, i*lda + k); analogous for B (k rows) and C.
    let a_span = Span::iter(m).scale(a.ld).block(k);
    let b_span = Span::iter(k).scale(b.ld).block(n);
    let c_span = Span::iter(m).scale(c.ld).block(n);
    for (operand, span) in [(a, a_span), (b, b_span), (c, c_span)] {
        if span.hi > operand.len {
            return Err(CheckError::OutOfBounds {
                buffer: operand.buf,
                context,
                lo: span.lo,
                hi: span.hi,
                len: operand.len,
            });
        }
        interp.proved(1);
    }
    Ok(())
}

/// Verifies the unfold + GEMM forward plan: unfold staging fits `mat_a`, the
/// GEMM dimensions match the spec, and (for `threads > 1`) the Parallel-GEMM
/// row-band split of the output is a race-free partition.
pub(crate) fn check_forward_gemm(
    interp: &mut Interp,
    spec: &ConvSpec,
    threads: usize,
    cap: &crate::ScratchCapacity,
) -> Result<(), CheckError> {
    if threads == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "unfold GEMM forward worker count",
            expected: 1,
            found: 0,
        });
    }
    let patches = spec.out_h() * spec.out_w();
    let patch_len = spec.weight_shape().per_feature();
    let nf = spec.features();
    interp.capacity(Buf::MatA, "unfold U^T staging", patches * patch_len, cap.mat_a)?;
    // C = W (nf x patch_len) * U^T (patch_len x patches), row bands over C.
    let (m, n, k) = (nf, patches, patch_len);
    check_gemm_dims(
        interp,
        "forward unfold GEMM operands",
        (m, n, k),
        Operand { buf: Buf::Weights, len: spec.weight_shape().len(), ld: k },
        Operand { buf: Buf::MatA, len: patches * patch_len, ld: n },
        Operand { buf: Buf::Output, len: spec.output_shape().len(), ld: n },
    )?;
    if threads > 1 {
        let bands = row_bands(m, threads);
        check_row_bands(interp, Buf::Output, "forward Parallel-GEMM row bands", m, n, &bands)?;
        // Each worker reads the matching A band: rows [row0, row1) of W.
        for &(row0, row1) in &bands {
            let span = Span::range(row0 * k, row1 * k);
            interp.access(Buf::Weights, "forward band weight rows", span, nf * k)?;
        }
    }
    Ok(())
}

/// Verifies the unfold + GEMM backward plan: both the backward-data GEMM
/// (into `mat_b`, folded into `grad_in`) and the backward-weights GEMM.
pub(crate) fn check_backward_gemm(
    interp: &mut Interp,
    spec: &ConvSpec,
    threads: usize,
    cap: &crate::ScratchCapacity,
) -> Result<(), CheckError> {
    if threads == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "unfold GEMM backward worker count",
            expected: 1,
            found: 0,
        });
    }
    let patches = spec.out_h() * spec.out_w();
    let patch_len = spec.weight_shape().per_feature();
    let nf = spec.features();
    let w_len = spec.weight_shape().len();
    let out_len = spec.output_shape().len();

    // Backward-data: E_U (patches x patch_len) = E_O^T (patches x nf) * W.
    interp.capacity(Buf::MatB, "backward-data E_U staging", patches * patch_len, cap.mat_b)?;
    let (m, n, k) = (patches, patch_len, nf);
    if threads > 1 {
        interp.capacity(Buf::MatA, "staged E_O^T transpose", patches * nf, cap.mat_a)?;
        check_gemm_dims(
            interp,
            "backward-data unfold GEMM operands",
            (m, n, k),
            Operand { buf: Buf::MatA, len: patches * nf, ld: k },
            Operand { buf: Buf::Weights, len: w_len, ld: n },
            Operand { buf: Buf::MatB, len: patches * patch_len, ld: n },
        )?;
        let bands = row_bands(m, threads);
        check_row_bands(interp, Buf::MatB, "backward-data Parallel-GEMM row bands", m, n, &bands)?;
    } else {
        // Serial path computes A^T B with A = E_O (nf x patches): prove the
        // operand extents the transposed kernel reads.
        interp.access(Buf::GradOut, "backward-data E_O read", Span::iter(k * m), out_len)?;
        interp.access(Buf::Weights, "backward-data weight read", Span::iter(k * n), w_len)?;
        interp.proved(1);
    }
    // Fold scatters E_U back into CHW grad_in along the patch geometry:
    // dst = (c*in_h + y*sy + ky)*in_w + x*sx + kx.
    let fold_span = Span::iter(spec.in_c())
        .scale(spec.in_h())
        .plus(Span::iter(spec.out_h()).scale(spec.sy()).plus(Span::iter(spec.ky())))
        .scale(spec.in_w())
        .plus(Span::iter(spec.out_w()).scale(spec.sx()).plus(Span::iter(spec.kx())));
    interp.access(
        Buf::GradIn,
        "backward-data fold scatter",
        fold_span,
        spec.input_shape().len(),
    )?;

    // Backward-weights: dW (nf x patch_len) = E_O (nf x patches) * U.
    interp.capacity(Buf::MatA, "unfold U staging", patches * patch_len, cap.mat_a)?;
    let (m, n, k) = (nf, patch_len, patches);
    check_gemm_dims(
        interp,
        "backward-weights unfold GEMM operands",
        (m, n, k),
        Operand { buf: Buf::GradOut, len: out_len, ld: k },
        Operand { buf: Buf::MatA, len: patches * patch_len, ld: n },
        Operand { buf: Buf::GradWeights, len: w_len, ld: n },
    )?;
    if threads > 1 {
        let bands = row_bands(m, threads);
        check_row_bands(
            interp,
            Buf::GradWeights,
            "backward-weights Parallel-GEMM row bands",
            m,
            n,
            &bands,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_rows_exactly() {
        for m in [1usize, 5, 6, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 4, 7, 64] {
                let bands = row_bands(m, threads);
                let mut interp = Interp::default();
                check_row_bands(&mut interp, Buf::Output, "test bands", m, 3, &bands)
                    .unwrap_or_else(|e| panic!("m={m} threads={threads}: {e}"));
                assert!(bands.len() <= threads.min(m));
            }
        }
    }

    #[test]
    fn overlapping_bands_rejected() {
        let mut interp = Interp::default();
        let err =
            check_row_bands(&mut interp, Buf::Output, "t", 8, 2, &[(0, 5), (4, 8)]).unwrap_err();
        assert!(matches!(err, CheckError::OverlappingWorkers { worker_a: 0, worker_b: 1, .. }));
    }

    #[test]
    fn gapped_bands_rejected() {
        let mut interp = Interp::default();
        let err =
            check_row_bands(&mut interp, Buf::Output, "t", 8, 2, &[(0, 3), (4, 8)]).unwrap_err();
        assert!(matches!(err, CheckError::IncompleteCover { missing: 6, .. }));
    }

    #[test]
    fn escaping_band_rejected() {
        let mut interp = Interp::default();
        let err =
            check_row_bands(&mut interp, Buf::Output, "t", 8, 2, &[(0, 4), (4, 9)]).unwrap_err();
        assert!(matches!(err, CheckError::OutOfBounds { hi: 18, len: 16, .. }));
    }

    #[test]
    fn short_operand_rejected() {
        let mut interp = Interp::default();
        let err = check_gemm_dims(
            &mut interp,
            "t",
            (4, 4, 4),
            Operand { buf: Buf::Weights, len: 15, ld: 4 },
            Operand { buf: Buf::MatA, len: 16, ld: 4 },
            Operand { buf: Buf::Output, len: 16, ld: 4 },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CheckError::OutOfBounds { buffer: Buf::Weights, hi: 16, len: 15, .. }
        ));
    }
}
