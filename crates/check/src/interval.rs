//! Interval arithmetic over affine, monotone index expressions.
//!
//! Every access the kernels make has the shape `((a*i + b)*S1 + c*j + d)*S2 + ...`
//! where the loop variables `i, j, ...` range over half-open intervals and every
//! coefficient is non-negative. For such monotone affine forms, the exact range
//! of the flattened index is obtained by composing the ranges of the terms, so a
//! tiny interval domain is a *complete* abstract interpretation: no widening is
//! ever needed and there are no false positives.

/// A half-open interval `[lo, hi)` of flat buffer indices.
///
/// The empty interval is represented with `hi <= lo`; all operations treat it
/// as absorbing (an empty loop performs no accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Lowest index touched (inclusive).
    pub lo: usize,
    /// One past the highest index touched (exclusive).
    pub hi: usize,
}

impl Span {
    /// The interval of a loop variable ranging over `0..n`.
    #[must_use]
    pub fn iter(n: usize) -> Self {
        Span { lo: 0, hi: n }
    }

    /// A single index.
    #[must_use]
    pub fn point(i: usize) -> Self {
        Span { lo: i, hi: i + 1 }
    }

    /// An explicit half-open `[lo, hi)` interval.
    #[must_use]
    pub fn range(lo: usize, hi: usize) -> Self {
        Span { lo, hi }
    }

    /// Whether the interval contains no indices.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }

    /// Range of `k * v` for `v` in `self`. Exact for the endpoints; the interior
    /// is an over-approximation (stride holes), which is sound for bounds checks.
    #[must_use]
    pub fn scale(self, k: usize) -> Self {
        if self.is_empty() || k == 0 {
            return Span { lo: 0, hi: 0 };
        }
        Span { lo: self.lo * k, hi: (self.hi - 1) * k + 1 }
    }

    /// Range of `v + d` for `v` in `self`.
    #[must_use]
    pub fn offset(self, d: usize) -> Self {
        if self.is_empty() {
            return self;
        }
        Span { lo: self.lo + d, hi: self.hi + d }
    }

    /// Range of `u + v` for independent `u` in `self`, `v` in `other`.
    #[must_use]
    pub fn plus(self, other: Span) -> Self {
        if self.is_empty() {
            return self;
        }
        if other.is_empty() {
            return other;
        }
        Span { lo: self.lo + other.lo, hi: (self.hi - 1) + (other.hi - 1) + 1 }
    }

    /// Range of a contiguous read of `n` elements starting at `v` in `self`.
    #[must_use]
    pub fn block(self, n: usize) -> Self {
        self.plus(Span::iter(n))
    }

    /// Smallest interval containing both operands.
    #[must_use]
    pub fn hull(self, other: Span) -> Self {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Span { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Whether two half-open intervals share any index.
    #[must_use]
    pub fn overlaps(self, other: Span) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi && other.lo < self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_composition_matches_enumeration() {
        // index = (y*3 + ky)*10 + x*2 + kx  for y in 0..4, ky in 0..3, x in 0..5, kx in 0..2
        let span = Span::iter(4)
            .scale(3)
            .plus(Span::iter(3))
            .scale(10)
            .plus(Span::iter(5).scale(2).plus(Span::iter(2)));
        let mut lo = usize::MAX;
        let mut hi = 0;
        for y in 0..4usize {
            for ky in 0..3 {
                for x in 0..5 {
                    for kx in 0..2 {
                        let i = (y * 3 + ky) * 10 + x * 2 + kx;
                        lo = lo.min(i);
                        hi = hi.max(i + 1);
                    }
                }
            }
        }
        assert_eq!(span.lo, lo);
        assert_eq!(span.hi, hi);
    }

    #[test]
    fn empty_spans_absorb() {
        let empty = Span::iter(0);
        assert!(empty.is_empty());
        assert!(empty.scale(5).is_empty());
        assert!(empty.plus(Span::iter(3)).is_empty());
        assert!(Span::iter(3).plus(empty).is_empty());
        assert!(!empty.overlaps(Span::iter(10)));
        assert_eq!(empty.hull(Span::point(4)), Span::point(4));
    }

    #[test]
    fn overlap_is_strict_on_half_open_boundaries() {
        assert!(!Span::range(0, 4).overlaps(Span::range(4, 8)));
        assert!(Span::range(0, 5).overlaps(Span::range(4, 8)));
    }

    #[test]
    fn block_extends_hi() {
        assert_eq!(Span::point(7).block(3), Span::range(7, 10));
    }
}
