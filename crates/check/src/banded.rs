//! Verification of banded (hybrid intra-layer) forward decompositions.
//!
//! A [`ForwardPlan::StencilBanded`] plan splits one output dimension —
//! rows, columns, or features — into contiguous per-worker bands, each of
//! which runs the wide register-tiled stencil on a restricted sub-spec
//! (Jia et al.'s spatial/channel parallelism applied per layer). The
//! judgments here are:
//!
//! * the bands **disjointly cover** the split extent (race-free, complete);
//! * every band's sub-spec is **exactly the restriction** of the parent
//!   spec to its range (re-derived here, never trusted);
//! * the band's staged input/output slices are **in-bounds** in the parent
//!   tensors and **within the parent scratch envelope**;
//! * each band's inner plan is the **wide tiled stencil** (the narrow
//!   shifted-GEMM path accumulates in a different order and would break
//!   the banded path's bit-identity contract) and itself verifies against
//!   the band's own reserved scratch capacity.

use crate::capacity::ScratchCapacity;
use crate::error::{Buf, CheckError};
use crate::gemm::check_row_bands;
use crate::interval::Span;
use crate::plan::{BandDim, BandPlan, ForwardPlan};
use crate::{stencil, Interp};
use spg_convnet::ConvSpec;

/// The split extent of `spec` along `dim`, in the dimension's own units.
pub(crate) fn band_extent(spec: &ConvSpec, dim: BandDim) -> usize {
    match dim {
        BandDim::YRows => spec.out_h(),
        BandDim::XCols => spec.out_w(),
        BandDim::OutChannels => spec.features(),
    }
}

/// Re-derives the sub-spec a band `[lo, hi)` of `spec` along `dim` must
/// execute: the restriction of the convolution to that output range. The
/// input extent of a spatial band is the exact stencil footprint
/// `(len - 1) * stride + kernel`. Public so planners lower the very
/// restriction the checker re-derives instead of a reconstruction of it.
pub fn band_sub_spec(
    spec: &ConvSpec,
    dim: BandDim,
    lo: usize,
    hi: usize,
) -> Result<ConvSpec, CheckError> {
    let len = hi - lo;
    let derived = match dim {
        BandDim::YRows => ConvSpec::new(
            spec.in_c(),
            (len - 1) * spec.sy() + spec.ky(),
            spec.in_w(),
            spec.features(),
            spec.ky(),
            spec.kx(),
            spec.sy(),
            spec.sx(),
        ),
        BandDim::XCols => ConvSpec::new(
            spec.in_c(),
            spec.in_h(),
            (len - 1) * spec.sx() + spec.kx(),
            spec.features(),
            spec.ky(),
            spec.kx(),
            spec.sy(),
            spec.sx(),
        ),
        BandDim::OutChannels => ConvSpec::new(
            spec.in_c(),
            spec.in_h(),
            spec.in_w(),
            len,
            spec.ky(),
            spec.kx(),
            spec.sy(),
            spec.sx(),
        ),
    };
    derived.map_err(|_| CheckError::PlanShapeMismatch {
        context: "banded stencil band restriction is not a valid convolution",
        expected: 1,
        found: 0,
    })
}

/// Compares a claimed band sub-spec against the re-derived restriction,
/// field by field, so a mismatch names the offending dimension.
fn check_sub_spec(
    interp: &mut Interp,
    claimed: &ConvSpec,
    expected: &ConvSpec,
) -> Result<(), CheckError> {
    let fields: [(&'static str, usize, usize); 8] = [
        ("band sub-spec input channels", expected.in_c(), claimed.in_c()),
        ("band sub-spec input height", expected.in_h(), claimed.in_h()),
        ("band sub-spec input width", expected.in_w(), claimed.in_w()),
        ("band sub-spec features", expected.features(), claimed.features()),
        ("band sub-spec kernel height", expected.ky(), claimed.ky()),
        ("band sub-spec kernel width", expected.kx(), claimed.kx()),
        ("band sub-spec y stride", expected.sy(), claimed.sy()),
        ("band sub-spec x stride", expected.sx(), claimed.sx()),
    ];
    for (context, expected, found) in fields {
        if found != expected {
            return Err(CheckError::PlanShapeMismatch { context, expected, found });
        }
    }
    interp.proved(fields.len());
    Ok(())
}

/// Verifies a [`ForwardPlan::StencilBanded`] decomposition of `spec`.
#[allow(clippy::too_many_lines)]
pub(crate) fn check_forward_banded(
    interp: &mut Interp,
    spec: &ConvSpec,
    dim: BandDim,
    bands: &[BandPlan],
    cap: &ScratchCapacity,
) -> Result<(), CheckError> {
    if bands.len() < 2 {
        // A one-band "decomposition" is the sequential plan wearing a
        // costume; planners must emit the plain tiled plan instead.
        return Err(CheckError::PlanShapeMismatch {
            context: "banded stencil requires at least two worker bands",
            expected: 2,
            found: bands.len(),
        });
    }
    for band in bands {
        let (lo, hi) = band.range;
        if hi <= lo {
            return Err(CheckError::PlanShapeMismatch {
                context: "banded stencil band range must be non-empty",
                expected: lo + 1,
                found: hi,
            });
        }
    }

    // Disjoint-cover proof over the split extent (unit stride: the ranges
    // are in output rows / columns / features directly).
    let extent = band_extent(spec, dim);
    let cover_context = match dim {
        BandDim::YRows => "banded stencil y-band output rows",
        BandDim::XCols => "banded stencil x-band output columns",
        BandDim::OutChannels => "banded stencil out-channel feature slices",
    };
    let ranges: Vec<(usize, usize)> = bands.iter().map(|b| b.range).collect();
    check_row_bands(interp, Buf::Output, cover_context, extent, 1, &ranges)?;

    for band in bands {
        let (lo, hi) = band.range;
        let expected = band_sub_spec(spec, dim, lo, hi)?;
        check_sub_spec(interp, &band.spec, &expected)?;

        match dim {
            BandDim::YRows => {
                // The worker stages input rows [lo*sy, lo*sy + in_h') of
                // every channel; prove the slice inside the parent input
                // and the staging buffers within the parent envelope.
                let row_lo = lo * spec.sy();
                interp.access(
                    Buf::Input,
                    "banded stencil y-band input rows",
                    Span::range(row_lo, row_lo + expected.in_h()),
                    spec.in_h(),
                )?;
                interp.capacity(
                    Buf::HwcIn,
                    "banded stencil y-band staged input",
                    expected.input_shape().len(),
                    cap.hwc_in.max(spec.input_shape().len()),
                )?;
                interp.capacity(
                    Buf::HwcOut,
                    "banded stencil y-band staged output",
                    expected.output_shape().len(),
                    cap.hwc_out.max(spec.output_shape().len()),
                )?;
            }
            BandDim::XCols => {
                let col_lo = lo * spec.sx();
                interp.access(
                    Buf::Input,
                    "banded stencil x-band input columns",
                    Span::range(col_lo, col_lo + expected.in_w()),
                    spec.in_w(),
                )?;
                interp.capacity(
                    Buf::HwcIn,
                    "banded stencil x-band staged input",
                    expected.input_shape().len(),
                    cap.hwc_in.max(spec.input_shape().len()),
                )?;
                interp.capacity(
                    Buf::HwcOut,
                    "banded stencil x-band staged output",
                    expected.output_shape().len(),
                    cap.hwc_out.max(spec.output_shape().len()),
                )?;
            }
            BandDim::OutChannels => {
                // No staging: the worker reads a weight slice and writes a
                // disjoint plane slice of the parent output directly.
                let per_feature = spec.weight_shape().per_feature();
                interp.access(
                    Buf::Weights,
                    "banded stencil out-channel weight slice",
                    Span::range(lo * per_feature, hi * per_feature),
                    spec.weight_shape().len(),
                )?;
                let plane = spec.out_h() * spec.out_w();
                interp.access(
                    Buf::Output,
                    "banded stencil out-channel output slice",
                    Span::range(lo * plane, hi * plane),
                    spec.output_shape().len(),
                )?;
            }
        }

        // Each band must run the wide tiled stencil — the narrow
        // shifted-GEMM path has a different accumulation order, and nested
        // banding would hide worker counts from the cover proof above.
        match &band.plan {
            ForwardPlan::StencilTiled { lanes, tile_rows, cache_rows, x_tiles, phased } => {
                let band_cap = ScratchCapacity::reserved_for(&band.spec);
                stencil::check_forward_tiled(
                    interp,
                    &band.spec,
                    *lanes,
                    *tile_rows,
                    *cache_rows,
                    x_tiles,
                    *phased,
                    &band_cap,
                )?;
            }
            _ => {
                return Err(CheckError::PlanShapeMismatch {
                    context: "banded stencil bands must run the wide tiled kernel",
                    expected: 1,
                    found: 0,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{XTile, VECTOR_WIDTH};

    /// Mirrors spg-core's x_plan for test plan construction.
    fn tiles_for(out_w: usize) -> Vec<XTile> {
        let mut tiles = Vec::new();
        let mut x = 0;
        while x + 2 * VECTOR_WIDTH <= out_w {
            tiles.push(XTile { x, vectors: 2 });
            x += 2 * VECTOR_WIDTH;
        }
        while x + VECTOR_WIDTH <= out_w {
            tiles.push(XTile { x, vectors: 1 });
            x += VECTOR_WIDTH;
        }
        if x < out_w {
            tiles.push(XTile { x: out_w - VECTOR_WIDTH, vectors: 1 });
        }
        tiles
    }

    fn tiled_plan(spec: &ConvSpec) -> ForwardPlan {
        ForwardPlan::StencilTiled {
            lanes: VECTOR_WIDTH,
            tile_rows: 6,
            cache_rows: 6,
            x_tiles: tiles_for(spec.out_w()),
            phased: spec.sx() > 1,
        }
    }

    fn banded(spec: &ConvSpec, dim: BandDim, ranges: &[(usize, usize)]) -> ForwardPlan {
        let bands = ranges
            .iter()
            .map(|&(lo, hi)| {
                let sub = band_sub_spec(spec, dim, lo, hi).unwrap();
                BandPlan { range: (lo, hi), spec: sub, plan: tiled_plan(&sub) }
            })
            .collect();
        ForwardPlan::StencilBanded { dim, bands }
    }

    fn check(spec: &ConvSpec, plan: &ForwardPlan) -> Result<(), CheckError> {
        let mut interp = Interp::default();
        let cap = ScratchCapacity::reserved_for(spec);
        match plan {
            ForwardPlan::StencilBanded { dim, bands } => {
                check_forward_banded(&mut interp, spec, *dim, bands, &cap)
            }
            _ => panic!("test expects a banded plan"),
        }
    }

    #[test]
    fn valid_bands_verify_on_all_dims() {
        let spec = ConvSpec::square(34, 16, 4, 3, 1); // 32x32 output
        check(&spec, &banded(&spec, BandDim::YRows, &[(0, 16), (16, 32)])).unwrap();
        check(&spec, &banded(&spec, BandDim::XCols, &[(0, 16), (16, 32)])).unwrap();
        check(&spec, &banded(&spec, BandDim::OutChannels, &[(0, 8), (8, 16)])).unwrap();
    }

    #[test]
    fn strided_bands_verify() {
        // Stride 2 in both dimensions: the sub-spec footprint math must
        // account for the stride and the kernel tail.
        let spec = ConvSpec::square(69, 8, 3, 7, 2); // 32x32 output
        check(&spec, &banded(&spec, BandDim::YRows, &[(0, 11), (11, 22), (22, 32)])).unwrap();
        check(&spec, &banded(&spec, BandDim::XCols, &[(0, 16), (16, 32)])).unwrap();
    }

    #[test]
    fn single_band_rejected() {
        let spec = ConvSpec::square(34, 16, 4, 3, 1);
        let err = check(&spec, &banded(&spec, BandDim::YRows, &[(0, 32)])).unwrap_err();
        assert!(matches!(err, CheckError::PlanShapeMismatch { expected: 2, found: 1, .. }));
    }

    #[test]
    fn wrong_sub_spec_rejected() {
        let spec = ConvSpec::square(34, 16, 4, 3, 1);
        let mut plan = banded(&spec, BandDim::YRows, &[(0, 16), (16, 32)]);
        if let ForwardPlan::StencilBanded { bands, .. } = &mut plan {
            // Claim a taller sub-spec than the band's restriction admits.
            bands[0].spec = band_sub_spec(&spec, BandDim::YRows, 0, 20).unwrap();
        }
        let err = check(&spec, &plan).unwrap_err();
        assert!(matches!(
            err,
            CheckError::PlanShapeMismatch { context: "band sub-spec input height", .. }
        ));
    }

    #[test]
    fn narrow_inner_plan_rejected() {
        let spec = ConvSpec::square(34, 16, 4, 3, 1);
        let mut plan = banded(&spec, BandDim::YRows, &[(0, 16), (16, 32)]);
        if let ForwardPlan::StencilBanded { bands, .. } = &mut plan {
            bands[1].plan = ForwardPlan::StencilNarrow;
        }
        let err = check(&spec, &plan).unwrap_err();
        assert!(matches!(
            err,
            CheckError::PlanShapeMismatch {
                context: "banded stencil bands must run the wide tiled kernel",
                ..
            }
        ));
    }

    #[test]
    fn empty_band_rejected() {
        let spec = ConvSpec::square(34, 16, 4, 3, 1);
        let sub = band_sub_spec(&spec, BandDim::YRows, 0, 16).unwrap();
        let plan = ForwardPlan::StencilBanded {
            dim: BandDim::YRows,
            bands: vec![
                BandPlan { range: (0, 16), spec: sub, plan: tiled_plan(&sub) },
                BandPlan { range: (16, 16), spec: sub, plan: tiled_plan(&sub) },
            ],
        };
        let err = check(&spec, &plan).unwrap_err();
        assert!(matches!(
            err,
            CheckError::PlanShapeMismatch {
                context: "banded stencil band range must be non-empty",
                ..
            }
        ));
    }
}
