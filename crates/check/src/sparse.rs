//! CT-CSR pointer-shift backward checks (Eq. 11–15).
//!
//! The sparse backward kernels walk a column-tiled CSR of the output gradient
//! and scatter `nc`-wide weight rows into the input-gradient (backward-data)
//! or weight-gradient (backward-weights) accumulators. The pointer-shift
//! composition means every store address is an affine function of the patch
//! position and the kernel tap — exactly what the interval domain evaluates.

use crate::error::{Buf, CheckError};
use crate::interval::Span;
use crate::Interp;
use spg_convnet::ConvSpec;

/// Verifies the CT-CSR pointer-shift backward plan: staging capacities for
/// both HWC gradients and the permuted weight accumulator, the Eq. 15 scatter
/// ranges, and the `kkfc` weight-block reads.
pub(crate) fn check_backward_sparse(
    interp: &mut Interp,
    spec: &ConvSpec,
    tile_width: usize,
    cap: &crate::ScratchCapacity,
) -> Result<(), CheckError> {
    if tile_width == 0 {
        return Err(CheckError::PlanShapeMismatch {
            context: "CT-CSR feature-tile width must be positive",
            expected: 1,
            found: 0,
        });
    }
    let (nc, in_w) = (spec.in_c(), spec.in_w());
    let (fy, fx, nf) = (spec.ky(), spec.kx(), spec.features());
    let in_len = spec.input_shape().len();
    let out_len = spec.output_shape().len();
    let w_len = spec.weight_shape().len();

    // Staging: E_O in HWC (CT-CSR source), E_I accumulator in HWC, dW in kkfc.
    interp.capacity(Buf::HwcOut, "CT-CSR E_O HWC staging", out_len, cap.hwc_out)?;
    interp.capacity(Buf::HwcIn, "pointer-shift E_I accumulator", in_len, cap.hwc_in)?;
    interp.capacity(Buf::Wperm, "kkfc weight-gradient accumulator", w_len, cap.wperm)?;

    // Column tiles cover the nf features: tile t holds columns
    // [t*tile_width, min((t+1)*tile_width, nf)) — in-bounds by construction,
    // proved here so a mutated tiling cannot smuggle a wider tile through.
    let tiles = nf.div_ceil(tile_width);
    let last_lo = (tiles - 1) * tile_width;
    if last_lo >= nf {
        return Err(CheckError::PlanShapeMismatch {
            context: "CT-CSR column tiling exceeds the feature count",
            expected: nf,
            found: last_lo,
        });
    }
    interp.access(Buf::HwcOut, "CT-CSR column-tile features", Span::iter(nf), nf)?;

    // Eq. 15 scatter: dst = ((yp*sy + ky)*in_w + xp*sx + kx)*nc + 0..nc,
    // shared by the backward-data store and the backward-weights gather.
    let shift = Span::iter(spec.out_h())
        .scale(spec.sy())
        .plus(Span::iter(fy))
        .scale(in_w)
        .plus(Span::iter(spec.out_w()).scale(spec.sx()).plus(Span::iter(fx)))
        .scale(nc)
        .block(nc);
    interp.access(Buf::HwcIn, "Eq. 15 pointer-shift scatter", shift, in_len)?;

    // kkfc weight rows: base = ((ky*fx + kx)*nf + f)*nc, read/accumulated
    // nc wide. Covers both the backward-data weight read and the
    // backward-weights gradient store (same permuted layout).
    let w_rows = Span::iter(fy)
        .scale(fx)
        .plus(Span::iter(fx))
        .scale(nf)
        .plus(Span::iter(nf))
        .scale(nc)
        .block(nc);
    interp.access(Buf::Weights, "kkfc pointer-shift weight rows", w_rows, w_len)?;
    interp.access(Buf::Wperm, "kkfc weight-gradient rows", w_rows, w_len)?;

    // Final transforms back to the caller's layouts.
    interp.access(Buf::GradIn, "E_I HWC-to-CHW store", Span::iter(in_len), in_len)?;
    interp.access(Buf::GradWeights, "dW kkfc-to-fckk store", Span::iter(w_len), w_len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchCapacity;

    #[test]
    fn pointer_shift_plan_verifies() {
        for spec in [
            ConvSpec::square(32, 16, 8, 5, 1),
            ConvSpec::square(31, 7, 3, 3, 2),
            ConvSpec::new(3, 13, 27, 5, 2, 4, 1, 3).unwrap(),
        ] {
            let cap = ScratchCapacity::reserved_for(&spec);
            let mut interp = Interp::default();
            check_backward_sparse(&mut interp, &spec, 8, &cap)
                .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        }
    }

    #[test]
    fn zero_tile_width_rejected() {
        let spec = ConvSpec::square(32, 16, 8, 5, 1);
        let cap = ScratchCapacity::reserved_for(&spec);
        let mut interp = Interp::default();
        let err = check_backward_sparse(&mut interp, &spec, 0, &cap).unwrap_err();
        assert!(matches!(err, CheckError::PlanShapeMismatch { found: 0, .. }));
    }

    #[test]
    fn undersized_accumulator_rejected() {
        let spec = ConvSpec::square(32, 16, 8, 5, 1);
        let mut cap = ScratchCapacity::reserved_for(&spec);
        cap.hwc_in = spec.input_shape().len() - 1;
        let mut interp = Interp::default();
        let err = check_backward_sparse(&mut interp, &spec, 8, &cap).unwrap_err();
        assert!(matches!(err, CheckError::ScratchOverflow { buffer: Buf::HwcIn, .. }));
    }
}
