//! `spg-check`: plan-time static verification of spg-CNN execution plans.
//!
//! The paper's performance comes from *generated* code over raw buffers —
//! register-tiled stencil basic blocks (Sec. 4.3), cache/TLB-aware schedules,
//! CT-CSR pointer-shifting sparse composition (Eq. 11–15), and Parallel-GEMM
//! row-band splits. A wrong plan there is silent memory corruption, not a
//! test failure. This crate closes that gap with an abstract interpretation
//! over the plan IR: every read/write access range is computed symbolically
//! (exact interval arithmetic over the kernels' monotone affine index
//! expressions) and proved
//!
//! * **in-bounds** for the declared tensor shapes,
//! * **disjoint** across parallel workers (race-free by construction),
//! * **within capacity** of the reserved [`ConvScratch`] staging buffers, and
//! * **consistent** with the layer spec's loop bounds and strides,
//!
//! returning a typed [`CheckError`] naming the offending access instead of
//! executing. Verification runs at plan time (microseconds per layer), never
//! per sample.
//!
//! [`ConvScratch`]: spg_convnet::workspace::ConvScratch

mod banded;
pub mod capacity;
pub mod error;
pub mod gemm;
pub mod interval;
pub mod plan;
mod sparse;
mod stencil;

pub use banded::band_sub_spec;
pub use capacity::ScratchCapacity;
pub use error::{Buf, CheckError};
pub use interval::Span;
pub use plan::{
    BackwardPlan, BandDim, BandPlan, ConvPlan, ForwardPlan, RegisterTile, ScheduleTile, XTile,
    ACCUMULATOR_BUDGET, L1_BUDGET_ELEMS, PAGE_ELEMS, TLB_BUDGET_PAGES, VECTOR_WIDTH,
};

use spg_convnet::ConvSpec;

/// What a successful verification proved, for telemetry and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Symbolic access ranges and consistency facts proved in-bounds.
    pub accesses_proved: usize,
    /// Parallel worker regions proved disjoint and covering.
    pub worker_regions: usize,
}

impl CheckReport {
    /// Accumulates another report (e.g. across layers of a network).
    pub fn absorb(&mut self, other: CheckReport) {
        self.accesses_proved += other.accesses_proved;
        self.worker_regions += other.worker_regions;
    }
}

/// The abstract interpreter's accumulator: counts proved facts and performs
/// the two primitive judgments (range-in-bounds, capacity-covers).
#[derive(Debug, Default)]
pub(crate) struct Interp {
    pub report: CheckReport,
}

impl Interp {
    /// Records `n` facts proved by plain arithmetic (no range involved).
    fn proved(&mut self, n: usize) {
        self.report.accesses_proved += n;
    }

    /// Judges a symbolic access range against a buffer length.
    fn access(
        &mut self,
        buffer: Buf,
        context: &'static str,
        span: Span,
        len: usize,
    ) -> Result<(), CheckError> {
        if span.hi > len {
            return Err(CheckError::OutOfBounds { buffer, context, lo: span.lo, hi: span.hi, len });
        }
        self.proved(1);
        Ok(())
    }

    /// Judges a required staging footprint against reserved capacity.
    fn capacity(
        &mut self,
        buffer: Buf,
        context: &'static str,
        required: usize,
        reserved: usize,
    ) -> Result<(), CheckError> {
        if required > reserved {
            return Err(CheckError::ScratchOverflow { buffer, context, required, reserved });
        }
        self.proved(1);
        Ok(())
    }
}

/// Verifies a forward plan (plus the generated register tile and schedule
/// tile) against `spec` and the scratch capacities `cap`.
pub fn verify_forward(
    spec: &ConvSpec,
    forward: &ForwardPlan,
    register_tile: RegisterTile,
    schedule: ScheduleTile,
    cap: &ScratchCapacity,
) -> Result<CheckReport, CheckError> {
    let mut interp = Interp::default();
    plan::check_register_tile(&mut interp, spec, register_tile)?;
    plan::check_schedule_tile(&mut interp, spec, schedule)?;
    match forward {
        ForwardPlan::StencilTiled { lanes, tile_rows, cache_rows, x_tiles, phased } => {
            stencil::check_forward_tiled(
                &mut interp,
                spec,
                *lanes,
                *tile_rows,
                *cache_rows,
                x_tiles,
                *phased,
                cap,
            )?;
        }
        ForwardPlan::StencilNarrow => stencil::check_forward_narrow(&mut interp, spec, cap)?,
        ForwardPlan::StencilBanded { dim, bands } => {
            banded::check_forward_banded(&mut interp, spec, *dim, bands, cap)?;
        }
        ForwardPlan::UnfoldGemm { threads } => {
            gemm::check_forward_gemm(&mut interp, spec, *threads, cap)?;
        }
    }
    Ok(interp.report)
}

/// Verifies a backward plan against `spec` and the scratch capacities `cap`.
pub fn verify_backward(
    spec: &ConvSpec,
    backward: &BackwardPlan,
    cap: &ScratchCapacity,
) -> Result<CheckReport, CheckError> {
    let mut interp = Interp::default();
    match backward {
        BackwardPlan::SparsePointerShift { tile_width } => {
            sparse::check_backward_sparse(&mut interp, spec, *tile_width, cap)?;
        }
        BackwardPlan::UnfoldGemm { threads } => {
            gemm::check_backward_gemm(&mut interp, spec, *threads, cap)?;
        }
    }
    Ok(interp.report)
}

/// Verifies a complete lowered layer plan: both phases plus the generated
/// tile shapes. This is the entry point `CompiledConv` construction and the
/// autotuner call before a plan is measured or deployed.
pub fn verify_conv_plan(
    spec: &ConvSpec,
    plan: &ConvPlan,
    cap: &ScratchCapacity,
) -> Result<CheckReport, CheckError> {
    let mut report = verify_forward(spec, &plan.forward, plan.register_tile, plan.schedule, cap)?;
    report.absorb(verify_backward(spec, &plan.backward, cap)?);
    Ok(report)
}
