//! Backward-propagation kernel benchmarks backing Figs. 4e / 4f and the
//! BP half of Fig. 8: dense Unfold+GEMM BP versus the CT-CSR
//! pointer-shifting sparse kernel across the sparsity sweep.

// Deliberately exercises the deprecated throwaway-scratch entry points
// as the baseline against the reused-scratch path.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_convnet::{gemm_exec, ConvSpec};
use spg_core::sparse::kernel as sparse;
use spg_core::sparse::DEFAULT_TILE_WIDTH;
use spg_workloads::synth::conv_operands;

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backward");
    group.sample_size(10);
    let spec = ConvSpec::square(32, 32, 32, 4, 1); // shrunken Table 1 ID 0
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    let mut grad_w = vec![0.0f32; spec.weight_shape().len()];
    group.throughput(Throughput::Elements(2 * spec.arithmetic_ops()));

    for sparsity in [0.5, 0.75, 0.9, 0.97] {
        let ops = conv_operands(&spec, sparsity, 0x44);
        let label = format!("s{:.2}", sparsity);
        group.bench_with_input(BenchmarkId::new("dense_bp", &label), &spec, |bch, spec| {
            bch.iter(|| {
                gemm_exec::backward_data(
                    spec,
                    ops.weights.as_slice(),
                    ops.grad_out.as_slice(),
                    &mut grad_in,
                    1,
                );
                gemm_exec::backward_weights(
                    spec,
                    ops.input.as_slice(),
                    ops.grad_out.as_slice(),
                    &mut grad_w,
                    1,
                );
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse_bp", &label), &spec, |bch, spec| {
            bch.iter(|| {
                sparse::backward_data(
                    spec,
                    ops.weights.as_slice(),
                    ops.grad_out.as_slice(),
                    &mut grad_in,
                    DEFAULT_TILE_WIDTH,
                );
                sparse::backward_weights(
                    spec,
                    ops.input.as_slice(),
                    ops.grad_out.as_slice(),
                    &mut grad_w,
                    DEFAULT_TILE_WIDTH,
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backward);
criterion_main!(benches);
