//! Forward-propagation kernel benchmarks backing Figs. 4c / 4d and the FP
//! half of Fig. 8: Unfold+GEMM versus the stencil kernel on the
//! small-convolution layers where the paper deploys the stencil
//! (MNIST L0, CIFAR-10 L1), and on a shrunken Table 1 ID 5 geometry.

// Deliberately exercises the deprecated throwaway-scratch entry points
// as the baseline against the reused-scratch path.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_convnet::{gemm_exec, ConvSpec};
use spg_core::stencil::kernel as stencil;
use spg_workloads::synth::conv_operands;

fn cases() -> Vec<(&'static str, ConvSpec)> {
    vec![
        ("mnist_l0", ConvSpec::square(28, 20, 1, 5, 1)),
        ("cifar_l1", ConvSpec::square(8, 64, 64, 5, 1)),
        ("id5_shrunk", ConvSpec::square(32, 64, 16, 11, 1)),
        ("alexnet_l0_shrunk_strided", ConvSpec::square(56, 32, 3, 11, 4)),
    ]
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward");
    group.sample_size(10);
    for (name, spec) in cases() {
        let ops = conv_operands(&spec, 0.0, 0x33);
        let mut out = vec![0.0f32; spec.output_shape().len()];
        group.throughput(Throughput::Elements(spec.arithmetic_ops()));
        group.bench_with_input(BenchmarkId::new("unfold_gemm", name), &spec, |bch, spec| {
            bch.iter(|| {
                gemm_exec::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out, 1)
            });
        });
        group.bench_with_input(BenchmarkId::new("stencil", name), &spec, |bch, spec| {
            bch.iter(|| {
                stencil::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
