//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **CT-CSR vs plain CSR** in sparse-dense multiply (the Sec. 4.2
//!   locality claim).
//! * **Pointer-shifting in-place sparse BP vs unfold-then-sparse-MM**
//!   (the Sec. 4.2 "compose as small dense MMs without unfolding" claim).
//! * **CT-CSR tile width sweep** for the sparse backward kernel.

// Deliberately exercises the deprecated throwaway-scratch entry points
// as the baseline against the reused-scratch path.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_convnet::{unfold, ConvSpec};
use spg_core::sparse::kernel as sparse;
use spg_gemm::{spmm_csr_dense, spmm_ctcsr_dense};
use spg_tensor::sparse::{Csr, CtCsr};
use spg_tensor::Matrix;
use spg_workloads::synth::conv_operands;

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_ctcsr_vs_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ctcsr_vs_csr");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(0x77);
    let sparse_a = Matrix::random_sparse(256, 1024, 0.9, 1.0, &mut rng);
    let dense_b = Matrix::random_uniform(1024, 128, 1.0, &mut rng);
    let csr = Csr::from_dense(&sparse_a);
    let tiled = CtCsr::from_dense(&sparse_a, 64).expect("positive width");
    group.throughput(Throughput::Elements(2 * csr.nnz() as u64 * 128));
    group.bench_function("spmm_csr", |bch| {
        bch.iter(|| spmm_csr_dense(&csr, &dense_b).expect("dims agree"));
    });
    group.bench_function("spmm_ctcsr_tile64", |bch| {
        bch.iter(|| spmm_ctcsr_dense(&tiled, &dense_b).expect("dims agree"));
    });
    group.finish();
}

/// The related-work alternative the paper argues against: unfold the
/// backward problem into an explicit sparse matrix multiply instead of
/// composing it in place by pointer shifting.
fn unfold_then_sparse_mm(spec: &ConvSpec, weights: &[f32], grad_out: &[f32], grad_in: &mut [f32]) {
    let patches = spec.out_h() * spec.out_w();
    let w_mat =
        Matrix::from_vec(spec.features(), spec.weight_shape().per_feature(), weights.to_vec())
            .expect("weight length matches spec");
    let eo = Matrix::from_vec(spec.features(), patches, grad_out.to_vec())
        .expect("gradient length matches spec");
    let eo_sparse = Csr::from_dense(&eo.transposed());
    let eu = spmm_csr_dense(&eo_sparse, &w_mat).expect("dims agree");
    unfold::fold(spec, &eu, grad_in);
}

fn bench_pointer_shifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pointer_shifting");
    group.sample_size(10);
    let spec = ConvSpec::square(32, 32, 32, 4, 1);
    let ops = conv_operands(&spec, 0.9, 0x88);
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    group.throughput(Throughput::Elements(spec.arithmetic_ops()));
    group.bench_function("in_place_pointer_shifting", |bch| {
        bch.iter(|| {
            sparse::backward_data(
                &spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                64,
            )
        });
    });
    group.bench_function("unfold_then_sparse_mm", |bch| {
        bch.iter(|| {
            unfold_then_sparse_mm(
                &spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
            )
        });
    });
    group.finish();
}

fn bench_tile_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tile_width");
    group.sample_size(10);
    let spec = ConvSpec::square(32, 128, 32, 3, 1);
    let ops = conv_operands(&spec, 0.9, 0x99);
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    group.throughput(Throughput::Elements(spec.arithmetic_ops()));
    for tw in [8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("sparse_bp_tile", tw), &tw, |bch, &tw| {
            bch.iter(|| {
                sparse::backward_data(
                    &spec,
                    ops.weights.as_slice(),
                    ops.grad_out.as_slice(),
                    &mut grad_in,
                    tw,
                )
            });
        });
    }
    group.finish();
}

/// Compiled-vs-stateless ablation: the paper's generated code pays layout
/// transforms once per layer, not once per sample. CIFAR-10 L1 (4x4
/// outputs) is the worst case for per-call transforms.
fn bench_compiled_amortization(c: &mut Criterion) {
    use spg_core::compiled::CompiledConv;
    use spg_core::schedule::{LayerPlan, Technique};
    use spg_core::stencil::kernel as stencil;

    let mut group = c.benchmark_group("ablation_compiled");
    group.sample_size(10);
    let spec = ConvSpec::square(8, 64, 64, 5, 1); // CIFAR-10 L1
    let ops = conv_operands(&spec, 0.9, 0xaa);
    let mut out = vec![0.0f32; spec.output_shape().len()];
    group.throughput(Throughput::Elements(spec.arithmetic_ops()));

    group.bench_function("stencil_fp_stateless", |bch| {
        bch.iter(|| {
            stencil::forward(&spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out)
        });
    });
    let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
    let compiled =
        CompiledConv::compile(spec, plan, ops.weights.as_slice(), 1).expect("valid weights");
    group.bench_function("stencil_fp_compiled", |bch| {
        bch.iter(|| compiled.forward(ops.input.as_slice(), &mut out));
    });

    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    group.bench_function("sparse_bp_stateless", |bch| {
        bch.iter(|| {
            sparse::backward_data(
                &spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                64,
            )
        });
    });
    group.bench_function("sparse_bp_compiled", |bch| {
        bch.iter(|| compiled.backward_data(ops.grad_out.as_slice(), &mut grad_in));
    });
    group.finish();
}

/// Partition-axis ablation (Sec. 3.2): row vs column partitioning of one
/// GEMM. On asymmetric shapes the replicated operand differs; on this
/// single-core host the comparison measures the dispatch and stitching
/// overhead of each axis, while the AIT consequences live in
/// `spg_core::ait` and the machine model.
fn bench_partition_axis(c: &mut Criterion) {
    use spg_gemm::{parallel_gemm, parallel_gemm_cols};
    use spg_workloads::synth::gemm_operands;

    let mut group = c.benchmark_group("ablation_partition_axis");
    group.sample_size(10);
    // Tall-skinny: row partitioning replicates the small B.
    let (a, b) = gemm_operands(512, 64, 128, 0xbb);
    group.throughput(Throughput::Elements(spg_gemm::gemm_flops(512, 64, 128)));
    group.bench_function("rows_tall_skinny", |bch| {
        bch.iter(|| parallel_gemm(&a, &b, 4).expect("dims agree"));
    });
    group.bench_function("cols_tall_skinny", |bch| {
        bch.iter(|| parallel_gemm_cols(&a, &b, 4).expect("dims agree"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ctcsr_vs_csr,
    bench_pointer_shifting,
    bench_tile_width_sweep,
    bench_compiled_amortization,
    bench_partition_axis
);
criterion_main!(benches);
