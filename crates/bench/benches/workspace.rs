//! Allocation-path versus workspace-path benchmarks.
//!
//! Every conv kernel has two entry points: a legacy wrapper that builds a
//! fresh [`ConvScratch`] per call (paying buffer allocation and zeroing on
//! every sample) and a `_scratch` variant that reuses a caller-owned,
//! warmed workspace — the allocation-free steady state the training loop
//! runs in after warm-up. The gap between the two is the per-sample heap
//! cost the workspace refactor removes; it is what keeps per-core
//! arithmetic intensity at the kernel's own level instead of diluting it
//! with allocator traffic.

// Deliberately exercises the deprecated throwaway-scratch entry points
// as the baseline against the reused-scratch path.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_convnet::{gemm_exec, ConvScratch, ConvSpec};
use spg_core::sparse::kernel as sparse;
use spg_core::sparse::DEFAULT_TILE_WIDTH;
use spg_core::stencil::kernel as stencil;
use spg_workloads::synth::conv_operands;

fn bench_forward_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("workspace_forward");
    group.sample_size(10);
    for (name, spec) in [
        ("cifar_l1", ConvSpec::square(8, 64, 64, 5, 1)),
        ("id0_shrunk", ConvSpec::square(32, 32, 32, 4, 1)),
    ] {
        let ops = conv_operands(&spec, 0.0, 0x55);
        let mut out = vec![0.0f32; spec.output_shape().len()];
        group.throughput(Throughput::Elements(spec.arithmetic_ops()));

        group.bench_with_input(BenchmarkId::new("unfold_alloc", name), &spec, |bch, spec| {
            bch.iter(|| {
                gemm_exec::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out, 1)
            });
        });
        let mut scratch = ConvScratch::new();
        group.bench_with_input(BenchmarkId::new("unfold_workspace", name), &spec, |bch, spec| {
            bch.iter(|| {
                gemm_exec::forward_scratch(
                    spec,
                    ops.input.as_slice(),
                    ops.weights.as_slice(),
                    &mut out,
                    1,
                    &mut scratch,
                )
            });
        });

        group.bench_with_input(BenchmarkId::new("stencil_alloc", name), &spec, |bch, spec| {
            bch.iter(|| {
                stencil::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out)
            });
        });
        let mut scratch = ConvScratch::new();
        group.bench_with_input(BenchmarkId::new("stencil_workspace", name), &spec, |bch, spec| {
            bch.iter(|| {
                stencil::forward_scratch(
                    spec,
                    ops.input.as_slice(),
                    ops.weights.as_slice(),
                    &mut out,
                    &mut scratch,
                )
            });
        });
    }
    group.finish();
}

fn bench_backward_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("workspace_backward");
    group.sample_size(10);
    let spec = ConvSpec::square(32, 32, 32, 4, 1); // shrunken Table 1 ID 0
    let ops = conv_operands(&spec, 0.9, 0x66);
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    let mut grad_w = vec![0.0f32; spec.weight_shape().len()];
    group.throughput(Throughput::Elements(2 * spec.arithmetic_ops()));

    group.bench_with_input(BenchmarkId::new("dense_bp", "alloc"), &spec, |bch, spec| {
        bch.iter(|| {
            gemm_exec::backward_data(
                spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                1,
            );
            gemm_exec::backward_weights(
                spec,
                ops.input.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_w,
                1,
            );
        });
    });
    let mut scratch = ConvScratch::new();
    group.bench_with_input(BenchmarkId::new("dense_bp", "workspace"), &spec, |bch, spec| {
        bch.iter(|| {
            gemm_exec::backward_data_scratch(
                spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                1,
                &mut scratch,
            );
            gemm_exec::backward_weights_scratch(
                spec,
                ops.input.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_w,
                1,
                &mut scratch,
            );
        });
    });

    group.bench_with_input(BenchmarkId::new("sparse_bp", "alloc"), &spec, |bch, spec| {
        bch.iter(|| {
            sparse::backward_data(
                spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                DEFAULT_TILE_WIDTH,
            );
            sparse::backward_weights(
                spec,
                ops.input.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_w,
                DEFAULT_TILE_WIDTH,
            );
        });
    });
    let mut scratch = ConvScratch::new();
    group.bench_with_input(BenchmarkId::new("sparse_bp", "workspace"), &spec, |bch, spec| {
        bch.iter(|| {
            sparse::backward_data_scratch(
                spec,
                ops.weights.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_in,
                DEFAULT_TILE_WIDTH,
                &mut scratch,
            );
            sparse::backward_weights_scratch(
                spec,
                ops.input.as_slice(),
                ops.grad_out.as_slice(),
                &mut grad_w,
                DEFAULT_TILE_WIDTH,
                &mut scratch,
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_forward_paths, bench_backward_paths);
criterion_main!(benches);
