//! Benchmarks of the data-representation machinery whose costs the paper
//! folds into its kernel measurements: unfolding (the traffic blow-up of
//! Sec. 3.1), the Eq. 21 strided relayout, the Sec. 4.2 HWC/KKFC layout
//! permutations, and CSR / CT-CSR construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use spg_convnet::{unfold, ConvSpec};
use spg_tensor::sparse::{Csr, CtCsr};
use spg_tensor::transform::StridedLayout;
use spg_tensor::{layout, Matrix, Shape3, Tensor};
use spg_workloads::synth::conv_operands;

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_unfold(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfold");
    group.sample_size(10);
    let spec = ConvSpec::square(64, 64, 16, 11, 1); // Table 1 ID 5
    let ops = conv_operands(&spec, 0.0, 0x55);
    group.throughput(Throughput::Elements(spec.unfolded_elems()));
    group.bench_function("im2col_id5", |bch| {
        bch.iter(|| unfold::unfold(&spec, ops.input.as_slice()));
    });
    group.bench_function("im2col_transposed_id5", |bch| {
        bch.iter(|| unfold::unfold_transposed(&spec, ops.input.as_slice()));
    });
    group.finish();
}

fn bench_layout_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_transforms");
    group.sample_size(10);
    let shape = Shape3::new(64, 64, 64);
    let t: Tensor = (0..shape.len()).map(|i| i as f32).collect();
    group.throughput(Throughput::Elements(shape.len() as u64));
    group.bench_function("chw_to_hwc", |bch| {
        bch.iter(|| layout::chw_to_hwc(&t, shape).expect("length matches"));
    });
    let strided = StridedLayout::new(shape, 4).expect("positive stride");
    group.bench_function("strided_relayout_s4", |bch| {
        bch.iter(|| strided.apply(&t).expect("length matches"));
    });
    group.finish();
}

fn bench_sparse_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_formats");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(0x66);
    let dense = Matrix::random_sparse(512, 512, 0.9, 1.0, &mut rng);
    group.throughput(Throughput::Elements(dense.len() as u64));
    group.bench_function("build_csr", |bch| {
        bch.iter(|| Csr::from_dense(&dense));
    });
    group.bench_function("build_ctcsr_tile64", |bch| {
        bch.iter(|| CtCsr::from_dense(&dense, 64).expect("positive width"));
    });
    group.finish();
}

criterion_group!(benches, bench_unfold, bench_layout_transforms, bench_sparse_formats);
criterion_main!(benches);
