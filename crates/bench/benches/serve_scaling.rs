//! Serving throughput vs worker count: the GEMM-in-Parallel argument
//! applied to inference (one single-threaded kernel per pool worker).
//!
//! Prints a measured table from the real `spg-serve` engine on this host
//! plus the analytical model's scaling curve for the paper's 16-core
//! machine, mirroring the training-side Fig. 9 harness.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p spg-bench --bench serve_scaling
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spg_convnet::layer::{ConvLayer, FcLayer, ReluLayer};
use spg_convnet::{ConvSpec, Network};
use spg_core::autotune::{Framework, TuningMode};
use spg_serve::{ServeConfig, Server};
use spg_simcpu::{cifar10_layers, serving_throughput, EndToEndConfig, Machine};

/// conv -> relu -> fc classifier over 12x12x2 inputs, big enough that a
/// batch does real kernel work but small enough to finish in seconds.
fn build_network() -> Network {
    let mut rng = SmallRng::seed_from_u64(42);
    let spec = ConvSpec::new(2, 12, 12, 6, 3, 3, 1, 1).unwrap();
    let conv_out = spec.output_shape().len();
    Network::new(vec![
        Box::new(ConvLayer::new(spec, &mut rng)),
        Box::new(ReluLayer::new(conv_out)),
        Box::new(FcLayer::new(conv_out, 8, &mut rng)),
    ])
    .unwrap()
}

fn main() {
    let mut net = build_network();
    let framework = Framework::new(1, TuningMode::Heuristic, 1);
    let plans = framework.plan_network_forward(&mut net);
    let input_len = net.input_len();
    let net = Arc::new(net);

    let requests = 256usize;
    let inputs: Vec<Vec<f32>> = (0..requests)
        .map(|s| (0..input_len).map(|i| (((i * 31 + s * 17) % 23) as f32 - 11.0) / 7.0).collect())
        .collect();

    println!("measured serving throughput on this host ({requests} requests, max batch 8):");
    println!("{:>7}  {:>12}", "workers", "requests/s");
    for workers in [1usize, 2, 4] {
        let config = ServeConfig {
            workers,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_capacity: requests,
            ..ServeConfig::default()
        };
        let server = Server::start(Arc::clone(&net), &plans, config).expect("valid network");
        let started = Instant::now();
        let pending: Vec<_> = inputs
            .iter()
            .map(|x| {
                server
                    .submit_timeout(x.clone(), Duration::from_secs(60))
                    .expect("queue sized to request count")
            })
            .collect();
        for p in pending {
            p.wait().expect("worker alive");
        }
        let elapsed = started.elapsed().as_secs_f64();
        server.shutdown();
        println!("{workers:>7}  {:>12.0}", requests as f64 / elapsed);
    }

    // The multicore claim comes from the analytical model of the paper's
    // machine; this container exposes a single core.
    let machine = Machine::xeon_e5_2650();
    let layers = cifar10_layers();
    println!("\nmodeled CIFAR-10 serving throughput (images/s), 16-core Xeon E5-2650:");
    println!(
        "{:>7}  {:>13}  {:>16}  {:>10}  {:>14}",
        "workers", "Parallel-GEMM", "GEMM-in-Parallel", "Stencil-FP", "GiP scaling"
    );
    let gip_one = serving_throughput(&machine, &layers, EndToEndConfig::GemmInParallel, 1);
    for workers in [1usize, 2, 4, 8, 16] {
        let pg = serving_throughput(&machine, &layers, EndToEndConfig::ParallelGemmAdam, workers);
        let gip = serving_throughput(&machine, &layers, EndToEndConfig::GemmInParallel, workers);
        let st = serving_throughput(&machine, &layers, EndToEndConfig::StencilFpSparseBp, workers);
        println!("{workers:>7}  {pg:>13.1}  {gip:>16.1}  {st:>10.1}  {:>13.2}x", gip / gip_one);
    }
}
