//! Kernel-level GEMM benchmarks backing Figs. 3a / 4a / 4b: the blocked
//! single-threaded kernel versus the naive loop, and the two parallel
//! schedules (Parallel-GEMM partitioning vs GEMM-in-Parallel batching) on
//! this host.
//!
//! On a single-core container the schedule comparison measures scheduling
//! overhead rather than scaling — the multicore shapes come from the
//! `spg-simcpu` model — but the blocked-vs-naive and batching numbers are
//! real.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_gemm::{gemm, gemm_flops, gemm_in_parallel, gemm_naive, parallel_gemm, BatchJob};
use spg_workloads::synth::gemm_operands;

fn bench_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_single_core");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let (a, b) = gemm_operands(n, n, n, 0x11);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| gemm(&a, &b).expect("dims agree"));
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
                bch.iter(|| gemm_naive(&a, &b).expect("dims agree"));
            });
        }
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_schedules");
    group.sample_size(10);
    let n = 128;
    let (a, b) = gemm_operands(n, n, n, 0x22);
    group.throughput(Throughput::Elements(4 * gemm_flops(n, n, n)));
    group.bench_function("parallel_gemm_4_workers_x4", |bch| {
        bch.iter(|| {
            for _ in 0..4 {
                parallel_gemm(&a, &b, 4).expect("dims agree");
            }
        });
    });
    group.bench_function("gemm_in_parallel_4_jobs", |bch| {
        let jobs = [
            BatchJob::new(&a, &b),
            BatchJob::new(&a, &b),
            BatchJob::new(&a, &b),
            BatchJob::new(&a, &b),
        ];
        bch.iter(|| gemm_in_parallel(&jobs, 4).expect("dims agree"));
    });
    group.finish();
}

criterion_group!(benches, bench_blocked_vs_naive, bench_schedules);
criterion_main!(benches);
