//! Specialized-vs-generic stencil kernel benchmarks over the Table 2
//! layers the `spg-codegen` registry covers.
//!
//! The CI perf gate runs the self-contained `spgcnn bench-kernels`
//! harness (median-of-5, pinned iteration counts) and diffs against the
//! committed `BENCH_kernels.json`; this criterion bench is the
//! interactive companion for kernel work — run
//! `cargo bench --bench specialized_kernels` to get criterion's full
//! statistics on the same layer set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use spg_codegen::lookup;
use spg_convnet::exec::ConvExecutor;
use spg_convnet::workspace::ConvScratch;
use spg_core::stencil::StencilExecutor;
use spg_workloads::synth::conv_operands;
use spg_workloads::table2;

fn bench_specialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("specialized_kernels");
    group.sample_size(10);
    let auto = StencilExecutor::new();
    let generic = StencilExecutor::generic();
    for (benchmark, layer, spec) in table2::all_layers() {
        // Only layers the registry can specialize on this host are
        // interesting as a pair; the gate's JSON harness reports the rest.
        if lookup(&spec).is_none() {
            continue;
        }
        let name = format!("{}_l{layer}", benchmark.label().replace(' ', "_").to_lowercase());
        let ops = conv_operands(&spec, 0.0, 0x5a);
        let mut out = vec![0.0f32; spec.output_shape().len()];
        let mut scratch = ConvScratch::default();
        group.throughput(Throughput::Elements(spec.arithmetic_ops()));
        group.bench_with_input(BenchmarkId::new("specialized", &name), &spec, |bch, spec| {
            bch.iter(|| {
                auto.forward(
                    spec,
                    ops.input.as_slice(),
                    ops.weights.as_slice(),
                    &mut out,
                    &mut scratch,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("generic", &name), &spec, |bch, spec| {
            bch.iter(|| {
                generic.forward(
                    spec,
                    ops.input.as_slice(),
                    ops.weights.as_slice(),
                    &mut out,
                    &mut scratch,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_specialized);
criterion_main!(benches);
