//! Shared helpers for the spg-CNN benchmark harness.
//!
//! Each table and figure of the paper has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` for the full index); this library holds
//! the table-formatting and series-printing helpers they share, so every
//! harness prints rows the same way `EXPERIMENTS.md` records them.

#![warn(missing_docs)]

pub mod figures;
pub mod measured;

use std::fmt::Write as _;

/// Renders a fixed-width text table: a header row, a separator, and one
/// line per data row. Columns are sized to the widest cell.
///
/// # Example
///
/// ```
/// let t = spg_bench::render_table(
///     &["id", "value"],
///     &[vec!["0".into(), "362".into()], vec!["1".into(), "2015".into()]],
/// );
/// assert!(t.contains("id"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header width");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a float with the given number of decimal places.
pub fn fmt(v: f64, places: usize) -> String {
    format!("{v:.places$}")
}

/// Formats a speedup as `N.NNx`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Prints a figure/table banner with the experiment identifier.
pub fn banner(id: &str, description: &str) -> String {
    format!("=== {id}: {description} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "longer"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line has the same width.
        assert!(lines.iter().all(|l| l.len() == lines[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_speedup(16.0), "16.00x");
        assert!(banner("Fig 3a", "scalability").contains("Fig 3a"));
    }
}
