//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function returns the rendered experiment as a string; the
//! `src/bin/` harness binaries print them, and the workspace integration
//! tests assert their qualitative shape (who wins, where the crossovers
//! fall). Scaling curves come from the `spg-simcpu` machine model; the
//! single-core anchors printed next to them are measured on this host by
//! [`crate::measured`].

use spg_convnet::ConvSpec;
use spg_core::region::classify_by_features;
use spg_core::schedule::recommended_plan;
use spg_simcpu::{
    cifar10_throughput, gemm_in_parallel_gflops_per_core, parallel_gemm_gflops_per_core,
    sparse_bp_prediction, stencil_gflops_per_core, EndToEndConfig, Machine,
};
use spg_workloads::sparsity::{modeled_curve, SparsityBenchmark};
use spg_workloads::{table1, table2};

use crate::{banner, fmt, fmt_speedup, render_table};

/// Core counts plotted by the scalability figures.
pub const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Sparsity levels plotted by Fig. 4e.
pub const SPARSITY_LEVELS_4E: [f64; 5] = [0.5, 0.7, 0.9, 0.95, 0.99];

/// Sparsity levels plotted by Fig. 4f.
pub const SPARSITY_LEVELS_4F: [f64; 7] = [0.0, 0.5, 0.75, 0.88, 0.94, 0.97, 0.99];

/// Table 1: the six benchmark convolutions with their intrinsic and
/// Unfold+GEMM AITs and Fig. 1 regions, paper values alongside ours.
pub fn table1_report() -> String {
    let mut rows = Vec::new();
    for row in table1::rows() {
        let s = row.spec;
        rows.push(vec![
            row.id.to_string(),
            format!("{},{},{},{}", s.in_w(), s.features(), s.in_c(), s.kx()),
            fmt(row.computed_intrinsic_ait(), 0),
            fmt(row.paper_intrinsic_ait, 0),
            fmt(row.computed_unfold_ait(), 0),
            fmt(row.paper_unfold_ait, 0),
            format!("{},{}", row.computed_regions().0.index(), row.computed_regions().1.index()),
            format!("{},{}", row.paper_regions.0.index(), row.paper_regions.1.index()),
        ]);
    }
    let mut out = banner("Table 1", "benchmark convolutions: AIT and design-space regions");
    out.push_str(&render_table(
        &["ID", "Nx,Nf,Nc,Fx", "AIT", "AIT(paper)", "U+G", "U+G(paper)", "Reg", "Reg(paper)"],
        &rows,
    ));
    out
}

/// Table 2: convolution specifications of the four real-world benchmarks.
pub fn table2_report() -> String {
    let mut rows = Vec::new();
    for (bench, layer, spec) in table2::all_layers() {
        rows.push(vec![
            bench.label().to_owned(),
            format!("L{layer}"),
            format!(
                "{},{},{},{},{}",
                spec.in_w(),
                spec.features(),
                spec.in_c(),
                spec.kx(),
                spec.sx()
            ),
            fmt(spec.intrinsic_ait(), 0),
            fmt(spec.unfold_ait(), 0),
        ]);
    }
    let mut out = banner("Table 2", "real-world benchmark layer specifications");
    out.push_str(&render_table(
        &["benchmark", "layer", "Nx,Nf,Nc,Fx,sx", "AIT", "Unfold AIT"],
        &rows,
    ));
    out
}

/// Fig. 1: the design-space region map over feature count and sparsity,
/// with the Table 2 benchmark layers placed in it.
pub fn fig1_report() -> String {
    let mut out = banner("Fig 1", "design space: regions over features (AIT proxy) and sparsity");
    let features = [16usize, 64, 128, 256, 512, 1024, 4096];
    let sparsities = [0.0, 0.5, 0.8, 0.95];
    let mut rows = Vec::new();
    for &f in &features {
        let mut row = vec![f.to_string()];
        for &s in &sparsities {
            row.push(classify_by_features(f, s).index().to_string());
        }
        rows.push(row);
    }
    out.push_str(&render_table(&["features", "s=0.00", "s=0.50", "s=0.80", "s=0.95"], &rows));
    out.push_str("\nbenchmark placement (dense region -> sparse region):\n");
    let mut rows = Vec::new();
    for (bench, layer, spec) in table2::all_layers() {
        let (d, s) = spg_core::region::region_pair(&spec);
        rows.push(vec![
            format!("{} L{layer}", bench.label()),
            spec.features().to_string(),
            format!("{d} -> {s}"),
        ]);
    }
    out.push_str(&render_table(&["layer", "features", "regions"], &rows));
    out
}

/// Fig. 3a: Parallel-GEMM GFlops per core versus core count for the
/// Table 1 convolutions (machine model).
pub fn fig3a_report(machine: &Machine) -> String {
    let mut out = banner("Fig 3a", "Parallel-GEMM scalability (model GFlops/core)");
    out.push_str(&scaling_table(machine, parallel_gemm_gflops_per_core));
    out.push_str(
        "\npaper shape: all but ID 1 lose over half their per-core performance by 16 cores\n",
    );
    out
}

/// Fig. 3b: error-gradient sparsity across training epochs.
pub fn fig3b_report(measured: Option<&[f64]>) -> String {
    let mut out = banner("Fig 3b", "error-gradient sparsity across epochs");
    let epochs = 10;
    let mut rows = Vec::new();
    for e in 0..epochs {
        let mut row = vec![(e + 1).to_string()];
        for b in SparsityBenchmark::all() {
            row.push(fmt(modeled_curve(b, epochs)[e], 3));
        }
        if let Some(m) = measured {
            row.push(m.get(e).map(|v| fmt(*v, 3)).unwrap_or_else(|| "-".into()));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = if measured.is_some() {
        vec!["epoch", "MNIST", "CIFAR", "ImageNet100", "measured(synthetic)"]
    } else {
        vec!["epoch", "MNIST", "CIFAR", "ImageNet100"]
    };
    out.push_str(&render_table(&headers, &rows));
    out.push_str("\npaper shape: all curves exceed 0.85 from epoch 2 and keep rising\n");
    out
}

/// Fig. 4a: GEMM-in-Parallel GFlops per core versus core count.
pub fn fig4a_report(machine: &Machine) -> String {
    let mut out = banner("Fig 4a", "GEMM-in-Parallel scalability (model GFlops/core)");
    out.push_str(&scaling_table(machine, gemm_in_parallel_gflops_per_core));
    out.push_str("\npaper shape: per-core performance roughly steady, < 15 % average drop\n");
    out
}

/// Fig. 4b: speedup of GEMM-in-Parallel over Parallel-GEMM.
pub fn fig4b_report(machine: &Machine) -> String {
    let mut out = banner("Fig 4b", "GEMM-in-Parallel speedup over Parallel-GEMM");
    out.push_str(&ratio_table(
        machine,
        gemm_in_parallel_gflops_per_core,
        parallel_gemm_gflops_per_core,
    ));
    out.push_str("\npaper shape: speedup grows with cores; fewer-feature convolutions gain more\n");
    out
}

/// Fig. 4c: Stencil-Kernel (FP) GFlops per core versus core count.
pub fn fig4c_report(machine: &Machine) -> String {
    let mut out = banner("Fig 4c", "Stencil-Kernel (FP) scalability (model GFlops/core)");
    out.push_str(&scaling_table(machine, stencil_gflops_per_core));
    out.push_str("\npaper shape: nearly flat per-core performance out to 16 cores\n");
    out
}

/// Fig. 4d: speedup of the stencil kernel over GEMM-in-Parallel.
pub fn fig4d_report(machine: &Machine) -> String {
    let mut out = banner("Fig 4d", "Stencil-Kernel (FP) speedup over GEMM-in-Parallel");
    out.push_str(&ratio_table(machine, stencil_gflops_per_core, gemm_in_parallel_gflops_per_core));
    out.push_str(
        "\npaper shape: > 1x for < 128 output features (IDs 0, 5); <= 1x for larger convolutions\n",
    );
    out
}

/// Fig. 4e: Sparse-Kernel (BP) goodput versus sparsity at 16 cores.
pub fn fig4e_report(machine: &Machine) -> String {
    let mut out =
        banner("Fig 4e", "Sparse-Kernel (BP) goodput vs sparsity, 16 cores (model GFlops)");
    let mut rows = Vec::new();
    for row in table1::rows() {
        let mut cells = vec![format!("ID {}", row.id)];
        for &s in &SPARSITY_LEVELS_4E {
            cells.push(fmt(sparse_bp_prediction(machine, &row.spec, s, 16).goodput_gflops, 0));
        }
        rows.push(cells);
    }
    out.push_str(&render_table(&["conv", "s=0.5", "s=0.7", "s=0.9", "s=0.95", "s=0.99"], &rows));
    out.push_str("\npaper shape: consistently high goodput below 0.9; beyond it the bottleneck\nshifts to the data-layout transforms and goodput declines\n");
    out
}

/// Fig. 4f: speedup of the sparse kernel over GEMM-in-Parallel versus
/// sparsity at 16 cores.
pub fn fig4f_report(machine: &Machine) -> String {
    let mut out =
        banner("Fig 4f", "Sparse-Kernel (BP) speedup over GEMM-in-Parallel vs sparsity, 16 cores");
    let mut rows = Vec::new();
    for row in table1::rows() {
        let mut cells = vec![format!("ID {}", row.id)];
        for &s in &SPARSITY_LEVELS_4F {
            cells.push(fmt_speedup(
                sparse_bp_prediction(machine, &row.spec, s, 16).speedup_over_gip,
            ));
        }
        rows.push(cells);
    }
    let headers = ["conv", "s=0", "s=0.5", "s=0.75", "s=0.88", "s=0.94", "s=0.97", "s=0.99"];
    out.push_str(&render_table(&headers, &rows));
    out.push_str("\npaper shape: consistent wins from 0.75; 3x-32x in the >= 0.90 range\n");
    out
}

/// Fig. 8: per-layer FP and BP speedups of the framework over
/// Parallel-GEMM for the Table 2 benchmarks (85 % BP sparsity, 16 cores).
pub fn fig8_report(machine: &Machine) -> String {
    let cores = 16;
    let sparsity = 0.85;
    let mut out = banner(
        "Fig 8",
        "framework speedup over Parallel-GEMM per conv layer (16 cores, 85 % BP sparsity)",
    );
    let mut rows = Vec::new();
    for (bench, layer, spec) in table2::all_layers() {
        let plan = recommended_plan(&spec, sparsity, cores);
        let pg = parallel_gemm_gflops_per_core(machine, &spec, cores);
        let fp_rate = match plan.forward {
            spg_core::schedule::Technique::StencilFp => {
                stencil_gflops_per_core(machine, &spec, cores)
            }
            spg_core::schedule::Technique::GemmInParallel => {
                gemm_in_parallel_gflops_per_core(machine, &spec, cores)
            }
            _ => pg,
        };
        let fp_speedup = fp_rate / pg;
        // BP speedup: dense Parallel-GEMM BP time vs planned BP time.
        let bp_flops = 2.0 * spec.arithmetic_ops() as f64;
        let pg_bp_time = bp_flops / (pg * 1e9);
        let bp_time = match plan.backward {
            spg_core::schedule::Technique::SparseBp => {
                sparse_bp_prediction(machine, &spec, sparsity, cores).time_s
            }
            spg_core::schedule::Technique::GemmInParallel => {
                bp_flops / (gemm_in_parallel_gflops_per_core(machine, &spec, cores) * 1e9)
            }
            _ => pg_bp_time,
        };
        rows.push(vec![
            format!("{} L{layer}", bench.label()),
            plan.forward.to_string(),
            fmt_speedup(fp_speedup),
            plan.backward.to_string(),
            fmt_speedup(pg_bp_time / bp_time),
        ]);
    }
    out.push_str(&render_table(
        &["layer", "FP technique", "FP speedup", "BP technique", "BP speedup"],
        &rows,
    ));
    out.push_str("\npaper shape: 2x-16x FP speedups; 2x-14x BP speedups at 85 % sparsity\n");
    out
}

/// Fig. 9: end-to-end CIFAR-10 training throughput versus core count for
/// the five system configurations.
pub fn fig9_report(machine: &Machine) -> String {
    let mut out = banner("Fig 9", "end-to-end CIFAR-10 throughput (model images/second)");
    let threads = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for config in EndToEndConfig::all() {
        let mut cells = vec![config.label().to_owned()];
        for &t in &threads {
            cells.push(fmt(cifar10_throughput(machine, config, t, 0.85), 0));
        }
        rows.push(cells);
    }
    out.push_str(&render_table(&["configuration", "1", "2", "4", "8", "16", "32"], &rows));
    out.push_str("\npaper shape: Caffe fastest at 1-2 cores; Parallel-GEMM platforms plateau after\n2 cores; GiP keeps scaling; sparse BP then stencil FP stack further gains\n");
    out
}

fn scaling_table(machine: &Machine, f: fn(&Machine, &ConvSpec, usize) -> f64) -> String {
    let mut rows = Vec::new();
    for row in table1::rows() {
        let mut cells = vec![format!(
            "ID {} (Reg {},{})",
            row.id,
            row.paper_regions.0.index(),
            row.paper_regions.1.index()
        )];
        for &c in &CORE_COUNTS {
            cells.push(fmt(f(machine, &row.spec, c), 1));
        }
        rows.push(cells);
    }
    render_table(&["conv", "1 core", "2", "4", "8", "16"], &rows)
}

fn ratio_table(
    machine: &Machine,
    num: fn(&Machine, &ConvSpec, usize) -> f64,
    den: fn(&Machine, &ConvSpec, usize) -> f64,
) -> String {
    let mut rows = Vec::new();
    for row in table1::rows() {
        let mut cells = vec![format!("ID {}", row.id)];
        for &c in &CORE_COUNTS {
            cells.push(fmt_speedup(num(machine, &row.spec, c) / den(machine, &row.spec, c)));
        }
        rows.push(cells);
    }
    render_table(&["conv", "1 core", "2", "4", "8", "16"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders() {
        let m = Machine::xeon_e5_2650();
        for report in [
            table1_report(),
            table2_report(),
            fig1_report(),
            fig3a_report(&m),
            fig3b_report(None),
            fig4a_report(&m),
            fig4b_report(&m),
            fig4c_report(&m),
            fig4d_report(&m),
            fig4e_report(&m),
            fig4f_report(&m),
            fig8_report(&m),
            fig9_report(&m),
        ] {
            assert!(report.lines().count() >= 4, "report too short:\n{report}");
        }
    }

    #[test]
    fn table1_report_contains_paper_values() {
        let r = table1_report();
        assert!(r.contains("2015")); // ID 1 intrinsic AIT
        assert!(r.contains("362")); // ID 0 intrinsic AIT
    }

    #[test]
    fn fig9_lists_all_five_configs() {
        let r = fig9_report(&Machine::xeon_e5_2650());
        for config in EndToEndConfig::all() {
            assert!(r.contains(config.label()), "missing {}", config.label());
        }
    }

    #[test]
    fn fig8_reports_expected_techniques() {
        let r = fig8_report(&Machine::xeon_e5_2650());
        assert!(r.contains("Stencil-Kernel (FP)")); // MNIST / CIFAR layers
        assert!(r.contains("GEMM-in-Parallel")); // ImageNet layers
        assert!(r.contains("Sparse-Kernel (BP)")); // 85 % sparsity
    }
}
