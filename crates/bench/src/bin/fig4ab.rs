//! Regenerates Fig. 4a and Fig. 4b: GEMM-in-Parallel scalability and its
//! speedup over Parallel-GEMM.

use spg_simcpu::Machine;

fn main() {
    let machine = Machine::xeon_e5_2650();
    print!("{}", spg_bench::figures::fig4a_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4b_report(&machine));
}
