//! Extension beyond the paper: training throughput across epochs.
//!
//! Fig. 3b shows gradient sparsity growing as training proceeds; Sec. 4.4
//! says the framework re-checks its backward plans every few epochs. This
//! harness puts the two together: CIFAR-10 training throughput per epoch
//! under (a) a static dense configuration, (b) a static sparse-BP
//! configuration, and (c) the re-tuning framework — showing the framework
//! tracking the better of the two as sparsity crosses the 0.75 threshold.

use spg_bench::{fmt, render_table};
use spg_core::region::SPARSE_THRESHOLD;
use spg_simcpu::{cifar10_throughput, EndToEndConfig, Machine};
use spg_workloads::sparsity::{modeled_curve, SparsityBenchmark};

fn main() {
    let machine = Machine::xeon_e5_2650();
    let threads = 16;
    // Start the sparsity trajectory below the crossover so the framework's
    // switch is visible (the paper's Fig. 3b starts at epoch 1 already
    // above 0.8; a cold model starts dense).
    let mut sparsity: Vec<f64> = vec![0.30, 0.55, 0.70];
    sparsity.extend(modeled_curve(SparsityBenchmark::Cifar, 7));

    println!("=== Extension: throughput across training as sparsity grows ===");
    println!("(CIFAR-10, {threads} cores, model; framework re-tunes every 2 epochs)\n");

    let mut rows = Vec::new();
    let mut framework_choice = EndToEndConfig::GemmInParallel;
    for (epoch, &s) in sparsity.iter().enumerate() {
        let dense = cifar10_throughput(&machine, EndToEndConfig::GemmInParallel, threads, s);
        let sparse = cifar10_throughput(&machine, EndToEndConfig::GipFpSparseBp, threads, s);
        // Re-tune on every second epoch, as Sec. 4.4 prescribes.
        if epoch % 2 == 1 {
            framework_choice = if s > SPARSE_THRESHOLD {
                EndToEndConfig::GipFpSparseBp
            } else {
                EndToEndConfig::GemmInParallel
            };
        }
        let framework = cifar10_throughput(&machine, framework_choice, threads, s);
        rows.push(vec![
            (epoch + 1).to_string(),
            fmt(s, 2),
            fmt(dense, 0),
            fmt(sparse, 0),
            fmt(framework, 0),
            match framework_choice {
                EndToEndConfig::GipFpSparseBp => "sparse BP".to_owned(),
                _ => "dense BP".to_owned(),
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            &["epoch", "sparsity", "static dense", "static sparse", "framework", "choice"],
            &rows
        )
    );
    println!("\nthe framework tracks whichever backward technique the measured sparsity");
    println!("favours, within one re-tune interval of the crossover (Sec. 4.4)");
}
