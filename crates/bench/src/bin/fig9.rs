//! Regenerates Fig. 9: end-to-end CIFAR-10 training throughput versus
//! core count for the five system configurations.

use spg_simcpu::Machine;

fn main() {
    print!("{}", spg_bench::figures::fig9_report(&Machine::xeon_e5_2650()));
}
