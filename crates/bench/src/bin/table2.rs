//! Regenerates Table 2: the convolution layer specifications of the four
//! real-world benchmarks with their computed arithmetic intensities.

fn main() {
    print!("{}", spg_bench::figures::table2_report());
}
