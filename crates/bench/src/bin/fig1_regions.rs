//! Regenerates Fig. 1: the (AIT, sparsity) design-space region map and
//! the placement of the real-world benchmark layers within it.

fn main() {
    print!("{}", spg_bench::figures::fig1_report());
}
