//! Extension beyond the paper: the Fig. 9 end-to-end model applied to all
//! four Table 2 benchmarks, not just CIFAR-10. Shows where the framework's
//! advantage is largest (small-feature networks) and smallest (wide
//! ImageNet layers already served adequately by GEMM-in-Parallel).

use spg_bench::{fmt, fmt_speedup, render_table};
use spg_simcpu::{training_throughput, EndToEndConfig, LayerCost, Machine};
use spg_workloads::table2::Benchmark;

fn main() {
    let machine = Machine::xeon_e5_2650();
    let sparsity = 0.85;
    println!("=== Extension: Fig. 9 end-to-end model across all Table 2 benchmarks ===");
    println!("(model images/second at 32 threads, 85 % BP sparsity)\n");

    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let layers: Vec<LayerCost> =
            bench.conv_layers().into_iter().map(|spec| LayerCost { spec }).collect();
        let caffe_peak = (1..=32)
            .map(|t| {
                training_throughput(
                    &machine,
                    &layers,
                    EndToEndConfig::ParallelGemmCaffe,
                    t,
                    sparsity,
                )
            })
            .fold(0.0, f64::max);
        let full =
            training_throughput(&machine, &layers, EndToEndConfig::StencilFpSparseBp, 32, sparsity);
        let gip =
            training_throughput(&machine, &layers, EndToEndConfig::GemmInParallel, 32, sparsity);
        rows.push(vec![
            bench.label().to_owned(),
            fmt(caffe_peak, 1),
            fmt(gip, 1),
            fmt(full, 1),
            fmt_speedup(full / caffe_peak),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["benchmark", "Caffe peak", "GiP @32", "full framework @32", "speedup"],
            &rows
        )
    );
    println!("\npaper reports the CIFAR-10 row end-to-end (8.36x on its testbed); the other");
    println!("rows extend the same model to the remaining benchmarks.");
}
