//! Regenerates every table and figure of the paper in one run — the full
//! reproduction report recorded in `EXPERIMENTS.md`.
//!
//! Pass `--skip-measured` to omit the host-measured anchors (useful on
//! slow machines or in CI).

use spg_simcpu::Machine;

fn main() {
    let skip_measured = std::env::args().any(|a| a == "--skip-measured");
    let machine = Machine::xeon_e5_2650();

    print!("{}", spg_bench::figures::table1_report());
    println!();
    print!("{}", spg_bench::figures::table2_report());
    println!();
    print!("{}", spg_bench::figures::fig1_report());
    println!();
    print!("{}", spg_bench::figures::fig3a_report(&machine));
    println!();
    if skip_measured {
        print!("{}", spg_bench::figures::fig3b_report(None));
    } else {
        let measured = spg_workloads::sparsity::measured_curve(10, 0x3b);
        print!("{}", spg_bench::figures::fig3b_report(Some(&measured)));
    }
    println!();
    print!("{}", spg_bench::figures::fig4a_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4b_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4c_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4d_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4e_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4f_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig8_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig9_report(&machine));
}
