//! Regenerates Fig. 8: framework speedup over Parallel-GEMM for every
//! convolution layer of the four real-world benchmarks, split into FP
//! and BP with the technique the scheduler deploys.

use spg_simcpu::Machine;

fn main() {
    print!("{}", spg_bench::figures::fig8_report(&Machine::xeon_e5_2650()));
}
