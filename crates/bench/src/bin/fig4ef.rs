//! Regenerates Fig. 4e and Fig. 4f: Sparse-Kernel (BP) goodput and its
//! speedup over GEMM-in-Parallel across sparsity levels, with measured
//! single-core sparse-vs-dense BP anchors from this host's real kernels.

use spg_bench::{fmt, fmt_speedup, render_table};
use spg_simcpu::Machine;

fn main() {
    let machine = Machine::xeon_e5_2650();
    print!("{}", spg_bench::figures::fig4e_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4f_report(&machine));

    println!("\nmeasured single-core sparse/dense BP on this host (shrunken ID 0 geometry):");
    let spec = spg_convnet::ConvSpec::square(32, 32, 32, 4, 1);
    let mut rows = Vec::new();
    for s in [0.5, 0.75, 0.9, 0.97] {
        let m = spg_bench::measured::sparse_bp_measurement(&spec, s, 3);
        rows.push(vec![fmt(m.sparsity, 2), fmt(m.goodput_gflops, 2), fmt_speedup(m.speedup())]);
    }
    print!("{}", render_table(&["sparsity", "goodput GFlops", "speedup vs dense"], &rows));
}
