//! Regenerates Fig. 3a: Parallel-GEMM GFlops/core vs core count for the
//! Table 1 convolutions (machine model), with measured single-core
//! Unfold+GEMM anchors from this host's real kernels.

use spg_bench::{fmt, render_table};
use spg_simcpu::Machine;

fn main() {
    let machine = Machine::xeon_e5_2650();
    print!("{}", spg_bench::figures::fig3a_report(&machine));

    // Measured single-core anchors on shrunken Table 1 geometries (the
    // full convolutions run minutes each at debug sizes; the shrunken
    // ones preserve the feature/kernel ratios that set the AIT ordering).
    println!("\nmeasured single-core Unfold+GEMM anchors on this host (shrunken geometries):");
    let shrunk = [
        (0, spg_convnet::ConvSpec::square(32, 32, 32, 4, 1)),
        (5, spg_convnet::ConvSpec::square(32, 64, 16, 11, 1)),
    ];
    let mut rows = Vec::new();
    for (id, spec) in shrunk {
        let gf = spg_bench::measured::unfold_gemm_fp_gflops(&spec, 3);
        rows.push(vec![format!("ID {id} (shrunk)"), fmt(gf, 2)]);
    }
    print!("{}", render_table(&["conv", "GFlops (1 core, this host)"], &rows));
}
