//! Regenerates Fig. 4c and Fig. 4d: Stencil-Kernel (FP) scalability and
//! its speedup over GEMM-in-Parallel, with measured single-core
//! stencil-vs-unfold+GEMM anchors from this host's real kernels.

use spg_bench::{fmt_speedup, render_table};
use spg_simcpu::Machine;

fn main() {
    let machine = Machine::xeon_e5_2650();
    print!("{}", spg_bench::figures::fig4c_report(&machine));
    println!();
    print!("{}", spg_bench::figures::fig4d_report(&machine));

    println!("\nmeasured single-core stencil/unfold+GEMM FP speedups on this host");
    println!("(stateless pays layout transforms per call; compiled amortizes them per batch):");
    let cases = [
        ("MNIST L0", spg_convnet::ConvSpec::square(28, 20, 1, 5, 1)),
        ("CIFAR L1", spg_convnet::ConvSpec::square(8, 64, 64, 5, 1)),
    ];
    let mut rows = Vec::new();
    for (name, spec) in cases {
        let gemm = spg_bench::measured::unfold_gemm_fp_gflops(&spec, 5);
        let stencil = spg_bench::measured::stencil_fp_gflops(&spec, 5);
        let compiled = spg_bench::measured::stencil_fp_compiled_gflops(&spec, 5);
        rows.push(vec![name.to_owned(), fmt_speedup(stencil / gemm), fmt_speedup(compiled / gemm)]);
    }
    print!("{}", render_table(&["layer", "stateless speedup", "compiled speedup"], &rows));
}
