//! Regenerates Fig. 3b: error-gradient sparsity across training epochs —
//! the paper's modeled curves plus a measured curve from real training
//! of a small CNN on a synthetic dataset.

fn main() {
    let measured = spg_workloads::sparsity::measured_curve(10, 0x3b);
    print!("{}", spg_bench::figures::fig3b_report(Some(&measured)));
}
