//! Regenerates Table 1: benchmark convolutions with intrinsic and
//! Unfold+GEMM arithmetic intensities and their Fig. 1 regions.

fn main() {
    print!("{}", spg_bench::figures::table1_report());
}
