//! Measured companion to Fig. 8: per-conv-layer kernel comparisons on
//! *this host's* real kernels, at the paper's full Table 2 geometries and
//! its 85 % backward-gradient sparsity.
//!
//! On a single core, GEMM-in-Parallel and the Parallel-GEMM baseline are
//! the same schedule, so the multicore GiP gains of Fig. 8 live in the
//! `fig8` model harness; what *can* be measured here is the per-layer
//! kernel contest the scheduler adjudicates: Unfold+GEMM vs the stencil
//! kernel for FP (stateless and batch-amortized compiled forms), and
//! dense vs sparse BP.

use spg_bench::measured::{
    sparse_bp_measurement, stencil_fp_compiled_gflops, stencil_fp_gflops, unfold_gemm_fp_gflops,
};
use spg_bench::{fmt, fmt_speedup, render_table};
use spg_workloads::table2;

const REPS: usize = 3;

fn main() {
    println!("=== Fig 8 (measured): per-layer kernel contest on this host ===");
    println!("(full Table 2 geometries, single core, 85 % BP sparsity, {REPS} reps)\n");

    let mut rows = Vec::new();
    for (bench, layer, spec) in table2::all_layers() {
        // The largest ImageNet layers at full geometry take minutes per
        // rep through the baselines; shrink only the spatial extent
        // (feature counts and kernels untouched) for specs above a work
        // budget.
        let spec = if spec.arithmetic_ops() > 2_000_000_000 {
            spg_convnet::ConvSpec::new(
                spec.in_c(),
                (spec.in_h() / 2).max(spec.ky() * 2),
                (spec.in_w() / 2).max(spec.kx() * 2),
                spec.features(),
                spec.ky(),
                spec.kx(),
                spec.sy(),
                spec.sx(),
            )
            .expect("halving spatial extent keeps the spec valid")
        } else {
            spec
        };
        let gemm = unfold_gemm_fp_gflops(&spec, REPS);
        let stencil = stencil_fp_gflops(&spec, REPS);
        let compiled = stencil_fp_compiled_gflops(&spec, REPS);
        let bp = sparse_bp_measurement(&spec, 0.85, REPS);
        rows.push(vec![
            format!("{} L{layer}", bench.label()),
            fmt(gemm, 1),
            fmt_speedup(stencil / gemm),
            fmt_speedup(compiled / gemm),
            fmt_speedup(bp.speedup()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["layer", "U+GEMM GF", "stencil FP", "stencil FP (compiled)", "sparse BP @0.85",],
            &rows
        )
    );
    println!("\nspeedups are vs the single-core Unfold+GEMM baseline; the multicore");
    println!("GiP component of Fig. 8 comes from the machine model (see `fig8`).");
}
