//! Real kernel measurements on the host machine.
//!
//! The scaling figures come from the `spg-simcpu` model (this container
//! has one core); these helpers supply the *measured single-core anchors*
//! printed alongside them — real wall-clock timings of the workspace's
//! kernels on this host, demonstrating that the implemented kernels show
//! the same single-core ordering the model predicts.

// Benchmarks the deprecated throwaway-scratch entry points on purpose,
// as the baseline the reused-scratch path is compared against.
#![allow(deprecated)]

use std::time::Instant;

use spg_convnet::{gemm_exec, ConvSpec};
use spg_core::sparse::kernel as sparse_kernel;
use spg_core::sparse::DEFAULT_TILE_WIDTH;
use spg_core::stencil::kernel as stencil_kernel;
use spg_workloads::synth::conv_operands;

/// Measured single-core GFlops of one forward convolution under the
/// given executor, averaged over `reps` runs after one warm-up.
fn time_forward<F: FnMut()>(flops: u64, reps: usize, mut run: F) -> f64 {
    run();
    let start = Instant::now();
    for _ in 0..reps {
        run();
    }
    let secs = start.elapsed().as_secs_f64() / reps as f64;
    flops as f64 / secs / 1e9
}

/// Measured GFlops of the Unfold+GEMM forward path on this host.
pub fn unfold_gemm_fp_gflops(spec: &ConvSpec, reps: usize) -> f64 {
    let ops = conv_operands(spec, 0.0, 0xbeef);
    let mut out = vec![0.0f32; spec.output_shape().len()];
    time_forward(spec.arithmetic_ops(), reps, || {
        gemm_exec::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out, 1);
    })
}

/// Measured GFlops of the stencil forward kernel on this host, paying
/// all layout transforms on every call (stateless executor path).
pub fn stencil_fp_gflops(spec: &ConvSpec, reps: usize) -> f64 {
    let ops = conv_operands(spec, 0.0, 0xbeef);
    let mut out = vec![0.0f32; spec.output_shape().len()];
    time_forward(spec.arithmetic_ops(), reps, || {
        stencil_kernel::forward(spec, ops.input.as_slice(), ops.weights.as_slice(), &mut out);
    })
}

/// Measured GFlops of the *compiled* stencil forward kernel on this host:
/// weight transforms paid once at compile time, as the paper's generated
/// code amortizes them across a batch.
pub fn stencil_fp_compiled_gflops(spec: &ConvSpec, reps: usize) -> f64 {
    use spg_core::compiled::CompiledConv;
    use spg_core::schedule::{LayerPlan, Technique};
    let ops = conv_operands(spec, 0.0, 0xbeef);
    let plan = LayerPlan { forward: Technique::StencilFp, backward: Technique::SparseBp };
    let kernel =
        CompiledConv::compile(*spec, plan, ops.weights.as_slice(), 1).expect("valid operands");
    let mut out = vec![0.0f32; spec.output_shape().len()];
    time_forward(spec.arithmetic_ops(), reps, || {
        kernel.forward(ops.input.as_slice(), &mut out);
    })
}

/// Measured backward-pass results at one sparsity level.
#[derive(Debug, Clone, Copy)]
pub struct SparseMeasurement {
    /// Gradient sparsity of the workload.
    pub sparsity: f64,
    /// Dense (Unfold+GEMM) backward time in seconds.
    pub dense_secs: f64,
    /// Sparse-kernel backward time in seconds.
    pub sparse_secs: f64,
    /// Measured goodput of the sparse kernel in GFlops (non-zero work
    /// over sparse time).
    pub goodput_gflops: f64,
}

impl SparseMeasurement {
    /// Speedup of the sparse kernel over the dense baseline.
    pub fn speedup(&self) -> f64 {
        self.dense_secs / self.sparse_secs
    }
}

/// Measures dense vs sparse backward propagation (error + delta-weights)
/// at one sparsity level on this host.
pub fn sparse_bp_measurement(spec: &ConvSpec, sparsity: f64, reps: usize) -> SparseMeasurement {
    let ops = conv_operands(spec, sparsity, 0x5ee0);
    let mut grad_in = vec![0.0f32; spec.input_shape().len()];
    let mut grad_w = vec![0.0f32; spec.weight_shape().len()];

    let mut dense = || {
        gemm_exec::backward_data(
            spec,
            ops.weights.as_slice(),
            ops.grad_out.as_slice(),
            &mut grad_in,
            1,
        );
        gemm_exec::backward_weights(
            spec,
            ops.input.as_slice(),
            ops.grad_out.as_slice(),
            &mut grad_w,
            1,
        );
    };
    dense();
    let start = Instant::now();
    for _ in 0..reps {
        dense();
    }
    let dense_secs = start.elapsed().as_secs_f64() / reps as f64;

    let mut sparse = || {
        sparse_kernel::backward_data(
            spec,
            ops.weights.as_slice(),
            ops.grad_out.as_slice(),
            &mut grad_in,
            DEFAULT_TILE_WIDTH,
        );
        sparse_kernel::backward_weights(
            spec,
            ops.input.as_slice(),
            ops.grad_out.as_slice(),
            &mut grad_w,
            DEFAULT_TILE_WIDTH,
        );
    };
    sparse();
    let start = Instant::now();
    for _ in 0..reps {
        sparse();
    }
    let sparse_secs = start.elapsed().as_secs_f64() / reps as f64;

    let actual_sparsity = ops.grad_out.sparsity();
    let useful = 2.0 * spec.arithmetic_ops() as f64 * (1.0 - actual_sparsity);
    SparseMeasurement {
        sparsity: actual_sparsity,
        dense_secs,
        sparse_secs,
        goodput_gflops: useful / sparse_secs / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ConvSpec {
        ConvSpec::new(2, 12, 12, 4, 3, 3, 1, 1).expect("valid fixed spec")
    }

    #[test]
    fn forward_measurements_are_positive() {
        assert!(unfold_gemm_fp_gflops(&tiny(), 1) > 0.0);
        assert!(stencil_fp_gflops(&tiny(), 1) > 0.0);
    }

    #[test]
    fn sparse_measurement_reports_consistent_fields() {
        let m = sparse_bp_measurement(&tiny(), 0.9, 1);
        assert!(m.dense_secs > 0.0 && m.sparse_secs > 0.0);
        assert!(m.speedup() > 0.0);
        assert!((m.sparsity - 0.9).abs() < 0.15);
    }
}
