//! Property-based tests for the machine model: the predictions must be
//! physically sane for *arbitrary* convolutions, not just the benchmark
//! set — positive, bounded by peak, and monotone where the paper's
//! arguments say they must be.

use proptest::prelude::*;

use spg_convnet::ConvSpec;
use spg_simcpu::{
    cifar10_throughput, gemm_in_parallel_gflops_per_core, parallel_gemm_gflops_per_core,
    sparse_bp_prediction, stencil_gflops_per_core, EndToEndConfig, Machine,
};

fn conv_spec() -> impl Strategy<Value = ConvSpec> {
    (1usize..512, 8usize..256, 1usize..512, 1usize..8, 1usize..3)
        .prop_filter_map("kernel fits input", |(f, n, c, k, s)| {
            ConvSpec::new(c, n, n, f, k, k, s, s).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every predictor stays within (0, peak] for every conv and core
    /// count.
    #[test]
    fn predictions_are_bounded(spec in conv_spec(), cores in 1usize..33) {
        let m = Machine::xeon_e5_2650();
        for perf in [
            parallel_gemm_gflops_per_core(&m, &spec, cores),
            gemm_in_parallel_gflops_per_core(&m, &spec, cores),
            stencil_gflops_per_core(&m, &spec, cores),
        ] {
            prop_assert!(perf > 0.0);
            prop_assert!(perf <= m.peak_gflops_per_core + 1e-9);
        }
    }

    /// Parallel-GEMM per-core performance never improves with more cores.
    #[test]
    fn parallel_gemm_monotone_decreasing(spec in conv_spec()) {
        let m = Machine::xeon_e5_2650();
        let mut prev = f64::INFINITY;
        for cores in [1usize, 2, 4, 8, 16, 32] {
            let p = parallel_gemm_gflops_per_core(&m, &spec, cores);
            prop_assert!(p <= prev + 1e-9, "{spec} at {cores} cores: {p} > {prev}");
            prev = p;
        }
    }

    /// GiP never scales worse than Parallel-GEMM (it coincides at one
    /// core and partitioning only removes per-core AIT).
    #[test]
    fn gip_at_least_parallel_gemm(spec in conv_spec(), cores in 1usize..33) {
        let m = Machine::xeon_e5_2650();
        let gip = gemm_in_parallel_gflops_per_core(&m, &spec, cores);
        let pg = parallel_gemm_gflops_per_core(&m, &spec, cores);
        // Contention gives GiP a small penalty Parallel-GEMM's model does
        // not carry, so allow that margin at low core counts.
        prop_assert!(gip >= pg * m.contention(cores) - 1e-9, "{spec}: {gip} vs {pg}");
    }

    /// Sparse BP predictions: time monotone in sparsity, speedup bounded
    /// by the no-transform limit, goodput positive.
    #[test]
    fn sparse_predictions_sane(spec in conv_spec(), cores in 1usize..17) {
        let m = Machine::xeon_e5_2650();
        let mut prev_time = f64::INFINITY;
        for s in [0.0, 0.3, 0.6, 0.9, 0.99] {
            let p = sparse_bp_prediction(&m, &spec, s, cores);
            prop_assert!(p.time_s > 0.0 && p.time_s <= prev_time + 1e-12);
            prop_assert!(p.goodput_gflops >= 0.0);
            prop_assert!(p.speedup_over_gip > 0.0);
            prev_time = p.time_s;
        }
    }

    /// End-to-end throughput is positive and the full framework never
    /// loses to plain GiP at the same thread count.
    #[test]
    fn end_to_end_sane(threads in 1usize..33, sparsity in 0.76f64..0.99) {
        let m = Machine::xeon_e5_2650();
        for config in EndToEndConfig::all() {
            prop_assert!(cifar10_throughput(&m, config, threads, sparsity) > 0.0);
        }
        let gip = cifar10_throughput(&m, EndToEndConfig::GemmInParallel, threads, sparsity);
        let full = cifar10_throughput(&m, EndToEndConfig::StencilFpSparseBp, threads, sparsity);
        prop_assert!(full >= gip * 0.99, "full {full} vs gip {gip}");
    }
}
