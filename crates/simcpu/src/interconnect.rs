//! Interconnect bandwidth/latency term for multi-node all-reduce
//! scaling curves.
//!
//! The paper's Sec. 3 model explains single-machine scaling through
//! per-core arithmetic intensity; extending the same style of analysis
//! across machines needs one more term: the synchronous gradient
//! all-reduce on the interconnect. `spg-cluster` implements the real
//! chain-ring (and binomial-tree) all-reduce over a wire protocol; this
//! module is its analytical cost model, in the α–β tradition:
//!
//! * **Ring**: each node sends and receives `2 (N-1)/N · G` bytes over
//!   its two links in `2 (N-1)` pipelined steps —
//!   `t = 2 (N-1)/N · G / BW + 2 (N-1) · α`. Bandwidth-optimal: the
//!   per-node traffic approaches `2G` regardless of `N`, so the
//!   bandwidth term is flat in node count and only the latency term
//!   grows (linearly).
//! * **Tree**: a reduce leg and a broadcast leg of `ceil(log2 N)`
//!   rounds, each moving the whole `G` bytes —
//!   `t = 2 ceil(log2 N) · (G / BW + α)`. Latency-friendly
//!   (logarithmic rounds) but moves `log N` times more bytes per node,
//!   so the ring wins for CNN-sized gradients and the tree only for
//!   tiny payloads on high-latency links — the crossover the emitted
//!   `BENCH_cluster.json` curves exhibit.

/// Point-to-point link parameters of the cluster interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Sustained per-link bandwidth in GB/s.
    pub link_bandwidth_gbs: f64,
    /// Per-message link latency (the α term) in microseconds.
    pub link_latency_us: f64,
}

impl Interconnect {
    /// Loopback transport (UDS / localhost TCP) as used by the
    /// multi-process smoke: high bandwidth, sub-10 µs latency.
    pub fn loopback() -> Self {
        Interconnect { link_bandwidth_gbs: 8.0, link_latency_us: 8.0 }
    }

    /// A 10 GbE cluster fabric: 1.25 GB/s per link, tens of
    /// microseconds of latency.
    pub fn ten_gbe() -> Self {
        Interconnect { link_bandwidth_gbs: 1.25, link_latency_us: 40.0 }
    }

    /// Seconds for a chain-ring all-reduce of `gradient_bytes` across
    /// `nodes` (reduce leg plus broadcast leg, `2 (N-1)` pipelined
    /// chunk steps).
    pub fn ring_allreduce_seconds(&self, gradient_bytes: usize, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        let bytes = gradient_bytes as f64;
        let bw = self.link_bandwidth_gbs * 1e9;
        2.0 * (n - 1.0) / n * bytes / bw + 2.0 * (n - 1.0) * self.link_latency_us * 1e-6
    }

    /// Seconds for a binomial-tree all-reduce of `gradient_bytes`
    /// across `nodes` (`ceil(log2 N)` rounds up, the same back down,
    /// each carrying the full payload).
    pub fn tree_allreduce_seconds(&self, gradient_bytes: usize, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let rounds = (usize::BITS - (nodes - 1).leading_zeros()) as f64;
        let bytes = gradient_bytes as f64;
        let bw = self.link_bandwidth_gbs * 1e9;
        2.0 * rounds * (bytes / bw + self.link_latency_us * 1e-6)
    }
}

/// One node count on a cluster scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Per-node compute seconds per step (strong scaling: the global
    /// batch splits evenly, so compute shrinks as `1/N`).
    pub compute_seconds: f64,
    /// Ring all-reduce seconds per step.
    pub ring_seconds: f64,
    /// Tree all-reduce seconds per step.
    pub tree_seconds: f64,
    /// Ring parallel efficiency: speedup over one node divided by `N`.
    pub ring_efficiency: f64,
    /// Tree parallel efficiency.
    pub tree_efficiency: f64,
}

/// Strong-scaling curve for synchronous data-parallel SGD: one global
/// batch whose compute (`single_node_step_seconds` on one node) splits
/// evenly across nodes, followed by an all-reduce of `gradient_bytes`.
///
/// Efficiency is `speedup / N` with
/// `speedup = t(1) / (t_compute(N) + t_allreduce(N))`; 1.0 is ideal.
pub fn cluster_scaling(
    interconnect: &Interconnect,
    single_node_step_seconds: f64,
    gradient_bytes: usize,
    node_counts: &[usize],
) -> Vec<ClusterPoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let n = nodes.max(1);
            let compute = single_node_step_seconds / n as f64;
            let ring = interconnect.ring_allreduce_seconds(gradient_bytes, n);
            let tree = interconnect.tree_allreduce_seconds(gradient_bytes, n);
            let eff = |comm: f64| (single_node_step_seconds / (compute + comm)) / n as f64;
            ClusterPoint {
                nodes: n,
                compute_seconds: compute,
                ring_seconds: ring,
                tree_seconds: tree,
                ring_efficiency: eff(ring),
                tree_efficiency: eff(tree),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    #[test]
    fn single_node_needs_no_communication() {
        let ic = Interconnect::loopback();
        assert_eq!(ic.ring_allreduce_seconds(64 * MB, 1), 0.0);
        assert_eq!(ic.tree_allreduce_seconds(64 * MB, 1), 0.0);
    }

    #[test]
    fn ring_bandwidth_term_is_flat_in_node_count() {
        // The ring's defining property: per-node bytes approach 2G, so
        // on a latency-free link the time saturates instead of growing.
        let ic = Interconnect { link_bandwidth_gbs: 1.0, link_latency_us: 0.0 };
        let t8 = ic.ring_allreduce_seconds(64 * MB, 8);
        let t64 = ic.ring_allreduce_seconds(64 * MB, 64);
        assert!(t64 < t8 * 1.15, "ring time grew with nodes: {t8} -> {t64}");
    }

    #[test]
    fn tree_moves_log_n_payloads() {
        let ic = Interconnect { link_bandwidth_gbs: 1.0, link_latency_us: 0.0 };
        let t8 = ic.tree_allreduce_seconds(64 * MB, 8); // 3 rounds each way
        let t64 = ic.tree_allreduce_seconds(64 * MB, 64); // 6 rounds each way
        assert!((t64 / t8 - 2.0).abs() < 1e-9, "expected 2x rounds, got {}", t64 / t8);
    }

    #[test]
    fn ring_beats_tree_on_large_gradients_tree_on_tiny_ones() {
        let ic = Interconnect::ten_gbe();
        // CNN-sized gradient: the ring's flat bandwidth term wins.
        assert!(ic.ring_allreduce_seconds(64 * MB, 64) < ic.tree_allreduce_seconds(64 * MB, 64));
        // Tiny payload at 64 nodes: 126 ring latency hops lose to 12
        // tree rounds.
        assert!(ic.ring_allreduce_seconds(1024, 64) > ic.tree_allreduce_seconds(1024, 64));
    }

    #[test]
    fn efficiency_degrades_monotonically_with_scale() {
        let ic = Interconnect::ten_gbe();
        let points = cluster_scaling(&ic, 0.5, 16 * MB, &[1, 8, 16, 64]);
        assert_eq!(points.len(), 4);
        assert!((points[0].ring_efficiency - 1.0).abs() < 1e-9, "1 node is ideal");
        for pair in points.windows(2) {
            assert!(
                pair[1].ring_efficiency < pair[0].ring_efficiency,
                "efficiency must fall with node count: {points:?}"
            );
            assert!(pair[1].ring_efficiency > 0.0);
        }
    }

    #[test]
    fn faster_links_shrink_the_allreduce() {
        let slow = Interconnect::ten_gbe();
        let fast = Interconnect::loopback();
        assert!(
            fast.ring_allreduce_seconds(64 * MB, 16) < slow.ring_allreduce_seconds(64 * MB, 16)
        );
    }
}
