/// Description of a multicore CPU for the analytical model.
///
/// The default preset models the paper's testbed. Constants were
/// calibrated once against the qualitative anchors the paper reports and
/// are validated by this crate's tests:
///
/// * Parallel-GEMM loses more than 50 % per-core performance by 16 cores
///   on moderate convolutions, while GEMM-in-Parallel loses less than
///   15 % (Sec. 4.1).
/// * Large convolutions (Table 1 ID 1) run near peak on one core.
/// * Small unfolded convolutions (IDs 0 and 5) run far below peak on one
///   core (Sec. 3.1).
/// * The sparse kernel overtakes dense BP near 75 % sparsity and peaks
///   before ~90 %, beyond which transform costs dominate (Sec. 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Physical cores (the paper's machine: 16, with 32 hyper-threads).
    pub cores: usize,
    /// Peak single-core throughput in GFlops (paper: 41.6).
    pub peak_gflops_per_core: f64,
    /// Roofline ridge point: the per-core arithmetic intensity (flops per
    /// element of traffic) at which a kernel transitions from
    /// bandwidth-bound to compute-bound. Calibrated so Table 1 ID 1
    /// (per-core AIT ~ 680 with unfold overhead) runs at peak on one core
    /// while ID 0's unfold-capped AIT of ~29 lands near a seventh of
    /// peak — matching the Fig. 3a single-core ordering.
    pub ait_ridge: f64,
    /// Per-extra-core slowdown for schedules with independent per-core
    /// working sets (shared memory-system pressure). `0.01` yields a
    /// ~13 % per-core drop at 16 cores — the paper's "< 15 % on average".
    pub contention_per_core: f64,
    /// Streaming bandwidth available to one core for data-layout
    /// transforms, in GB/s.
    pub stream_bw_gbs: f64,
    /// Fraction of a dense GEMM's per-element rate that the sparse
    /// backward kernel achieves on *non-zero* elements (irregular access,
    /// CT-CSR traversal). Calibrated so the sparse/dense crossover lands
    /// at the paper's ~75 % sparsity.
    pub sparse_efficiency: f64,
    /// Fraction of peak the stencil kernel sustains at unbounded AIT
    /// (direct convolution doesn't reach GEMM's register efficiency;
    /// Fig. 4c tops out near 30 of 41.6 GFlops/core).
    pub stencil_efficiency: f64,
}

impl Machine {
    /// The paper's testbed: Intel Xeon E5-2650, 16 physical cores,
    /// 41.6 GFlops/core peak.
    pub fn xeon_e5_2650() -> Self {
        Machine {
            cores: 16,
            peak_gflops_per_core: 41.6,
            ait_ridge: 200.0,
            contention_per_core: 0.01,
            stream_bw_gbs: 2.0,
            sparse_efficiency: 0.25,
            stencil_efficiency: 0.68,
        }
    }

    /// A larger contemporary part for sensitivity studies: more cores,
    /// wider vectors (higher per-core peak), and a proportionally higher
    /// roofline ridge — the paper's qualitative conclusions (partitioned
    /// AIT decay, GiP flatness, sparse crossover) are ridge-relative and
    /// survive the change; the model exposes how the crossover points
    /// move.
    pub fn xeon_8180() -> Self {
        Machine {
            cores: 28,
            peak_gflops_per_core: 147.2, // 2.3 GHz x 2 AVX-512 FMA x 32
            ait_ridge: 480.0,
            contention_per_core: 0.012,
            stream_bw_gbs: 4.0,
            sparse_efficiency: 0.25,
            stencil_efficiency: 0.68,
        }
    }

    /// Widens the machine's vector units to AVX-512: per-core peak doubles
    /// (16-lane FMA vs 8-lane) and the roofline ridge doubles with it,
    /// because memory bandwidth is unchanged — a kernel needs twice the
    /// arithmetic intensity to keep the wider units fed. This is why the
    /// specialized AVX-512 registry instances pay off on the Table 2 hot
    /// layers (high AIT) but not on bandwidth-bound small layers.
    ///
    /// # Example
    ///
    /// ```
    /// let base = spg_simcpu::Machine::xeon_e5_2650();
    /// let wide = base.clone().with_avx512();
    /// // Twice the peak, but a low-AIT kernel sustains the same GFlops.
    /// assert_eq!(wide.peak_gflops_per_core, 2.0 * base.peak_gflops_per_core);
    /// let ait = 50.0;
    /// let sustained =
    ///     |m: &spg_simcpu::Machine| m.peak_gflops_per_core * m.saturation(ait);
    /// assert!((sustained(&wide) - sustained(&base)).abs() < 1e-9);
    /// ```
    pub fn with_avx512(mut self) -> Self {
        self.peak_gflops_per_core *= 2.0;
        self.ait_ridge *= 2.0;
        self
    }

    /// Models the specialized-kernel registry (`spg-codegen`): monomorphized
    /// const-generic stencils recover register efficiency the generic
    /// runtime-parameterized loops leave on the table, which the analytical
    /// model expresses as a lift of `stencil_efficiency`, capped at 1.0.
    /// `speedup` is the measured specialized-vs-generic ratio (e.g. the
    /// committed `BENCH_kernels.json` hot-layer median).
    ///
    /// # Panics
    ///
    /// Panics if `speedup < 1.0` — the dispatcher falls back to the generic
    /// kernel rather than deploy a slowdown.
    pub fn with_specialized_stencils(mut self, speedup: f64) -> Self {
        assert!(speedup >= 1.0, "specialized kernels never deploy a slowdown");
        self.stencil_efficiency = (self.stencil_efficiency * speedup).min(1.0);
        self
    }

    /// Roofline: the fraction of peak a kernel with the given per-core
    /// arithmetic intensity sustains, `min(1, ait / ait_ridge)`.
    ///
    /// # Example
    ///
    /// ```
    /// let m = spg_simcpu::Machine::xeon_e5_2650();
    /// assert!((m.saturation(100.0) - 0.5).abs() < 1e-12);
    /// assert_eq!(m.saturation(1000.0), 1.0);
    /// ```
    pub fn saturation(&self, ait: f64) -> f64 {
        if ait <= 0.0 {
            return 0.0;
        }
        (ait / self.ait_ridge).min(1.0)
    }

    /// Shared-memory-system contention factor for `active` cores running
    /// independent working sets.
    ///
    /// # Panics
    ///
    /// Panics if `active == 0`.
    pub fn contention(&self, active: usize) -> f64 {
        assert!(active > 0, "active core count must be positive");
        1.0 / (1.0 + self.contention_per_core * (active as f64 - 1.0))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::xeon_e5_2650()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_headline_numbers() {
        let m = Machine::xeon_e5_2650();
        assert_eq!(m.cores, 16);
        assert!((m.peak_gflops_per_core - 41.6).abs() < 1e-12);
    }

    #[test]
    fn saturation_is_monotone_and_bounded() {
        let m = Machine::default();
        let mut prev = 0.0;
        for ait in [0.0, 1.0, 10.0, 50.0, 200.0, 2000.0] {
            let s = m.saturation(ait);
            assert!((0.0..=1.0).contains(&s));
            assert!(s >= prev);
            prev = s;
        }
        assert_eq!(m.saturation(m.ait_ridge), 1.0);
    }

    #[test]
    fn contention_matches_paper_bound_at_16_cores() {
        let m = Machine::default();
        assert_eq!(m.contention(1), 1.0);
        let at16 = m.contention(16);
        assert!(at16 > 0.85 && at16 < 1.0, "GiP per-core drop must be < 15 %: {at16}");
    }

    #[test]
    #[should_panic(expected = "active core count")]
    fn zero_active_cores_panics() {
        Machine::default().contention(0);
    }

    /// AVX-512 widening doubles peak and ridge together: compute-bound
    /// kernels (AIT above the new ridge) gain the full 2x, while
    /// bandwidth-bound kernels gain nothing — matching why the specialized
    /// registry targets the hot Table 2 layers.
    #[test]
    fn avx512_widening_pays_off_only_above_the_ridge() {
        let base = Machine::xeon_e5_2650();
        let wide = base.clone().with_avx512();
        let sustained = |m: &Machine, ait: f64| m.peak_gflops_per_core * m.saturation(ait);
        let low_ait = base.ait_ridge / 4.0;
        assert!((sustained(&wide, low_ait) - sustained(&base, low_ait)).abs() < 1e-9);
        let high_ait = wide.ait_ridge * 2.0;
        assert!((sustained(&wide, high_ait) - 2.0 * sustained(&base, high_ait)).abs() < 1e-9);
    }

    #[test]
    fn specialized_stencil_lift_is_capped_at_peak() {
        let m = Machine::xeon_e5_2650().with_specialized_stencils(1.3);
        assert!((m.stencil_efficiency - 0.68 * 1.3).abs() < 1e-12);
        let capped = Machine::xeon_e5_2650().with_specialized_stencils(10.0);
        assert_eq!(capped.stencil_efficiency, 1.0);
    }

    #[test]
    #[should_panic(expected = "never deploy a slowdown")]
    fn specialized_stencil_lift_rejects_slowdowns() {
        let _ = Machine::xeon_e5_2650().with_specialized_stencils(0.9);
    }

    /// The paper's qualitative conclusions survive a machine change: on a
    /// wider, higher-ridge part, Parallel-GEMM still decays and GiP still
    /// holds (the decay is even steeper because the ridge is higher
    /// relative to the same convolutions' AIT).
    #[test]
    fn conclusions_hold_on_modern_preset() {
        use crate::{gemm_in_parallel_gflops_per_core, parallel_gemm_gflops_per_core};
        let m = Machine::xeon_8180();
        let spec = spg_convnet::ConvSpec::square(256, 256, 128, 3, 1); // Table 1 ID 2
        let pg1 = parallel_gemm_gflops_per_core(&m, &spec, 1);
        let pg28 = parallel_gemm_gflops_per_core(&m, &spec, 28);
        assert!(pg28 < pg1 * 0.5, "Parallel-GEMM must still decay: {pg1} -> {pg28}");
        let gip28 = gemm_in_parallel_gflops_per_core(&m, &spec, 28);
        assert!(gip28 > pg28 * 2.0, "GiP must still win at scale");
    }
}
