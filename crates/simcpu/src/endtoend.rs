//! End-to-end training-throughput model for the Fig. 9 experiment:
//! CIFAR-10 images/second versus core count for the five configurations
//! the paper compares.

use spg_convnet::ConvSpec;

use crate::{
    gemm_in_parallel_gflops_per_core, parallel_gemm_gflops_per_core, sparse_bp_prediction,
    stencil_gflops_per_core, Machine,
};

/// Relative platform efficiency of Caffe's training loop (the Fig. 9
/// baseline that peaks at 273 images/s).
const CAFFE_PLATFORM_EFF: f64 = 1.0;
/// Relative platform efficiency of Adam's training loop (it peaks at 185
/// vs Caffe's 273 images/s in Fig. 9; the framework also carries more
/// per-image bookkeeping at low core counts). spg-CNN is implemented on
/// Adam, so its configurations inherit this factor.
const ADAM_PLATFORM_EFF: f64 = 0.5;
/// Fraction of time spent outside convolution layers (pooling,
/// activation, loss, parameter updates).
const NON_CONV_OVERHEAD: f64 = 0.15;
/// Throughput contribution of a hyper-thread beyond the physical cores
/// (the paper plots up to 32 threads on 16 physical cores).
const HYPERTHREAD_YIELD: f64 = 0.4;

/// One of the five Fig. 9 system configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// `Unfold + Parallel-GEMM` as deployed by Caffe (OpenBLAS).
    ParallelGemmCaffe,
    /// `Unfold + Parallel-GEMM` as deployed by Adam (MKL).
    ParallelGemmAdam,
    /// GEMM-in-Parallel for both FP and BP.
    GemmInParallel,
    /// GEMM-in-Parallel FP with the sparse kernel for BP.
    GipFpSparseBp,
    /// Stencil FP with the sparse kernel for BP (the full framework).
    StencilFpSparseBp,
}

impl Config {
    /// All five configurations in the paper's legend order.
    pub fn all() -> [Config; 5] {
        [
            Config::ParallelGemmCaffe,
            Config::ParallelGemmAdam,
            Config::GemmInParallel,
            Config::GipFpSparseBp,
            Config::StencilFpSparseBp,
        ]
    }

    /// The legend label used in Fig. 9.
    pub fn label(self) -> &'static str {
        match self {
            Config::ParallelGemmCaffe => "Parallel-GEMM (CAFFE)",
            Config::ParallelGemmAdam => "Parallel-GEMM (ADAM)",
            Config::GemmInParallel => "GEMM-in-Parallel (FP and BP)",
            Config::GipFpSparseBp => "GEMM-in-Parallel (FP) + Sparse-Kernel (BP)",
            Config::StencilFpSparseBp => "Stencil-Kernel (FP) + Sparse-Kernel (BP)",
        }
    }
}

/// Per-layer conv work used by the end-to-end model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// The convolution spec of the layer.
    pub spec: ConvSpec,
}

/// The CIFAR-10 convolution layers of Table 2.
pub fn cifar10_layers() -> Vec<LayerCost> {
    vec![
        LayerCost { spec: ConvSpec::square(36, 64, 3, 5, 1) },
        LayerCost { spec: ConvSpec::square(8, 64, 64, 5, 1) },
    ]
}

/// Predicted CIFAR-10 training throughput (images/second) for one
/// configuration at one thread count — a point on a Fig. 9 curve.
///
/// Convenience wrapper over [`training_throughput`] with the Table 2
/// CIFAR-10 layers.
///
/// # Panics
///
/// Panics if `threads == 0` or `bp_sparsity` is outside `[0, 1]`.
pub fn cifar10_throughput(
    machine: &Machine,
    config: Config,
    threads: usize,
    bp_sparsity: f64,
) -> f64 {
    training_throughput(machine, &cifar10_layers(), config, threads, bp_sparsity)
}

/// Predicted training throughput (images/second) for an arbitrary stack
/// of convolution layers under one system configuration — the Fig. 9
/// model generalized to any benchmark network.
///
/// `threads` may exceed the machine's physical cores (hyper-threading);
/// excess threads contribute at a reduced yield. `bp_sparsity` is the
/// error-gradient sparsity the sparse configurations exploit (the paper
/// uses the conservatively measured 85 %).
///
/// # Panics
///
/// Panics if `threads == 0`, `bp_sparsity` is outside `[0, 1]`, or
/// `layers` is empty.
pub fn training_throughput(
    machine: &Machine,
    layers: &[LayerCost],
    config: Config,
    threads: usize,
    bp_sparsity: f64,
) -> f64 {
    assert!(threads > 0, "thread count must be positive");
    assert!((0.0..=1.0).contains(&bp_sparsity), "sparsity must be in [0, 1]");
    assert!(!layers.is_empty(), "layer list must be non-empty");

    let physical = threads.min(machine.cores) as f64;
    let effective = physical + HYPERTHREAD_YIELD * (threads as f64 - physical).max(0.0);

    match config {
        Config::ParallelGemmCaffe | Config::ParallelGemmAdam => {
            // All threads cooperate on one image at a time.
            let mut time = 0.0;
            for layer in layers {
                let per_core = parallel_gemm_gflops_per_core(machine, &layer.spec, threads);
                let rate = per_core * effective * 1e9;
                time += 3.0 * layer.spec.arithmetic_ops() as f64 / rate;
            }
            time *= 1.0 + NON_CONV_OVERHEAD;
            let eff = if config == Config::ParallelGemmCaffe {
                CAFFE_PLATFORM_EFF
            } else {
                ADAM_PLATFORM_EFF
            };
            eff / time
        }
        Config::GemmInParallel | Config::GipFpSparseBp | Config::StencilFpSparseBp => {
            // Each thread trains whole images with single-threaded kernels.
            let mut time = 0.0;
            for layer in layers {
                let fp_rate = match config {
                    Config::StencilFpSparseBp => {
                        stencil_gflops_per_core(machine, &layer.spec, threads)
                    }
                    _ => gemm_in_parallel_gflops_per_core(machine, &layer.spec, threads),
                } * 1e9;
                time += layer.spec.arithmetic_ops() as f64 / fp_rate;
                time += match config {
                    Config::GemmInParallel => {
                        let bp_rate =
                            gemm_in_parallel_gflops_per_core(machine, &layer.spec, threads) * 1e9;
                        2.0 * layer.spec.arithmetic_ops() as f64 / bp_rate
                    }
                    _ => sparse_bp_prediction(machine, &layer.spec, bp_sparsity, threads).time_s,
                };
            }
            time *= 1.0 + NON_CONV_OVERHEAD;
            ADAM_PLATFORM_EFF * effective / time
        }
    }
}

/// Predicted inference-serving throughput (requests/second) for a stack
/// of convolution layers at a given worker count — the forward-only
/// analogue of [`training_throughput`], modeling the `spg-serve` worker
/// pool.
///
/// The Parallel-GEMM configurations model one multi-threaded kernel
/// cooperating on each request; the GEMM-in-Parallel-family
/// configurations model `workers` independent single-threaded pipelines
/// (each `spg-serve` worker owns its own warm compiled kernels), which is
/// what preserves per-core arithmetic intensity and near-linear scaling.
/// Backward-phase technique choices are irrelevant here: serving never
/// runs backward propagation.
///
/// # Panics
///
/// Panics if `workers == 0` or `layers` is empty.
pub fn serving_throughput(
    machine: &Machine,
    layers: &[LayerCost],
    config: Config,
    workers: usize,
) -> f64 {
    assert!(workers > 0, "worker count must be positive");
    assert!(!layers.is_empty(), "layer list must be non-empty");

    let physical = workers.min(machine.cores) as f64;
    let effective = physical + HYPERTHREAD_YIELD * (workers as f64 - physical).max(0.0);

    match config {
        Config::ParallelGemmCaffe | Config::ParallelGemmAdam => {
            // All threads cooperate on one request at a time: forward-only
            // work (1x arithmetic_ops, vs 3x for training's three phases).
            let mut time = 0.0;
            for layer in layers {
                let per_core = parallel_gemm_gflops_per_core(machine, &layer.spec, workers);
                let rate = per_core * effective * 1e9;
                time += layer.spec.arithmetic_ops() as f64 / rate;
            }
            time *= 1.0 + NON_CONV_OVERHEAD;
            let eff = if config == Config::ParallelGemmCaffe {
                CAFFE_PLATFORM_EFF
            } else {
                ADAM_PLATFORM_EFF
            };
            eff / time
        }
        Config::GemmInParallel | Config::GipFpSparseBp | Config::StencilFpSparseBp => {
            // Each worker serves whole requests with single-threaded
            // kernels, so throughput is per-pipeline rate x worker count.
            let mut time = 0.0;
            for layer in layers {
                let fp_rate = match config {
                    Config::StencilFpSparseBp => {
                        stencil_gflops_per_core(machine, &layer.spec, workers)
                    }
                    _ => gemm_in_parallel_gflops_per_core(machine, &layer.spec, workers),
                } * 1e9;
                time += layer.spec.arithmetic_ops() as f64 / fp_rate;
            }
            time *= 1.0 + NON_CONV_OVERHEAD;
            ADAM_PLATFORM_EFF * effective / time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::xeon_e5_2650()
    }

    /// Fig. 9: Caffe's Parallel-GEMM is fastest at 1-2 cores.
    #[test]
    fn caffe_wins_at_low_core_counts() {
        let m = machine();
        for threads in [1, 2] {
            let caffe = cifar10_throughput(&m, Config::ParallelGemmCaffe, threads, 0.85);
            for config in [Config::GemmInParallel, Config::GipFpSparseBp, Config::StencilFpSparseBp]
            {
                assert!(
                    caffe > cifar10_throughput(&m, config, threads, 0.85),
                    "{config:?} beat Caffe at {threads} threads"
                );
            }
        }
    }

    /// Fig. 9: beyond two cores the Parallel-GEMM platforms stop scaling
    /// while GEMM-in-Parallel keeps climbing.
    #[test]
    fn parallel_gemm_plateaus_gip_scales() {
        let m = machine();
        let caffe4 = cifar10_throughput(&m, Config::ParallelGemmCaffe, 4, 0.85);
        let caffe32 = cifar10_throughput(&m, Config::ParallelGemmCaffe, 32, 0.85);
        assert!(caffe32 < caffe4 * 2.0, "Parallel-GEMM must plateau");
        let gip4 = cifar10_throughput(&m, Config::GemmInParallel, 4, 0.85);
        let gip32 = cifar10_throughput(&m, Config::GemmInParallel, 32, 0.85);
        assert!(gip32 > gip4 * 3.0, "GiP must keep scaling: {gip4} -> {gip32}");
    }

    /// Fig. 9 at 32 threads: each added technique increases throughput,
    /// with sparse BP the bigger step (paper: ~28 % then ~10 %).
    #[test]
    fn technique_stack_ordering_at_32_threads() {
        let m = machine();
        let gip = cifar10_throughput(&m, Config::GemmInParallel, 32, 0.85);
        let sparse = cifar10_throughput(&m, Config::GipFpSparseBp, 32, 0.85);
        let full = cifar10_throughput(&m, Config::StencilFpSparseBp, 32, 0.85);
        assert!(sparse > gip * 1.1, "sparse BP should add >= 10 %: {gip} -> {sparse}");
        assert!(full > sparse * 1.02, "stencil FP should add more: {sparse} -> {full}");
        let sparse_gain = sparse / gip - 1.0;
        let stencil_gain = full / sparse - 1.0;
        assert!(sparse_gain > stencil_gain, "sparse step outweighs stencil step");
    }

    /// Summary claim: the full framework beats Parallel-GEMM (CAFFE) by
    /// several times end to end (paper: 8.36x at 32 threads).
    #[test]
    fn end_to_end_speedup_is_large() {
        let m = machine();
        let caffe_peak = (1..=32)
            .map(|t| cifar10_throughput(&m, Config::ParallelGemmCaffe, t, 0.85))
            .fold(0.0, f64::max);
        let full = cifar10_throughput(&m, Config::StencilFpSparseBp, 32, 0.85);
        let speedup = full / caffe_peak;
        assert!(speedup > 3.5, "end-to-end speedup {speedup}");
    }

    /// Adam's baseline trails Caffe's at every core count (Fig. 9).
    #[test]
    fn adam_trails_caffe() {
        let m = machine();
        for threads in [1, 2, 4, 8, 16, 32] {
            let caffe = cifar10_throughput(&m, Config::ParallelGemmCaffe, threads, 0.85);
            let adam = cifar10_throughput(&m, Config::ParallelGemmAdam, threads, 0.85);
            assert!(adam < caffe);
        }
    }

    /// The bench-serve acceptance bar: the sim workload must show >= 3x
    /// serving throughput at 4 workers vs 1 for the independent-pipeline
    /// (GEMM-in-Parallel-family) configurations.
    #[test]
    fn serving_scales_3x_at_4_workers() {
        let m = machine();
        let layers = cifar10_layers();
        for config in [Config::GemmInParallel, Config::StencilFpSparseBp] {
            let one = serving_throughput(&m, &layers, config, 1);
            let four = serving_throughput(&m, &layers, config, 4);
            assert!(
                four >= 3.0 * one,
                "{config:?}: 4 workers {four:.1} req/s < 3x 1 worker {one:.1} req/s"
            );
        }
    }

    /// Serving with multi-threaded Parallel-GEMM kernels plateaus the
    /// same way training does — the motivation for the worker-pool design.
    #[test]
    fn parallel_gemm_serving_plateaus() {
        let m = machine();
        let layers = cifar10_layers();
        let four = serving_throughput(&m, &layers, Config::ParallelGemmCaffe, 4);
        let one = serving_throughput(&m, &layers, Config::ParallelGemmCaffe, 1);
        assert!(four < 3.0 * one, "Parallel-GEMM serving must scale sublinearly");
    }

    /// Forward-only serving is faster than full training at the same
    /// worker count (no backward phases).
    #[test]
    fn serving_outpaces_training() {
        let m = machine();
        let layers = cifar10_layers();
        for workers in [1, 4, 16] {
            let serve = serving_throughput(&m, &layers, Config::GemmInParallel, workers);
            let train = training_throughput(&m, &layers, Config::GemmInParallel, workers, 0.85);
            assert!(serve > train, "serving {serve} <= training {train} at {workers} workers");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Config::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
