//! The analytical [`Backend`]: algorithm enumeration and workspace
//! queries answered from the Sec. 3 AIT model instead of real execution.
//!
//! Capacity planning should exercise the *same* API as production. This
//! module implements `spg_core::backend::Backend` over [`Machine`]:
//! [`get_algos`](Backend::get_algos) enumerates the verified technique
//! pairs ranked by predicted forward GFlops/core (best first),
//! [`workspace_size`](Backend::workspace_size) shares the CPU backend's
//! closed-form scratch sizing, and [`compile`](Backend::compile) returns
//! an [`AlgoPrediction`] — the analytical stand-in for a compiled kernel.
//!
//! # Example
//!
//! ```
//! use spg_convnet::ConvSpec;
//! use spg_core::backend::{Backend, ConvDescriptor};
//! use spg_simcpu::{Machine, SimBackend};
//!
//! let backend = SimBackend::new(Machine::xeon_e5_2650());
//! let desc = ConvDescriptor::new(ConvSpec::square(32, 32, 32, 4, 1), 16);
//! let best = backend.get_algos(&desc).next().expect("some algo runs");
//! let weights = vec![0.0; desc.spec.weight_shape().len()];
//! let prediction = backend.compile(&desc, best, &weights)?;
//! assert!(prediction.fwd_gflops_per_core > 0.0);
//! # Ok::<(), spg_core::SpgError>(())
//! ```

use spg_core::autotune::Phase;
use spg_core::backend::{conv_workspace_bytes, AlgoChoice, AlgoKernel, Backend, ConvDescriptor};
use spg_core::schedule::Technique;
use spg_core::verify::verify_technique;
use spg_core::SpgError;

use crate::{
    gemm_in_parallel_gflops_per_core, parallel_gemm_gflops_per_core, sparse_bp_prediction,
    stencil_banded_gflops_per_core, stencil_gflops_per_core, Machine,
};

/// What the analytical backend "compiles": the model's predictions for
/// one algorithm on one descriptor, in place of an executable kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoPrediction {
    /// The algorithm the prediction describes.
    pub algo: AlgoChoice,
    /// Predicted sustained forward GFlops per core.
    pub fwd_gflops_per_core: f64,
    /// Predicted sustained backward GFlops per core (goodput per core for
    /// the sparse kernel).
    pub bwd_gflops_per_core: f64,
    /// The closed-form scratch upper bound, as
    /// [`workspace_size`](Backend::workspace_size) reports.
    pub workspace_bytes: usize,
}

/// Analytical backend over a [`Machine`] model.
///
/// The sparse backward prediction needs a gradient sparsity, which the
/// [`Backend`] compile contract does not carry; the backend holds an
/// assumed sparsity (default 0.9, the paper's mid-training regime),
/// overridable with [`with_sparsity`](SimBackend::with_sparsity).
#[derive(Debug, Clone)]
pub struct SimBackend {
    machine: Machine,
    bp_sparsity: f64,
}

impl SimBackend {
    /// Creates the analytical backend with the default 0.9 assumed
    /// backward gradient sparsity.
    pub fn new(machine: Machine) -> Self {
        SimBackend { machine, bp_sparsity: 0.9 }
    }

    /// Sets the gradient sparsity assumed by sparse-backward predictions.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn with_sparsity(mut self, sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
        self.bp_sparsity = sparsity;
        self
    }

    /// The machine model answering the queries.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Predicted GFlops/core of `technique` as a forward phase.
    fn forward_rate(&self, desc: &ConvDescriptor, technique: Technique) -> f64 {
        match technique {
            Technique::ParallelGemm => {
                parallel_gemm_gflops_per_core(&self.machine, &desc.spec, desc.cores)
            }
            Technique::GemmInParallel | Technique::SparseBp => {
                gemm_in_parallel_gflops_per_core(&self.machine, &desc.spec, desc.cores)
            }
            Technique::StencilFp => stencil_gflops_per_core(&self.machine, &desc.spec, desc.cores),
            Technique::StencilYBand | Technique::StencilXBand | Technique::StencilOutChannel => {
                let dim = technique.band_dim().expect("hybrid technique carries a band dim");
                stencil_banded_gflops_per_core(&self.machine, &desc.spec, dim, desc.cores)
            }
        }
    }

    /// Predicted GFlops/core of `technique` as a backward phase (goodput
    /// per core for the sparse kernel, at the assumed sparsity).
    fn backward_rate(&self, desc: &ConvDescriptor, technique: Technique) -> f64 {
        match technique {
            Technique::SparseBp => {
                let p =
                    sparse_bp_prediction(&self.machine, &desc.spec, self.bp_sparsity, desc.cores);
                p.goodput_gflops / desc.cores as f64
            }
            other => self.forward_rate(desc, other),
        }
    }
}

impl Backend for SimBackend {
    type Kernel = AlgoPrediction;

    fn name(&self) -> &'static str {
        "sim"
    }

    fn get_algos(&self, desc: &ConvDescriptor) -> impl Iterator<Item = AlgoChoice> {
        // Same verified technique-pair space as the CPU backend — the
        // model predicts only what could actually run — but ranked by
        // predicted forward rate, best first, and generic-kernel only:
        // the analytical model expresses kernel specialization as an
        // efficiency factor, not a separate algorithm.
        let mut algos: Vec<(AlgoChoice, f64)> = Technique::forward_candidates()
            .iter()
            .filter(|t| verify_technique(&desc.spec, **t, Phase::Forward, desc.cores).is_ok())
            .flat_map(|&forward| {
                Technique::backward_candidates()
                    .iter()
                    .filter(|t| {
                        verify_technique(&desc.spec, **t, Phase::Backward, desc.cores).is_ok()
                    })
                    .map(move |&backward| AlgoChoice {
                        forward,
                        backward,
                        kernel: AlgoKernel::Generic,
                    })
                    .collect::<Vec<_>>()
            })
            .map(|algo| (algo, self.forward_rate(desc, algo.forward)))
            .collect();
        algos.sort_by(|a, b| b.1.total_cmp(&a.1));
        algos.into_iter().map(|(algo, _)| algo)
    }

    fn workspace_size(&self, desc: &ConvDescriptor, algo: AlgoChoice) -> usize {
        conv_workspace_bytes(desc, algo)
    }

    fn compile(
        &self,
        desc: &ConvDescriptor,
        algo: AlgoChoice,
        weights: &[f32],
    ) -> Result<AlgoPrediction, SpgError> {
        // Same weight-length contract as the CPU backend, so swapping
        // backends cannot hide a mis-sized parameter buffer.
        if weights.len() != desc.spec.weight_shape().len() {
            return Err(SpgError::InvalidNetwork {
                message: format!(
                    "weight buffer has {} elements, spec requires {}",
                    weights.len(),
                    desc.spec.weight_shape().len()
                ),
            });
        }
        if let AlgoKernel::Specialized(isa) = algo.kernel {
            return Err(SpgError::InvalidNetwork {
                message: format!(
                    "the analytical backend models no specialized {} kernel",
                    isa.name()
                ),
            });
        }
        Ok(AlgoPrediction {
            algo,
            fwd_gflops_per_core: self.forward_rate(desc, algo.forward),
            bwd_gflops_per_core: self.backward_rate(desc, algo.backward),
            workspace_bytes: conv_workspace_bytes(desc, algo),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_convnet::ConvSpec;
    use spg_core::backend::CpuBackend;

    fn desc() -> ConvDescriptor {
        ConvDescriptor::new(ConvSpec::square(32, 32, 32, 4, 1), 16)
    }

    #[test]
    fn enumeration_is_ranked_by_predicted_forward_rate() {
        let backend = SimBackend::new(Machine::default());
        let d = desc();
        let algos: Vec<AlgoChoice> = backend.get_algos(&d).collect();
        assert!(!algos.is_empty());
        let rates: Vec<f64> = algos.iter().map(|a| backend.forward_rate(&d, a.forward)).collect();
        assert!(rates.windows(2).all(|w| w[0] >= w[1]), "{rates:?}");
    }

    #[test]
    fn same_algo_space_as_cpu_backend_modulo_specialization() {
        // Capacity planning must see the space production will search:
        // the generic-kernel algo sets coincide.
        let d = desc();
        let mut sim: Vec<String> =
            SimBackend::new(Machine::default()).get_algos(&d).map(|a| a.id()).collect();
        let mut cpu: Vec<String> = CpuBackend::new()
            .get_algos(&d)
            .filter(|a| a.kernel == AlgoKernel::Generic)
            .map(|a| a.id())
            .collect();
        sim.sort();
        cpu.sort();
        assert_eq!(sim, cpu);
    }

    #[test]
    fn workspace_query_is_shared_with_cpu_backend() {
        let d = desc();
        let sim = SimBackend::new(Machine::default());
        for algo in CpuBackend::new().get_algos(&d) {
            assert_eq!(sim.workspace_size(&d, algo), CpuBackend::new().workspace_size(&d, algo));
        }
    }

    #[test]
    fn compile_returns_model_predictions() {
        let d = desc();
        let backend = SimBackend::new(Machine::default()).with_sparsity(0.95);
        let weights = vec![0.0; d.spec.weight_shape().len()];
        let algo = backend.get_algos(&d).next().unwrap();
        let p = backend.compile(&d, algo, &weights).unwrap();
        assert_eq!(p.algo, algo);
        assert!(p.fwd_gflops_per_core > 0.0 && p.bwd_gflops_per_core > 0.0);
        assert_eq!(p.workspace_bytes, backend.workspace_size(&d, algo));
        assert!(backend.compile(&d, algo, &[0.0]).is_err(), "wrong weight length must fail");
    }

    #[test]
    fn sparse_backward_rate_tracks_the_sparse_model() {
        let d = desc();
        let backend = SimBackend::new(Machine::default());
        let rate = backend.backward_rate(&d, Technique::SparseBp);
        let expected = sparse_bp_prediction(&Machine::default(), &d.spec, 0.9, d.cores)
            .goodput_gflops
            / d.cores as f64;
        assert!((rate - expected).abs() < 1e-12);
    }
}
